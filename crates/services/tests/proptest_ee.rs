//! Property-based tests for the execution environment: capsule codec
//! round-trips, guaranteed termination under budgets for *arbitrary*
//! programs, and sandbox containment (no panic ever escapes the VM).

use proptest::prelude::*;

use netkit_services::ee::{Capsule, EeBudget, ExecutionEnv, NodeInfo, OpCode, Program};

struct FakeNode;
impl NodeInfo for FakeNode {
    fn node_id(&self) -> u32 {
        0x0a00_0001
    }
    fn now_ns(&self) -> u64 {
        1_000_000
    }
    fn route_lookup(&self, dst: std::net::Ipv4Addr) -> Option<u16> {
        (u32::from(dst) % 2 == 0).then_some(1)
    }
}

fn opcode_strategy() -> impl Strategy<Value = OpCode> {
    prop_oneof![
        any::<i64>().prop_map(OpCode::Push),
        Just(OpCode::Pop),
        Just(OpCode::Dup),
        Just(OpCode::Swap),
        Just(OpCode::Add),
        Just(OpCode::Sub),
        Just(OpCode::Mul),
        Just(OpCode::Div),
        Just(OpCode::Eq),
        Just(OpCode::Lt),
        (0u32..64).prop_map(OpCode::Jmp),
        (0u32..64).prop_map(OpCode::Jz),
        (0u32..64).prop_map(OpCode::Jnz),
        (0u8..16).prop_map(OpCode::Load),
        (0u8..16).prop_map(OpCode::Store),
        (0u8..8).prop_map(OpCode::PushArg),
        (0u8..8).prop_map(OpCode::SetArg),
        Just(OpCode::ArgCount),
        Just(OpCode::AppendArg),
        Just(OpCode::PushNodeId),
        Just(OpCode::PushNow),
        Just(OpCode::RouteLookup),
        Just(OpCode::CachePut),
        Just(OpCode::CacheGet),
        Just(OpCode::Forward),
        Just(OpCode::ForwardPort),
        Just(OpCode::DeliverLocal),
        Just(OpCode::Halt),
    ]
}

proptest! {
    #[test]
    fn capsule_codec_roundtrips(
        code in proptest::collection::vec(opcode_strategy(), 1..64),
        args in proptest::collection::vec(any::<i64>(), 0..16),
        by_hash in any::<bool>(),
        name in "[a-z]{1,12}",
    ) {
        let program = Program::new(name, code);
        let capsule = if by_hash {
            Capsule::by_hash(program.hash(), args.clone())
        } else {
            Capsule::with_code(&program, args.clone())
        };
        let decoded = Capsule::decode(&capsule.encode()).expect("own encoding decodes");
        prop_assert_eq!(&decoded, &capsule);
        prop_assert_eq!(decoded.args, args);
    }

    #[test]
    fn decoder_never_panics_on_junk(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Capsule::decode(&bytes);
    }

    #[test]
    fn truncation_is_always_detected(
        code in proptest::collection::vec(opcode_strategy(), 1..16),
        args in proptest::collection::vec(any::<i64>(), 0..4),
        cut in 1usize..32,
    ) {
        let program = Program::new("t", code);
        let encoded = Capsule::with_code(&program, args).encode();
        prop_assume!(cut < encoded.len());
        let truncated = &encoded[..encoded.len() - cut];
        prop_assert!(Capsule::decode(truncated).is_err(), "short input must not decode");
    }

    #[test]
    fn arbitrary_programs_terminate_within_budget(
        code in proptest::collection::vec(opcode_strategy(), 1..64),
        args in proptest::collection::vec(any::<i64>(), 0..8),
    ) {
        let budget = EeBudget { max_instructions: 2_000, max_stack: 64, max_cache_entries: 64 };
        let env = ExecutionEnv::new(budget);
        let program = Program::new("fuzz", code);
        let capsule = Capsule::with_code(&program, args);
        // The outcome may be Ok or any EeError — but execute() must
        // return (budget bounds every loop) and never panic.
        if let Ok(outcome) = env.execute(&capsule.encode(), &FakeNode) {
            prop_assert!(outcome.instructions <= budget.max_instructions);
        }
    }

    #[test]
    fn program_hash_is_stable_and_content_sensitive(
        code in proptest::collection::vec(opcode_strategy(), 1..32),
    ) {
        let a = Program::new("a", code.clone());
        let b = Program::new("b", code.clone());
        prop_assert_eq!(a.hash(), b.hash(), "name must not affect identity");
        // Appending an instruction changes the hash.
        let mut longer = code;
        longer.push(OpCode::Halt);
        let c = Program::new("c", longer);
        prop_assert_ne!(a.hash(), c.hash());
    }

    #[test]
    fn executions_are_deterministic(
        code in proptest::collection::vec(opcode_strategy(), 1..48),
        args in proptest::collection::vec(any::<i64>(), 0..8),
    ) {
        let run = || {
            let env = ExecutionEnv::new(EeBudget::default());
            let program = Program::new("det", code.clone());
            let capsule = Capsule::with_code(&program, args.clone());
            match env.execute(&capsule.encode(), &FakeNode) {
                Ok(o) => Ok((o.delivered, o.args, o.instructions,
                             o.emitted.iter().map(|(t, b)| (*t, b.clone())).collect::<Vec<_>>())),
                Err(e) => Err(e),
            }
        };
        prop_assert_eq!(run(), run());
    }
}
