//! # netkit-services — stratum-3 application services
//!
//! The paper's third stratum (paper §3): "coarser-grained 'programs' — in
//! the active networking execution-environment sense \[ANTS,02\] — that are
//! less performance critical and act on pre-selected packet flows in
//! application-specific ways (e.g. per-flow media filters). Here,
//! security is typically more of a concern than raw performance."
//!
//! * [`ee`] — a sandboxed stack-bytecode **execution environment** with
//!   capsule (active packet) encoding, per-node code caches, TTL'd
//!   soft-state, and instruction/stack/cache budgets.
//! * [`programs`] — an assembler plus the classic active-networking
//!   demos: active ping, path collector, multicast duplicator.
//! * [`media`] — per-flow media filters (frame-aware thinning, quality
//!   adaptation) as Router-CF-conformant components.
//! * [`component`] — the EE wrapped as a Router-CF plug-in, closing the
//!   loop with stratum 2.
//! * [`edge`] — the canonical stateful edge (Guard → conntrack →
//!   NAT44) stated as a declarative [`netkit_router::desc`]
//!   description and compiled through the diff-to-patch layer.
//!
//! ## Example: run a capsule
//!
//! ```
//! use netkit_services::ee::{Capsule, EeBudget, ExecutionEnv, NodeInfo, OpCode, Program};
//!
//! struct Node;
//! impl NodeInfo for Node {
//!     fn node_id(&self) -> u32 { 1 }
//!     fn now_ns(&self) -> u64 { 0 }
//!     fn route_lookup(&self, _dst: std::net::Ipv4Addr) -> Option<u16> { None }
//! }
//!
//! let env = ExecutionEnv::new(EeBudget::default());
//! let program = Program::new("answer", vec![
//!     OpCode::Push(6), OpCode::Push(7), OpCode::Mul, OpCode::AppendArg,
//! ]);
//! let capsule = Capsule::with_code(&program, vec![]);
//! let outcome = env.execute(&capsule.encode(), &Node)?;
//! assert_eq!(outcome.args, [42]);
//! # Ok::<(), netkit_services::ee::EeError>(())
//! ```

#![warn(missing_docs)]

pub mod component;
pub mod edge;
pub mod ee;
pub mod media;
pub mod programs;

pub use component::{EeComponent, EeNode};
pub use edge::{build_stateful_edge, stateful_edge_desc, EdgeProfile};
pub use ee::{Capsule, EeBudget, EeError, ExecutionEnv, NodeInfo, OpCode, Program};
pub use media::{DropLevel, FrameDropFilter, FrameType, QualityAdaptor};
pub use programs::{active_ping, multicast_duplicator, path_collector, Assembler};
