//! The stratum-3 **stateful edge**, expressed as a declarative
//! pipeline description.
//!
//! The paper's third stratum acts on *pre-selected flows* — which
//! presupposes an edge that selects them: admission (heavy-hitter
//! [`Guard`](netkit_router::flow::Guard)), connection tracking
//! ([`ConnTracker`](netkit_router::flow::ConnTracker)), and address
//! translation ([`Nat44`](netkit_router::flow::Nat44)). Earlier PRs
//! hand-built that chain per test; this module states it **once** as a
//! [`PipelineDesc`] and compiles it through `netkit_router::desc`, so
//! the services stratum, the benches, and the baselines all run the
//! same edge from the same source of truth — and reconfigure it by
//! diffing descriptions instead of rebuilding graphs.
//!
//! ```
//! use netkit_services::edge::{stateful_edge_desc, EdgeProfile};
//!
//! let desc = stateful_edge_desc(&EdgeProfile::default());
//! desc.validate()?;
//! // A tightened guard is a *param-only* reconfiguration: the diff
//! // replaces one element in place and touches no structure.
//! let tight = stateful_edge_desc(&EdgeProfile {
//!     byte_threshold: 16 * 1024,
//!     ..EdgeProfile::default()
//! });
//! let patch = netkit_router::desc::diff(&desc, &tight);
//! assert!(patch.param_only());
//! # Ok::<(), opencom::error::Error>(())
//! ```

use std::net::Ipv4Addr;
use std::sync::Arc;

use opencom::error::Result;
use opencom::meta::resources::ResourceManager;

use netkit_kernel::shard::ShardSpec;
use netkit_router::desc::{Compiler, DescBinding, PipelineDesc};
use netkit_router::shard::SoloPipeline;

/// Tuning knobs for the canonical stateful edge.
///
/// Every knob maps to one typed parameter in the description — a
/// changed profile diffs to a param-only patch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeProfile {
    /// Connection-table bound (flows per shard).
    pub conn_capacity: u64,
    /// Guard fast-path byte threshold: flows below it pass untouched.
    pub byte_threshold: u64,
    /// Bytes a heavy flow may push per observation window.
    pub window_budget: u64,
    /// The NAT's external (public) address.
    pub external_ip: Ipv4Addr,
    /// First external port of the NAT pool.
    pub port_base: u16,
    /// NAT port blocks × ports per block = pool size.
    pub nat_blocks: u16,
    /// Ports per NAT block.
    pub nat_block_size: u16,
}

impl Default for EdgeProfile {
    fn default() -> Self {
        Self {
            conn_capacity: 4_096,
            byte_threshold: 1 << 20,
            window_budget: 256 * 1024,
            external_ip: Ipv4Addr::new(192, 0, 2, 1),
            port_base: 10_000,
            nat_blocks: 64,
            nat_block_size: 64,
        }
    }
}

/// The canonical stateful-edge description:
/// `guard → conntrack → nat44 → egress counter → sink`, with a
/// hysteresis decision core driving shard rebalancing.
///
/// The description validates stand-alone (built-in element kinds
/// only), renders deterministically, and is the shared topology the
/// benches compare against the Click and monolithic baselines.
pub fn stateful_edge_desc(p: &EdgeProfile) -> PipelineDesc {
    PipelineDesc::new("stateful-edge")
        .element_with(
            "guard",
            "guard",
            &[
                ("byte_threshold", p.byte_threshold.into()),
                ("window_budget", p.window_budget.into()),
            ],
        )
        .element_with(
            "conntrack",
            "conntrack",
            &[("capacity", p.conn_capacity.into())],
        )
        .element_with(
            "nat",
            "nat44",
            &[
                ("external_ip", p.external_ip.to_string().into()),
                ("port_base", p.port_base.into()),
                ("blocks", p.nat_blocks.into()),
                ("block_size", p.nat_block_size.into()),
            ],
        )
        .element("egress", "counter")
        .element("sink", "discard")
        .ingress("guard")
        .edge("guard", "conntrack")
        .edge("conntrack", "nat")
        .edge("nat", "egress")
        .edge("egress", "sink")
        .control(
            "hysteresis",
            &[
                ("enter", 1.5.into()),
                ("exit", 1.2.into()),
                ("arm", 2u64.into()),
            ],
        )
}

/// Compiles the stateful edge to a single-threaded [`SoloPipeline`]
/// with `workers` replicas, returning the pipeline plus the
/// [`DescBinding`] that patches it live.
///
/// # Errors
///
/// Propagates description-validation and capsule failures (none
/// expected for the canonical description).
pub fn build_stateful_edge(
    p: &EdgeProfile,
    workers: usize,
    rm: Arc<ResourceManager>,
) -> Result<(SoloPipeline, DescBinding)> {
    let desc = stateful_edge_desc(p);
    Compiler::new().build_solo(&desc, ShardSpec::new(workers), rm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netkit_packet::packet::{Packet, PacketBuilder};
    use netkit_router::api::PushError;
    use netkit_router::desc::diff;

    fn udp(sport: u16) -> Packet {
        PacketBuilder::udp_v4("10.0.0.5", "203.0.113.9", sport, 80)
            .payload_len(64)
            .build()
    }

    #[test]
    fn edge_compiles_and_translates() {
        let (mut pipe, binding) =
            build_stateful_edge(&EdgeProfile::default(), 1, Arc::new(ResourceManager::new()))
                .unwrap();
        let batch = (0..16).map(|s| udp(5_000 + s)).collect();
        pipe.dispatch(batch);
        assert_eq!(pipe.stats().accepted, 16);
        assert_eq!(pipe.stats().dropped, 0);
        assert_eq!(
            binding.desc().render(),
            stateful_edge_desc(&EdgeProfile::default())
                .canonical()
                .render()
        );
    }

    #[test]
    fn exhausted_pool_surfaces_the_typed_verdict() {
        let (pipe, _binding) = build_stateful_edge(
            &EdgeProfile {
                nat_blocks: 1,
                nat_block_size: 2,
                ..EdgeProfile::default()
            },
            1,
            Arc::new(ResourceManager::new()),
        )
        .unwrap();
        let entry = Arc::clone(pipe.entry(0));
        entry.push(udp(6_001)).unwrap();
        entry.push(udp(6_002)).unwrap();
        let err = entry.push(udp(6_003));
        assert!(matches!(err, Err(PushError::Exhausted(_))), "{err:?}");
    }

    #[test]
    fn profile_tweaks_are_param_only_patches() {
        let base = stateful_edge_desc(&EdgeProfile::default());
        let tight = stateful_edge_desc(&EdgeProfile {
            byte_threshold: 4 * 1024,
            window_budget: 8 * 1024,
            conn_capacity: 512,
            ..EdgeProfile::default()
        });
        let patch = diff(&base, &tight);
        assert!(patch.param_only());
        assert_eq!(patch.structural_ops(), 0);
        // And it applies live.
        let (mut pipe, mut binding) =
            build_stateful_edge(&EdgeProfile::default(), 2, Arc::new(ResourceManager::new()))
                .unwrap();
        let report = binding.apply_solo(&mut pipe, &patch).unwrap();
        assert_eq!(report.structural, 0);
        assert_eq!(report.replaced, 2 * 2, "guard+conntrack on both shards");
    }

    #[test]
    fn edge_selects_the_hysteresis_core() {
        let desc = stateful_edge_desc(&EdgeProfile::default());
        let (_, binding) = Compiler::new()
            .build_solo(&desc, ShardSpec::new(1), Arc::new(ResourceManager::new()))
            .unwrap();
        let ctl = binding.controller().unwrap().expect("control block set");
        assert_eq!(ctl.core_name(), "hysteresis");
    }
}
