//! The execution environment as a Router-CF plug-in.
//!
//! [`EeComponent`] wraps an [`ExecutionEnv`] in
//! the Fig-2 component shape: active capsules arrive on `IPacketPush`,
//! execute in the sandbox, and their emissions leave on labelled
//! `IPacketPush` receptacles (`port0`, `port1`, …) or the `local` output
//! for deliveries. Non-active traffic passes through untouched on
//! `bypass` — an EE sits *beside* the fast path, not in it (paper §3:
//! stratum 3 acts on *pre-selected* flows).

use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use netkit_packet::packet::{Packet, PacketBuilder};
use opencom::component::{Component, ComponentCore, ComponentDescriptor, Registrar};
use opencom::ident::Version;
use opencom::receptacle::Receptacle;
use parking_lot::RwLock;

use netkit_router::api::{IPacketPush, PushResult, IPACKET_PUSH};
use netkit_router::routing::RoutingTable;

use crate::ee::{capsule_payload, EeBudget, EmitTarget, ExecutionEnv, NodeInfo};

/// Output label for locally delivered capsules.
pub const LOCAL_OUTPUT: &str = "local";
/// Output label for non-active passthrough traffic.
pub const BYPASS_OUTPUT: &str = "bypass";

/// Builds the label for port `p` emissions.
pub fn port_output(p: u16) -> String {
    format!("port{p}")
}

/// Node identity and routing supplied by the hosting node.
#[derive(Debug)]
pub struct EeNode {
    /// The node's address; its `u32` form doubles as the node id.
    pub addr: Ipv4Addr,
    /// Virtual time source (nanoseconds).
    pub now_ns: Arc<AtomicU64>,
    /// LPM table consulted by `RouteLookup` and `Forward`.
    pub routes: Arc<RwLock<RoutingTable>>,
}

impl NodeInfo for EeNode {
    fn node_id(&self) -> u32 {
        u32::from(self.addr)
    }
    fn now_ns(&self) -> u64 {
        self.now_ns.load(Ordering::Relaxed)
    }
    fn route_lookup(&self, dst: Ipv4Addr) -> Option<u16> {
        self.routes.read().lookup(dst.into()).map(|e| e.egress)
    }
}

/// Counters kept by an [`EeComponent`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EeComponentStats {
    /// Active capsules executed.
    pub capsules: u64,
    /// Capsules whose execution faulted (and were dropped).
    pub faults: u64,
    /// Non-active packets passed through.
    pub bypassed: u64,
    /// Emissions with no usable route/output (dropped).
    pub unroutable: u64,
}

/// The EE wrapped as an OpenCOM component (see module docs).
pub struct EeComponent {
    core: ComponentCore,
    env: ExecutionEnv,
    node: EeNode,
    outs: Receptacle<dyn IPacketPush>,
    stats: RwLock<EeComponentStats>,
}

impl EeComponent {
    /// Creates an EE component for the node described by `node`.
    pub fn new(budget: EeBudget, node: EeNode) -> Arc<Self> {
        Arc::new(Self {
            core: ComponentCore::new(ComponentDescriptor::new(
                "netkit.ExecutionEnv",
                Version::new(1, 0, 0),
            )),
            env: ExecutionEnv::new(budget),
            node,
            outs: Receptacle::multi("out", IPACKET_PUSH),
            stats: RwLock::new(EeComponentStats::default()),
        })
    }

    /// The wrapped execution environment (for pre-loading programs and
    /// reading VM statistics).
    pub fn env(&self) -> &ExecutionEnv {
        &self.env
    }

    /// Component-level counters.
    pub fn stats(&self) -> EeComponentStats {
        *self.stats.read()
    }

    /// Rebuilds a capsule payload into a forwardable UDP packet.
    fn repackage(&self, dst: Ipv4Addr, payload: &[u8]) -> Packet {
        PacketBuilder::udp_v4(&self.node.addr.to_string(), &dst.to_string(), 3322, 3322)
            .payload(payload)
            .build()
    }

    fn emit_on(&self, label: &str, pkt: Packet) -> PushResult {
        match self.outs.with_labelled(label, |next| next.push(pkt)) {
            Some(result) => result,
            None => {
                self.stats.write().unroutable += 1;
                Ok(()) // dropped by policy; counted
            }
        }
    }
}

impl IPacketPush for EeComponent {
    fn push(&self, pkt: Packet) -> PushResult {
        let Some(payload) = capsule_payload(&pkt) else {
            self.stats.write().bypassed += 1;
            return self.emit_on(BYPASS_OUTPUT, pkt);
        };
        let payload = payload.to_vec();
        match self.env.execute(&payload, &self.node) {
            Ok(outcome) => {
                self.stats.write().capsules += 1;
                if outcome.delivered {
                    self.emit_on(LOCAL_OUTPUT, pkt)?;
                }
                for (target, bytes) in outcome.emitted {
                    match target {
                        EmitTarget::Port(p) => {
                            let out = self.repackage(self.node.addr, &bytes);
                            self.emit_on(&port_output(p), out)?;
                        }
                        EmitTarget::Dst(dst) => match self.node.route_lookup(dst) {
                            Some(p) => {
                                let out = self.repackage(dst, &bytes);
                                self.emit_on(&port_output(p), out)?;
                            }
                            None => {
                                self.stats.write().unroutable += 1;
                            }
                        },
                    }
                }
                Ok(())
            }
            Err(e) => {
                // Faulty capsules hurt only themselves: drop, count, keep
                // the router up (stratum-3 containment).
                self.stats.write().faults += 1;
                let _ = e;
                Ok(())
            }
        }
    }
}

impl Component for EeComponent {
    fn core(&self) -> &ComponentCore {
        &self.core
    }
    fn publish(self: Arc<Self>, reg: &Registrar<'_>) {
        let push: Arc<dyn IPacketPush> = self.clone();
        reg.expose(IPACKET_PUSH, &push);
        reg.receptacle(&self.outs);
    }
    fn footprint_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.env.cached_programs() * 256
    }
}

impl std::fmt::Debug for EeComponent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "EeComponent(node={}, {:?})", self.node.addr, self.env)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ee::{Capsule, OpCode, Program};
    use crate::programs::{self, path_collector};
    use netkit_router::api::register_packet_interfaces;
    use netkit_router::cf::RouterCf;
    use netkit_router::elements::Discard;
    use netkit_router::routing::RouteEntry;
    use opencom::capsule::Capsule as OcCapsule;
    use opencom::cf::Principal;
    use opencom::runtime::Runtime;

    fn node(addr: &str) -> EeNode {
        let mut table = RoutingTable::new();
        table.add(
            "10.0.1.0/24",
            RouteEntry {
                egress: 0,
                next_hop: None,
            },
        );
        table.add(
            "10.0.2.0/24",
            RouteEntry {
                egress: 1,
                next_hop: None,
            },
        );
        EeNode {
            addr: addr.parse().unwrap(),
            now_ns: Arc::new(AtomicU64::new(77)),
            routes: Arc::new(RwLock::new(table)),
        }
    }

    struct Rig {
        ee: Arc<EeComponent>,
        local: Arc<Discard>,
        bypass: Arc<Discard>,
        port0: Arc<Discard>,
        port1: Arc<Discard>,
    }

    fn rig() -> Rig {
        let rt = Runtime::new();
        register_packet_interfaces(&rt);
        let capsule = OcCapsule::new("t", &rt);
        let ee = EeComponent::new(EeBudget::default(), node("10.0.0.1"));
        let id = capsule.adopt(ee.clone()).unwrap();
        let mut sinks = Vec::new();
        for label in [LOCAL_OUTPUT, BYPASS_OUTPUT, "port0", "port1"] {
            let sink = Discard::new();
            let sid = capsule.adopt(sink.clone()).unwrap();
            capsule.bind(id, "out", label, sid, IPACKET_PUSH).unwrap();
            sinks.push(sink);
        }
        let mut it = sinks.into_iter();
        Rig {
            ee,
            local: it.next().unwrap(),
            bypass: it.next().unwrap(),
            port0: it.next().unwrap(),
            port1: it.next().unwrap(),
        }
    }

    fn active_packet(program: &Program, args: Vec<i64>) -> Packet {
        let capsule = Capsule::with_code(program, args);
        PacketBuilder::udp_v4("10.0.9.9", "10.0.0.1", 3322, 3322)
            .payload(&capsule.encode())
            .build()
    }

    #[test]
    fn non_active_traffic_bypasses() {
        let r = rig();
        r.ee.push(
            PacketBuilder::udp_v4("10.0.0.9", "10.0.0.1", 1, 2)
                .payload(b"hi")
                .build(),
        )
        .unwrap();
        assert_eq!(r.bypass.count(), 1);
        assert_eq!(r.ee.stats().bypassed, 1);
    }

    #[test]
    fn delivering_capsule_surfaces_on_local() {
        let r = rig();
        let p = Program::new("deliver", vec![OpCode::DeliverLocal]);
        r.ee.push(active_packet(&p, vec![])).unwrap();
        assert_eq!(r.local.count(), 1);
        assert_eq!(r.ee.stats().capsules, 1);
    }

    #[test]
    fn forward_routes_via_lpm_table() {
        let r = rig();
        let to1 = u32::from(Ipv4Addr::new(10, 0, 1, 5)) as i64;
        let to2 = u32::from(Ipv4Addr::new(10, 0, 2, 5)) as i64;
        let p = Program::new(
            "fan",
            vec![
                OpCode::Push(to1),
                OpCode::Forward,
                OpCode::Push(to2),
                OpCode::Forward,
            ],
        );
        r.ee.push(active_packet(&p, vec![])).unwrap();
        assert_eq!(r.port0.count(), 1);
        assert_eq!(r.port1.count(), 1);
        // Re-emitted packet is addressed to the capsule's destination.
        assert_eq!(
            r.port0.last().unwrap().ipv4().unwrap().dst,
            Ipv4Addr::new(10, 0, 1, 5)
        );
    }

    #[test]
    fn unroutable_forward_is_counted_not_fatal() {
        let r = rig();
        let nowhere = u32::from(Ipv4Addr::new(192, 168, 1, 1)) as i64;
        let p = Program::new("lost", vec![OpCode::Push(nowhere), OpCode::Forward]);
        r.ee.push(active_packet(&p, vec![])).unwrap();
        assert_eq!(r.ee.stats().unroutable, 1);
        assert_eq!(r.port0.count() + r.port1.count(), 0);
    }

    #[test]
    fn faulting_capsule_is_contained() {
        let r = rig();
        let p = Program::new("boom", vec![OpCode::Push(1), OpCode::Push(0), OpCode::Div]);
        r.ee.push(active_packet(&p, vec![])).unwrap();
        assert_eq!(r.ee.stats().faults, 1);
        // The router keeps running.
        r.ee.push(PacketBuilder::udp_v4("10.0.0.9", "10.0.0.1", 1, 2).build())
            .unwrap();
        assert_eq!(r.bypass.count(), 1);
    }

    #[test]
    fn path_collector_stamps_this_node() {
        let r = rig();
        let p = path_collector();
        let me = u32::from(Ipv4Addr::new(10, 0, 0, 1)) as i64;
        r.ee.push(active_packet(&p, vec![me])).unwrap();
        // Destination == this node, so it delivers immediately with one
        // path entry.
        assert_eq!(r.local.count(), 1);
        let delivered = r.local.last().unwrap();
        let decoded = Capsule::decode(capsule_payload(&delivered).unwrap()).unwrap();
        // The delivered packet is the *incoming* capsule; its args were
        // stamped by the EE before delivery happens at the VM level, so we
        // only check it is still a well-formed capsule here.
        assert_eq!(decoded.args[0], me);
        let _ = programs::ping_capsule_args(
            "10.0.0.2".parse().unwrap(),
            "10.0.0.1".parse().unwrap(),
            0,
        );
    }

    #[test]
    fn ee_component_is_router_cf_conformant() {
        let rt = Runtime::new();
        register_packet_interfaces(&rt);
        let capsule = OcCapsule::new("t", &rt);
        let cf = RouterCf::new("router", Arc::clone(&capsule));
        let ee = EeComponent::new(EeBudget::default(), node("10.0.0.1"));
        let id = capsule.adopt(ee).unwrap();
        cf.plug(&Principal::system(), id).unwrap();
        assert!(cf.members().contains(&id));
    }
}
