//! The active-networking **execution environment** (EE).
//!
//! Paper §3, stratum 3: "coarser-grained 'programs' — in the active
//! networking execution-environment sense \[ANTS,02\] — that are less
//! performance critical and act on pre-selected packet flows in
//! application-specific ways … Here, security is typically more of a
//! concern than raw performance."
//!
//! The ANTS toolkit itself is Java and long obsolete; per DESIGN.md §2 we
//! substitute a small **stack bytecode VM** with the properties that made
//! ANTS interesting as a stratum-3 workload:
//!
//! * **capsules** — packets carry (a hash of) their own forwarding
//!   program; code travels once and is then served from a per-node
//!   **code cache**;
//! * **sandboxing by construction** — programs can only touch the VM
//!   stack, their own capsule arguments, and the node API below;
//! * **budgets** — instruction and stack ceilings enforce termination
//!   (the security-over-performance trade of stratum 3);
//! * **node API** — route lookup, a TTL'd **soft-state cache**, node
//!   identity, virtual time, packet emission.

use std::collections::HashMap;
use std::fmt;
use std::net::Ipv4Addr;

use parking_lot::Mutex;

use netkit_packet::packet::Packet;

/// Magic number prefixing every active-packet payload.
pub const ACTIVE_MAGIC: u32 = 0x4e45_544b; // "NETK"

/// One VM instruction.
///
/// The operand stack holds `i64`s; addresses are encoded as the `u32`
/// value of the IPv4 address. Control flow is absolute (`Jmp`) or
/// conditional on the popped top-of-stack (`Jz`/`Jnz`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum OpCode {
    /// Push an immediate.
    Push(i64),
    /// Discard the top of stack.
    Pop,
    /// Duplicate the top of stack.
    Dup,
    /// Swap the top two entries.
    Swap,
    /// Pop `b`, `a`; push `a + b`.
    Add,
    /// Pop `b`, `a`; push `a - b`.
    Sub,
    /// Pop `b`, `a`; push `a * b`.
    Mul,
    /// Pop `b`, `a`; push `a / b`. Errors on division by zero.
    Div,
    /// Pop `b`, `a`; push `1` if `a == b` else `0`.
    Eq,
    /// Pop `b`, `a`; push `1` if `a < b` else `0`.
    Lt,
    /// Jump to an absolute instruction index.
    Jmp(u32),
    /// Pop; jump if zero.
    Jz(u32),
    /// Pop; jump if non-zero.
    Jnz(u32),
    /// Load local slot `i` (16 slots, zero-initialised).
    Load(u8),
    /// Pop into local slot `i`.
    Store(u8),
    /// Push capsule argument `i` (errors if absent).
    PushArg(u8),
    /// Pop into capsule argument `i`, extending the argument vector.
    SetArg(u8),
    /// Push the number of capsule arguments.
    ArgCount,
    /// Append the popped value to the capsule argument vector.
    AppendArg,
    /// Push this node's id.
    PushNodeId,
    /// Push the current virtual time in nanoseconds.
    PushNow,
    /// Pop an address; push the egress port for it, or `-1` if no route.
    RouteLookup,
    /// Pop `ttl_ns`, `value`, `key`: store in the node's soft-state cache.
    CachePut,
    /// Pop `key`: push the cached value and `1`, or `0` and `0` on miss.
    CacheGet,
    /// Pop a destination address; re-emit this capsule towards it.
    Forward,
    /// Pop a port number; re-emit this capsule on that port.
    ForwardPort,
    /// Deliver the capsule to the local node (end of the road).
    DeliverLocal,
    /// Stop without emitting anything.
    Halt,
}

impl OpCode {
    fn encode(&self, out: &mut Vec<u8>) {
        let (tag, operand): (u8, i64) = match *self {
            OpCode::Push(v) => (0, v),
            OpCode::Pop => (1, 0),
            OpCode::Dup => (2, 0),
            OpCode::Swap => (3, 0),
            OpCode::Add => (4, 0),
            OpCode::Sub => (5, 0),
            OpCode::Mul => (6, 0),
            OpCode::Div => (7, 0),
            OpCode::Eq => (8, 0),
            OpCode::Lt => (9, 0),
            OpCode::Jmp(t) => (10, t as i64),
            OpCode::Jz(t) => (11, t as i64),
            OpCode::Jnz(t) => (12, t as i64),
            OpCode::Load(i) => (13, i as i64),
            OpCode::Store(i) => (14, i as i64),
            OpCode::PushArg(i) => (15, i as i64),
            OpCode::SetArg(i) => (16, i as i64),
            OpCode::ArgCount => (17, 0),
            OpCode::AppendArg => (18, 0),
            OpCode::PushNodeId => (19, 0),
            OpCode::PushNow => (20, 0),
            OpCode::RouteLookup => (21, 0),
            OpCode::CachePut => (22, 0),
            OpCode::CacheGet => (23, 0),
            OpCode::Forward => (24, 0),
            OpCode::ForwardPort => (25, 0),
            OpCode::DeliverLocal => (26, 0),
            OpCode::Halt => (27, 0),
        };
        out.push(tag);
        out.extend_from_slice(&operand.to_be_bytes());
    }

    fn decode(buf: &[u8], pos: &mut usize) -> Option<OpCode> {
        if buf.len() < *pos + 9 {
            return None;
        }
        let tag = buf[*pos];
        let operand = i64::from_be_bytes(buf[*pos + 1..*pos + 9].try_into().ok()?);
        *pos += 9;
        Some(match tag {
            0 => OpCode::Push(operand),
            1 => OpCode::Pop,
            2 => OpCode::Dup,
            3 => OpCode::Swap,
            4 => OpCode::Add,
            5 => OpCode::Sub,
            6 => OpCode::Mul,
            7 => OpCode::Div,
            8 => OpCode::Eq,
            9 => OpCode::Lt,
            10 => OpCode::Jmp(operand as u32),
            11 => OpCode::Jz(operand as u32),
            12 => OpCode::Jnz(operand as u32),
            13 => OpCode::Load(operand as u8),
            14 => OpCode::Store(operand as u8),
            15 => OpCode::PushArg(operand as u8),
            16 => OpCode::SetArg(operand as u8),
            17 => OpCode::ArgCount,
            18 => OpCode::AppendArg,
            19 => OpCode::PushNodeId,
            20 => OpCode::PushNow,
            21 => OpCode::RouteLookup,
            22 => OpCode::CachePut,
            23 => OpCode::CacheGet,
            24 => OpCode::Forward,
            25 => OpCode::ForwardPort,
            26 => OpCode::DeliverLocal,
            27 => OpCode::Halt,
            _ => return None,
        })
    }
}

/// An immutable, named program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Program {
    name: String,
    code: Vec<OpCode>,
}

impl Program {
    /// Creates a program.
    ///
    /// # Panics
    ///
    /// Panics on empty code (a capsule must do *something*).
    pub fn new(name: impl Into<String>, code: Vec<OpCode>) -> Self {
        assert!(!code.is_empty(), "empty program");
        Self {
            name: name.into(),
            code,
        }
    }

    /// The program's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The instruction sequence.
    pub fn code(&self) -> &[OpCode] {
        &self.code
    }

    /// A stable content hash (FNV-1a over the encoded form), used as the
    /// code-cache key.
    pub fn hash(&self) -> u64 {
        let mut bytes = Vec::with_capacity(self.code.len() * 9);
        for op in &self.code {
            op.encode(&mut bytes);
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    fn encode_code(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.code.len() * 9);
        for op in &self.code {
            op.encode(&mut out);
        }
        out
    }

    fn decode_code(buf: &[u8]) -> Option<Vec<OpCode>> {
        let mut pos = 0;
        let mut code = Vec::new();
        while pos < buf.len() {
            code.push(OpCode::decode(buf, &mut pos)?);
        }
        if code.is_empty() {
            None
        } else {
            Some(code)
        }
    }
}

/// Why a capsule execution failed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EeError {
    /// The instruction budget was exhausted (non-terminating program).
    BudgetExceeded {
        /// The configured ceiling.
        limit: u64,
    },
    /// A stack operation under- or over-flowed.
    StackFault {
        /// What happened.
        detail: &'static str,
    },
    /// Division by zero.
    DivideByZero,
    /// A jump target fell outside the program.
    BadJump {
        /// The offending target.
        target: u32,
    },
    /// A capsule argument index was out of range.
    BadArgument {
        /// The offending index.
        index: u8,
    },
    /// The payload did not parse as an active packet.
    NotActive,
    /// The capsule named a program hash this node has never seen, and
    /// carried no code.
    CodeMiss {
        /// The unknown hash.
        hash: u64,
    },
    /// The soft-state cache is full.
    CacheFull,
}

impl fmt::Display for EeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EeError::BudgetExceeded { limit } => {
                write!(f, "instruction budget of {limit} exceeded")
            }
            EeError::StackFault { detail } => write!(f, "stack fault: {detail}"),
            EeError::DivideByZero => write!(f, "division by zero"),
            EeError::BadJump { target } => write!(f, "jump target {target} out of range"),
            EeError::BadArgument { index } => write!(f, "capsule argument {index} absent"),
            EeError::NotActive => write!(f, "payload is not an active capsule"),
            EeError::CodeMiss { hash } => write!(f, "unknown program hash {hash:#018x}"),
            EeError::CacheFull => write!(f, "soft-state cache full"),
        }
    }
}

impl std::error::Error for EeError {}

/// Resource ceilings for one capsule execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EeBudget {
    /// Maximum instructions per execution.
    pub max_instructions: u64,
    /// Maximum operand-stack depth.
    pub max_stack: usize,
    /// Maximum entries in the node's soft-state cache.
    pub max_cache_entries: usize,
}

impl Default for EeBudget {
    fn default() -> Self {
        Self {
            max_instructions: 10_000,
            max_stack: 256,
            max_cache_entries: 4_096,
        }
    }
}

/// Read-only node facilities exposed to capsules.
pub trait NodeInfo {
    /// This node's identity (pushed by [`OpCode::PushNodeId`]).
    fn node_id(&self) -> u32;
    /// Virtual time in nanoseconds (pushed by [`OpCode::PushNow`]).
    fn now_ns(&self) -> u64;
    /// The egress port towards `dst`, if the node has a route.
    fn route_lookup(&self, dst: Ipv4Addr) -> Option<u16>;
}

/// Where an emitted capsule should go.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EmitTarget {
    /// Towards an address (the hosting node routes it).
    Dst(Ipv4Addr),
    /// Out of a specific port.
    Port(u16),
}

/// Everything a capsule execution produced.
#[derive(Debug, Default)]
pub struct Outcome {
    /// Re-emissions of the capsule (target, rebuilt payload).
    pub emitted: Vec<(EmitTarget, Vec<u8>)>,
    /// `true` if the capsule delivered itself locally.
    pub delivered: bool,
    /// Final capsule arguments (mutated state travels with the packet).
    pub args: Vec<i64>,
    /// Instructions actually executed.
    pub instructions: u64,
}

/// A capsule as decoded from (or encoded into) a packet payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Capsule {
    /// Hash naming the program.
    pub code_hash: u64,
    /// Mutable per-capsule state.
    pub args: Vec<i64>,
    /// The program itself, when the capsule carries its code.
    pub code: Option<Program>,
}

impl Capsule {
    /// Creates a capsule carrying its code (first packet of a flow).
    pub fn with_code(program: &Program, args: Vec<i64>) -> Self {
        Self {
            code_hash: program.hash(),
            args,
            code: Some(program.clone()),
        }
    }

    /// Creates a code-less capsule naming an already-distributed program.
    pub fn by_hash(code_hash: u64, args: Vec<i64>) -> Self {
        Self {
            code_hash,
            args,
            code: None,
        }
    }

    /// Serialises to a UDP payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&ACTIVE_MAGIC.to_be_bytes());
        out.extend_from_slice(&self.code_hash.to_be_bytes());
        out.extend_from_slice(&(self.args.len() as u16).to_be_bytes());
        for a in &self.args {
            out.extend_from_slice(&a.to_be_bytes());
        }
        match &self.code {
            Some(p) => {
                let bytes = p.encode_code();
                out.push(1);
                let name = p.name().as_bytes();
                out.extend_from_slice(&(name.len() as u16).to_be_bytes());
                out.extend_from_slice(name);
                out.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
                out.extend_from_slice(&bytes);
            }
            None => out.push(0),
        }
        out
    }

    /// Parses a UDP payload.
    ///
    /// # Errors
    ///
    /// Returns [`EeError::NotActive`] on anything that is not a
    /// well-formed capsule.
    pub fn decode(payload: &[u8]) -> Result<Self, EeError> {
        let take = |buf: &[u8], pos: &mut usize, n: usize| -> Result<Vec<u8>, EeError> {
            if buf.len() < *pos + n {
                return Err(EeError::NotActive);
            }
            let out = buf[*pos..*pos + n].to_vec();
            *pos += n;
            Ok(out)
        };
        let mut pos = 0;
        let magic = u32::from_be_bytes(take(payload, &mut pos, 4)?.try_into().expect("4 bytes"));
        if magic != ACTIVE_MAGIC {
            return Err(EeError::NotActive);
        }
        let code_hash =
            u64::from_be_bytes(take(payload, &mut pos, 8)?.try_into().expect("8 bytes"));
        let n_args =
            u16::from_be_bytes(take(payload, &mut pos, 2)?.try_into().expect("2 bytes")) as usize;
        let mut args = Vec::with_capacity(n_args);
        for _ in 0..n_args {
            args.push(i64::from_be_bytes(
                take(payload, &mut pos, 8)?.try_into().expect("8 bytes"),
            ));
        }
        let has_code = take(payload, &mut pos, 1)?[0];
        let code = if has_code == 1 {
            let name_len =
                u16::from_be_bytes(take(payload, &mut pos, 2)?.try_into().expect("2 bytes"))
                    as usize;
            let name = String::from_utf8(take(payload, &mut pos, name_len)?)
                .map_err(|_| EeError::NotActive)?;
            let code_len =
                u32::from_be_bytes(take(payload, &mut pos, 4)?.try_into().expect("4 bytes"))
                    as usize;
            let bytes = take(payload, &mut pos, code_len)?;
            let ops = Program::decode_code(&bytes).ok_or(EeError::NotActive)?;
            Some(Program::new(name, ops))
        } else {
            None
        };
        Ok(Self {
            code_hash,
            args,
            code,
        })
    }
}

/// Statistics kept by an [`ExecutionEnv`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EeStats {
    /// Capsules executed to completion.
    pub executed: u64,
    /// Executions aborted by an [`EeError`].
    pub faulted: u64,
    /// Code-cache hits.
    pub code_hits: u64,
    /// Code-cache inserts (capsules that carried code).
    pub code_loads: u64,
    /// Total instructions retired.
    pub instructions: u64,
}

/// A per-node execution environment: code cache + soft-state cache +
/// interpreter.
pub struct ExecutionEnv {
    budget: EeBudget,
    code_cache: Mutex<HashMap<u64, Program>>,
    soft_state: Mutex<HashMap<i64, (i64, u64)>>,
    stats: Mutex<EeStats>,
}

impl ExecutionEnv {
    /// Creates an EE with the given budgets.
    pub fn new(budget: EeBudget) -> Self {
        Self {
            budget,
            code_cache: Mutex::new(HashMap::new()),
            soft_state: Mutex::new(HashMap::new()),
            stats: Mutex::new(EeStats::default()),
        }
    }

    /// The configured budgets.
    pub fn budget(&self) -> EeBudget {
        self.budget
    }

    /// Counters so far.
    pub fn stats(&self) -> EeStats {
        *self.stats.lock()
    }

    /// Number of programs in the code cache.
    pub fn cached_programs(&self) -> usize {
        self.code_cache.lock().len()
    }

    /// Pre-loads a program (out-of-band code distribution).
    pub fn install(&self, program: Program) {
        self.code_cache.lock().insert(program.hash(), program);
    }

    /// Drops soft-state entries that expired before `now_ns`.
    pub fn sweep_soft_state(&self, now_ns: u64) -> usize {
        let mut cache = self.soft_state.lock();
        let before = cache.len();
        cache.retain(|_, (_, expiry)| *expiry > now_ns);
        before - cache.len()
    }

    /// Executes the capsule in `payload` against this node.
    ///
    /// # Errors
    ///
    /// Any [`EeError`]; the capsule is dropped in that case (active
    /// networking's containment property: a faulty capsule hurts only
    /// itself).
    pub fn execute(&self, payload: &[u8], node: &dyn NodeInfo) -> Result<Outcome, EeError> {
        let capsule = Capsule::decode(payload)?;
        let program = {
            let mut cache = self.code_cache.lock();
            match capsule.code {
                Some(ref p) => {
                    let entry = cache.entry(capsule.code_hash).or_insert_with(|| p.clone());
                    self.stats.lock().code_loads += 1;
                    entry.clone()
                }
                None => match cache.get(&capsule.code_hash) {
                    Some(p) => {
                        self.stats.lock().code_hits += 1;
                        p.clone()
                    }
                    None => {
                        self.stats.lock().faulted += 1;
                        return Err(EeError::CodeMiss {
                            hash: capsule.code_hash,
                        });
                    }
                },
            }
        };
        match self.run(&program, capsule.args, node) {
            Ok(outcome) => {
                let mut stats = self.stats.lock();
                stats.executed += 1;
                stats.instructions += outcome.instructions;
                Ok(outcome)
            }
            Err(e) => {
                self.stats.lock().faulted += 1;
                Err(e)
            }
        }
    }

    fn run(
        &self,
        program: &Program,
        mut args: Vec<i64>,
        node: &dyn NodeInfo,
    ) -> Result<Outcome, EeError> {
        let code = program.code();
        let mut stack: Vec<i64> = Vec::with_capacity(16);
        let mut locals = [0i64; 16];
        let mut outcome = Outcome::default();
        let mut pc: usize = 0;

        let pop = |stack: &mut Vec<i64>| -> Result<i64, EeError> {
            stack.pop().ok_or(EeError::StackFault {
                detail: "underflow",
            })
        };

        loop {
            if outcome.instructions >= self.budget.max_instructions {
                return Err(EeError::BudgetExceeded {
                    limit: self.budget.max_instructions,
                });
            }
            let Some(op) = code.get(pc) else {
                break; // running off the end halts
            };
            outcome.instructions += 1;
            pc += 1;
            match *op {
                OpCode::Push(v) => {
                    if stack.len() >= self.budget.max_stack {
                        return Err(EeError::StackFault { detail: "overflow" });
                    }
                    stack.push(v);
                }
                OpCode::Pop => {
                    pop(&mut stack)?;
                }
                OpCode::Dup => {
                    let v = *stack.last().ok_or(EeError::StackFault {
                        detail: "underflow",
                    })?;
                    if stack.len() >= self.budget.max_stack {
                        return Err(EeError::StackFault { detail: "overflow" });
                    }
                    stack.push(v);
                }
                OpCode::Swap => {
                    let n = stack.len();
                    if n < 2 {
                        return Err(EeError::StackFault {
                            detail: "underflow",
                        });
                    }
                    stack.swap(n - 1, n - 2);
                }
                OpCode::Add => {
                    let b = pop(&mut stack)?;
                    let a = pop(&mut stack)?;
                    stack.push(a.wrapping_add(b));
                }
                OpCode::Sub => {
                    let b = pop(&mut stack)?;
                    let a = pop(&mut stack)?;
                    stack.push(a.wrapping_sub(b));
                }
                OpCode::Mul => {
                    let b = pop(&mut stack)?;
                    let a = pop(&mut stack)?;
                    stack.push(a.wrapping_mul(b));
                }
                OpCode::Div => {
                    let b = pop(&mut stack)?;
                    let a = pop(&mut stack)?;
                    if b == 0 {
                        return Err(EeError::DivideByZero);
                    }
                    stack.push(a.wrapping_div(b));
                }
                OpCode::Eq => {
                    let b = pop(&mut stack)?;
                    let a = pop(&mut stack)?;
                    stack.push(i64::from(a == b));
                }
                OpCode::Lt => {
                    let b = pop(&mut stack)?;
                    let a = pop(&mut stack)?;
                    stack.push(i64::from(a < b));
                }
                OpCode::Jmp(t) => {
                    if t as usize > code.len() {
                        return Err(EeError::BadJump { target: t });
                    }
                    pc = t as usize;
                }
                OpCode::Jz(t) => {
                    if t as usize > code.len() {
                        return Err(EeError::BadJump { target: t });
                    }
                    if pop(&mut stack)? == 0 {
                        pc = t as usize;
                    }
                }
                OpCode::Jnz(t) => {
                    if t as usize > code.len() {
                        return Err(EeError::BadJump { target: t });
                    }
                    if pop(&mut stack)? != 0 {
                        pc = t as usize;
                    }
                }
                OpCode::Load(i) => {
                    let slot = locals.get(i as usize).ok_or(EeError::StackFault {
                        detail: "bad local slot",
                    })?;
                    stack.push(*slot);
                }
                OpCode::Store(i) => {
                    let v = pop(&mut stack)?;
                    let slot = locals.get_mut(i as usize).ok_or(EeError::StackFault {
                        detail: "bad local slot",
                    })?;
                    *slot = v;
                }
                OpCode::PushArg(i) => {
                    let v = args
                        .get(i as usize)
                        .ok_or(EeError::BadArgument { index: i })?;
                    stack.push(*v);
                }
                OpCode::SetArg(i) => {
                    let v = pop(&mut stack)?;
                    let idx = i as usize;
                    if idx >= args.len() {
                        args.resize(idx + 1, 0);
                    }
                    args[idx] = v;
                }
                OpCode::ArgCount => stack.push(args.len() as i64),
                OpCode::AppendArg => {
                    let v = pop(&mut stack)?;
                    args.push(v);
                }
                OpCode::PushNodeId => stack.push(node.node_id() as i64),
                OpCode::PushNow => stack.push(node.now_ns() as i64),
                OpCode::RouteLookup => {
                    let addr = pop(&mut stack)?;
                    let dst = Ipv4Addr::from(addr as u32);
                    stack.push(node.route_lookup(dst).map(|p| p as i64).unwrap_or(-1));
                }
                OpCode::CachePut => {
                    let ttl = pop(&mut stack)?;
                    let value = pop(&mut stack)?;
                    let key = pop(&mut stack)?;
                    let mut cache = self.soft_state.lock();
                    if cache.len() >= self.budget.max_cache_entries && !cache.contains_key(&key) {
                        return Err(EeError::CacheFull);
                    }
                    cache.insert(
                        key,
                        (value, node.now_ns().saturating_add(ttl.max(0) as u64)),
                    );
                }
                OpCode::CacheGet => {
                    let key = pop(&mut stack)?;
                    let cache = self.soft_state.lock();
                    match cache.get(&key) {
                        Some((value, expiry)) if *expiry > node.now_ns() => {
                            stack.push(*value);
                            stack.push(1);
                        }
                        _ => {
                            stack.push(0);
                            stack.push(0);
                        }
                    }
                }
                OpCode::Forward => {
                    let addr = pop(&mut stack)?;
                    let capsule = Capsule::by_hash(program.hash(), args.clone());
                    outcome.emitted.push((
                        EmitTarget::Dst(Ipv4Addr::from(addr as u32)),
                        capsule.encode(),
                    ));
                }
                OpCode::ForwardPort => {
                    let port = pop(&mut stack)?;
                    if !(0..=u16::MAX as i64).contains(&port) {
                        return Err(EeError::StackFault {
                            detail: "port out of range",
                        });
                    }
                    let capsule = Capsule::by_hash(program.hash(), args.clone());
                    outcome
                        .emitted
                        .push((EmitTarget::Port(port as u16), capsule.encode()));
                }
                OpCode::DeliverLocal => {
                    outcome.delivered = true;
                }
                OpCode::Halt => break,
            }
        }
        outcome.args = args;
        Ok(outcome)
    }
}

impl fmt::Debug for ExecutionEnv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ExecutionEnv({} cached programs, {} soft-state entries)",
            self.code_cache.lock().len(),
            self.soft_state.lock().len()
        )
    }
}

/// Extracts the active capsule payload from a UDP packet, if any.
pub fn capsule_payload(pkt: &Packet) -> Option<&[u8]> {
    let payload = pkt.udp_payload_v4().ok()?;
    if payload.len() >= 4 && payload[..4] == ACTIVE_MAGIC.to_be_bytes() {
        Some(payload)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FakeNode {
        id: u32,
        now: u64,
    }
    impl NodeInfo for FakeNode {
        fn node_id(&self) -> u32 {
            self.id
        }
        fn now_ns(&self) -> u64 {
            self.now
        }
        fn route_lookup(&self, dst: Ipv4Addr) -> Option<u16> {
            (dst.octets()[3] == 9).then_some(3)
        }
    }

    fn ee() -> ExecutionEnv {
        ExecutionEnv::new(EeBudget::default())
    }

    fn node() -> FakeNode {
        FakeNode { id: 7, now: 1_000 }
    }

    fn run_ops(ops: Vec<OpCode>, args: Vec<i64>) -> Result<Outcome, EeError> {
        let env = ee();
        let program = Program::new("t", ops);
        let capsule = Capsule::with_code(&program, args);
        env.execute(&capsule.encode(), &node())
    }

    #[test]
    fn arithmetic_and_halt() {
        let out = run_ops(
            vec![
                OpCode::Push(6),
                OpCode::Push(7),
                OpCode::Mul,
                OpCode::AppendArg,
                OpCode::Halt,
            ],
            vec![],
        )
        .unwrap();
        assert_eq!(out.args, [42]);
        assert_eq!(out.instructions, 5);
    }

    #[test]
    fn division_by_zero_faults() {
        let err = run_ops(vec![OpCode::Push(1), OpCode::Push(0), OpCode::Div], vec![]).unwrap_err();
        assert_eq!(err, EeError::DivideByZero);
    }

    #[test]
    fn budget_stops_infinite_loop() {
        let err = run_ops(vec![OpCode::Jmp(0)], vec![]).unwrap_err();
        assert!(matches!(err, EeError::BudgetExceeded { .. }));
    }

    #[test]
    fn stack_depth_is_bounded() {
        let env = ExecutionEnv::new(EeBudget {
            max_stack: 4,
            ..EeBudget::default()
        });
        let program = Program::new(
            "deep",
            vec![
                OpCode::Push(1),
                OpCode::Push(1),
                OpCode::Push(1),
                OpCode::Push(1),
                OpCode::Push(1),
            ],
        );
        let capsule = Capsule::with_code(&program, vec![]);
        let err = env.execute(&capsule.encode(), &node()).unwrap_err();
        assert!(matches!(err, EeError::StackFault { detail: "overflow" }));
    }

    #[test]
    fn loops_and_conditionals_work() {
        // Sum 1..=5 using a loop: local0 = counter, local1 = acc.
        let ops = vec![
            OpCode::Push(5),
            OpCode::Store(0),
            // loop:
            OpCode::Load(0), // 2
            OpCode::Jz(12),  // exit when counter == 0
            OpCode::Load(1),
            OpCode::Load(0),
            OpCode::Add,
            OpCode::Store(1),
            OpCode::Load(0),
            OpCode::Push(1),
            OpCode::Sub,
            OpCode::Store(0),
            OpCode::Jmp(2), // 11 -> loop  (index 11 jumps to 2)
        ];
        // Fix: Jz target should skip past the Jmp; re-assemble carefully.
        let ops = {
            let mut v = ops;
            v[3] = OpCode::Jz(13);
            v.push(OpCode::Load(1)); // 13
            v.push(OpCode::AppendArg); // 14
            v
        };
        let out = run_ops(ops, vec![]).unwrap();
        assert_eq!(out.args, [15]);
    }

    #[test]
    fn node_api_ops() {
        let out = run_ops(
            vec![
                OpCode::PushNodeId,
                OpCode::AppendArg,
                OpCode::PushNow,
                OpCode::AppendArg,
                OpCode::Push(u32::from(Ipv4Addr::new(10, 0, 0, 9)) as i64),
                OpCode::RouteLookup,
                OpCode::AppendArg,
                OpCode::Push(u32::from(Ipv4Addr::new(10, 0, 0, 8)) as i64),
                OpCode::RouteLookup,
                OpCode::AppendArg,
            ],
            vec![],
        )
        .unwrap();
        assert_eq!(out.args, [7, 1_000, 3, -1]);
    }

    #[test]
    fn soft_state_cache_respects_ttl() {
        let env = ee();
        let program = Program::new(
            "put",
            vec![
                OpCode::Push(99),  // key
                OpCode::Push(123), // value
                OpCode::Push(500), // ttl
                OpCode::CachePut,
            ],
        );
        let capsule = Capsule::with_code(&program, vec![]);
        env.execute(&capsule.encode(), &FakeNode { id: 1, now: 1_000 })
            .unwrap();

        let get = Program::new(
            "get",
            vec![
                OpCode::Push(99),
                OpCode::CacheGet,
                OpCode::AppendArg,
                OpCode::AppendArg,
            ],
        );
        // Within TTL (expiry 1500).
        let c2 = Capsule::with_code(&get, vec![]);
        let out = env
            .execute(&c2.encode(), &FakeNode { id: 1, now: 1_400 })
            .unwrap();
        assert_eq!(out.args, [1, 123], "found flag then value");
        // Beyond TTL.
        let out = env
            .execute(&c2.encode(), &FakeNode { id: 1, now: 1_600 })
            .unwrap();
        assert_eq!(out.args, [0, 0]);
        // Sweep removes it.
        assert_eq!(env.sweep_soft_state(2_000), 1);
    }

    #[test]
    fn code_cache_serves_hash_only_capsules() {
        let env = ee();
        let program = Program::new(
            "fwd",
            vec![OpCode::Push(1), OpCode::AppendArg, OpCode::Halt],
        );
        // Unknown hash without code: miss.
        let bare = Capsule::by_hash(program.hash(), vec![]);
        assert!(matches!(
            env.execute(&bare.encode(), &node()),
            Err(EeError::CodeMiss { .. })
        ));
        // First capsule carries code; second can go by hash.
        let with = Capsule::with_code(&program, vec![]);
        env.execute(&with.encode(), &node()).unwrap();
        env.execute(&bare.encode(), &node()).unwrap();
        let stats = env.stats();
        assert_eq!(stats.code_loads, 1);
        assert_eq!(stats.code_hits, 1);
        assert_eq!(env.cached_programs(), 1);
    }

    #[test]
    fn forward_emits_hash_only_capsule() {
        let dst = Ipv4Addr::new(10, 0, 0, 9);
        let out = run_ops(
            vec![OpCode::Push(u32::from(dst) as i64), OpCode::Forward],
            vec![5, 6],
        )
        .unwrap();
        assert_eq!(out.emitted.len(), 1);
        let (target, payload) = &out.emitted[0];
        assert_eq!(*target, EmitTarget::Dst(dst));
        let re = Capsule::decode(payload).unwrap();
        assert!(
            re.code.is_none(),
            "re-emission relies on downstream code caches"
        );
        assert_eq!(re.args, [5, 6]);
    }

    #[test]
    fn capsule_codec_roundtrip() {
        let program = Program::new(
            "roundtrip",
            vec![
                OpCode::Push(-5),
                OpCode::Jnz(3),
                OpCode::Halt,
                OpCode::DeliverLocal,
            ],
        );
        let capsule = Capsule::with_code(&program, vec![1, -2, 3]);
        let decoded = Capsule::decode(&capsule.encode()).unwrap();
        assert_eq!(decoded, capsule);
        assert_eq!(decoded.code.unwrap().name(), "roundtrip");

        assert!(matches!(Capsule::decode(b"junk"), Err(EeError::NotActive)));
        let mut truncated = Capsule::by_hash(7, vec![1]).encode();
        truncated.pop();
        assert!(Capsule::decode(&truncated).is_err());
    }

    #[test]
    fn program_hash_is_content_addressed() {
        let a = Program::new("a", vec![OpCode::Push(1), OpCode::Halt]);
        let b = Program::new("b", vec![OpCode::Push(1), OpCode::Halt]);
        let c = Program::new("c", vec![OpCode::Push(2), OpCode::Halt]);
        assert_eq!(a.hash(), b.hash(), "name does not affect identity");
        assert_ne!(a.hash(), c.hash());
    }

    #[test]
    fn cache_full_is_reported() {
        let env = ExecutionEnv::new(EeBudget {
            max_cache_entries: 1,
            ..EeBudget::default()
        });
        let put = |key: i64| {
            Program::new(
                "p",
                vec![
                    OpCode::Push(key),
                    OpCode::Push(0),
                    OpCode::Push(10_000),
                    OpCode::CachePut,
                ],
            )
        };
        let c1 = Capsule::with_code(&put(1), vec![]);
        env.execute(&c1.encode(), &node()).unwrap();
        let c2 = Capsule::with_code(&put(2), vec![]);
        assert!(matches!(
            env.execute(&c2.encode(), &node()),
            Err(EeError::CacheFull)
        ));
        // Overwriting the same key is allowed even at capacity.
        let c3 = Capsule::with_code(&put(1), vec![]);
        env.execute(&c3.encode(), &node()).unwrap();
    }
}
