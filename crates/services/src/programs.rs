//! Assembled capsule programs: the application-level workloads the
//! paper's stratum 3 motivates (per-flow, application-specific packet
//! processing).
//!
//! The [`Assembler`] provides labels and jump fix-ups over
//! [`OpCode`]; the canned programs are the classic
//! active-networking demos: **active ping** (capsule bounces at the
//! destination), **path collector** (traceroute-in-one-packet), and a
//! **multicast duplicator** (one capsule fans out to many receivers).
//!
//! Convention used by every program here: a node's
//! [`NodeInfo::node_id`](crate::ee::NodeInfo::node_id) is the `u32` form
//! of its IPv4 address, so capsules can compare "where am I" against
//! address arguments.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use crate::ee::{EeError, OpCode, Program};

/// A two-pass assembler with named labels.
///
/// ```
/// use netkit_services::ee::OpCode;
/// use netkit_services::programs::Assembler;
///
/// let mut asm = Assembler::new("skip");
/// asm.op(OpCode::Push(1));
/// asm.jnz("end");
/// asm.op(OpCode::Push(99)); // skipped
/// asm.label("end");
/// asm.op(OpCode::Halt);
/// let program = asm.assemble()?;
/// assert_eq!(program.code().len(), 4);
/// # Ok::<(), netkit_services::ee::EeError>(())
/// ```
#[derive(Debug)]
pub struct Assembler {
    name: String,
    code: Vec<OpCode>,
    labels: HashMap<String, u32>,
    fixups: Vec<(usize, String, FixupKind)>,
}

#[derive(Debug, Clone, Copy)]
enum FixupKind {
    Jmp,
    Jz,
    Jnz,
}

impl Assembler {
    /// Starts a program named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            code: Vec::new(),
            labels: HashMap::new(),
            fixups: Vec::new(),
        }
    }

    /// Appends a literal instruction.
    pub fn op(&mut self, op: OpCode) -> &mut Self {
        self.code.push(op);
        self
    }

    /// Appends several literal instructions.
    pub fn ops(&mut self, ops: &[OpCode]) -> &mut Self {
        self.code.extend_from_slice(ops);
        self
    }

    /// Defines `label` at the current position.
    ///
    /// # Panics
    ///
    /// Panics on duplicate labels (an assembly bug, not an input error).
    pub fn label(&mut self, label: impl Into<String>) -> &mut Self {
        let label = label.into();
        let prev = self.labels.insert(label.clone(), self.code.len() as u32);
        assert!(prev.is_none(), "duplicate label `{label}`");
        self
    }

    /// Appends an unconditional jump to `label`.
    pub fn jmp(&mut self, label: impl Into<String>) -> &mut Self {
        self.fixups
            .push((self.code.len(), label.into(), FixupKind::Jmp));
        self.code.push(OpCode::Jmp(u32::MAX));
        self
    }

    /// Appends a jump-if-zero to `label`.
    pub fn jz(&mut self, label: impl Into<String>) -> &mut Self {
        self.fixups
            .push((self.code.len(), label.into(), FixupKind::Jz));
        self.code.push(OpCode::Jz(u32::MAX));
        self
    }

    /// Appends a jump-if-non-zero to `label`.
    pub fn jnz(&mut self, label: impl Into<String>) -> &mut Self {
        self.fixups
            .push((self.code.len(), label.into(), FixupKind::Jnz));
        self.code.push(OpCode::Jnz(u32::MAX));
        self
    }

    /// Resolves labels and produces the program.
    ///
    /// # Errors
    ///
    /// Returns [`EeError::BadJump`] if a jump references an undefined
    /// label.
    pub fn assemble(&self) -> Result<Program, EeError> {
        let mut code = self.code.clone();
        for (at, label, kind) in &self.fixups {
            let Some(&target) = self.labels.get(label) else {
                return Err(EeError::BadJump { target: *at as u32 });
            };
            code[*at] = match kind {
                FixupKind::Jmp => OpCode::Jmp(target),
                FixupKind::Jz => OpCode::Jz(target),
                FixupKind::Jnz => OpCode::Jnz(target),
            };
        }
        Ok(Program::new(self.name.clone(), code))
    }
}

/// Argument layout of [`active_ping`] capsules.
pub mod ping_args {
    /// Destination address (u32).
    pub const DST: u8 = 0;
    /// Origin address (u32).
    pub const ORIGIN: u8 = 1;
    /// 0 = outbound, 1 = returning.
    pub const PHASE: u8 = 2;
    /// Departure timestamp (stamped by the origin's EE clock).
    pub const SENT_AT: u8 = 3;
}

/// **Active ping**: the capsule travels to `DST`, flips its phase, comes
/// back to `ORIGIN`, appends the measured round-trip (now − `SENT_AT`),
/// and delivers locally.
pub fn active_ping() -> Program {
    let mut asm = Assembler::new("active-ping");
    // if phase != 0 goto returning
    asm.op(OpCode::PushArg(ping_args::PHASE));
    asm.jnz("returning");
    // outbound: at destination?
    asm.op(OpCode::PushNodeId);
    asm.op(OpCode::PushArg(ping_args::DST));
    asm.op(OpCode::Eq);
    asm.jnz("bounce");
    // keep going towards DST
    asm.op(OpCode::PushArg(ping_args::DST));
    asm.op(OpCode::Forward);
    asm.op(OpCode::Halt);
    // bounce: phase <- 1, forward home
    asm.label("bounce");
    asm.op(OpCode::Push(1));
    asm.op(OpCode::SetArg(ping_args::PHASE));
    asm.op(OpCode::PushArg(ping_args::ORIGIN));
    asm.op(OpCode::Forward);
    asm.op(OpCode::Halt);
    // returning: home yet?
    asm.label("returning");
    asm.op(OpCode::PushNodeId);
    asm.op(OpCode::PushArg(ping_args::ORIGIN));
    asm.op(OpCode::Eq);
    asm.jnz("arrived");
    asm.op(OpCode::PushArg(ping_args::ORIGIN));
    asm.op(OpCode::Forward);
    asm.op(OpCode::Halt);
    // arrived: rtt = now - sent_at
    asm.label("arrived");
    asm.op(OpCode::PushNow);
    asm.op(OpCode::PushArg(ping_args::SENT_AT));
    asm.op(OpCode::Sub);
    asm.op(OpCode::AppendArg);
    asm.op(OpCode::DeliverLocal);
    asm.assemble().expect("static program assembles")
}

/// Builds the initial argument vector for [`active_ping`].
pub fn ping_capsule_args(dst: Ipv4Addr, origin: Ipv4Addr, sent_at_ns: u64) -> Vec<i64> {
    vec![
        u32::from(dst) as i64,
        u32::from(origin) as i64,
        0,
        sent_at_ns as i64,
    ]
}

/// Argument layout of [`path_collector`] capsules.
pub mod path_args {
    /// Destination address (u32).
    pub const DST: u8 = 0;
    /// Node ids are appended from index 1 onwards.
    pub const FIRST_HOP: u8 = 1;
}

/// **Path collector**: every node appends its id; the capsule delivers
/// the accumulated path at the destination (a one-packet traceroute).
pub fn path_collector() -> Program {
    let mut asm = Assembler::new("path-collector");
    asm.op(OpCode::PushNodeId);
    asm.op(OpCode::AppendArg);
    asm.op(OpCode::PushNodeId);
    asm.op(OpCode::PushArg(path_args::DST));
    asm.op(OpCode::Eq);
    asm.jnz("deliver");
    asm.op(OpCode::PushArg(path_args::DST));
    asm.op(OpCode::Forward);
    asm.op(OpCode::Halt);
    asm.label("deliver");
    asm.op(OpCode::DeliverLocal);
    asm.assemble().expect("static program assembles")
}

/// Argument layout of [`multicast_duplicator`] capsules.
pub mod mcast_args {
    /// 0 at the fan-out point, 1 in per-receiver copies.
    pub const PHASE: u8 = 0;
    /// In phase 1, the copy's own destination.
    pub const TARGET: u8 = 1;
    /// In phase 0, receiver addresses from index 1 onwards.
    pub const FIRST_RECEIVER: u8 = 1;
}

/// **Multicast duplicator**: at the injection node the capsule clones
/// itself once per receiver address in its argument list; each clone then
/// forwards hop-by-hop to its own receiver and delivers there.
///
/// This is the paper's "duplicating relay" scenario: the fan-out point
/// runs *in the network*, not at the sender.
pub fn multicast_duplicator() -> Program {
    let mut asm = Assembler::new("mcast-duplicator");
    asm.op(OpCode::PushArg(mcast_args::PHASE));
    asm.jnz("unicast");
    // Fan-out: loop over receivers (args[1..]).
    // local0 = index
    asm.op(OpCode::Push(1));
    asm.op(OpCode::Store(0));
    asm.label("loop");
    asm.op(OpCode::Load(0));
    asm.op(OpCode::ArgCount);
    asm.op(OpCode::Lt);
    asm.jz("done");
    // Rewrite args into the per-receiver shape *for the clone*:
    // phase=1, target = args[local0]. We set TARGET before Forward so the
    // clone carries it; then restore phase for the next iteration.
    asm.op(OpCode::Push(1));
    asm.op(OpCode::SetArg(mcast_args::PHASE));
    // fetch receiver address args[i] via a small indexed-read loop is not
    // supported; instead receivers are read positionally below.
    asm.op(OpCode::Load(0));
    asm.op(OpCode::Push(1));
    asm.op(OpCode::Eq);
    asm.jz("second");
    asm.op(OpCode::PushArg(1));
    asm.jmp("emit");
    asm.label("second");
    asm.op(OpCode::Load(0));
    asm.op(OpCode::Push(2));
    asm.op(OpCode::Eq);
    asm.jz("third");
    asm.op(OpCode::PushArg(2));
    asm.jmp("emit");
    asm.label("third");
    asm.op(OpCode::PushArg(3));
    asm.label("emit");
    asm.op(OpCode::Dup);
    asm.op(OpCode::SetArg(mcast_args::TARGET));
    asm.op(OpCode::Forward);
    // restore phase 0 and advance
    asm.op(OpCode::Push(0));
    asm.op(OpCode::SetArg(mcast_args::PHASE));
    asm.op(OpCode::Load(0));
    asm.op(OpCode::Push(1));
    asm.op(OpCode::Add);
    asm.op(OpCode::Store(0));
    asm.jmp("loop");
    asm.label("done");
    asm.op(OpCode::Halt);
    // Unicast phase: forward to TARGET, deliver on arrival.
    asm.label("unicast");
    asm.op(OpCode::PushNodeId);
    asm.op(OpCode::PushArg(mcast_args::TARGET));
    asm.op(OpCode::Eq);
    asm.jnz("arrived");
    asm.op(OpCode::PushArg(mcast_args::TARGET));
    asm.op(OpCode::Forward);
    asm.op(OpCode::Halt);
    asm.label("arrived");
    asm.op(OpCode::DeliverLocal);
    asm.assemble().expect("static program assembles")
}

/// Builds phase-0 arguments for [`multicast_duplicator`] (1–3 receivers).
///
/// # Panics
///
/// Panics if `receivers` is empty or has more than 3 entries (the
/// positional fan-out above unrolls at most three).
pub fn mcast_capsule_args(receivers: &[Ipv4Addr]) -> Vec<i64> {
    assert!(
        (1..=3).contains(&receivers.len()),
        "the unrolled duplicator supports 1–3 receivers"
    );
    let mut args = vec![0i64];
    args.extend(receivers.iter().map(|r| u32::from(*r) as i64));
    args
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ee::{Capsule, EeBudget, EmitTarget, ExecutionEnv, NodeInfo, Outcome};

    /// A line of nodes addressed 10.0.0.1 … 10.0.0.n; capsules emitted
    /// towards an address hop one node closer per execution.
    struct LineNet {
        n: u8,
        envs: Vec<ExecutionEnv>,
    }

    struct LineNode {
        addr: Ipv4Addr,
    }
    impl NodeInfo for LineNode {
        fn node_id(&self) -> u32 {
            u32::from(self.addr)
        }
        fn now_ns(&self) -> u64 {
            5_000
        }
        fn route_lookup(&self, _dst: Ipv4Addr) -> Option<u16> {
            Some(0)
        }
    }

    impl LineNet {
        fn new(n: u8) -> Self {
            Self {
                n,
                envs: (0..n)
                    .map(|_| ExecutionEnv::new(EeBudget::default()))
                    .collect(),
            }
        }

        fn addr(i: u8) -> Ipv4Addr {
            Ipv4Addr::new(10, 0, 0, i + 1)
        }

        fn index_of(addr: Ipv4Addr) -> u8 {
            addr.octets()[3] - 1
        }

        /// Runs a capsule injected at node `at`; returns deliveries as
        /// `(node index, final args)`.
        fn run(&self, at: u8, payload: Vec<u8>) -> Vec<(u8, Vec<i64>)> {
            let mut work = vec![(at, payload)];
            let mut delivered = Vec::new();
            let mut steps = 0;
            while let Some((here, payload)) = work.pop() {
                steps += 1;
                assert!(steps < 1000, "network walk did not converge");
                let node = LineNode {
                    addr: Self::addr(here),
                };
                let out: Outcome = self.envs[here as usize]
                    .execute(&payload, &node)
                    .unwrap_or_else(|e| panic!("node {here}: {e}"));
                if out.delivered {
                    delivered.push((here, out.args.clone()));
                }
                for (target, bytes) in out.emitted {
                    let EmitTarget::Dst(dst) = target else {
                        panic!("line net only routes by address")
                    };
                    let want = Self::index_of(dst);
                    assert!(want < self.n, "destination outside the line");
                    let next = match want.cmp(&here) {
                        std::cmp::Ordering::Greater => here + 1,
                        std::cmp::Ordering::Less => here - 1,
                        std::cmp::Ordering::Equal => here,
                    };
                    work.push((next, bytes));
                }
            }
            delivered.sort();
            delivered
        }

        /// Pre-loads `program` everywhere (out-of-band distribution).
        fn install_everywhere(&self, program: &Program) {
            for env in &self.envs {
                env.install(program.clone());
            }
        }
    }

    #[test]
    fn assembler_resolves_labels() {
        let mut asm = Assembler::new("t");
        asm.op(OpCode::Push(0));
        asm.jz("end");
        asm.op(OpCode::Push(42));
        asm.op(OpCode::AppendArg);
        asm.label("end");
        asm.op(OpCode::Halt);
        let p = asm.assemble().unwrap();
        assert_eq!(p.code()[1], OpCode::Jz(4));
    }

    #[test]
    fn assembler_rejects_unknown_labels() {
        let mut asm = Assembler::new("t");
        asm.jmp("nowhere");
        assert!(matches!(asm.assemble(), Err(EeError::BadJump { .. })));
    }

    #[test]
    #[should_panic(expected = "duplicate label")]
    fn assembler_rejects_duplicate_labels() {
        let mut asm = Assembler::new("t");
        asm.label("a");
        asm.label("a");
    }

    #[test]
    fn active_ping_round_trips_a_line() {
        let net = LineNet::new(4);
        let program = active_ping();
        net.install_everywhere(&program);
        let origin = LineNet::addr(0);
        let dst = LineNet::addr(3);
        let capsule = Capsule::by_hash(program.hash(), ping_capsule_args(dst, origin, 1_000));
        let delivered = net.run(0, capsule.encode());
        assert_eq!(delivered.len(), 1);
        let (node, args) = &delivered[0];
        assert_eq!(*node, 0, "ping returns to its origin");
        assert_eq!(args[ping_args::PHASE as usize], 1);
        // rtt appended: now (5000) - sent (1000)
        assert_eq!(*args.last().unwrap(), 4_000);
    }

    #[test]
    fn path_collector_records_every_hop() {
        let net = LineNet::new(5);
        let program = path_collector();
        net.install_everywhere(&program);
        let dst = LineNet::addr(4);
        let capsule = Capsule::by_hash(program.hash(), vec![u32::from(dst) as i64]);
        let delivered = net.run(0, capsule.encode());
        assert_eq!(delivered.len(), 1);
        let (_, args) = &delivered[0];
        let hops: Vec<u32> = args[1..].iter().map(|a| *a as u32).collect();
        let expected: Vec<u32> = (0..5).map(|i| u32::from(LineNet::addr(i))).collect();
        assert_eq!(
            hops, expected,
            "all five nodes stamped the capsule in order"
        );
    }

    #[test]
    fn multicast_duplicates_to_each_receiver() {
        let net = LineNet::new(6);
        let program = multicast_duplicator();
        net.install_everywhere(&program);
        let receivers = [LineNet::addr(2), LineNet::addr(4), LineNet::addr(5)];
        let capsule = Capsule::by_hash(program.hash(), mcast_capsule_args(&receivers));
        let delivered = net.run(0, capsule.encode());
        let mut nodes: Vec<u8> = delivered.iter().map(|(n, _)| *n).collect();
        nodes.sort_unstable();
        assert_eq!(nodes, [2, 4, 5]);
        for (node, args) in &delivered {
            assert_eq!(args[mcast_args::PHASE as usize], 1);
            assert_eq!(
                args[mcast_args::TARGET as usize] as u32,
                u32::from(LineNet::addr(*node))
            );
        }
    }

    #[test]
    fn programs_fit_default_budget() {
        // The walk above already proves termination; sanity-check sizes.
        assert!(active_ping().code().len() < 40);
        assert!(path_collector().code().len() < 20);
        assert!(multicast_duplicator().code().len() < 60);
    }
}
