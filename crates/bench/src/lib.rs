//! Shared rigs for the experiment benches (see DESIGN.md §4 for the
//! experiment index E1–E9 and EXPERIMENTS.md for results).
//!
//! Everything here builds *measurable* configurations: component
//! pipelines of parametric length, equivalent Click configs, routing
//! tables of parametric size, and canned packets.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use opencom::capsule::Capsule;
use opencom::cf::Principal;
use opencom::error::Result;
use opencom::ident::ComponentId;
use opencom::meta::resources::ResourceManager;
use opencom::runtime::Runtime;

use netkit_kernel::shard::ShardSpec;
use netkit_packet::packet::{Packet, PacketBuilder};
use netkit_router::api::{register_packet_interfaces, IPacketPush, IPACKET_PUSH};
use netkit_router::cf::RouterCf;
use netkit_router::elements::{Counter, Discard};
use netkit_router::routing::{RouteEntry, RoutingTable};
use netkit_router::shard::{ShardGraph, ShardedPipeline};

/// A ready-to-push component pipeline and the handles the benches need.
pub struct PipelineRig {
    /// The hosting capsule (keep alive; also the footprint probe).
    pub capsule: Arc<Capsule>,
    /// The CF governing the pipeline.
    pub cf: RouterCf,
    /// Push entry point (first element).
    pub entry: Arc<dyn IPacketPush>,
    /// Component id of the first element (for interception/replace).
    pub head: ComponentId,
    /// Component ids of every stage, in order.
    pub stages: Vec<ComponentId>,
    /// The terminal sink.
    pub sink: Arc<Discard>,
}

impl std::fmt::Debug for PipelineRig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PipelineRig({} stages)", self.stages.len())
    }
}

/// Builds a NETKIT pipeline of `n` pass-through stages (Counter
/// elements) ending in a Discard, all admitted and bound through the
/// Router CF.
///
/// # Errors
///
/// Propagates capsule/CF failures (none expected in a bench rig).
pub fn netkit_chain(n: usize) -> Result<PipelineRig> {
    let rt = Runtime::new();
    register_packet_interfaces(&rt);
    let capsule = Capsule::new("bench", &rt);
    let cf = RouterCf::new("bench-router", Arc::clone(&capsule));
    let sys = Principal::system();

    let mut stages = Vec::with_capacity(n);
    for _ in 0..n {
        let id = capsule.adopt(Counter::new())?;
        cf.plug(&sys, id)?;
        stages.push(id);
    }
    let sink = Discard::new();
    let sink_id = capsule.adopt(sink.clone())?;
    cf.plug(&sys, sink_id)?;

    for w in stages.windows(2) {
        cf.bind(&sys, w[0], "out", "", w[1], IPACKET_PUSH)?;
    }
    if let Some(&last) = stages.last() {
        cf.bind(&sys, last, "out", "", sink_id, IPACKET_PUSH)?;
    }

    let head = stages.first().copied().unwrap_or(sink_id);
    let entry: Arc<dyn IPacketPush> = capsule
        .query_interface(head, IPACKET_PUSH)?
        .downcast()
        .expect("counter exports IPacketPush");
    Ok(PipelineRig {
        capsule,
        cf,
        entry,
        head,
        stages,
        sink,
    })
}

static SHARD_RIG_IDS: AtomicU64 = AtomicU64::new(0);

/// Builds a [`ShardedPipeline`] whose every shard replicates the
/// [`netkit_chain`] graph (`n` Counter stages into a Discard), plus the
/// per-shard sinks for verification. Task names are auto-uniqued so many
/// rigs can share a process.
///
/// # Errors
///
/// Propagates capsule/CF failures (none expected in a bench rig).
pub fn netkit_sharded_chain(
    n: usize,
    spec: ShardSpec,
) -> Result<(ShardedPipeline, Vec<Arc<Discard>>)> {
    let rm = Arc::new(ResourceManager::new());
    let name = format!(
        "bench-sharded-{}",
        SHARD_RIG_IDS.fetch_add(1, Ordering::Relaxed)
    );
    let sinks = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let sinks_slot = Arc::clone(&sinks);
    let pipe = ShardedPipeline::build(&name, spec, rm, move |_shard| {
        let rig = netkit_chain(n)?;
        sinks_slot.lock().push(Arc::clone(&rig.sink));
        let entry = Arc::clone(&rig.entry);
        let components = rig.stages.clone();
        // The shard graph owns the capsule; the rig's other handles drop.
        Ok(ShardGraph::new(Arc::clone(&rig.capsule), entry).with_components(components))
    })?;
    let sinks = std::mem::take(&mut *sinks.lock());
    Ok((pipe, sinks))
}

/// The equivalent Click configuration: `n` Counter stages into a
/// Discard.
pub fn click_chain_config(n: usize) -> String {
    use std::fmt::Write as _;
    let mut cfg = String::new();
    for i in 0..n {
        let _ = writeln!(cfg, "c{i} :: Counter;");
    }
    let _ = writeln!(cfg, "sink :: Discard;");
    for i in 0..n.saturating_sub(1) {
        let _ = writeln!(cfg, "c{i} -> c{};", i + 1);
    }
    if n > 0 {
        let _ = writeln!(cfg, "c{} -> sink;", n - 1);
    }
    cfg
}

/// A routing table with `n` /24 prefixes spread over 10/8, cycling over
/// `ports` egress ports. Deterministic.
pub fn routing_table(n: usize, ports: u16) -> RoutingTable {
    let mut table = RoutingTable::new();
    for i in 0..n {
        let b = (i >> 8) as u8;
        let c = (i & 0xff) as u8;
        table.add(
            &format!("10.{b}.{c}.0/24"),
            RouteEntry {
                egress: (i as u16) % ports,
                next_hop: None,
            },
        );
    }
    table
}

/// A canned 64-byte-payload UDP packet to a destination inside
/// [`routing_table`]'s space.
pub fn test_packet() -> Packet {
    PacketBuilder::udp_v4("192.0.2.1", "10.0.7.9", 5000, 5001)
        .payload_len(64)
        .build()
}

/// A canned packet with parametric payload size.
pub fn test_packet_sized(payload: usize) -> Packet {
    PacketBuilder::udp_v4("192.0.2.1", "10.0.7.9", 5000, 5001)
        .payload_len(payload)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netkit_baselines::click::ClickRouter;

    #[test]
    fn netkit_chain_counts_through_all_stages() {
        let rig = netkit_chain(4).unwrap();
        rig.entry.push(test_packet()).unwrap();
        assert_eq!(rig.sink.count(), 1);
    }

    #[test]
    fn click_chain_config_compiles_and_runs() {
        let router = ClickRouter::compile(&click_chain_config(5)).unwrap();
        router.push("c0", test_packet());
        assert_eq!(router.count("sink"), Some(1));
        assert_eq!(router.element_count(), 6);
    }

    #[test]
    fn routing_table_spreads_ports() {
        let table = routing_table(512, 4);
        let hit = table.lookup("10.0.7.9".parse().unwrap()).unwrap();
        assert!(hit.egress < 4);
        assert_eq!(table.len().0, 512);
    }
}
