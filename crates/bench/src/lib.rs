//! Shared rigs for the experiment benches (see DESIGN.md §4 for the
//! experiment index E1–E9 and EXPERIMENTS.md for results).
//!
//! Everything here builds *measurable* configurations: component
//! pipelines of parametric length, equivalent Click configs, routing
//! tables of parametric size, and canned packets.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use opencom::capsule::Capsule;
use opencom::cf::Principal;
use opencom::error::Result;
use opencom::ident::ComponentId;
use opencom::meta::resources::ResourceManager;
use opencom::runtime::Runtime;

use netkit_kernel::shard::ShardSpec;
use netkit_packet::packet::{Packet, PacketBuilder};
use netkit_router::api::{register_packet_interfaces, IPacketPush, IPACKET_PUSH};
use netkit_router::cf::RouterCf;
use netkit_router::elements::{Counter, Discard};
use netkit_router::routing::{RouteEntry, RoutingTable};
use netkit_router::shard::{ShardGraph, ShardedPipeline};

/// A ready-to-push component pipeline and the handles the benches need.
pub struct PipelineRig {
    /// The hosting capsule (keep alive; also the footprint probe).
    pub capsule: Arc<Capsule>,
    /// The CF governing the pipeline.
    pub cf: RouterCf,
    /// Push entry point (first element).
    pub entry: Arc<dyn IPacketPush>,
    /// Component id of the first element (for interception/replace).
    pub head: ComponentId,
    /// Component ids of every stage, in order.
    pub stages: Vec<ComponentId>,
    /// The terminal sink.
    pub sink: Arc<Discard>,
}

impl std::fmt::Debug for PipelineRig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PipelineRig({} stages)", self.stages.len())
    }
}

/// Builds a NETKIT pipeline of `n` pass-through stages (Counter
/// elements) ending in a Discard, all admitted and bound through the
/// Router CF.
///
/// # Errors
///
/// Propagates capsule/CF failures (none expected in a bench rig).
pub fn netkit_chain(n: usize) -> Result<PipelineRig> {
    let rt = Runtime::new();
    register_packet_interfaces(&rt);
    let capsule = Capsule::new("bench", &rt);
    let cf = RouterCf::new("bench-router", Arc::clone(&capsule));
    let sys = Principal::system();

    let mut stages = Vec::with_capacity(n);
    for _ in 0..n {
        let id = capsule.adopt(Counter::new())?;
        cf.plug(&sys, id)?;
        stages.push(id);
    }
    let sink = Discard::new();
    let sink_id = capsule.adopt(sink.clone())?;
    cf.plug(&sys, sink_id)?;

    for w in stages.windows(2) {
        cf.bind(&sys, w[0], "out", "", w[1], IPACKET_PUSH)?;
    }
    if let Some(&last) = stages.last() {
        cf.bind(&sys, last, "out", "", sink_id, IPACKET_PUSH)?;
    }

    let head = stages.first().copied().unwrap_or(sink_id);
    let entry: Arc<dyn IPacketPush> = capsule
        .query_interface(head, IPACKET_PUSH)?
        .downcast()
        .expect("counter exports IPacketPush");
    Ok(PipelineRig {
        capsule,
        cf,
        entry,
        head,
        stages,
        sink,
    })
}

static SHARD_RIG_IDS: AtomicU64 = AtomicU64::new(0);

/// Builds a [`ShardedPipeline`] whose every shard replicates the
/// [`netkit_chain`] graph (`n` Counter stages into a Discard), plus the
/// per-shard sinks for verification. Task names are auto-uniqued so many
/// rigs can share a process.
///
/// # Errors
///
/// Propagates capsule/CF failures (none expected in a bench rig).
pub fn netkit_sharded_chain(
    n: usize,
    spec: ShardSpec,
) -> Result<(ShardedPipeline, Vec<Arc<Discard>>)> {
    let rm = Arc::new(ResourceManager::new());
    let name = format!(
        "bench-sharded-{}",
        SHARD_RIG_IDS.fetch_add(1, Ordering::Relaxed)
    );
    let sinks = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let sinks_slot = Arc::clone(&sinks);
    let pipe = ShardedPipeline::build(&name, spec, rm, move |_shard| {
        let rig = netkit_chain(n)?;
        sinks_slot.lock().push(Arc::clone(&rig.sink));
        let entry = Arc::clone(&rig.entry);
        let components = rig.stages.clone();
        // The shard graph owns the capsule; the rig's other handles drop.
        Ok(ShardGraph::new(Arc::clone(&rig.capsule), entry).with_components(components))
    })?;
    let sinks = std::mem::take(&mut *sinks.lock());
    Ok((pipe, sinks))
}

/// The equivalent Click configuration: `n` Counter stages into a
/// Discard.
pub fn click_chain_config(n: usize) -> String {
    use std::fmt::Write as _;
    let mut cfg = String::new();
    for i in 0..n {
        let _ = writeln!(cfg, "c{i} :: Counter;");
    }
    let _ = writeln!(cfg, "sink :: Discard;");
    for i in 0..n.saturating_sub(1) {
        let _ = writeln!(cfg, "c{i} -> c{};", i + 1);
    }
    if n > 0 {
        let _ = writeln!(cfg, "c{} -> sink;", n - 1);
    }
    cfg
}

/// A routing table with `n` /24 prefixes spread over 10/8, cycling over
/// `ports` egress ports. Deterministic.
pub fn routing_table(n: usize, ports: u16) -> RoutingTable {
    let mut table = RoutingTable::new();
    for i in 0..n {
        let b = (i >> 8) as u8;
        let c = (i & 0xff) as u8;
        table.add(
            &format!("10.{b}.{c}.0/24"),
            RouteEntry {
                egress: (i as u16) % ports,
                next_hop: None,
            },
        );
    }
    table
}

/// The shared stateful-edge topology (guard → conntrack → NAT44 →
/// egress) compiled from the declarative description in
/// [`netkit_services::edge`], with a NAT pool of `pool` ports. One
/// worker, deterministic — the component contender for the
/// stateful-edge like-for-like series.
///
/// # Errors
///
/// Propagates description-validation failures (none expected for the
/// canonical profile).
pub fn netkit_stateful_edge(
    pool: u16,
) -> Result<(
    netkit_router::shard::SoloPipeline,
    netkit_router::desc::DescBinding,
)> {
    let profile = netkit_services::edge::EdgeProfile {
        nat_blocks: 1,
        nat_block_size: pool,
        ..netkit_services::edge::EdgeProfile::default()
    };
    netkit_services::edge::build_stateful_edge(&profile, 1, Arc::new(ResourceManager::new()))
}

/// The equivalent Click configuration for the stateful edge: the same
/// chain and knobs as [`netkit_stateful_edge`], in the baseline's
/// config language (`ConnTracker`/`Guard`/`Nat44` classes).
pub fn click_stateful_edge_config(pool: usize) -> String {
    format!(
        "guard :: Guard(1048576);\n\
         ct :: ConnTracker(4096);\n\
         nat :: Nat44(192.0.2.1, 10000, {pool});\n\
         sink :: Discard;\n\
         guard -> ct -> nat -> sink;\n"
    )
}

/// The monolithic stateful edge with the same knobs as
/// [`netkit_stateful_edge`] — the straight-line lower bound.
pub fn monolithic_stateful_edge(pool: usize) -> netkit_baselines::MonolithicStatefulEdge {
    netkit_baselines::MonolithicStatefulEdge::new(
        1 << 20,
        4_096,
        std::net::Ipv4Addr::new(192, 0, 2, 1),
        10_000,
        pool,
    )
}

/// A canned UDP packet for flow number `flow` headed through the
/// stateful edge (distinct flows get distinct NAT bindings).
pub fn edge_packet(flow: u16) -> Packet {
    PacketBuilder::udp_v4("10.0.0.5", "203.0.113.9", flow, 443)
        .payload_len(64)
        .build()
}

/// A canned 64-byte-payload UDP packet to a destination inside
/// [`routing_table`]'s space.
pub fn test_packet() -> Packet {
    PacketBuilder::udp_v4("192.0.2.1", "10.0.7.9", 5000, 5001)
        .payload_len(64)
        .build()
}

/// A canned packet with parametric payload size.
pub fn test_packet_sized(payload: usize) -> Packet {
    PacketBuilder::udp_v4("192.0.2.1", "10.0.7.9", 5000, 5001)
        .payload_len(payload)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netkit_baselines::click::ClickRouter;

    #[test]
    fn netkit_chain_counts_through_all_stages() {
        let rig = netkit_chain(4).unwrap();
        rig.entry.push(test_packet()).unwrap();
        assert_eq!(rig.sink.count(), 1);
    }

    #[test]
    fn click_chain_config_compiles_and_runs() {
        let router = ClickRouter::compile(&click_chain_config(5)).unwrap();
        router.push("c0", test_packet());
        assert_eq!(router.count("sink"), Some(1));
        assert_eq!(router.element_count(), 6);
    }

    #[test]
    fn stateful_edge_contenders_agree_on_exhaustion() {
        // Six distinct flows through a four-port NAT pool: every
        // contender must deliver four and drop two — the like-for-like
        // contract behind the stateful-edge bench series.
        let flows: Vec<u16> = (5_001..=5_006).collect();

        let (mut pipe, _binding) = netkit_stateful_edge(4).unwrap();
        pipe.dispatch(flows.iter().map(|&f| edge_packet(f)).collect());
        assert_eq!((pipe.stats().accepted, pipe.stats().dropped), (4, 2));

        let click = ClickRouter::compile(&click_stateful_edge_config(4)).unwrap();
        for &f in &flows {
            click.push("guard", edge_packet(f));
        }
        assert_eq!(click.count("sink"), Some(4));
        assert_eq!(click.stateful_drops("nat"), Some(2));

        let mono = monolithic_stateful_edge(4);
        let outcomes: Vec<bool> = flows
            .iter()
            .map(|&f| mono.process(&mut edge_packet(f)).is_ok())
            .collect();
        assert_eq!(outcomes.iter().filter(|ok| **ok).count(), 4);
        assert_eq!(mono.ports_in_use(), 4);
    }

    #[test]
    fn routing_table_spreads_ports() {
        let table = routing_table(512, 4);
        let hit = table.lookup("10.0.7.9".parse().unwrap()).unwrap();
        assert!(hit.egress < 4);
        assert_eq!(table.len().0, 512);
    }
}
