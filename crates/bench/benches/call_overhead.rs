//! **E1 — cross-component call overhead** (paper §5: "temporarily
//! bypassing vtables, using partial evaluation techniques, to reduce the
//! overhead of a cross-component call to that of a C function call").
//!
//! Series: the cost of moving one packet across one boundary, per
//! mechanism. The paper's claim is reproduced when `fused` ≈ `direct_fn`
//! while `receptacle` (the fully reconfigurable path) carries a visible
//! but bounded premium and `isolated_ipc` is orders above both.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use netkit_bench::{netkit_chain, test_packet};
use netkit_packet::packet::Packet;
use netkit_router::api::{IPacketPush, PushSkeleton, IPACKET_PUSH};
use netkit_router::elements::Discard;
use opencom::capsule::Capsule;
use opencom::runtime::Runtime;

/// The "C function" analogue: same work as Counter→Discard with static
/// calls the optimiser can see through.
fn direct_fn(count: &std::sync::atomic::AtomicU64, pkt: Packet) {
    count.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    std::hint::black_box(pkt);
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_call_overhead");
    let pkt = test_packet();

    // 1. direct static call.
    let count = std::sync::atomic::AtomicU64::new(0);
    group.bench_function("direct_fn", |b| {
        b.iter_batched(
            || pkt.clone(),
            |p| direct_fn(&count, p),
            BatchSize::SmallInput,
        )
    });

    // 2. one dynamic-dispatch call on a trait object (bare vtable).
    let sink: Arc<dyn IPacketPush> = Discard::new();
    group.bench_function("trait_object", |b| {
        b.iter_batched(
            || pkt.clone(),
            |p| sink.push(p).unwrap(),
            BatchSize::SmallInput,
        )
    });

    // 3. the reconfigurable path: Counter element → receptacle → Discard
    // (receptacle read-lock + vtable per hop).
    let rig = netkit_chain(1).expect("rig");
    group.bench_function("receptacle", |b| {
        b.iter_batched(
            || pkt.clone(),
            |p| rig.entry.push(p).unwrap(),
            BatchSize::SmallInput,
        )
    });

    // 4. the fused path: resolve the binding's raw target once
    // (`Capsule::fused_target` — the vtable-bypass / partial-evaluation
    // analogue) and call it directly, skipping receptacle and hooks.
    let rig_fused = netkit_chain(1).expect("rig");
    let binding = rig_fused.capsule.arch().binding_records()[0].id;
    let fused: Arc<dyn IPacketPush> = rig_fused
        .capsule
        .fused_target(binding)
        .unwrap()
        .downcast()
        .unwrap();
    group.bench_function("fused", |b| {
        b.iter_batched(
            || pkt.clone(),
            |p| fused.push(p).unwrap(),
            BatchSize::SmallInput,
        )
    });

    // 5. the same edge with one no-op interceptor spliced in.
    let rig2 = netkit_chain(1).expect("rig");
    let binding = rig2.capsule.arch().binding_records()[0].id;
    let chain = rig2.capsule.intercept(binding).unwrap();
    chain.add(opencom::interception::FnHook::noop("bench"));
    let entry2: Arc<dyn IPacketPush> = rig2
        .capsule
        .query_interface(rig2.head, IPACKET_PUSH)
        .unwrap()
        .downcast()
        .unwrap();
    group.bench_function("intercepted_1", |b| {
        b.iter_batched(
            || pkt.clone(),
            |p| entry2.push(p).unwrap(),
            BatchSize::SmallInput,
        )
    });

    // 6. out-of-capsule: marshalling proxy into an isolated host.
    let rt = Runtime::new();
    netkit_router::api::register_packet_interfaces(&rt);
    rt.isolation().register_skeleton(
        "bench.IsolatedSink",
        Box::new(|| PushSkeleton::new(Discard::new())),
    );
    let capsule = Capsule::new("iso", &rt);
    let iso = capsule
        .instantiate_isolated("bench.IsolatedSink", &[IPACKET_PUSH])
        .unwrap();
    let proxy: Arc<dyn IPacketPush> = capsule
        .query_interface(iso, IPACKET_PUSH)
        .unwrap()
        .downcast()
        .unwrap();
    group.bench_function("isolated_ipc", |b| {
        b.iter_batched(
            || pkt.clone(),
            |p| proxy.push(p).unwrap(),
            BatchSize::SmallInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
