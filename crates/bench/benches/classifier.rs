//! **E9a — classification micro-benchmark** (paper §3: the in-band
//! stratum is "a highly performance-critical area in which machine
//! instructions must be counted with care").
//!
//! Series: per-packet classification cost with rule-table sizes
//! {16, 256, 4096} for (a) the run-time-programmable `ClassifierEngine`
//! (linear scan, priority order) and (b) LPM route lookup over tables of
//! the same sizes (the trie path). Expected shape: linear-scan cost grows
//! with rules; trie lookup stays near-flat.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};

use netkit_bench::{routing_table, test_packet};
use netkit_router::api::{
    register_packet_interfaces, FilterPattern, FilterSpec, IClassifier, IPacketPush, IPACKET_PUSH,
};
use netkit_router::elements::{ClassifierEngine, Discard};
use opencom::capsule::Capsule;
use opencom::runtime::Runtime;

/// A classifier with `rules` installed, the last one matching the test
/// packet (worst-case scan).
fn classifier_with_rules(rules: usize) -> (Arc<ClassifierEngine>, Arc<Capsule>) {
    let rt = Runtime::new();
    register_packet_interfaces(&rt);
    let capsule = Capsule::new("cls", &rt);
    let classifier = ClassifierEngine::new();
    let cid = capsule.adopt(classifier.clone()).unwrap();
    let sink = Discard::new();
    let sid = capsule.adopt(sink).unwrap();
    capsule
        .bind(cid, "out", "match", sid, IPACKET_PUSH)
        .unwrap();
    let sink2 = Discard::new();
    let sid2 = capsule.adopt(sink2).unwrap();
    capsule
        .bind(cid, "out", "default", sid2, IPACKET_PUSH)
        .unwrap();

    // rules-1 non-matching filters (each on a distinct dst /32 that the
    // packet misses), then one catch-all.
    for i in 0..rules.saturating_sub(1) {
        let a = 32 + (i >> 8) as u8;
        let b = (i & 0xff) as u8;
        classifier
            .register_filter(FilterSpec::new(
                FilterPattern::any().dst(&format!("172.{a}.{b}.1"), 32),
                "match",
                (rules - i) as i32,
            ))
            .unwrap();
    }
    classifier
        .register_filter(FilterSpec::new(FilterPattern::any(), "match", 0))
        .unwrap();
    (classifier, capsule)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_classifier");
    let pkt = test_packet();

    for rules in [16usize, 256, 4096] {
        let (classifier, _capsule) = classifier_with_rules(rules);
        group.bench_with_input(BenchmarkId::new("linear_rules", rules), &rules, |b, _| {
            b.iter_batched(
                || pkt.clone(),
                |p| classifier.push(p).unwrap(),
                BatchSize::SmallInput,
            )
        });
    }

    // LPM route lookup at the same table sizes.
    for routes in [16usize, 256, 4096] {
        let table = routing_table(routes, 4);
        let dst: std::net::IpAddr = "10.0.7.9".parse().unwrap();
        group.bench_with_input(BenchmarkId::new("lpm_routes", routes), &routes, |b, _| {
            b.iter(|| std::hint::black_box(table.lookup(dst)))
        });
    }

    // Filter installation/removal cost (the management path).
    let (classifier, _capsule) = classifier_with_rules(256);
    group.bench_function("register_remove_filter", |b| {
        b.iter(|| {
            let id = classifier
                .register_filter(FilterSpec::new(FilterPattern::any().dscp(1), "match", 500))
                .unwrap();
            classifier.remove_filter(id).unwrap();
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
