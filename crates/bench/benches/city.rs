//! **E15 — city-scale scenario engine throughput** (see
//! `crates/bench/NOTES.md`).
//!
//! Three series price the deterministic simulation stack from the
//! inside out:
//!
//! * `solo_hop` — the raw cost of one packet-hop through a
//!   [`SoloPipeline`](netkit_router::shard::SoloPipeline) hosting the
//!   full stateful chain (conntrack → heavy-hitter guard → collector):
//!   RSS split, sketch metering, per-shard graph execution. This is
//!   the per-hop floor every simulated node pays; its inverse is the
//!   engine's ideal packet-hops/second on this host.
//! * `small_city` — one complete seeded dozen-node city
//!   ([`CityConfig::small`]): topology build, three traffic phases,
//!   autonomous per-node control loops, books closed. The end-to-end
//!   cost of the default test lane.
//! * `mid_city` — a 60-node city with the same phase structure, the
//!   shape between the default lane and the thousand-node CI soak.
//!   Wall-clock here extrapolates linearly in executed packet-hops to
//!   the full soak.
//!
//! Run with `NETKIT_BENCH_JSON=<abs path>/BENCH_city.json cargo bench
//! --bench city` for the machine-readable report. `meta/cpus` matters
//! more than usual: the whole engine is single-threaded by design
//! (determinism over parallelism), so these numbers do not improve
//! with cores — see the NOTES methodology for the 1-CPU caveats.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use netkit_kernel::shard::ShardSpec;
use netkit_packet::batch::PacketBatch;
use netkit_packet::packet::{Packet, PacketBuilder};
use netkit_packet::sketch::{FlowSketch, SketchConfig};
use netkit_router::api::{IPacketPush, IPACKET_PUSH};
use netkit_router::flow::{ConnTracker, Guard, GuardConfig};
use netkit_router::shard::{ShardGraph, SoloPipeline};
use netkit_sim::pipeline::{EgressCollector, PipelineNode};
use netkit_sim::scenario::{run_city, CityConfig};
use opencom::meta::resources::ResourceManager;

const BATCH: usize = 32;
const BATCHES_PER_ITER: usize = 64;

fn flow_packet(flow: u64) -> Packet {
    PacketBuilder::udp_v4("192.0.2.7", "10.0.3.1", 4000 + (flow % 512) as u16, 80)
        .payload_len(64)
        .build()
}

/// A two-shard solo pipeline with the city node's stateful chain.
fn solo_chain() -> (SoloPipeline, Vec<Arc<EgressCollector>>) {
    let rm = Arc::new(ResourceManager::new());
    let shards = 2;
    let sketches: Vec<Arc<FlowSketch>> = (0..shards)
        .map(|_| Arc::new(FlowSketch::new(SketchConfig::default())))
        .collect();
    let mut egress = Vec::new();
    let pipe = {
        let egress = &mut egress;
        let sketches = sketches.clone();
        SoloPipeline::build_with_sketches(
            "e15-solo",
            ShardSpec::new(shards),
            rm,
            sketches.clone(),
            move |shard| {
                let (capsule, _rt) = PipelineNode::shard_capsule();
                let tracker = ConnTracker::new();
                let guard = Guard::with_tracker(
                    Arc::clone(&sketches[shard]),
                    tracker.clone(),
                    GuardConfig::default(),
                );
                let collector = EgressCollector::new();
                let gid = capsule.adopt(guard.clone())?;
                let cid = capsule.adopt(collector.clone())?;
                capsule.bind_simple(gid, "out", cid, IPACKET_PUSH)?;
                egress.push(collector);
                let entry: Arc<dyn IPacketPush> = guard;
                Ok(ShardGraph::new(capsule, entry).with_components(vec![gid, cid]))
            },
        )
        .expect("solo pipeline builds")
    };
    (pipe, egress)
}

fn bench_solo_hop(c: &mut Criterion) {
    let mut group = c.benchmark_group("e15_city");
    group.throughput(Throughput::Elements((BATCH * BATCHES_PER_ITER) as u64));
    group.measurement_time(std::time::Duration::from_secs(1));

    let (mut pipe, egress) = solo_chain();
    let bursts: Vec<Vec<Packet>> = (0..BATCHES_PER_ITER)
        .map(|b| {
            (0..BATCH)
                .map(|i| flow_packet((b * BATCH + i) as u64))
                .collect()
        })
        .collect();
    group.bench_function("solo_hop", |b| {
        b.iter_batched(
            || {
                for e in &egress {
                    e.drain();
                }
                bursts
                    .iter()
                    .map(|pkts| PacketBatch::from_packets(pkts.clone()))
                    .collect::<Vec<_>>()
            },
            |batches| {
                for batch in batches {
                    criterion::black_box(pipe.dispatch(batch));
                }
            },
            BatchSize::SmallInput,
        )
    });
    assert!(pipe.stats().packets > 0, "the chain really executed");
    group.finish();
}

fn bench_cities(c: &mut Criterion) {
    let mut group = c.benchmark_group("e15_city");
    group.measurement_time(std::time::Duration::from_secs(2));

    group.bench_function("small_city", |b| {
        b.iter(|| criterion::black_box(run_city(&CityConfig::small(0xE15))))
    });

    let mut mid = CityConfig::small(0xE15);
    mid.nodes = 60;
    mid.source_stride = 2;
    mid.mice_fan = 128;
    group.bench_function("mid_city", |b| {
        b.iter(|| criterion::black_box(run_city(&mid)))
    });
    group.finish();
}

criterion_group!(benches, bench_solo_hop, bench_cities);
criterion_main!(benches);
