//! **E14 — guard overhead and the recovery cycle** (the PR's
//! acceptance experiment; see `crates/bench/NOTES.md`).
//!
//! Two questions, one series each:
//!
//! * What does the inline heavy-hitter [`Guard`] cost traffic that is
//!   *not* attacking? `e14_guard` drives the same 64 × 32-packet
//!   benign mix (64 mouse flows, every estimate far below threshold)
//!   through the canonical 12-stage Counter chain (the E6 per-shard
//!   graph) with and without a guard bound at
//!   the head, batch-first (`push_batch`, the way the sharded worker
//!   enters the graph) — both arms pay the sketch metering the worker
//!   always pays, so the delta is the guard's fast path alone (an
//!   early-exit count-min read + a counter bump per packet, one
//!   receptacle hop per batch). Acceptance: ≤ 5% overhead on the
//!   benign arm. `benign_admit_only` prices that fast path in
//!   isolation (sink mode, empty sketch) — the stable marginal number
//!   on a noisy host — and `attack_guarded` prices the same chain
//!   under a half-elephant mix, where the heavy path (flow-table
//!   budget spend per elephant packet) engages.
//! * What does self-healing cost? `e14_respawn` prices the health
//!   probe when nothing is wrong (`health_turn_idle`, the per-tick tax
//!   the control loop pays forever) and the full `recovery_cycle` —
//!   arm a crash, lose the worker mid-packet, detect the death, and
//!   run one `health_turn` (quarantine re-steer + factory rebuild +
//!   respawn + steering restore) back to a healthy dataplane.
//!
//! Run with `NETKIT_BENCH_JSON=<abs path>/BENCH_guard.json cargo bench
//! --bench guard` for the machine-readable report; `meta/cpus` records
//! whether worker wake-ups in `recovery_cycle` serialised (1-CPU
//! container) or overlapped (real cores).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use netkit_bench::{netkit_chain, PipelineRig};
use netkit_kernel::shard::ShardSpec;
use netkit_packet::batch::PacketBatch;
use netkit_packet::packet::{Packet, PacketBuilder};
use netkit_packet::sketch::{FlowSketch, SketchConfig};
use netkit_router::api::{register_packet_interfaces, IPacketPush, PushResult, IPACKET_PUSH};
use netkit_router::flow::{Guard, GuardConfig};
use netkit_router::shard::{ShardGraph, ShardedPipeline};
use opencom::capsule::Capsule;
use opencom::cf::Principal;
use opencom::meta::resources::ResourceManager;
use opencom::runtime::Runtime;

const BATCH: usize = 32;
const BATCHES_PER_ITER: usize = 64;
/// The canonical per-shard graph depth of the E6/E11 series — the
/// pipeline a guard would actually sit at the head of.
const CHAIN: usize = 12;
const FLOWS: u64 = 64;

/// A flow packet stamped the way the sharded worker sees it: the RSS
/// hash is both the steering key and the sketch/guard flow identity.
fn stamped(flow: u64, payload: usize) -> Packet {
    let mut p = PacketBuilder::udp_v4("192.0.2.1", "10.0.7.9", 6000 + flow as u16, 53)
        .payload_len(payload)
        .build();
    p.meta.rss_hash = Some(flow);
    p
}

/// 64 batches of 32 packets, flows round-robin, every flow a mouse
/// (~4.5 KiB per flow per iteration — far below the 64 KiB threshold).
fn benign_bursts() -> Vec<Vec<Packet>> {
    (0..BATCHES_PER_ITER)
        .map(|b| {
            (0..BATCH)
                .map(|i| stamped((b * BATCH + i) as u64 % FLOWS, 100))
                .collect()
        })
        .collect()
}

/// Same shape, but every other packet belongs to one 1000-byte-payload
/// elephant: ~1 MiB per iteration through flow 0, so the heavy path
/// (threshold crossed, then budget exhausted) engages within the first
/// window.
fn attack_bursts() -> Vec<Vec<Packet>> {
    (0..BATCHES_PER_ITER)
        .map(|b| {
            (0..BATCH)
                .map(|i| {
                    if i % 2 == 0 {
                        stamped(0, 1000)
                    } else {
                        stamped(1 + (b * BATCH + i) as u64 % (FLOWS - 1), 100)
                    }
                })
                .collect()
        })
        .collect()
}

/// Binds a [`Guard`] at the head of a [`netkit_chain`] rig through the
/// CF, returning the guard and its push entry (the guarded chain).
fn guarded_chain(rig: &PipelineRig, sketch: Arc<FlowSketch>) -> (Arc<Guard>, Arc<dyn IPacketPush>) {
    let sys = Principal::system();
    let guard = Guard::new(sketch, GuardConfig::default());
    let gid = rig.capsule.adopt(guard.clone()).expect("adopt guard");
    rig.cf.plug(&sys, gid).expect("plug guard");
    rig.cf
        .bind(&sys, gid, "out", "", rig.head, IPACKET_PUSH)
        .expect("bind guard -> chain");
    let entry: Arc<dyn IPacketPush> = rig
        .capsule
        .query_interface(gid, IPACKET_PUSH)
        .expect("guard exports IPacketPush")
        .downcast()
        .expect("push interface");
    (guard, entry)
}

fn bench_guard_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("e14_guard");
    group.throughput(Throughput::Elements((BATCH * BATCHES_PER_ITER) as u64));
    group.measurement_time(std::time::Duration::from_secs(1));

    let benign = benign_bursts();
    let clone_bursts = |bursts: &[Vec<Packet>]| -> Vec<PacketBatch> {
        bursts
            .iter()
            .map(|pkts| PacketBatch::from_packets(pkts.clone()))
            .collect()
    };

    // Baseline arm: sketch metering + the bare chain. The per-window
    // sketch retire runs in setup — it is control-plane work, off the
    // per-packet path in the real pipeline.
    {
        let rig = netkit_chain(CHAIN).expect("rig");
        let sk = FlowSketch::new(SketchConfig::default());
        group.bench_function("benign_unguarded", |b| {
            b.iter_batched(
                || {
                    sk.decay(0.0); // close the window without allocating
                    clone_bursts(&benign)
                },
                |batches| {
                    for batch in batches {
                        sk.record_batch(&batch);
                        criterion::black_box(rig.entry.push_batch(batch));
                    }
                },
                BatchSize::SmallInput,
            )
        });
        assert!(rig.sink.count() > 0, "the baseline chain really forwarded");
    }

    // Guarded arm: identical traffic and chain, guard bound at the
    // head. Every packet must take the benign fast path — if anything
    // was limited, the series measured enforcement, not overhead.
    {
        let rig = netkit_chain(CHAIN).expect("rig");
        let sk = Arc::new(FlowSketch::new(SketchConfig::default()));
        let (guard, entry) = guarded_chain(&rig, Arc::clone(&sk));
        group.bench_function("benign_guarded", |b| {
            b.iter_batched(
                || {
                    sk.decay(0.0);
                    guard.retire_window();
                    clone_bursts(&benign)
                },
                |batches| {
                    for batch in batches {
                        sk.record_batch(&batch);
                        criterion::black_box(entry.push_batch(batch));
                    }
                },
                BatchSize::SmallInput,
            )
        });
        let s = guard.stats();
        assert_eq!(s.limited, 0, "benign arm must stay on the fast path");
        assert_eq!(s.passed, rig.sink.count(), "every packet passed through");
    }

    // The guard's marginal cost in isolation: sink mode (no chain, no
    // sketch recording — an empty sketch keeps every flow provably
    // benign), so this series is the admission fast path and nothing
    // else. On a noisy 1-CPU host this small, single-threaded number
    // is the stable measure of what the guard adds per benign packet;
    // the paired arms above put it in proportion.
    {
        let sk = Arc::new(FlowSketch::new(SketchConfig::default()));
        let guard = Guard::new(Arc::clone(&sk), GuardConfig::default());
        group.bench_function("benign_admit_only", |b| {
            b.iter_batched(
                || clone_bursts(&benign),
                |batches| {
                    for batch in batches {
                        criterion::black_box(guard.push_batch(batch));
                    }
                },
                BatchSize::SmallInput,
            )
        });
        let s = guard.stats();
        assert_eq!((s.budgeted, s.limited), (0, 0), "pure fast path");
    }

    // Attack arm: half the packets are one elephant, so the heavy path
    // — table lock, budget spend, then RateLimited verdicts — is live.
    {
        let attack = attack_bursts();
        let rig = netkit_chain(CHAIN).expect("rig");
        let sk = Arc::new(FlowSketch::new(SketchConfig::default()));
        let (guard, entry) = guarded_chain(&rig, Arc::clone(&sk));
        group.bench_function("attack_guarded", |b| {
            b.iter_batched(
                || {
                    sk.decay(0.0);
                    guard.retire_window();
                    clone_bursts(&attack)
                },
                |batches| {
                    for batch in batches {
                        sk.record_batch(&batch);
                        criterion::black_box(entry.push_batch(batch));
                    }
                },
                BatchSize::SmallInput,
            )
        });
        let s = guard.stats();
        assert!(s.limited > 0, "the elephant must hit the limiter");
        assert!(s.passed > 0, "the mice must keep flowing");
    }

    group.finish();
}

/// Replica entry that kills its worker on the next armed packet — the
/// bench-side trigger for a deterministic mid-traffic crash.
struct TriggeredCrash {
    armed: Arc<AtomicBool>,
}

impl IPacketPush for TriggeredCrash {
    fn push(&self, _pkt: Packet) -> PushResult {
        if self.armed.swap(false, Ordering::SeqCst) {
            panic!("bench: injected worker crash");
        }
        Ok(())
    }
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("e14_respawn");

    // The injected crash fires once per measured cycle; printing a
    // backtrace for each would put panic-report I/O inside the timed
    // window. Silence exactly that panic, keep every other report.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|msg| msg.contains("injected worker crash"));
        if !injected {
            default_hook(info);
        }
    }));

    let armed = Arc::new(AtomicBool::new(false));
    let rm = Arc::new(ResourceManager::new());
    let pipe = {
        let armed = Arc::clone(&armed);
        ShardedPipeline::build("e14-respawn", ShardSpec::new(2), rm, move |_shard| {
            let rt = Runtime::new();
            register_packet_interfaces(&rt);
            let capsule = Capsule::new("shard", &rt);
            let entry: Arc<dyn IPacketPush> = Arc::new(TriggeredCrash {
                armed: Arc::clone(&armed),
            });
            Ok(ShardGraph::new(capsule, entry))
        })
        .expect("pipeline builds")
    };
    let trigger = || PacketBatch::from_packets(vec![stamped(0, 64)]);

    // The floor: what the control loop's health probe costs every tick
    // while nothing is wrong (one aliveness read per shard).
    group.bench_function("health_turn_idle", |b| {
        b.iter(|| {
            let turn = pipe.health_turn(&[]).expect("healthy turn");
            assert!(turn.is_none(), "nothing to recover");
        })
    });

    // The full cycle: arm the crash, lose shard 0 mid-packet, wait for
    // the kernel to publish the death, then one health_turn brings the
    // dataplane back (quarantine re-steer + replica rebuild + respawn
    // + steering restore). On a 1-CPU host the detection wait includes
    // scheduling the dying thread's unwind — see NOTES.md.
    group.bench_function("recovery_cycle", |b| {
        b.iter(|| {
            armed.store(true, Ordering::SeqCst);
            pipe.dispatch(trigger());
            while pipe.worker_alive(0) != Some(false) {
                std::thread::yield_now();
            }
            let recovery = pipe.health_turn(&[]).expect("recovery succeeds");
            assert!(recovery.is_some(), "the cycle must really recover");
        })
    });
    assert!(pipe.recoveries() >= 1, "at least one real recovery ran");
    pipe.shutdown();

    group.finish();
}

criterion_group!(benches, bench_guard_overhead, bench_recovery);
criterion_main!(benches);
