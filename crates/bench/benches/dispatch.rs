//! **E13 — dispatch decomposition: move-free shared-batch publish**
//! (the PR's acceptance experiment; see `crates/bench/NOTES.md`).
//!
//! Decomposes the software-dispatch producer path into its stages and
//! compares the two publish protocols over identical inputs, workers ∈
//! {1, 2, 4, 8}:
//!
//! * `split_only` — the counting-sort index split plus the shared-parent
//!   wrap (`shard_split` → `into_shared`), no ring traffic: what the
//!   dispatch thread pays *before* any publish.
//! * `publish_owned` — the pre-PR protocol held as a baseline
//!   ([`ShardedPipeline::dispatch_owned`]): split, then re-materialise
//!   every shard's packets into owned pooled sub-batches
//!   (`into_shard_batches_pooled`, one `Packet` move per packet) and
//!   one gate transaction + ring write per sub-batch.
//! * `publish_shared` — the move-free protocol
//!   ([`ShardedPipeline::dispatch`]): split, wrap the parent once, then
//!   a single gate transaction covering the whole fan-out and one
//!   refcount-bump descriptor write per target ring. The packet moves
//!   happen later, on the workers (`SharedShardRange::take_into`).
//! * `full_owned` / `full_shared` — the same two protocols plus a
//!   `flush` barrier per iteration: end-to-end cost including worker
//!   service time, the number the e6 scaling series reports.
//!
//! The publish-only series deliberately do **not** flush inside the
//! measured routine — the rings are sized deep (`RING`) so the producer
//! never blocks, and the workers drain concurrently in the background;
//! the measured window is the producer side alone, which is the cost
//! this PR moves. On a 1-CPU host the full-* series serialise producer
//! and worker time, so only the publish-* deltas are meaningful there
//! (the JSON report's `meta/cpus` key records which case a run was).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};

use netkit_bench::{netkit_sharded_chain, test_packet};
use netkit_kernel::shard::ShardSpec;
use netkit_packet::batch::PacketBatch;
use netkit_packet::packet::Packet;

const BATCH: usize = 32;
const BATCHES_PER_ITER: usize = 64;
const CHAIN: usize = 6;
/// Deep rings: the publish-only series must never backpressure, so the
/// measured window stays pure producer cost.
const RING: usize = 1 << 15;

fn bench_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_dispatch");
    group.throughput(Throughput::Elements((BATCH * BATCHES_PER_ITER) as u64));

    // Same spreading scheme as e6_forwarding_shards: one distinct RSS
    // stamp per batch column, so every worker count divides the load
    // evenly and the split's counting sort sees realistic fan-out.
    let make_burst = |stamp: u64| -> Vec<Packet> {
        (0..BATCH)
            .map(|i| {
                let mut p = test_packet();
                p.meta.rss_hash = Some(stamp * BATCH as u64 + i as u64);
                p
            })
            .collect()
    };
    let bursts: Vec<Vec<Packet>> = (0..BATCHES_PER_ITER as u64).map(make_burst).collect();
    let clone_bursts = || -> Vec<PacketBatch> {
        bursts
            .iter()
            .map(|pkts| PacketBatch::from_packets(pkts.clone()))
            .collect()
    };

    for workers in [1usize, 2, 4, 8] {
        // Stage floor: split + shared wrap, no publish at all.
        group.bench_with_input(BenchmarkId::new("split_only", workers), &workers, |b, _| {
            b.iter_batched(
                clone_bursts,
                |batches| {
                    for batch in batches {
                        let shared = batch.shard_split(workers).into_shared();
                        // Consume the steering result as a
                        // dispatcher would.
                        criterion::black_box(
                            (0..workers).map(|s| shared.shard_len(s)).sum::<usize>(),
                        );
                    }
                },
                BatchSize::SmallInput,
            )
        });

        let spec = ShardSpec::new(workers).with_ring_capacity(RING);
        let (pipe, _sinks) = netkit_sharded_chain(CHAIN, spec).expect("rig");

        // Producer-side cost of the owned-move baseline protocol.
        group.bench_with_input(
            BenchmarkId::new("publish_owned", workers),
            &workers,
            |b, _| {
                b.iter_batched(
                    clone_bursts,
                    |batches| {
                        for batch in batches {
                            pipe.dispatch_owned(batch);
                        }
                    },
                    BatchSize::SmallInput,
                )
            },
        );
        pipe.flush(); // drain the backlog before the next series

        // Producer-side cost of the shared fan-out protocol.
        group.bench_with_input(
            BenchmarkId::new("publish_shared", workers),
            &workers,
            |b, _| {
                b.iter_batched(
                    clone_bursts,
                    |batches| {
                        for batch in batches {
                            pipe.dispatch(batch);
                        }
                    },
                    BatchSize::SmallInput,
                )
            },
        );
        pipe.flush();

        // End-to-end: publish plus the flush barrier (worker service
        // time included — producer/worker overlap needs real cores).
        group.bench_with_input(BenchmarkId::new("full_owned", workers), &workers, |b, _| {
            b.iter_batched(
                clone_bursts,
                |batches| {
                    for batch in batches {
                        pipe.dispatch_owned(batch);
                    }
                    pipe.flush();
                },
                BatchSize::SmallInput,
            )
        });
        group.bench_with_input(
            BenchmarkId::new("full_shared", workers),
            &workers,
            |b, _| {
                b.iter_batched(
                    clone_bursts,
                    |batches| {
                        for batch in batches {
                            pipe.dispatch(batch);
                        }
                        pipe.flush();
                    },
                    BatchSize::SmallInput,
                )
            },
        );

        let stats = pipe.shutdown();
        // Deep rings and live workers: nothing may have been dropped,
        // or the publish-only numbers measured tail drops, not cost.
        assert_eq!(stats.dropped, 0, "E13 must not shed load");
        assert!(stats.packets > 0, "the rigs really forwarded traffic");
    }

    group.finish();
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);
