//! **E9b — scheduler micro-benchmark** (paper §3 lists "diffserv
//! schedulers" among the in-band functions; pluggable schedulers are one
//! of the paper's flagship CF examples).
//!
//! Series: per-packet pull cost for strict-priority, DRR, and WFQ over
//! 2/8/32 backlogged inputs, plus a fairness report (byte shares under
//! WFQ at weights 4:2:1) — the *shape* to reproduce is that fancier
//! disciplines cost more per decision but bound the shares.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use netkit_packet::packet::PacketBuilder;
use netkit_router::api::{register_packet_interfaces, IPacketPull, IPacketPush, IPACKET_PULL};
use netkit_router::elements::{
    DropTailQueue, DrrScheduler, PriorityScheduler, Scheduler, WfqScheduler,
};
use opencom::capsule::Capsule;
use opencom::runtime::Runtime;

fn rig(
    sched: Arc<Scheduler>,
    inputs: usize,
    backlog: usize,
) -> (Vec<Arc<DropTailQueue>>, Arc<Capsule>) {
    let rt = Runtime::new();
    register_packet_interfaces(&rt);
    let capsule = Capsule::new("sched", &rt);
    let sid = capsule.adopt(sched).unwrap();
    let mut queues = Vec::new();
    for i in 0..inputs {
        let q = DropTailQueue::new(backlog + 1);
        let qid = capsule.adopt(q.clone()).unwrap();
        capsule
            .bind(sid, "in", &format!("q{i}"), qid, IPACKET_PULL)
            .unwrap();
        for s in 0..backlog {
            q.push(
                PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", s as u16, i as u16)
                    .payload_len(100)
                    .build(),
            )
            .unwrap();
        }
        queues.push(q);
    }
    (queues, capsule)
}

fn refill(queues: &[Arc<DropTailQueue>]) {
    for (i, q) in queues.iter().enumerate() {
        while q.depth() < 64 {
            if q.push(
                PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 0, i as u16)
                    .payload_len(100)
                    .build(),
            )
            .is_err()
            {
                break;
            }
        }
    }
}

fn fairness_report() {
    eprintln!("\n== E9b WFQ fairness report (weights gold=4 silver=2 bronze=1) ==");
    let sched = WfqScheduler::new(&[("gold", 4.0), ("silver", 2.0), ("bronze", 1.0)]);
    let rt = Runtime::new();
    register_packet_interfaces(&rt);
    let capsule = Capsule::new("fair", &rt);
    let sid = capsule.adopt(sched.clone()).unwrap();
    for label in ["gold", "silver", "bronze"] {
        let q = DropTailQueue::new(4096);
        let qid = capsule.adopt(q.clone()).unwrap();
        capsule.bind(sid, "in", label, qid, IPACKET_PULL).unwrap();
        for _ in 0..2048 {
            q.push(
                PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 1, 2)
                    .payload_len(100)
                    .build(),
            )
            .unwrap();
        }
    }
    for _ in 0..1400 {
        sched.pull();
    }
    for (label, pkts, bytes) in sched.per_input_stats() {
        eprintln!("{label:>8}: {pkts:>5} pkts  {bytes:>8} bytes");
    }
}

fn bench(c: &mut Criterion) {
    fairness_report();

    let mut group = c.benchmark_group("e9_scheduler");
    for inputs in [2usize, 8, 32] {
        for (name, make) in [
            ("priority", PriorityScheduler::new as fn() -> Arc<Scheduler>),
            (
                "drr",
                (|| DrrScheduler::new(1500.0)) as fn() -> Arc<Scheduler>,
            ),
            ("wfq", (|| WfqScheduler::new(&[])) as fn() -> Arc<Scheduler>),
        ] {
            let sched = make();
            let (queues, _capsule) = rig(sched.clone(), inputs, 64);
            let mut pulled = 0usize;
            group.bench_with_input(BenchmarkId::new(name, inputs), &inputs, |b, _| {
                b.iter(|| {
                    if sched.pull().is_none() {
                        refill(&queues);
                    }
                    pulled += 1;
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
