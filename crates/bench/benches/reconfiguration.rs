//! **E4 — run-time reconfiguration** (paper §4: explicit support for
//! "deployment, reconfiguration, and system evolution"; §5's dynamic
//! add/remove of interfaces and constraints).
//!
//! Series: (a) latency of hot-replacing a mid-pipeline element under the
//! two quiescence modes (ablation from DESIGN.md §5), (b) latency of
//! dynamic bind/unbind, (c) end-to-end forwarding throughput while a
//! replacement happens every K packets (the "reconfigure under load"
//! scenario), verifying no packets are lost through the swap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use netkit_bench::{netkit_chain, test_packet};
use netkit_router::api::IPACKET_PUSH;
use netkit_router::elements::{Counter, Discard};
use opencom::capsule::Quiescence;
use opencom::cf::Principal;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_reconfiguration");
    let pkt = test_packet();
    let sys = Principal::system();

    // (a) hot replacement latency, per quiescence mode.
    for (label, mode) in [
        ("replace_per_edge", Quiescence::PerEdge),
        ("replace_full_graph", Quiescence::FullGraph),
    ] {
        let rig = netkit_chain(6).expect("rig");
        let mut victim = rig.stages[3];
        group.bench_function(label, |b| {
            b.iter(|| {
                let fresh = rig.capsule.adopt(Counter::new()).unwrap();
                rig.cf.plug(&sys, fresh).unwrap();
                rig.capsule.replace(victim, fresh, mode).unwrap();
                rig.cf.unplug(&sys, victim).unwrap();
                victim = fresh;
            })
        });
    }

    // (b) dynamic bind/unbind of a tap edge (classifier outputs are
    // multi-cardinality, so extra taps are legal).
    {
        let rig = netkit_chain(2).expect("rig");
        let cls = rig
            .capsule
            .adopt(netkit_router::elements::ClassifierEngine::new())
            .unwrap();
        rig.cf.plug(&sys, cls).unwrap();
        let tap = rig.capsule.adopt(Discard::new()).unwrap();
        rig.cf.plug(&sys, tap).unwrap();
        group.bench_function("bind_unbind", |b| {
            b.iter(|| {
                let id = rig
                    .cf
                    .bind(&sys, cls, "out", "tap", tap, IPACKET_PUSH)
                    .unwrap();
                rig.cf.unbind(&sys, id).unwrap();
            })
        });
    }

    // (c) forwarding with a hot swap every 64 packets; throughput should
    // stay within a small factor of the undisturbed pipeline and the
    // sink must see every packet.
    for (label, swap_every) in [
        ("forward_undisturbed", usize::MAX),
        ("forward_swap_each_64", 64),
    ] {
        let rig = netkit_chain(6).expect("rig");
        let mut victim = rig.stages[3];
        let mut sent: u64 = 0;
        let mut i = 0usize;
        group.bench_with_input(BenchmarkId::new(label, 64), &swap_every, |b, &every| {
            b.iter(|| {
                if every != usize::MAX && i.is_multiple_of(every) {
                    let fresh = rig.capsule.adopt(Counter::new()).unwrap();
                    rig.cf.plug(&sys, fresh).unwrap();
                    rig.capsule
                        .replace(victim, fresh, Quiescence::PerEdge)
                        .unwrap();
                    rig.cf.unplug(&sys, victim).unwrap();
                    victim = fresh;
                }
                i += 1;
                sent += 1;
                rig.entry.push(pkt.clone()).unwrap();
            })
        });
        // Loss check: every pushed packet reached the sink.
        assert_eq!(rig.sink.count(), sent, "no packets lost through hot swaps");
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
