//! **E6 — forwarding throughput vs architecture** (paper §6's
//! positioning against Click and §5's "validate its performance and
//! flexibility").
//!
//! Series: packets/second through an N-element pipeline, N ∈ {3, 6, 12},
//! for three architectures over identical element semantics:
//!
//! * `monolithic` — one hand-coded function (lower bound, N-independent);
//! * `click` — statically compiled element graph, index dispatch,
//!   configuration but no reconfiguration;
//! * `netkit` — Router-CF components, receptacle dispatch, full
//!   run-time reconfigurability;
//! * `netkit_fused` — NETKIT with the head binding snapshot taken once
//!   (the vtable-bypass optimisation).
//!
//! Expected shape: monolithic ≤ click ≤ netkit per-packet cost, with the
//! netkit / click gap bounded (the price of reconfigurability) and
//! `netkit_fused` recovering most of it.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};

use netkit_baselines::click::ClickRouter;
use netkit_baselines::monolithic::MonolithicForwarder;
use netkit_baselines::sharded::{ShardedClick, ShardedMonolithic};
use netkit_bench::{
    click_chain_config, netkit_chain, netkit_sharded_chain, routing_table, test_packet,
};
use netkit_kernel::nic::{Nic, PortId};
use netkit_kernel::shard::ShardSpec;
use netkit_packet::batch::{BatchPool, PacketBatch};
use netkit_packet::packet::{Packet, PacketBuilder};
use netkit_packet::pool::BufferPool;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_forwarding");
    group.throughput(Throughput::Elements(1));
    let pkt = test_packet();

    // Monolithic: N-independent floor.
    let mono = MonolithicForwarder::new(routing_table(256, 4), 4, 1024);
    group.bench_function("monolithic", |b| {
        b.iter_batched(
            || pkt.clone(),
            |p| {
                let port = mono.forward(p).unwrap();
                mono.drain(port);
            },
            BatchSize::SmallInput,
        )
    });

    for n in [3usize, 6, 12] {
        // Click chain.
        let click = ClickRouter::compile(&click_chain_config(n)).expect("compiles");
        group.bench_with_input(BenchmarkId::new("click", n), &n, |b, _| {
            b.iter_batched(
                || pkt.clone(),
                |p| click.push("c0", p),
                BatchSize::SmallInput,
            )
        });

        // NETKIT chain (reconfigurable path).
        let rig = netkit_chain(n).expect("rig");
        group.bench_with_input(BenchmarkId::new("netkit", n), &n, |b, _| {
            b.iter_batched(
                || pkt.clone(),
                |p| rig.entry.push(p).unwrap(),
                BatchSize::SmallInput,
            )
        });

        // NETKIT with the entry resolved once (fused head).
        let rig = netkit_chain(n).expect("rig");
        let fused = rig.entry.clone();
        group.bench_with_input(BenchmarkId::new("netkit_fused", n), &n, |b, _| {
            b.iter_batched(
                || pkt.clone(),
                |p| fused.push(p).unwrap(),
                BatchSize::SmallInput,
            )
        });
    }

    group.finish();
}

/// The batch-size series: per-packet cost of moving bursts of B packets
/// through a fixed 6-element pipeline for every architecture, B ∈
/// {1, 8, 32, 256}. Tracks the scalar-vs-batch gap the batch-first API
/// redesign exists to close — netkit pays one interceptor-chain
/// traversal and one receptacle lock per *batch*, so its per-packet cost
/// should fall towards the click/monolithic floor as B grows.
fn bench_batch(c: &mut Criterion) {
    const CHAIN: usize = 6;
    let mut group = c.benchmark_group("e6_forwarding_batch");
    let pkt = test_packet();

    for batch_size in [1usize, 8, 32, 256] {
        group.throughput(Throughput::Elements(batch_size as u64));
        let burst = || -> Vec<_> { vec![pkt.clone(); batch_size] };

        // Monolithic floor: forward_batch amortizes its stats lock.
        let mono = MonolithicForwarder::new(routing_table(256, 4), 4, usize::MAX >> 1);
        group.bench_with_input(
            BenchmarkId::new("monolithic", batch_size),
            &batch_size,
            |b, _| {
                b.iter_batched(
                    burst,
                    |pkts| {
                        for r in mono.forward_batch(pkts) {
                            mono.drain(r.unwrap());
                        }
                    },
                    BatchSize::SmallInput,
                )
            },
        );

        // Click: entry resolved once per burst, index dispatch inside.
        let click = ClickRouter::compile(&click_chain_config(CHAIN)).expect("compiles");
        group.bench_with_input(
            BenchmarkId::new("click", batch_size),
            &batch_size,
            |b, _| {
                b.iter_batched(
                    burst,
                    |pkts| click.push_batch("c0", pkts),
                    BatchSize::SmallInput,
                )
            },
        );

        // NETKIT scalar: one receptacle traversal per packet (the cost
        // the batch path amortizes; B repeated scalar pushes).
        let rig = netkit_chain(CHAIN).expect("rig");
        group.bench_with_input(
            BenchmarkId::new("netkit_scalar", batch_size),
            &batch_size,
            |b, _| {
                b.iter_batched(
                    burst,
                    |pkts| {
                        for p in pkts {
                            rig.entry.push(p).unwrap();
                        }
                    },
                    BatchSize::SmallInput,
                )
            },
        );

        // NETKIT batch: one traversal per burst.
        let rig = netkit_chain(CHAIN).expect("rig");
        group.bench_with_input(
            BenchmarkId::new("netkit", batch_size),
            &batch_size,
            |b, _| {
                b.iter_batched(
                    || PacketBatch::from_packets(burst()),
                    |batch| {
                        assert!(rig.entry.push_batch(batch).all_ok());
                    },
                    BatchSize::SmallInput,
                )
            },
        );

        // NETKIT batch through a fused (snapshot) head binding.
        let rig = netkit_chain(CHAIN).expect("rig");
        let fused = rig.entry.clone();
        group.bench_with_input(
            BenchmarkId::new("netkit_fused", batch_size),
            &batch_size,
            |b, _| {
                b.iter_batched(
                    || PacketBatch::from_packets(burst()),
                    |batch| {
                        assert!(fused.push_batch(batch).all_ok());
                    },
                    BatchSize::SmallInput,
                )
            },
        );
    }

    group.finish();
}

/// The worker-count scaling series: a fixed offered load of
/// `BATCHES_PER_ITER` batches of `BATCH` packets (each batch RSS-stamped
/// so steering costs what hardware steering costs: a modulo) pushed
/// through a 12-stage pipeline replicated over 1/2/4/8 run-to-completion
/// shards, for all three architectures. Per-iteration cost includes the
/// dispatch fan-out and a full flush barrier, so the reported
/// packets/second is end-to-end, not per-worker. Expected shape: ~linear
/// until the dispatcher or the memory system saturates; the acceptance
/// bar is ≥2x at 4 shards vs 1 (see crates/bench/NOTES.md for the
/// recorded curve).
fn bench_shards(c: &mut Criterion) {
    const BATCH: usize = 32;
    const CHAIN: usize = 12;
    const BATCHES_PER_ITER: usize = 64;

    let mut group = c.benchmark_group("e6_forwarding_shards");
    group.throughput(Throughput::Elements((BATCH * BATCHES_PER_ITER) as u64));

    // One canned burst: distinct RSS stamps spread round-robin so every
    // shard count divides the load evenly (flows, not packets, are the
    // spreading unit — one stamp per batch-column models one flow).
    let make_burst = |stamp: u64| -> Vec<Packet> {
        (0..BATCH)
            .map(|i| {
                let mut p = test_packet();
                p.meta.rss_hash = Some(stamp * BATCH as u64 + i as u64);
                p
            })
            .collect()
    };
    let bursts: Vec<Vec<Packet>> = (0..BATCHES_PER_ITER as u64).map(make_burst).collect();

    for workers in [1usize, 2, 4, 8] {
        let spec = ShardSpec::new(workers);

        // NETKIT sharded pipeline (full reconfigurable element graphs).
        let (pipe, _sinks) = netkit_sharded_chain(CHAIN, spec).expect("rig");
        group.bench_with_input(
            BenchmarkId::new("netkit_sharded", workers),
            &workers,
            |b, _| {
                b.iter_batched(
                    || {
                        bursts
                            .iter()
                            .map(|pkts| PacketBatch::from_packets(pkts.clone()))
                            .collect::<Vec<_>>()
                    },
                    |batches| {
                        for batch in batches {
                            pipe.dispatch(batch);
                        }
                        pipe.flush();
                    },
                    BatchSize::SmallInput,
                )
            },
        );
        pipe.shutdown();

        // NETKIT through the multi-queue NIC path: hardware RSS has
        // already steered every burst onto its worker's ring
        // (`Nic::inject_rx_rss` → `rx_burst_queue`), so the submitting
        // thread pays one ring enqueue per batch and no partition at
        // all. This is the architecture's real fast path; the
        // `netkit_sharded` entry above additionally pays the software
        // partition for un-steered ingress.
        let (pipe, _sinks) = netkit_sharded_chain(CHAIN, spec).expect("rig");
        let steered: Vec<(usize, Vec<Packet>)> = (0..BATCHES_PER_ITER)
            .map(|b| {
                let shard = b % workers;
                let pkts = (0..BATCH)
                    .map(|_| {
                        let mut p = test_packet();
                        p.meta.rss_hash = Some(shard as u64);
                        p
                    })
                    .collect();
                (shard, pkts)
            })
            .collect();
        group.bench_with_input(
            BenchmarkId::new("netkit_sharded_mq", workers),
            &workers,
            |b, _| {
                b.iter_batched(
                    || {
                        steered
                            .iter()
                            .map(|(s, pkts)| (*s, PacketBatch::from_packets(pkts.clone())))
                            .collect::<Vec<_>>()
                    },
                    |batches| {
                        for (shard, batch) in batches {
                            let _ = pipe.submit(shard, batch);
                        }
                        pipe.flush();
                    },
                    BatchSize::SmallInput,
                )
            },
        );
        pipe.shutdown();

        // Steering-only floor, owned variant: the RSS partition into
        // owned sub-batches with no pool at all — what the dispatch
        // thread itself pays per batch before any ring/wakeup cost.
        // (Since PR 3 this routes through the index-based split and
        // only then re-materialises; `partition_only_zero_copy` below
        // stops at the split.)
        group.bench_with_input(
            BenchmarkId::new("partition_only", workers),
            &workers,
            |b, _| {
                b.iter_batched(
                    || {
                        bursts
                            .iter()
                            .map(|pkts| PacketBatch::from_packets(pkts.clone()))
                            .collect::<Vec<_>>()
                    },
                    |batches| {
                        for batch in batches {
                            criterion::black_box(batch.partition_by_shard(workers));
                        }
                    },
                    BatchSize::SmallInput,
                )
            },
        );

        // Zero-copy steering floor: the index-based split
        // (`shard_split` — counting sort over stamped hashes, borrowing
        // views, no sub-batch re-materialisation). Compare against
        // `partition_only` above (which still pays the owned
        // re-materialisation through `into_shard_batches`) and the PR 2
        // numbers in NOTES.md; the acceptance bar is ≥2x at 4 shards.
        group.bench_with_input(
            BenchmarkId::new("partition_only_zero_copy", workers),
            &workers,
            |b, _| {
                b.iter_batched(
                    || {
                        bursts
                            .iter()
                            .map(|pkts| PacketBatch::from_packets(pkts.clone()))
                            .collect::<Vec<_>>()
                    },
                    |batches| {
                        for batch in batches {
                            let split = batch.shard_split(workers);
                            // Touch every view so the steering result is
                            // actually consumed, as a dispatcher would.
                            criterion::black_box(split.views().map(|v| v.len()).sum::<usize>());
                        }
                    },
                    BatchSize::SmallInput,
                )
            },
        );

        // NIC rx materialisation, pool-on vs pool-off: the per-frame
        // cost of inject (RSS parse + steer + buffer write) plus
        // per-queue burst materialisation into rss-stamped packets.
        // `pooled` leases frame slabs from a BufferPool and batch
        // containers from a BatchPool (steady state allocates nothing);
        // `unpooled` allocates both per frame/batch — the delta is what
        // the buffer-management CF buys on the rx path.
        let frames: Vec<Vec<u8>> = (0..(BATCHES_PER_ITER * BATCH) as u16)
            .map(|i| {
                PacketBuilder::udp_v4("192.0.2.1", "10.0.7.9", 5000 + (i % 512), 5001)
                    .payload_len(64)
                    .build()
                    .data()
                    .to_vec()
            })
            .collect();
        let rx_cycle = |nic: &Nic, take_batch: &mut dyn FnMut() -> PacketBatch| {
            for f in &frames {
                nic.inject_rx_frame(f);
            }
            for queue in 0..workers {
                loop {
                    let mut batch = take_batch();
                    if nic.rx_burst_batch(queue, BATCH, &mut batch) == 0 {
                        break;
                    }
                    criterion::black_box(&batch);
                }
            }
        };

        let buffers = BufferPool::new(2048, 0, 1 << 14);
        let pooled_nic = Nic::with_queues(PortId(0), workers, 1 << 12, 16, 1_000_000_000)
            .with_buffer_pool(buffers);
        let batch_pool = BatchPool::new(BATCH, 8, 64);
        group.bench_with_input(
            BenchmarkId::new("nic_rx_pooled", workers),
            &workers,
            |b, _| {
                b.iter(|| rx_cycle(&pooled_nic, &mut || batch_pool.take()));
            },
        );

        let plain_nic = Nic::with_queues(PortId(1), workers, 1 << 12, 16, 1_000_000_000);
        group.bench_with_input(
            BenchmarkId::new("nic_rx_unpooled", workers),
            &workers,
            |b, _| {
                b.iter(|| rx_cycle(&plain_nic, &mut || PacketBatch::with_capacity(BATCH)));
            },
        );

        // Dispatch-only floor: identical partition + ring fan-out into
        // no-op workers. The gap between this and `netkit_sharded` is
        // pure per-shard service time — the component that divides by
        // the worker count on real multi-core hardware. NOTES.md uses
        // this decomposition to model the scaling curve when the bench
        // host has fewer cores than shards.
        let noop =
            netkit_kernel::shard::WorkerPool::start(spec, |_| Box::new(|_batch: PacketBatch| {}));
        group.bench_with_input(
            BenchmarkId::new("dispatch_only", workers),
            &workers,
            |b, _| {
                b.iter_batched(
                    || {
                        bursts
                            .iter()
                            .map(|pkts| PacketBatch::from_packets(pkts.clone()))
                            .collect::<Vec<_>>()
                    },
                    |batches| {
                        for batch in batches {
                            for (shard, part) in
                                batch.partition_by_shard(workers).into_iter().enumerate()
                            {
                                if !part.is_empty() {
                                    let _ = noop.submit(shard, part);
                                }
                            }
                        }
                        noop.flush();
                    },
                    BatchSize::SmallInput,
                )
            },
        );
        noop.shutdown();

        // Click replicas behind the same spec and steering.
        let click =
            ShardedClick::compile(&click_chain_config(CHAIN), "c0", spec).expect("compiles");
        group.bench_with_input(
            BenchmarkId::new("click_sharded", workers),
            &workers,
            |b, _| {
                b.iter_batched(
                    || bursts.clone(),
                    |batches| {
                        for pkts in batches {
                            click.push_batch(pkts);
                        }
                        click.flush();
                    },
                    BatchSize::SmallInput,
                )
            },
        );
        click.shutdown();

        // Monolithic replicas behind the same spec and steering.
        let mono = ShardedMonolithic::new(|| routing_table(256, 4), 4, usize::MAX >> 1, spec);
        group.bench_with_input(
            BenchmarkId::new("monolithic_sharded", workers),
            &workers,
            |b, _| {
                b.iter_batched(
                    || bursts.clone(),
                    |batches| {
                        for pkts in batches {
                            mono.forward_batch(pkts);
                        }
                        mono.flush();
                    },
                    BatchSize::SmallInput,
                )
            },
        );
        mono.shutdown();
    }

    group.finish();
}

criterion_group!(benches, bench, bench_batch, bench_shards);
criterion_main!(benches);
