//! **E6 — forwarding throughput vs architecture** (paper §6's
//! positioning against Click and §5's "validate its performance and
//! flexibility").
//!
//! Series: packets/second through an N-element pipeline, N ∈ {3, 6, 12},
//! for three architectures over identical element semantics:
//!
//! * `monolithic` — one hand-coded function (lower bound, N-independent);
//! * `click` — statically compiled element graph, index dispatch,
//!   configuration but no reconfiguration;
//! * `netkit` — Router-CF components, receptacle dispatch, full
//!   run-time reconfigurability;
//! * `netkit_fused` — NETKIT with the head binding snapshot taken once
//!   (the vtable-bypass optimisation).
//!
//! Expected shape: monolithic ≤ click ≤ netkit per-packet cost, with the
//! netkit / click gap bounded (the price of reconfigurability) and
//! `netkit_fused` recovering most of it.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};

use netkit_baselines::click::ClickRouter;
use netkit_baselines::monolithic::MonolithicForwarder;
use netkit_bench::{click_chain_config, netkit_chain, routing_table, test_packet};
use netkit_packet::batch::PacketBatch;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_forwarding");
    group.throughput(Throughput::Elements(1));
    let pkt = test_packet();

    // Monolithic: N-independent floor.
    let mono = MonolithicForwarder::new(routing_table(256, 4), 4, 1024);
    group.bench_function("monolithic", |b| {
        b.iter_batched(
            || pkt.clone(),
            |p| {
                let port = mono.forward(p).unwrap();
                mono.drain(port);
            },
            BatchSize::SmallInput,
        )
    });

    for n in [3usize, 6, 12] {
        // Click chain.
        let click = ClickRouter::compile(&click_chain_config(n)).expect("compiles");
        group.bench_with_input(BenchmarkId::new("click", n), &n, |b, _| {
            b.iter_batched(
                || pkt.clone(),
                |p| click.push("c0", p),
                BatchSize::SmallInput,
            )
        });

        // NETKIT chain (reconfigurable path).
        let rig = netkit_chain(n).expect("rig");
        group.bench_with_input(BenchmarkId::new("netkit", n), &n, |b, _| {
            b.iter_batched(
                || pkt.clone(),
                |p| rig.entry.push(p).unwrap(),
                BatchSize::SmallInput,
            )
        });

        // NETKIT with the entry resolved once (fused head).
        let rig = netkit_chain(n).expect("rig");
        let fused = rig.entry.clone();
        group.bench_with_input(BenchmarkId::new("netkit_fused", n), &n, |b, _| {
            b.iter_batched(
                || pkt.clone(),
                |p| fused.push(p).unwrap(),
                BatchSize::SmallInput,
            )
        });
    }

    group.finish();
}

/// The batch-size series: per-packet cost of moving bursts of B packets
/// through a fixed 6-element pipeline for every architecture, B ∈
/// {1, 8, 32, 256}. Tracks the scalar-vs-batch gap the batch-first API
/// redesign exists to close — netkit pays one interceptor-chain
/// traversal and one receptacle lock per *batch*, so its per-packet cost
/// should fall towards the click/monolithic floor as B grows.
fn bench_batch(c: &mut Criterion) {
    const CHAIN: usize = 6;
    let mut group = c.benchmark_group("e6_forwarding_batch");
    let pkt = test_packet();

    for batch_size in [1usize, 8, 32, 256] {
        group.throughput(Throughput::Elements(batch_size as u64));
        let burst = || -> Vec<_> { vec![pkt.clone(); batch_size] };

        // Monolithic floor: forward_batch amortizes its stats lock.
        let mono = MonolithicForwarder::new(routing_table(256, 4), 4, usize::MAX >> 1);
        group.bench_with_input(
            BenchmarkId::new("monolithic", batch_size),
            &batch_size,
            |b, _| {
                b.iter_batched(
                    burst,
                    |pkts| {
                        for r in mono.forward_batch(pkts) {
                            mono.drain(r.unwrap());
                        }
                    },
                    BatchSize::SmallInput,
                )
            },
        );

        // Click: entry resolved once per burst, index dispatch inside.
        let click = ClickRouter::compile(&click_chain_config(CHAIN)).expect("compiles");
        group.bench_with_input(
            BenchmarkId::new("click", batch_size),
            &batch_size,
            |b, _| {
                b.iter_batched(
                    burst,
                    |pkts| click.push_batch("c0", pkts),
                    BatchSize::SmallInput,
                )
            },
        );

        // NETKIT scalar: one receptacle traversal per packet (the cost
        // the batch path amortizes; B repeated scalar pushes).
        let rig = netkit_chain(CHAIN).expect("rig");
        group.bench_with_input(
            BenchmarkId::new("netkit_scalar", batch_size),
            &batch_size,
            |b, _| {
                b.iter_batched(
                    burst,
                    |pkts| {
                        for p in pkts {
                            rig.entry.push(p).unwrap();
                        }
                    },
                    BatchSize::SmallInput,
                )
            },
        );

        // NETKIT batch: one traversal per burst.
        let rig = netkit_chain(CHAIN).expect("rig");
        group.bench_with_input(
            BenchmarkId::new("netkit", batch_size),
            &batch_size,
            |b, _| {
                b.iter_batched(
                    || PacketBatch::from_packets(burst()),
                    |batch| {
                        assert!(rig.entry.push_batch(batch).all_ok());
                    },
                    BatchSize::SmallInput,
                )
            },
        );

        // NETKIT batch through a fused (snapshot) head binding.
        let rig = netkit_chain(CHAIN).expect("rig");
        let fused = rig.entry.clone();
        group.bench_with_input(
            BenchmarkId::new("netkit_fused", batch_size),
            &batch_size,
            |b, _| {
                b.iter_batched(
                    || PacketBatch::from_packets(burst()),
                    |batch| {
                        assert!(fused.push_batch(batch).all_ok());
                    },
                    BatchSize::SmallInput,
                )
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench, bench_batch);
criterion_main!(benches);
