//! **E16 — the price of declarative reconfiguration** (see
//! `crates/bench/NOTES.md`).
//!
//! The description layer (`netkit_router::desc`, ARCHITECTURE.md §8)
//! claims a strict cost ordering for changing a *running* pipeline:
//! computing a diff costs control-plane arithmetic only; a param-only
//! patch costs hot `Capsule::replace` swaps and **zero quiesce
//! epochs**; a structural patch costs exactly **one** pipeline-wide
//! quiesce no matter how many ops it batches; and the alternative —
//! tearing the pipeline down and rebuilding from the new description —
//! costs thread spawns and teardown, orders of magnitude above either
//! patch. This series prices each tier on the threaded driver and
//! *asserts* the quiesce accounting per iteration: a param-only patch
//! that consumed an epoch, or touched more shards than the patch
//! addresses, fails the bench rather than skewing the curve.
//!
//! Run with `NETKIT_BENCH_JSON=<abs path>/BENCH_reconfig.json cargo
//! bench --bench reconfig` for the machine-readable report. The
//! structural and rebuild rows quiesce/spawn real workers — on a 1-CPU
//! host those waits serialise; see NOTES.md.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use netkit_kernel::shard::ShardSpec;
use netkit_router::desc::{diff, Compiler, PipelineDesc, TableEntry};
use opencom::meta::resources::ResourceManager;

const WORKERS: usize = 2;

/// The described stateful edge the series reconfigures: guard →
/// conntrack [→ NAT44] → counter → discard, with the conntrack
/// capacity and the NAT stage's existence as the moving parts.
fn edge_desc(ct_capacity: u64, with_nat: bool, backends: u8) -> PipelineDesc {
    let mut d = PipelineDesc::new("e16-edge")
        .element_with("guard", "guard", &[("byte_threshold", (4u64 << 20).into())])
        .element_with("ct", "conntrack", &[("capacity", ct_capacity.into())])
        .element_with(
            "lb",
            "l4lb",
            &[("vip", "10.0.7.9".into()), ("vport", 443u16.into())],
        )
        .element("egress", "counter")
        .element("sink", "discard")
        .ingress("guard")
        .edge("guard", "ct")
        .edge("egress", "sink");
    d = if with_nat {
        d.element_with(
            "nat",
            "nat44",
            &[
                ("external_ip", "192.0.2.1".into()),
                ("port_base", 10_000u16.into()),
            ],
        )
        .edge("ct", "nat")
        .edge("nat", "lb")
    } else {
        d.edge("ct", "lb")
    };
    d = d.edge("lb", "egress");
    for backend in 1..=backends {
        d = d.table(
            "lb",
            TableEntry::Backend {
                ip: format!("10.1.0.{backend}"),
                port: 8080,
            },
        );
    }
    d
}

fn bench_reconfig(c: &mut Criterion) {
    let mut group = c.benchmark_group("e16_reconfig");
    group.measurement_time(std::time::Duration::from_secs(1));

    let base = edge_desc(4_096, true, 2);
    let retuned = edge_desc(8_192, true, 2);
    let without_nat = edge_desc(4_096, false, 2);
    let more_backends = edge_desc(4_096, true, 3);

    // Tier 0: the diff itself — canonicalise two descriptions and
    // compute the minimal plan. Pure control-plane arithmetic, no
    // pipeline involved.
    group.bench_function("diff_param_only", |b| {
        b.iter(|| criterion::black_box(diff(&base, &retuned)))
    });
    group.bench_function("diff_structural", |b| {
        b.iter(|| criterion::black_box(diff(&base, &without_nat)))
    });

    // One live threaded pipeline carries every patch tier below; the
    // binding alternates between the two target descriptions so each
    // iteration applies a real, non-empty patch.
    let rm = Arc::new(ResourceManager::new());
    let (pipe, mut binding) = Compiler::new()
        .build_sharded(&base, ShardSpec::new(WORKERS), Arc::clone(&rm))
        .expect("edge compiles");

    // Tier 1a: a pure table op (grow the VIP backend set) — the
    // cheapest change a running pipeline can absorb.
    group.bench_function("apply_table_op", |b| {
        let mut grow = true;
        b.iter(|| {
            let target = if grow { &more_backends } else { &base };
            grow = !grow;
            let patch = binding.diff_to(target).expect("diffable");
            let report = binding.apply_sharded(&pipe, &patch).expect("applies");
            assert!(patch.param_only());
            assert_eq!(
                (report.epochs, report.table_ops),
                (0, WORKERS),
                "a backend change is one hot table op per shard"
            );
        })
    });

    // Tier 1b: param-only element swap (conntrack capacity). The
    // assertion is the series' contract: zero quiesce epochs, and the
    // object graph touched on exactly the shards the patch addresses —
    // never quiesced pipeline-wide.
    group.bench_function("apply_param_only", |b| {
        let mut retune = true;
        b.iter(|| {
            let target = if retune { &retuned } else { &base };
            retune = !retune;
            let patch = binding.diff_to(target).expect("diffable");
            let report = binding.apply_sharded(&pipe, &patch).expect("applies");
            assert!(patch.param_only());
            assert_eq!(report.epochs, 0, "param-only patches never quiesce");
            assert_eq!(report.structural, 0);
            assert_eq!(
                report.shards_touched, WORKERS,
                "touches each replica of the swapped element, nothing more"
            );
        })
    });

    // Tier 2: structural patch (retire / reinstate the NAT stage).
    // Exactly one pipeline-wide quiesce epoch per apply, regardless of
    // how many ops the plan batches.
    group.bench_function("apply_structural", |b| {
        let mut retire = true;
        b.iter(|| {
            let target = if retire { &without_nat } else { &base };
            retire = !retire;
            let patch = binding.diff_to(target).expect("diffable");
            let report = binding.apply_sharded(&pipe, &patch).expect("applies");
            assert!(!patch.param_only());
            assert_eq!(report.epochs, 1, "structural patches batch into one epoch");
        })
    });
    pipe.shutdown();

    // Tier 3: the alternative the patch path replaces — compile the
    // new description from scratch, spawn fresh workers, tear the old
    // world down. What "reconfiguration" costs without an incremental
    // control plane.
    group.bench_function("full_rebuild", |b| {
        b.iter(|| {
            let (pipe, _binding) = Compiler::new()
                .build_sharded(&retuned, ShardSpec::new(WORKERS), Arc::clone(&rm))
                .expect("edge compiles");
            pipe.shutdown();
        })
    });

    group.finish();
}

criterion_group!(benches, bench_reconfig);
criterion_main!(benches);
