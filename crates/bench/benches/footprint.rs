//! **E3 — memory footprint** (paper §5: "our Windows CE implementation
//! now has a footprint of only 18 Kbytes"; paper §4: bespoke
//! configurations "achieve desired functionality while minimising memory
//! footprint").
//!
//! This is a *report-style* experiment: the interesting output is the
//! footprint table printed to stderr (captured in EXPERIMENTS.md), with
//! a criterion series over the cost of *computing* the footprint via the
//! architecture meta-model (it must stay cheap enough to run online).
//!
//! We cannot compare absolute bytes with a 2003 Windows CE binary; the
//! reproduced *shape* is (a) a minimal bespoke configuration is tens of
//! times smaller than a full router, and (b) footprint scales linearly
//! in components and bindings with small constants.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use netkit_bench::netkit_chain;
use netkit_router::api::{register_packet_interfaces, IPACKET_PUSH};
use netkit_router::cf::RouterCf;
use netkit_router::composite::CompositeBuilder;
use netkit_router::elements::{
    ClassifierEngine, Counter, Discard, DropTailQueue, ProtocolRecogniser, WfqScheduler,
};
use opencom::capsule::Capsule;
use opencom::cf::Principal;
use opencom::runtime::Runtime;
use std::sync::Arc;

/// Builds the full Fig-3 style router and returns its capsule.
fn full_router() -> Arc<Capsule> {
    let rt = Runtime::new();
    register_packet_interfaces(&rt);
    let capsule = Capsule::new("full", &rt);
    let cf = RouterCf::new("router", Arc::clone(&capsule));
    let sys = Principal::system();
    let recogniser = capsule.adopt(ProtocolRecogniser::new()).unwrap();
    let classifier = capsule.adopt(ClassifierEngine::new()).unwrap();
    let q_voice = capsule.adopt(DropTailQueue::new(256)).unwrap();
    let q_bulk = capsule.adopt(DropTailQueue::new(1024)).unwrap();
    let sched = capsule
        .adopt(WfqScheduler::new(&[("voice", 4.0), ("bulk", 1.0)]))
        .unwrap();
    let counter = capsule.adopt(Counter::new()).unwrap();
    let sink = capsule.adopt(Discard::new()).unwrap();
    for id in [
        recogniser, classifier, q_voice, q_bulk, sched, counter, sink,
    ] {
        cf.plug(&sys, id).unwrap();
    }
    cf.bind(&sys, recogniser, "out", "ipv4", classifier, IPACKET_PUSH)
        .unwrap();
    cf.bind(&sys, classifier, "out", "voice", q_voice, IPACKET_PUSH)
        .unwrap();
    cf.bind(&sys, classifier, "out", "bulk", q_bulk, IPACKET_PUSH)
        .unwrap();
    cf.bind(
        &sys,
        sched,
        "in",
        "voice",
        q_voice,
        netkit_router::api::IPACKET_PULL,
    )
    .unwrap();
    cf.bind(
        &sys,
        sched,
        "in",
        "bulk",
        q_bulk,
        netkit_router::api::IPACKET_PULL,
    )
    .unwrap();
    cf.bind(&sys, counter, "out", "", sink, IPACKET_PUSH)
        .unwrap();
    capsule
}

fn report() {
    eprintln!("\n== E3 footprint report (bytes, architecture meta-model estimate) ==");

    // Bespoke minimal configuration: one counter into a discard.
    let minimal = netkit_chain(1).expect("rig");
    eprintln!(
        "minimal_forwarder(1 stage + sink): {:>8}",
        minimal.capsule.footprint_bytes()
    );

    // Marginal cost per component/binding: difference between chains.
    let c8 = netkit_chain(8).expect("rig");
    let c16 = netkit_chain(16).expect("rig");
    let marginal = (c16.capsule.footprint_bytes() - c8.capsule.footprint_bytes()) as f64 / 8.0;
    eprintln!("chain8:  {:>8}", c8.capsule.footprint_bytes());
    eprintln!("chain16: {:>8}", c16.capsule.footprint_bytes());
    eprintln!("marginal_per_stage: {marginal:>8.0}");

    // The full diffserv router.
    let full = full_router();
    eprintln!(
        "full_router(7 elements, 6 bindings): {:>8}",
        full.footprint_bytes()
    );

    // A composite wraps the same content plus controller + CF.
    let rt = Runtime::new();
    register_packet_interfaces(&rt);
    let capsule = Capsule::new("comp", &rt);
    let composite = CompositeBuilder::new("bench.Gw", Arc::clone(&capsule))
        .add("cls", ClassifierEngine::new())
        .unwrap()
        .add("q", DropTailQueue::new(64))
        .unwrap()
        .wire("cls", "out", "default", "q", IPACKET_PUSH)
        .ingress("cls")
        .egress("q")
        .build()
        .unwrap();
    eprintln!(
        "composite(classifier+queue+controller): {:>8}",
        opencom::component::Component::footprint_bytes(composite.as_ref())
    );
    eprintln!(
        "ratio full/minimal: {:.1}x",
        full.footprint_bytes() as f64 / minimal.capsule.footprint_bytes() as f64
    );
}

fn bench(c: &mut Criterion) {
    report();

    let mut group = c.benchmark_group("e3_footprint_meter");
    for n in [4usize, 16, 64] {
        let rig = netkit_chain(n).expect("rig");
        group.bench_with_input(BenchmarkId::new("meter_chain", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(rig.capsule.footprint_bytes()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
