//! **E8 — stratum-4 coordination** (paper §3's RSVP example and §7's
//! Genesis spawning networks).
//!
//! Series:
//! * RSVP reservation setup latency (virtual time from first PATH to
//!   `Established`) vs hop count {2, 4, 8, 16} — expected shape: linear
//!   in hops with a per-hop constant.
//! * Genesis spawn wall time and setup-operation count vs member count
//!   {4, 16, 64} over a line substrate — expected shape: linear in
//!   members (the spawn touches each member once).

use std::net::Ipv4Addr;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use netkit_signaling::genesis::{Genesis, VirtnetDescriptor};
use netkit_signaling::rsvp::{FlowSpec, RsvpAgent, RsvpConfig, RsvpEvent, SessionId};
use netkit_sim::link::LinkSpec;
use netkit_sim::node::NodeId;
use netkit_sim::Simulator;

fn addr(i: usize) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, (i / 256) as u8, (i % 256) as u8 + 1)
}

/// Builds a line of RSVP agents with routes and generous budgets.
fn rsvp_line(sim: &mut Simulator, n: usize) -> Vec<NodeId> {
    let mut ids = Vec::new();
    for i in 0..n {
        let agent = RsvpAgent::new(
            addr(i),
            RsvpConfig {
                refresh_ns: 5_000_000,
                lifetime_mult: 3,
                sweep_ns: 1_000_000,
            },
        );
        ids.push(sim.add_node(Box::new(agent)));
    }
    for w in ids.windows(2) {
        sim.connect(w[0], w[1], LinkSpec::lan());
    }
    for (i, &node) in ids.iter().enumerate() {
        let left = if i == 0 { None } else { Some(0u16) };
        let right = if i == n - 1 {
            None
        } else if i == 0 {
            Some(0u16)
        } else {
            Some(1u16)
        };
        let agent = sim.node_behaviour_mut::<RsvpAgent>(node).unwrap();
        for j in 0..n {
            if j < i {
                if let Some(p) = left {
                    agent.route(addr(j), p);
                }
            } else if j > i {
                if let Some(p) = right {
                    agent.route(addr(j), p);
                }
            }
        }
        for p in [left, right].into_iter().flatten() {
            agent.budget(p, 1_000_000_000);
        }
    }
    ids
}

/// Runs one full reservation and returns the virtual setup time in ns.
fn rsvp_setup_ns(hops: usize) -> u64 {
    let mut sim = Simulator::new(17);
    let ids = rsvp_line(&mut sim, hops + 1);
    let session = SessionId(1);
    sim.node_behaviour_mut::<RsvpAgent>(ids[0])
        .unwrap()
        .open_session(
            session,
            addr(hops),
            FlowSpec {
                bandwidth_bps: 1_000_000,
            },
        );
    // Kick the sender so its refresh timer arms at t=0.
    sim.inject_after(
        ids[0],
        0,
        netkit_packet::packet::PacketBuilder::udp_v4("10.9.9.9", "10.9.9.8", 1, 1).build(),
    );
    let deadline = 1_000_000_000;
    while sim.now().as_nanos() < deadline {
        sim.run_for(100_000);
        let sender = sim.node_behaviour_mut::<RsvpAgent>(ids[0]).unwrap();
        if sender
            .take_events()
            .contains(&RsvpEvent::Established(session))
        {
            return sim.now().as_nanos();
        }
    }
    panic!("reservation did not establish within {deadline}ns");
}

/// A line-substrate adjacency for Genesis.
fn line_adjacency(n: usize) -> Vec<Vec<(u16, usize)>> {
    (0..n)
        .map(|i| {
            let mut links = Vec::new();
            if i > 0 {
                links.push((0u16, i - 1));
            }
            if i + 1 < n {
                links.push((if i > 0 { 1u16 } else { 0u16 }, i + 1));
            }
            links
        })
        .collect()
}

fn report() {
    eprintln!("\n== E8 signaling report ==");
    for hops in [2usize, 4, 8, 16] {
        let ns = rsvp_setup_ns(hops);
        eprintln!(
            "rsvp_setup {hops:>2} hops: {:>9.3} ms (virtual)",
            ns as f64 / 1e6
        );
    }
    for nodes in [4usize, 16, 64] {
        let mut g = Genesis::new(line_adjacency(nodes));
        let start = std::time::Instant::now();
        let (_, r) = g
            .spawn(
                VirtnetDescriptor::new("bench", Ipv4Addr::new(10, 200, 0, 0), 16),
                &(0..nodes).collect::<Vec<_>>(),
            )
            .expect("spawns");
        let elapsed = start.elapsed();
        eprintln!(
            "genesis_spawn {nodes:>3} nodes: {:>8.3} ms wall, {} components, {} bindings, {} filters",
            elapsed.as_secs_f64() * 1e3,
            r.components,
            r.bindings,
            r.filters
        );
    }
}

fn bench(c: &mut Criterion) {
    report();

    let mut group = c.benchmark_group("e8_signaling");
    group.sample_size(10);

    for hops in [2usize, 4, 8, 16] {
        group.bench_with_input(BenchmarkId::new("rsvp_setup", hops), &hops, |b, &h| {
            b.iter(|| std::hint::black_box(rsvp_setup_ns(h)))
        });
    }

    for nodes in [4usize, 16, 64] {
        group.bench_with_input(BenchmarkId::new("genesis_spawn", nodes), &nodes, |b, &n| {
            b.iter(|| {
                let mut g = Genesis::new(line_adjacency(n));
                let (id, r) = g
                    .spawn(
                        VirtnetDescriptor::new("bench", Ipv4Addr::new(10, 200, 0, 0), 16),
                        &(0..n).collect::<Vec<_>>(),
                    )
                    .expect("spawns");
                std::hint::black_box((id, r));
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
