//! **E2 — interception cost** (paper §2: interception "is very efficient
//! as it is implemented at the vtable level").
//!
//! Series: per-packet cost of one pipeline edge with 0, 1, 2, 4, and 8
//! no-op interceptors installed. The claim holds if cost grows roughly
//! linearly with a small per-hook constant, and 0-hook cost equals the
//! plain receptacle path (interception is pay-as-you-go).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};

use netkit_bench::{netkit_chain, test_packet};
use netkit_router::api::{IPacketPush, IPACKET_PUSH};
use opencom::interception::FnHook;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_interception");
    let pkt = test_packet();

    for hooks in [0usize, 1, 2, 4, 8] {
        let rig = netkit_chain(1).expect("rig");
        if hooks > 0 {
            let binding = rig.capsule.arch().binding_records()[0].id;
            let chain = rig.capsule.intercept(binding).unwrap();
            for i in 0..hooks {
                chain.add(FnHook::noop(format!("noop{i}")));
            }
        }
        let entry: Arc<dyn IPacketPush> = rig
            .capsule
            .query_interface(rig.head, IPACKET_PUSH)
            .unwrap()
            .downcast()
            .unwrap();
        group.bench_with_input(BenchmarkId::new("hooks", hooks), &hooks, |b, _| {
            b.iter_batched(
                || pkt.clone(),
                |p| entry.push(p).unwrap(),
                BatchSize::SmallInput,
            )
        });
    }

    // A *counting* hook (the realistic use): measures the marginal cost
    // of doing actual work in the pre-hook.
    let rig = netkit_chain(1).expect("rig");
    let binding = rig.capsule.arch().binding_records()[0].id;
    let chain = rig.capsule.intercept(binding).unwrap();
    let counter = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let c2 = Arc::clone(&counter);
    chain.add(FnHook::new(
        "count",
        move |_ctx| {
            c2.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            Ok(())
        },
        |_ctx| {},
    ));
    let entry: Arc<dyn IPacketPush> = rig
        .capsule
        .query_interface(rig.head, IPACKET_PUSH)
        .unwrap()
        .downcast()
        .unwrap();
    group.bench_function("counting_hook", |b| {
        b.iter_batched(
            || pkt.clone(),
            |p| entry.push(p).unwrap(),
            BatchSize::SmallInput,
        )
    });

    // Un-intercepting restores the raw path: measure after removal.
    let rig = netkit_chain(1).expect("rig");
    let binding = rig.capsule.arch().binding_records()[0].id;
    let chain = rig.capsule.intercept(binding).unwrap();
    chain.add(FnHook::noop("temp"));
    rig.capsule.unintercept(binding).unwrap();
    let entry: Arc<dyn IPacketPush> = rig
        .capsule
        .query_interface(rig.head, IPACKET_PUSH)
        .unwrap()
        .downcast()
        .unwrap();
    group.bench_function("after_unintercept", |b| {
        b.iter_batched(
            || pkt.clone(),
            |p| entry.push(p).unwrap(),
            BatchSize::SmallInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
