//! **E5 — isolation cost and crash containment** (paper §5: "untrusted
//! constituents can be instantiated, and remotely managed by the parent
//! composite, in a separate address-space … inter-component bindings in
//! this case are transparently realised in terms of OS-level IPC
//! mechanisms rather than intra-address space vtables").
//!
//! Series: per-packet push cost in-capsule vs out-of-capsule (the IPC
//! marshalling tax), and the cost of containing a crash + respawning the
//! isolated host. The paper's qualitative claim — isolation is orders
//! more expensive per call but buys crash containment — is the shape to
//! reproduce.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use netkit_bench::{test_packet, test_packet_sized};
use netkit_packet::packet::Packet;
use netkit_router::api::{
    register_packet_interfaces, IPacketPush, PushError, PushResult, PushSkeleton, IPACKET_PUSH,
};
use netkit_router::elements::Discard;
use opencom::capsule::Capsule;
use opencom::component::{Component, ComponentCore, ComponentDescriptor, Registrar};
use opencom::ident::Version;
use opencom::runtime::Runtime;

/// A sink that panics on demand (payload byte 0 == 0xFF), to exercise
/// crash containment.
struct Grenade {
    core: ComponentCore,
}

impl Grenade {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            core: ComponentCore::new(ComponentDescriptor::new(
                "bench.Grenade",
                Version::new(1, 0, 0),
            )),
        })
    }
}

impl IPacketPush for Grenade {
    fn push(&self, pkt: Packet) -> PushResult {
        if pkt.udp_payload_v4().is_ok_and(|p| p.first() == Some(&0xFF)) {
            panic!("boom");
        }
        Ok(())
    }
}

impl Component for Grenade {
    fn core(&self) -> &ComponentCore {
        &self.core
    }
    fn publish(self: Arc<Self>, reg: &Registrar<'_>) {
        let push: Arc<dyn IPacketPush> = self.clone();
        reg.expose(IPACKET_PUSH, &push);
    }
}

fn setup() -> (Arc<Capsule>, Arc<dyn IPacketPush>, Arc<dyn IPacketPush>) {
    let rt = Runtime::new();
    register_packet_interfaces(&rt);
    rt.isolation().register_skeleton(
        "bench.IsolatedSink",
        Box::new(|| PushSkeleton::new(Discard::new())),
    );
    let capsule = Capsule::new("e5", &rt);

    let in_proc = Discard::new();
    let in_id = capsule.adopt(in_proc).unwrap();
    let in_push: Arc<dyn IPacketPush> = capsule
        .query_interface(in_id, IPACKET_PUSH)
        .unwrap()
        .downcast()
        .unwrap();

    let iso = capsule
        .instantiate_isolated("bench.IsolatedSink", &[IPACKET_PUSH])
        .unwrap();
    let iso_push: Arc<dyn IPacketPush> = capsule
        .query_interface(iso, IPACKET_PUSH)
        .unwrap()
        .downcast()
        .unwrap();
    (capsule, in_push, iso_push)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_isolation");
    let (_capsule, in_push, iso_push) = setup();

    // In-capsule vs isolated, at two payload sizes (marshalling scales
    // with bytes copied).
    for payload in [64usize, 1400] {
        let pkt = test_packet_sized(payload);
        group.bench_function(format!("in_capsule_{payload}B"), |b| {
            b.iter_batched(
                || pkt.clone(),
                |p| in_push.push(p).unwrap(),
                BatchSize::SmallInput,
            )
        });
        let pkt = test_packet_sized(payload);
        group.bench_function(format!("isolated_{payload}B"), |b| {
            b.iter_batched(
                || pkt.clone(),
                |p| iso_push.push(p).unwrap(),
                BatchSize::SmallInput,
            )
        });
    }

    // Crash containment: a grenade hosted isolated takes down only
    // itself; measure detect+respawn cost.
    {
        let rt = Runtime::new();
        register_packet_interfaces(&rt);
        rt.isolation().register_skeleton(
            "bench.Grenade",
            Box::new(|| PushSkeleton::new(Grenade::new())),
        );
        let capsule = Capsule::new("e5-crash", &rt);
        let iso = capsule
            .instantiate_isolated("bench.Grenade", &[IPACKET_PUSH])
            .unwrap();
        let push: Arc<dyn IPacketPush> = capsule
            .query_interface(iso, IPACKET_PUSH)
            .unwrap()
            .downcast()
            .unwrap();
        let control = capsule.isolation_control(iso).expect("isolated");

        let mut boom = test_packet();
        {
            // First payload byte 0xFF triggers the panic.
            let data = boom.data_mut();
            let len = data.len();
            data[len - 64] = 0xFF;
        }

        group.bench_function("crash_contain_respawn", |b| {
            b.iter(|| {
                let err = push.push(boom.clone()).unwrap_err();
                assert!(matches!(err, PushError::Crashed(_) | PushError::Veto(_)));
                control.respawn();
                // The respawned host serves again.
                push.push(test_packet()).unwrap();
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
