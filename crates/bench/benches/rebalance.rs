//! **E10 — elephant-flow skew and reflective rebalancing** (ROADMAP
//! "work stealing / rebalancing for skewed flow distributions").
//!
//! Workload per iteration: 64 batches × 32 packets (2048 packets),
//! RSS-stamped so that **one elephant flow carries 50% of the
//! packets** and the remaining 50% (six mouse flows) hash to buckets
//! congruent to the elephant's shard — under the static identity
//! table, every packet lands on shard 0 while its siblings idle, the
//! exact pathology the `rebalance` subsystem exists to correct.
//!
//! Series (each at 2/4/8 workers):
//!
//! * `elephant_static` — the skewed load through the identity table;
//! * `elephant_rebalanced` — the same load after one profiling window
//!   and a `RebalancePolicy` migration (mice spread, elephant pinned);
//! * `elephant_uniform` — the same offered load with uniform stamps:
//!   the no-skew floor rebalancing aims back towards;
//! * `rebalance_install` — the control-plane cost of one
//!   `install_bucket_map` epoch (quiesce + table swap), i.e. what a
//!   migration pauses the pipeline for.
//!
//! **Host caveat (single-CPU container): the static/rebalanced gap in
//! wall-clock only appears on a multi-core host**, where throughput is
//! bottleneck-shard service time. On one CPU the worker threads
//! serialise and every placement costs the same total work; see
//! `crates/bench/NOTES.md` for the measured decomposition and the
//! makespan model (also asserted structurally by
//! `tests/rebalance_elephant.rs`: rebalancing drops the
//! most-loaded-shard share from 100% to ≤ 62.5% of packets).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};

use netkit_bench::{netkit_sharded_chain, test_packet};
use netkit_kernel::shard::ShardSpec;
use netkit_packet::batch::PacketBatch;
use netkit_packet::packet::Packet;
use netkit_router::shard::{RebalancePolicy, ShardedPipeline};

const BATCH: usize = 32;
const CHAIN: usize = 12;
const BATCHES_PER_ITER: usize = 64;

/// The skewed offered load: per 32-packet batch, 16 packets of the
/// elephant (bucket 0) and 16 spread over six mouse buckets, all
/// congruent to shard 0 under the identity table at `workers` shards.
fn skewed_bursts(workers: usize) -> Vec<Vec<Packet>> {
    let mice: Vec<u64> = (1..=6).map(|k| (k * workers) as u64).collect();
    (0..BATCHES_PER_ITER)
        .map(|_| {
            (0..BATCH)
                .map(|i| {
                    let mut p = test_packet();
                    p.meta.rss_hash = Some(if i % 2 == 0 {
                        0 // the elephant's bucket: 50% of all packets
                    } else {
                        mice[(i / 2) % mice.len()]
                    });
                    p
                })
                .collect()
        })
        .collect()
}

/// The same offered load with uniform stamps — the no-skew floor.
fn uniform_bursts() -> Vec<Vec<Packet>> {
    (0..BATCHES_PER_ITER as u64)
        .map(|b| {
            (0..BATCH)
                .map(|i| {
                    let mut p = test_packet();
                    p.meta.rss_hash = Some(b * BATCH as u64 + i as u64);
                    p
                })
                .collect()
        })
        .collect()
}

fn drive(pipe: &ShardedPipeline, bursts: &[Vec<Packet>]) {
    for pkts in bursts {
        pipe.dispatch(PacketBatch::from_packets(pkts.clone()));
    }
    pipe.flush();
}

fn bench_elephant(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_elephant_rebalance");
    group.throughput(Throughput::Elements((BATCH * BATCHES_PER_ITER) as u64));

    for workers in [2usize, 4, 8] {
        let spec = ShardSpec::new(workers);
        let skewed = skewed_bursts(workers);
        let uniform = uniform_bursts();
        let clone_bursts = |bursts: &[Vec<Packet>]| -> Vec<PacketBatch> {
            bursts
                .iter()
                .map(|pkts| PacketBatch::from_packets(pkts.clone()))
                .collect()
        };

        // Static identity steering: everything funnels to shard 0.
        let (pipe, _sinks) = netkit_sharded_chain(CHAIN, spec).expect("rig");
        group.bench_with_input(
            BenchmarkId::new("elephant_static", workers),
            &workers,
            |b, _| {
                b.iter_batched(
                    || clone_bursts(&skewed),
                    |batches| {
                        for batch in batches {
                            pipe.dispatch(batch);
                        }
                        pipe.flush();
                    },
                    BatchSize::SmallInput,
                )
            },
        );
        assert_eq!(
            pipe.shard_loads().iter().filter(|l| l.packets > 0).count(),
            1,
            "static skew must pin one shard"
        );
        pipe.shutdown();

        // Rebalanced: one profiling window, one migration, then the
        // measured steady state runs the planned table.
        let (pipe, _sinks) = netkit_sharded_chain(CHAIN, spec).expect("rig");
        drive(&pipe, &skewed); // profiling window
        let outcome = pipe.rebalance(&RebalancePolicy::default(), &[]);
        if workers > 1 {
            let (plan, _) = outcome.expect("full colocation must trigger");
            assert!(plan.imbalance_after < plan.imbalance_before);
        }
        group.bench_with_input(
            BenchmarkId::new("elephant_rebalanced", workers),
            &workers,
            |b, _| {
                b.iter_batched(
                    || clone_bursts(&skewed),
                    |batches| {
                        for batch in batches {
                            pipe.dispatch(batch);
                        }
                        pipe.flush();
                    },
                    BatchSize::SmallInput,
                )
            },
        );
        assert!(
            pipe.shard_loads().iter().filter(|l| l.packets > 0).count() > 1,
            "rebalanced load must spread"
        );
        pipe.shutdown();

        // Uniform floor: what no-skew costs on this host.
        let (pipe, _sinks) = netkit_sharded_chain(CHAIN, spec).expect("rig");
        group.bench_with_input(
            BenchmarkId::new("elephant_uniform", workers),
            &workers,
            |b, _| {
                b.iter_batched(
                    || clone_bursts(&uniform),
                    |batches| {
                        for batch in batches {
                            pipe.dispatch(batch);
                        }
                        pipe.flush();
                    },
                    BatchSize::SmallInput,
                )
            },
        );
        pipe.shutdown();

        // Control-plane cost of one migration epoch: quiesce all
        // workers, swap the table, release. Alternates between two
        // tables so every install really moves buckets.
        let (pipe, _sinks) = netkit_sharded_chain(CHAIN, spec).expect("rig");
        let identity = pipe.bucket_map();
        let mut shifted = identity.clone();
        if workers > 1 {
            for bucket in 0..netkit_packet::steer::RSS_BUCKETS {
                shifted.set(bucket, (identity.shard_of_bucket(bucket) + 1) % workers);
            }
        }
        let mut flip = false;
        group.bench_with_input(
            BenchmarkId::new("rebalance_install", workers),
            &workers,
            |b, _| {
                b.iter(|| {
                    flip = !flip;
                    let map = if flip {
                        shifted.clone()
                    } else {
                        identity.clone()
                    };
                    criterion::black_box(pipe.install_bucket_map(map, &[]));
                })
            },
        );
        pipe.shutdown();
    }

    group.finish();
}

criterion_group!(benches, bench_elephant);
criterion_main!(benches);
