//! **E10 — elephant-flow skew and reflective rebalancing** (ROADMAP
//! "work stealing / rebalancing for skewed flow distributions").
//!
//! Workload per iteration: 64 batches × 32 packets (2048 packets),
//! RSS-stamped so that **one elephant flow carries 50% of the
//! packets** and the remaining 50% (six mouse flows) hash to buckets
//! congruent to the elephant's shard — under the static identity
//! table, every packet lands on shard 0 while its siblings idle, the
//! exact pathology the `rebalance` subsystem exists to correct.
//!
//! Series (each at 2/4/8 workers):
//!
//! * `elephant_static` — the skewed load through the identity table;
//! * `elephant_rebalanced` — the same load after one profiling window
//!   and a `RebalancePolicy` migration (mice spread, elephant pinned);
//! * `elephant_uniform` — the same offered load with uniform stamps:
//!   the no-skew floor rebalancing aims back towards;
//! * `rebalance_install` — the control-plane cost of one
//!   `install_bucket_map` epoch (quiesce + table swap), i.e. what a
//!   migration pauses the pipeline for.
//!
//! **Host caveat (single-CPU container): the static/rebalanced gap in
//! wall-clock only appears on a multi-core host**, where throughput is
//! bottleneck-shard service time. On one CPU the worker threads
//! serialise and every placement costs the same total work; see
//! `crates/bench/NOTES.md` for the measured decomposition and the
//! makespan model (also asserted structurally by
//! `tests/rebalance_elephant.rs`: rebalancing drops the
//! most-loaded-shard share from 100% to ≤ 62.5% of packets).
//!
//! **E11 — autonomous control-loop turns** (`e11_autonomous_rebalance`)
//! prices what the reflective loop costs *per tick* when it runs with
//! no external caller, one series per decision outcome:
//!
//! * `control_turn_gathering` — idle dataplane, sub-min window: the
//!   floor every backed-off tick pays (snapshot + gate);
//! * `control_turn_hold` — judged-but-declined balanced window,
//!   including the weighted plan and the decay step (the steady-state
//!   no-op tick on a busy, balanced dataplane);
//! * `control_cycle_migrate` — the full detect+adapt cycle: re-seed a
//!   colocated 256-packet window, weighted decide, epoch-quiesced
//!   install, window retire (the bare install epoch is the E10
//!   `rebalance_install` row; subtract it and the dispatch floor for
//!   the decide-only share);
//! * `window_decay` — one exponential decay pass over all 256 bucket
//!   meters, the per-held-tick aging cost in isolation.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};

use netkit_bench::{netkit_sharded_chain, test_packet};
use netkit_kernel::shard::ShardSpec;
use netkit_packet::batch::PacketBatch;
use netkit_packet::packet::Packet;
use netkit_router::shard::{
    RebalanceController, RebalancePolicy, ShardedPipeline, WeightedRebalancePolicy,
};

const BATCH: usize = 32;
const CHAIN: usize = 12;
const BATCHES_PER_ITER: usize = 64;

/// The skewed offered load: per 32-packet batch, 16 packets of the
/// elephant (bucket 0) and 16 spread over six mouse buckets, all
/// congruent to shard 0 under the identity table at `workers` shards.
fn skewed_bursts(workers: usize) -> Vec<Vec<Packet>> {
    let mice: Vec<u64> = (1..=6).map(|k| (k * workers) as u64).collect();
    (0..BATCHES_PER_ITER)
        .map(|_| {
            (0..BATCH)
                .map(|i| {
                    let mut p = test_packet();
                    p.meta.rss_hash = Some(if i % 2 == 0 {
                        0 // the elephant's bucket: 50% of all packets
                    } else {
                        mice[(i / 2) % mice.len()]
                    });
                    p
                })
                .collect()
        })
        .collect()
}

/// The same offered load with uniform stamps — the no-skew floor.
fn uniform_bursts() -> Vec<Vec<Packet>> {
    (0..BATCHES_PER_ITER as u64)
        .map(|b| {
            (0..BATCH)
                .map(|i| {
                    let mut p = test_packet();
                    p.meta.rss_hash = Some(b * BATCH as u64 + i as u64);
                    p
                })
                .collect()
        })
        .collect()
}

fn drive(pipe: &ShardedPipeline, bursts: &[Vec<Packet>]) {
    for pkts in bursts {
        pipe.dispatch(PacketBatch::from_packets(pkts.clone()));
    }
    pipe.flush();
}

fn bench_elephant(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_elephant_rebalance");
    group.throughput(Throughput::Elements((BATCH * BATCHES_PER_ITER) as u64));

    for workers in [2usize, 4, 8] {
        let spec = ShardSpec::new(workers);
        let skewed = skewed_bursts(workers);
        let uniform = uniform_bursts();
        let clone_bursts = |bursts: &[Vec<Packet>]| -> Vec<PacketBatch> {
            bursts
                .iter()
                .map(|pkts| PacketBatch::from_packets(pkts.clone()))
                .collect()
        };

        // Static identity steering: everything funnels to shard 0.
        let (pipe, _sinks) = netkit_sharded_chain(CHAIN, spec).expect("rig");
        group.bench_with_input(
            BenchmarkId::new("elephant_static", workers),
            &workers,
            |b, _| {
                b.iter_batched(
                    || clone_bursts(&skewed),
                    |batches| {
                        for batch in batches {
                            pipe.dispatch(batch);
                        }
                        pipe.flush();
                    },
                    BatchSize::SmallInput,
                )
            },
        );
        assert_eq!(
            pipe.shard_loads().iter().filter(|l| l.packets > 0).count(),
            1,
            "static skew must pin one shard"
        );
        pipe.shutdown();

        // Rebalanced: one profiling window, one migration, then the
        // measured steady state runs the planned table.
        let (pipe, _sinks) = netkit_sharded_chain(CHAIN, spec).expect("rig");
        drive(&pipe, &skewed); // profiling window
        let outcome = pipe.rebalance(&RebalancePolicy::default(), &[]);
        if workers > 1 {
            let (plan, _) = outcome.expect("full colocation must trigger");
            assert!(plan.imbalance_after < plan.imbalance_before);
        }
        group.bench_with_input(
            BenchmarkId::new("elephant_rebalanced", workers),
            &workers,
            |b, _| {
                b.iter_batched(
                    || clone_bursts(&skewed),
                    |batches| {
                        for batch in batches {
                            pipe.dispatch(batch);
                        }
                        pipe.flush();
                    },
                    BatchSize::SmallInput,
                )
            },
        );
        assert!(
            pipe.shard_loads().iter().filter(|l| l.packets > 0).count() > 1,
            "rebalanced load must spread"
        );
        pipe.shutdown();

        // Uniform floor: what no-skew costs on this host.
        let (pipe, _sinks) = netkit_sharded_chain(CHAIN, spec).expect("rig");
        group.bench_with_input(
            BenchmarkId::new("elephant_uniform", workers),
            &workers,
            |b, _| {
                b.iter_batched(
                    || clone_bursts(&uniform),
                    |batches| {
                        for batch in batches {
                            pipe.dispatch(batch);
                        }
                        pipe.flush();
                    },
                    BatchSize::SmallInput,
                )
            },
        );
        pipe.shutdown();

        // Control-plane cost of one migration epoch: quiesce all
        // workers, swap the table, release. Alternates between two
        // tables so every install really moves buckets.
        let (pipe, _sinks) = netkit_sharded_chain(CHAIN, spec).expect("rig");
        let identity = pipe.bucket_map();
        let mut shifted = identity.clone();
        if workers > 1 {
            for bucket in 0..netkit_packet::steer::RSS_BUCKETS {
                shifted.set(bucket, (identity.shard_of_bucket(bucket) + 1) % workers);
            }
        }
        let mut flip = false;
        group.bench_with_input(
            BenchmarkId::new("rebalance_install", workers),
            &workers,
            |b, _| {
                b.iter(|| {
                    flip = !flip;
                    let map = if flip {
                        shifted.clone()
                    } else {
                        identity.clone()
                    };
                    criterion::black_box(pipe.install_bucket_map(map, &[]));
                })
            },
        );
        pipe.shutdown();
    }

    group.finish();
}

fn controller(min_samples: u64, decay: f64) -> RebalanceController {
    RebalanceController::new(
        WeightedRebalancePolicy {
            base: RebalancePolicy {
                max_imbalance: 1.25,
                min_samples,
            },
            pressure_weight: 1.0,
            decay,
        },
        0,
    )
}

/// A burst fully colocated on shard 0 under the identity table at
/// `workers` shards: elephant bucket 0 (50%) plus six congruent mice.
fn colocated_burst(workers: usize, n: usize) -> PacketBatch {
    (0..n as u64)
        .map(|i| {
            let mut p = test_packet();
            p.meta.rss_hash = Some(if i % 2 == 0 {
                0
            } else {
                (workers as u64) * (1 + i % 6)
            });
            p
        })
        .collect()
}

/// A burst spread evenly: one bucket per shard, equal counts.
fn balanced_burst(workers: usize, n: usize) -> PacketBatch {
    (0..n as u64)
        .map(|i| {
            let mut p = test_packet();
            p.meta.rss_hash = Some(i % workers as u64);
            p
        })
        .collect()
}

fn bench_autonomous(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_autonomous_rebalance");

    for workers in [2usize, 4, 8] {
        let spec = ShardSpec::new(workers);

        // Gathering: the idle-dataplane tick floor (empty window).
        let (pipe, _sinks) = netkit_sharded_chain(CHAIN, spec).expect("rig");
        let mut ctl = controller(64, 0.75);
        group.bench_with_input(
            BenchmarkId::new("control_turn_gathering", workers),
            &workers,
            |b, _| {
                b.iter(|| criterion::black_box(pipe.control_turn(&mut ctl, &[])));
            },
        );
        assert_eq!(ctl.migrations(), 0, "an empty window must never act");
        pipe.shutdown();

        // Hold: judged balanced window, weighted plan + decay pass per
        // tick. decay = 1.0 keeps the window judged across however
        // many calibration turns the harness batches (the decay pass
        // itself is still executed; `window_decay` prices a shedding
        // pass separately).
        let (pipe, _sinks) = netkit_sharded_chain(CHAIN, spec).expect("rig");
        let mut ctl = controller(64, 1.0);
        group.bench_with_input(
            BenchmarkId::new("control_turn_hold", workers),
            &workers,
            |b, _| {
                b.iter_batched(
                    || {
                        pipe.dispatch(balanced_burst(workers, 256));
                        pipe.flush();
                    },
                    |()| criterion::black_box(pipe.control_turn(&mut ctl, &[])),
                    BatchSize::SmallInput,
                )
            },
        );
        assert_eq!(ctl.migrations(), 0, "balance must hold, not migrate");
        assert!(ctl.holds() > 0);
        pipe.shutdown();

        // Migrate: the full adaptation cycle — re-skew the evidence
        // (identity install + one colocated 256-packet window) and
        // take the migrating turn. The row prices detect+adapt
        // end-to-end; subtract E10's `rebalance_install` (the bare
        // epoch) and the dispatch floor for the decide-only share.
        let (pipe, _sinks) = netkit_sharded_chain(CHAIN, spec).expect("rig");
        let identity = pipe.bucket_map();
        let mut ctl = controller(64, 0.75);
        group.bench_with_input(
            BenchmarkId::new("control_cycle_migrate", workers),
            &workers,
            |b, _| {
                b.iter(|| {
                    pipe.install_bucket_map(identity.clone(), &[]);
                    pipe.dispatch(colocated_burst(workers, 256));
                    pipe.flush();
                    let out = pipe.control_turn(&mut ctl, &[]);
                    assert!(out.is_some(), "colocation must migrate every cycle");
                    criterion::black_box(out)
                })
            },
        );
        assert!(ctl.migrations() > 0);
        pipe.shutdown();
    }

    // Window decay in isolation: one pass over all 256 bucket meters.
    let (pipe, _sinks) = netkit_sharded_chain(CHAIN, ShardSpec::new(4)).expect("rig");
    pipe.dispatch(balanced_burst(4, 256));
    pipe.flush();
    group.bench_function("window_decay", |b| {
        b.iter(|| pipe.decay_bucket_loads(criterion::black_box(0.999)));
    });
    pipe.shutdown();

    group.finish();
}

criterion_group!(benches, bench_elephant, bench_autonomous);
criterion_main!(benches);
