//! **E7 — component placement on the IXP1200** (paper §5: "in the IXP
//! environment we need to additionally place components … according to
//! performance and load-balancing considerations. We think that the CF
//! itself should contain the 'intelligence' to transparently manage this
//! placement, but with the possibility to control/override this via a
//! 'placement' meta-model").
//!
//! Report: sustained packets/second of the reference forwarding pipeline
//! under each placement policy on the simulated IXP1200 (StrongARM +
//! 6 micro-engines × 4 hardware contexts, scratch/SRAM/SDRAM costs).
//! Expected shape: all-StrongARM ≪ round-robin ≤ load-balanced, with the
//! manual override able to match load-balanced.
//!
//! The criterion series measures the *placement decision* cost itself —
//! it must be cheap enough for the CF to run on every reconfiguration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use netkit_kernel::ixp::{
    reference_forwarding_pipeline, IxpModel, Placement, PlacementPolicy, Processor,
};

fn report() {
    let model = IxpModel::new();
    let spec = reference_forwarding_pipeline();
    eprintln!("\n== E7 placement report (reference IPv4 pipeline) ==");
    let mut manual_best: Option<Placement> = None;
    for (name, policy) in [
        ("all_strongarm", PlacementPolicy::AllStrongArm),
        (
            "round_robin_uengines",
            PlacementPolicy::RoundRobinMicroengines,
        ),
        ("load_balanced (CF auto)", PlacementPolicy::LoadBalanced),
    ] {
        let placement = model.place(&spec, &policy);
        let r = model.evaluate(&spec, &placement).expect("valid placement");
        eprintln!(
            "{name:>24}: {:>12.0} pps  bottleneck={} handoffs={}",
            r.throughput_pps, r.bottleneck, r.handoffs
        );
        if name.starts_with("load_balanced") {
            manual_best = Some(placement);
        }
    }
    // The meta-model override: hand the CF an explicit placement.
    if let Some(best) = manual_best {
        let manual = PlacementPolicy::Manual(best);
        let placement = model.place(&spec, &manual);
        let r = model.evaluate(&spec, &placement).expect("valid placement");
        eprintln!(
            "{:>24}: {:>12.0} pps  bottleneck={} handoffs={}",
            "manual override", r.throughput_pps, r.bottleneck, r.handoffs
        );
    }
    // Per-stage costs on each processor class (the data the policy uses).
    eprintln!("-- per-stage cycles (StrongARM vs micro-engine) --");
    for stage in &spec.stages {
        eprintln!(
            "{:>18}: sa={:>6.0}  ueng={:>6.0}",
            stage.name,
            model.stage_cycles_on(stage, Processor::StrongArm),
            model.stage_cycles_on(stage, Processor::Microengine(0)),
        );
    }
}

fn bench(c: &mut Criterion) {
    report();

    let model = IxpModel::new();
    let spec = reference_forwarding_pipeline();
    let mut group = c.benchmark_group("e7_placement_decision");
    for (name, policy) in [
        ("all_strongarm", PlacementPolicy::AllStrongArm),
        ("round_robin", PlacementPolicy::RoundRobinMicroengines),
        ("load_balanced", PlacementPolicy::LoadBalanced),
    ] {
        group.bench_with_input(BenchmarkId::new("place", name), &policy, |b, p| {
            b.iter(|| {
                let placement = model.place(&spec, p);
                std::hint::black_box(model.evaluate(&spec, &placement).unwrap());
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
