//! **E12 — the stateful flow subsystem** (ROADMAP "stateful flow
//! subsystem"): what per-flow state costs on the per-packet path, and
//! what the sketch-informed control loop costs per turn.
//!
//! Series:
//!
//! * `flow_table/*` — the shared substrate: canonical-key lookups on a
//!   warm table (`lookup_hit`, the steady-state cost every stateful
//!   element pays per packet) and inserts against a full table
//!   (`insert_evict`: LRU unlink + reuse, the churn worst case);
//! * `conntrack/*` — 32-packet batches through `ConnTracker`:
//!   `batch_established` (one warm flow, pure table hits) vs
//!   `batch_new_flows` (every batch all-miss: admission + eviction);
//! * `nat44/batch_outbound` — 32-packet batches through `Nat44` over
//!   established bindings: two header rewrites + incremental checksum
//!   patches per packet on top of the table hit;
//! * `lb/batch_sticky` — 32-packet batches through `L4LoadBalancer`
//!   with warm sticky entries (rendezvous hash only on first packet);
//! * `sketch/record_batch` — per-shard byte metering of a 32-packet
//!   stamped batch (4 count-min rows + top-k per packet, the
//!   worker-side cost of heavy-hitter evidence);
//! * `sketch/merge_4_shards` — control-plane merge of four shards'
//!   top-32 lists, the per-turn evidence roll-up;
//! * `control/turn_with_evidence` — a full judged control turn at 4
//!   workers with `heavy_blend` on: sketch snapshots, merge, blended
//!   judgment, decay (compare E11 `control_turn_hold` for the
//!   packet-only floor).
//!
//! Run with `NETKIT_BENCH_JSON=BENCH_flow.json cargo bench --bench
//! flow` to emit the machine-readable series report alongside the
//! printed lines (see `crates/bench/NOTES.md`).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use netkit_bench::{netkit_sharded_chain, test_packet, test_packet_sized};
use netkit_kernel::shard::ShardSpec;
use netkit_packet::batch::PacketBatch;
use netkit_packet::flow::FlowKey;
use netkit_packet::packet::{Packet, PacketBuilder};
use netkit_packet::sketch::{FlowSketch, SketchConfig, SpaceSaving};
use netkit_router::api::IPacketPush;
use netkit_router::flow::{ConnTracker, FlowTable, L4LoadBalancer, Nat44, Nat44Config};
use netkit_router::shard::{RebalanceController, RebalancePolicy, WeightedRebalancePolicy};

const BATCH: usize = 32;

fn flow_packet(src_port: u16, dst_port: u16) -> Packet {
    PacketBuilder::udp_v4("192.0.2.1", "10.0.7.9", src_port, dst_port)
        .payload_len(64)
        .build()
}

/// A batch of `BATCH` packets from one established flow.
fn one_flow_batch() -> PacketBatch {
    (0..BATCH).map(|_| test_packet()).collect()
}

/// A batch of `BATCH` packets, each a distinct flow drawn from `round`.
fn fresh_flows_batch(round: u16) -> PacketBatch {
    (0..BATCH as u16)
        .map(|i| flow_packet(1 + round, 1000 + i))
        .collect()
}

fn bench_flow_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_flow_table");
    group.throughput(Throughput::Elements(1));

    // Steady state: a warm 4096-entry table, hits only.
    let mut table: FlowTable<u64> = FlowTable::new(4096, u64::MAX);
    let keys: Vec<FlowKey> = (0..4096u16)
        .map(|i| {
            FlowKey::from_packet(&flow_packet(i / 256 + 1, i % 256 + 1))
                .unwrap()
                .canonical()
        })
        .collect();
    for (now, key) in keys.iter().enumerate() {
        *table.get_or_insert_with(*key, now as u64, || 0).value += 1;
    }
    let mut now = keys.len() as u64;
    let mut cursor = 0usize;
    let warmup_misses = table.stats().misses;
    group.bench_function("lookup_hit", |b| {
        b.iter(|| {
            cursor = (cursor + 1) % keys.len();
            now += 1;
            criterion::black_box(table.get_mut(&keys[cursor], now).is_some())
        })
    });
    assert_eq!(
        table.stats().misses,
        warmup_misses,
        "warm table must only hit"
    );

    // Churn worst case: every insert against a full table evicts the
    // LRU entry (distinct key per call, far outside the warm set).
    let mut salt = 0u32;
    group.bench_function("insert_evict", |b| {
        b.iter(|| {
            salt = salt.wrapping_add(1);
            now += 1;
            let key = FlowKey::from_packet(&flow_packet(
                (salt >> 16) as u16 | 0x4000,
                salt as u16 | 0x4000,
            ))
            .unwrap()
            .canonical();
            let admission = table.get_or_insert_with(key, now, || 0);
            criterion::black_box(admission.evicted.is_some())
        })
    });
    assert_eq!(table.len(), table.capacity(), "stays full under churn");
    assert!(table.stats().lru_evictions > 0);

    group.finish();
}

fn bench_elements(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_stateful_elements");
    group.throughput(Throughput::Elements(BATCH as u64));

    // ConnTracker, steady state: one established flow, all hits.
    let tracker = ConnTracker::new();
    tracker.push_batch(one_flow_batch());
    group.bench_function("conntrack_batch_established", |b| {
        b.iter_batched(
            one_flow_batch,
            |batch| criterion::black_box(tracker.push_batch(batch)),
            BatchSize::SmallInput,
        )
    });
    assert_eq!(tracker.len(), 1, "one flow, however many batches");

    // ConnTracker, churn: every batch is 32 brand-new flows against a
    // deliberately small table, so each packet pays admission + LRU
    // eviction.
    let churn = ConnTracker::with_table(64, u64::MAX);
    churn.push_batch(fresh_flows_batch(60_000)); // fill to capacity...
    churn.push_batch(fresh_flows_batch(60_001)); // ...so every round evicts
    let mut round = 0u16;
    group.bench_function("conntrack_batch_new_flows", |b| {
        b.iter_batched(
            || {
                round = round.wrapping_add(1);
                fresh_flows_batch(round)
            },
            |batch| criterion::black_box(churn.push_batch(batch)),
            BatchSize::SmallInput,
        )
    });
    assert!(churn.table_stats().lru_evictions > 0);

    // Nat44, steady state: 32 established bindings, two rewrites +
    // checksum patches per packet.
    let nat = Nat44::new(Nat44Config::default());
    nat.push_batch(fresh_flows_batch(0));
    group.bench_function("nat44_batch_outbound", |b| {
        b.iter_batched(
            || fresh_flows_batch(0),
            |batch| criterion::black_box(nat.push_batch(batch)),
            BatchSize::SmallInput,
        )
    });
    assert_eq!(nat.stats().exhausted, 0);
    assert_eq!(nat.bindings(), BATCH);

    // L4 load balancer, steady state: warm sticky entries to 4
    // backends behind one VIP.
    let lb = L4LoadBalancer::new("10.0.7.9".parse().unwrap(), 5001, 4096, u64::MAX);
    for i in 0..4u8 {
        lb.add_backend(format!("10.1.0.{}", i + 1).parse().unwrap(), 8080);
    }
    let vip_batch = || -> PacketBatch {
        (0..BATCH as u16)
            .map(|i| flow_packet(1000 + i, 5001))
            .collect()
    };
    lb.push_batch(vip_batch());
    group.bench_function("lb_batch_sticky", |b| {
        b.iter_batched(
            vip_batch,
            |batch| criterion::black_box(lb.push_batch(batch)),
            BatchSize::SmallInput,
        )
    });
    assert!(
        lb.backends().iter().map(|s| s.flows).sum::<u64>() >= BATCH as u64,
        "every flow pinned to a backend"
    );

    group.finish();
}

fn bench_sketch(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_flow_sketch");

    // Worker-side metering: one stamped 32-packet batch, bytes per
    // flow into 4 count-min rows + the top-k monitor.
    let sketch = FlowSketch::new(SketchConfig::default());
    let stamped: PacketBatch = (0..BATCH as u64)
        .map(|i| {
            let mut p = test_packet_sized(if i % 8 == 0 { 1200 } else { 64 });
            p.meta.rss_hash = Some(i % 12);
            p
        })
        .collect();
    group.throughput(Throughput::Elements(BATCH as u64));
    group.bench_function("record_batch", |b| {
        b.iter(|| sketch.record_batch(criterion::black_box(&stamped)))
    });
    assert!(sketch.total_bytes() > 0);

    // Control-plane roll-up: merge four shards' top-32 lists.
    let shard_tops: Vec<Vec<netkit_packet::sketch::HeavyHitter>> = (0..4)
        .map(|shard| {
            let s = FlowSketch::new(SketchConfig::default());
            for flow in 0..48u64 {
                s.record(flow * 4 + shard, 64 + flow * 91);
            }
            s.heavy_hitters()
        })
        .collect();
    group.throughput(Throughput::Elements(1));
    group.bench_function("merge_4_shards", |b| {
        b.iter(|| {
            criterion::black_box(SpaceSaving::merge(
                SketchConfig::default().top_capacity,
                &shard_tops,
            ))
        })
    });

    group.finish();
}

fn bench_control_with_evidence(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_heavy_control");

    // A judged control turn with heavy_blend on: per-shard sketch
    // snapshots, the merge, the blended plan, the decay. Balanced
    // traffic so every turn is a Hold (decay = 1.0 keeps the window
    // judged across calibration turns, as in E11).
    let workers = 4;
    let (pipe, _sinks) = netkit_sharded_chain(12, ShardSpec::new(workers)).expect("rig");
    let mut ctl = RebalanceController::new(
        WeightedRebalancePolicy {
            base: RebalancePolicy {
                max_imbalance: 1.25,
                min_samples: 64,
            },
            pressure_weight: 1.0,
            decay: 1.0,
        },
        0,
    )
    .with_heavy_hitters(0.5);
    let balanced_burst = |n: u64| -> PacketBatch {
        (0..n)
            .map(|i| {
                let mut p = test_packet();
                p.meta.rss_hash = Some(i % workers as u64);
                p
            })
            .collect()
    };
    group.bench_function("turn_with_evidence", |b| {
        b.iter_batched(
            || {
                pipe.dispatch(balanced_burst(256));
                pipe.flush();
            },
            |()| criterion::black_box(pipe.control_turn(&mut ctl, &[])),
            BatchSize::SmallInput,
        )
    });
    assert_eq!(ctl.migrations(), 0, "balance must hold");
    assert!(ctl.holds() > 0);
    pipe.shutdown();

    group.finish();
}

criterion_group!(
    benches,
    bench_flow_table,
    bench_elements,
    bench_sketch,
    bench_control_with_evidence
);
criterion_main!(benches);
