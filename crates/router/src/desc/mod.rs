//! Declarative pipeline descriptions — topology as *data*, not code.
//!
//! Every topology in this repository used to be hand-built Rust: adopt
//! the elements, bind the edges, install the filters. This module adds
//! the layer the P4 data-plane line of work argues for — a small typed
//! description model that **validates** against an element schema
//! registry and **compiles** to the real element graph through the
//! factory path both [`ShardedPipeline`](crate::shard::ShardedPipeline)
//! and [`SoloPipeline`](crate::shard::SoloPipeline) already share — and
//! the half that makes it a control plane rather than a config file:
//! [`diff`](diff()) computes a minimal deterministic [`Patch`] between
//! two descriptions, and [`DescBinding::apply_sharded`] executes it
//! under the existing zero-loss migration machinery.
//!
//! The model is deliberately small:
//!
//! * [`PipelineDesc`] — named [`ElementDesc`] nodes with typed
//!   [`Params`], port-wired [`EdgeDesc`] edges, per-node match-action
//!   [`TableEntry`] lists (classifier patterns, routes, VIP→backend
//!   sets), optional bucket→shard steering pins, and an optional
//!   [`ControlDesc`] selecting a
//!   [`DecisionCore`](crate::shard::DecisionCore) by name.
//! * [`PipelineDesc::validate`] — type-checks parameters against the
//!   [`schema`] registry, rejects unknown kinds, dangling edge
//!   endpoints, outputs on sink elements, duplicate single-output
//!   edges, table entries on elements without that table, filter
//!   outputs with no matching edge, unreachable elements, and cycles.
//! * [`Compiler`] — builds a live pipeline from a description (plus
//!   host-supplied *external* element kinds, e.g. a simulator's egress
//!   collector) and returns a [`DescBinding`] that remembers the
//!   compiled object graph so later patches can address it.
//! * [`diff`](diff()) / [`Patch`] / [`DescBinding::apply_sharded`] /
//!   [`DescBinding::apply_solo`] — the incremental control plane. A
//!   param-only diff compiles to a patch with **zero structural
//!   mutations** (hot [`Capsule::replace`](opencom::capsule::Capsule)
//!   swaps and table upserts only) and applies without a pipeline-wide
//!   quiesce; structural patches take exactly one quiesce epoch.
//!
//! # Two descriptions, one diff
//!
//! ```
//! use std::sync::Arc;
//! use netkit_kernel::shard::ShardSpec;
//! use netkit_router::desc::{diff, Compiler, PipelineDesc};
//! use opencom::meta::resources::ResourceManager;
//!
//! let v1 = PipelineDesc::new("edge")
//!     .element_with("guard", "guard", &[("byte_threshold", (1u64 << 20).into())])
//!     .element("ct", "conntrack")
//!     .element("sink", "discard")
//!     .ingress("guard")
//!     .edge("guard", "ct")
//!     .edge("ct", "sink");
//!
//! // Tighten the guard: same topology, one knob changed.
//! let v2 = v1
//!     .clone()
//!     .set_param("guard", "byte_threshold", (512u64 * 1024).into());
//! let patch = diff(&v1, &v2);
//! assert!(patch.param_only());
//!
//! // Apply it to a live pipeline: one hot swap, zero quiesce epochs.
//! let (mut pipe, mut binding) =
//!     Compiler::new().build_solo(&v1, ShardSpec::new(1), Arc::new(ResourceManager::new()))?;
//! let report = binding.apply_solo(&mut pipe, &patch)?;
//! assert_eq!((report.structural, report.replaced, report.epochs), (0, 1, 0));
//! # Ok::<(), opencom::error::Error>(())
//! ```
//!
//! See `ARCHITECTURE.md` §8 for the precise migration semantics and
//! `examples/declarative_pipeline.rs` for a guided tour.

mod compile;
mod diff;
pub mod schema;

pub use compile::{ApplyReport, CompiledShard, Compiler, DescBinding, ElementHandle};
pub use diff::{diff, Patch, PatchOp};

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use opencom::error::{Error, Result};

use crate::api::FilterPattern;
use netkit_packet::steer::RSS_BUCKETS;

use schema::{OutputKind, ParamType, TableKind};

/// A typed parameter value in a description. Parameters are checked
/// against the element's [`schema`] at validation time, so a compile
/// never sees a mistyped value.
#[derive(Clone, Debug, PartialEq)]
pub enum ParamValue {
    /// Unsigned integer (counts, ports, capacities, timeouts).
    Int(u64),
    /// Floating point (control thresholds, blends).
    Float(f64),
    /// Boolean flag.
    Bool(bool),
    /// String (addresses, names).
    Str(String),
}

impl ParamValue {
    /// The value's schema type.
    pub fn param_type(&self) -> ParamType {
        match self {
            ParamValue::Int(_) => ParamType::Int,
            ParamValue::Float(_) => ParamType::Float,
            ParamValue::Bool(_) => ParamType::Bool,
            ParamValue::Str(_) => ParamType::Str,
        }
    }

    pub(crate) fn as_u64(&self) -> Option<u64> {
        match self {
            ParamValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    pub(crate) fn as_f64(&self) -> Option<f64> {
        match self {
            ParamValue::Float(v) => Some(*v),
            ParamValue::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            ParamValue::Str(v) => Some(v),
            _ => None,
        }
    }

    fn render(&self) -> String {
        match self {
            ParamValue::Int(v) => format!("{v}"),
            ParamValue::Float(v) => format!("{v:?}"),
            ParamValue::Bool(v) => format!("{v}"),
            ParamValue::Str(v) => format!("{v:?}"),
        }
    }
}

impl From<u64> for ParamValue {
    fn from(v: u64) -> Self {
        ParamValue::Int(v)
    }
}
impl From<u16> for ParamValue {
    fn from(v: u16) -> Self {
        ParamValue::Int(v.into())
    }
}
impl From<u32> for ParamValue {
    fn from(v: u32) -> Self {
        ParamValue::Int(v.into())
    }
}
impl From<usize> for ParamValue {
    fn from(v: usize) -> Self {
        ParamValue::Int(v as u64)
    }
}
impl From<f64> for ParamValue {
    fn from(v: f64) -> Self {
        ParamValue::Float(v)
    }
}
impl From<bool> for ParamValue {
    fn from(v: bool) -> Self {
        ParamValue::Bool(v)
    }
}
impl From<&str> for ParamValue {
    fn from(v: &str) -> Self {
        ParamValue::Str(v.to_owned())
    }
}
impl From<String> for ParamValue {
    fn from(v: String) -> Self {
        ParamValue::Str(v)
    }
}

/// A typed parameter map (sorted, so descriptions render and diff
/// deterministically).
pub type Params = BTreeMap<String, ParamValue>;

/// One named element node: its schema kind plus parameters.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct ElementDesc {
    /// Registry kind (`"counter"`, `"classifier"`, `"nat44"`, … or an
    /// external kind the compiling host declares).
    pub kind: String,
    /// Typed parameters, checked against the kind's schema.
    pub params: Params,
}

/// One port-wired edge: `from`'s `out` receptacle, under `label`, into
/// `to`'s packet-push interface. Single-output elements use the empty
/// label; labelled elements (classifier outputs, per-egress route
/// ports, tee taps) name their ports.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct EdgeDesc {
    /// Source element name.
    pub from: String,
    /// Output label (empty for single-output elements).
    pub label: String,
    /// Destination element name.
    pub to: String,
}

impl EdgeDesc {
    fn render(&self) -> String {
        if self.label.is_empty() {
            format!("{} -> {}", self.from, self.to)
        } else {
            format!("{}[{}] -> {}", self.from, self.label, self.to)
        }
    }
}

/// A declarative classifier pattern — the data twin of
/// [`FilterPattern`], kept as plain fields so descriptions order,
/// compare, and render deterministically.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct PatternDesc {
    /// Source prefix as `(addr, len)`, e.g. `("10.0.0.0", 8)`.
    pub src: Option<(String, u8)>,
    /// Destination prefix as `(addr, len)`.
    pub dst: Option<(String, u8)>,
    /// IP protocol number.
    pub protocol: Option<u8>,
    /// Inclusive source-port range.
    pub src_port: Option<(u16, u16)>,
    /// Inclusive destination-port range.
    pub dst_port: Option<(u16, u16)>,
    /// DSCP codepoint.
    pub dscp: Option<u8>,
}

impl PatternDesc {
    /// The match-everything pattern.
    pub fn any() -> Self {
        Self::default()
    }

    /// Requires the IP protocol (builder-style).
    pub fn protocol(mut self, proto: u8) -> Self {
        self.protocol = Some(proto);
        self
    }

    /// Requires the destination port in `[lo, hi]` (builder-style).
    pub fn dst_port_range(mut self, lo: u16, hi: u16) -> Self {
        self.dst_port = Some((lo, hi));
        self
    }

    /// Requires the source port in `[lo, hi]` (builder-style).
    pub fn src_port_range(mut self, lo: u16, hi: u16) -> Self {
        self.src_port = Some((lo, hi));
        self
    }

    /// Requires the DSCP codepoint (builder-style).
    pub fn dscp(mut self, dscp: u8) -> Self {
        self.dscp = Some(dscp);
        self
    }

    /// Requires the source address in `prefix/len` (builder-style).
    pub fn src(mut self, prefix: &str, len: u8) -> Self {
        self.src = Some((prefix.to_owned(), len));
        self
    }

    /// Requires the destination address in `prefix/len` (builder-style).
    pub fn dst(mut self, prefix: &str, len: u8) -> Self {
        self.dst = Some((prefix.to_owned(), len));
        self
    }

    /// Lowers the description to a live [`FilterPattern`].
    ///
    /// # Errors
    ///
    /// Fails with [`Error::StaleReference`] on a malformed address
    /// literal.
    pub fn to_pattern(&self) -> Result<FilterPattern> {
        let mut p = FilterPattern::any();
        if let Some((addr, len)) = &self.src {
            p = p.try_src(addr, *len).map_err(|_| Error::StaleReference {
                what: format!("pattern src `{addr}/{len}`"),
            })?;
        }
        if let Some((addr, len)) = &self.dst {
            p = p.try_dst(addr, *len).map_err(|_| Error::StaleReference {
                what: format!("pattern dst `{addr}/{len}`"),
            })?;
        }
        if let Some(proto) = self.protocol {
            p = p.protocol(proto);
        }
        if let Some((lo, hi)) = self.src_port {
            p = p.src_port_range(lo, hi);
        }
        if let Some((lo, hi)) = self.dst_port {
            p = p.dst_port_range(lo, hi);
        }
        if let Some(dscp) = self.dscp {
            p = p.dscp(dscp);
        }
        Ok(p)
    }

    fn render(&self) -> String {
        let mut parts = Vec::new();
        if let Some((a, l)) = &self.src {
            parts.push(format!("src={a}/{l}"));
        }
        if let Some((a, l)) = &self.dst {
            parts.push(format!("dst={a}/{l}"));
        }
        if let Some(p) = self.protocol {
            parts.push(format!("proto={p}"));
        }
        if let Some((lo, hi)) = self.src_port {
            parts.push(format!("sport={lo}-{hi}"));
        }
        if let Some((lo, hi)) = self.dst_port {
            parts.push(format!("dport={lo}-{hi}"));
        }
        if let Some(d) = self.dscp {
            parts.push(format!("dscp={d}"));
        }
        if parts.is_empty() {
            "any".to_owned()
        } else {
            parts.join(" ")
        }
    }
}

/// One match-action table entry attached to a named element.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum TableEntry {
    /// A classifier filter: packets matching `pattern` go to the edge
    /// labelled `output` (highest `priority` wins).
    Filter {
        /// The match pattern.
        pattern: PatternDesc,
        /// The output label the matching edge carries.
        output: String,
        /// Filter priority (higher wins).
        priority: i32,
    },
    /// A route: `prefix` (e.g. `"10.0.0.0/8"`) exits on egress port
    /// `egress` — the edge labelled `egress.to_string()`, falling back
    /// to the `out` label.
    Route {
        /// Textual prefix.
        prefix: String,
        /// Egress port index.
        egress: u16,
    },
    /// A load-balancer backend behind the element's VIP.
    Backend {
        /// Backend IPv4 address literal.
        ip: String,
        /// Backend port.
        port: u16,
    },
}

impl TableEntry {
    fn kind(&self) -> TableKind {
        match self {
            TableEntry::Filter { .. } => TableKind::Filter,
            TableEntry::Route { .. } => TableKind::Route,
            TableEntry::Backend { .. } => TableKind::Backend,
        }
    }

    fn render(&self) -> String {
        match self {
            TableEntry::Filter {
                pattern,
                output,
                priority,
            } => format!(
                "filter {{{}}} -> {output} prio {priority}",
                pattern.render()
            ),
            TableEntry::Route { prefix, egress } => format!("route {prefix} -> port {egress}"),
            TableEntry::Backend { ip, port } => format!("backend {ip}:{port}"),
        }
    }
}

/// The per-pipeline control section: which
/// [`DecisionCore`](crate::shard::DecisionCore) judges rebalances, and
/// its typed knobs (see [`schema::CONTROL_PARAMS`]).
#[derive(Clone, Debug, PartialEq)]
pub struct ControlDesc {
    /// Core registry name: `"weighted"`, `"hysteresis"`, `"ewma"`.
    pub core: String,
    /// Typed knobs; unknown names are rejected at validation.
    pub params: Params,
}

/// A complete declarative pipeline: the unit [`Compiler`] builds and
/// [`diff`](diff()) compares.
///
/// # Examples
///
/// ```
/// use netkit_router::desc::{PipelineDesc, PatternDesc, TableEntry};
///
/// let d = PipelineDesc::new("edge")
///     .element("cls", "classifier")
///     .element("tcp", "counter")
///     .element("sink", "discard")
///     .ingress("cls")
///     .edge_labelled("cls", "tcp", "tcp")
///     .edge_labelled("cls", "default", "sink")
///     .edge("tcp", "sink")
///     .table(
///         "cls",
///         TableEntry::Filter {
///             pattern: PatternDesc::any().protocol(6),
///             output: "tcp".into(),
///             priority: 10,
///         },
///     );
/// d.validate().unwrap();
/// ```
#[derive(Clone, Debug, PartialEq, Default)]
pub struct PipelineDesc {
    /// Pipeline (resource-task) name.
    pub name: String,
    /// The ingress element packets enter through.
    pub entry: String,
    /// Named element nodes.
    pub elements: BTreeMap<String, ElementDesc>,
    /// Port-wired edges.
    pub edges: Vec<EdgeDesc>,
    /// Per-element match-action tables.
    pub tables: BTreeMap<String, Vec<TableEntry>>,
    /// Explicit bucket → shard steering pins (sparse; unpinned buckets
    /// stay wherever the control loop put them).
    pub pins: BTreeMap<usize, usize>,
    /// Optional control-policy selection.
    pub control: Option<ControlDesc>,
}

impl PipelineDesc {
    /// An empty description named `name`.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_owned(),
            ..Self::default()
        }
    }

    /// Adds an element with no parameters (builder-style).
    pub fn element(mut self, name: &str, kind: &str) -> Self {
        self.elements.insert(
            name.to_owned(),
            ElementDesc {
                kind: kind.to_owned(),
                params: Params::new(),
            },
        );
        self
    }

    /// Adds an element with parameters (builder-style).
    pub fn element_with(mut self, name: &str, kind: &str, params: &[(&str, ParamValue)]) -> Self {
        self.elements.insert(
            name.to_owned(),
            ElementDesc {
                kind: kind.to_owned(),
                params: params
                    .iter()
                    .map(|(k, v)| ((*k).to_owned(), v.clone()))
                    .collect(),
            },
        );
        self
    }

    /// Overwrites one parameter on an existing element (builder-style)
    /// — the natural way to derive a param-only variant for a diff.
    ///
    /// # Panics
    ///
    /// Panics if the element does not exist.
    pub fn set_param(mut self, element: &str, key: &str, value: ParamValue) -> Self {
        self.elements
            .get_mut(element)
            .unwrap_or_else(|| panic!("set_param: no element `{element}`"))
            .params
            .insert(key.to_owned(), value);
        self
    }

    /// Names the ingress element (builder-style).
    pub fn ingress(mut self, name: &str) -> Self {
        self.entry = name.to_owned();
        self
    }

    /// Wires `from`'s single output to `to` (builder-style).
    pub fn edge(self, from: &str, to: &str) -> Self {
        self.edge_labelled(from, "", to)
    }

    /// Wires `from`'s output labelled `label` to `to` (builder-style).
    pub fn edge_labelled(mut self, from: &str, label: &str, to: &str) -> Self {
        self.edges.push(EdgeDesc {
            from: from.to_owned(),
            label: label.to_owned(),
            to: to.to_owned(),
        });
        self
    }

    /// Appends a table entry to `node`'s match-action table
    /// (builder-style).
    pub fn table(mut self, node: &str, entry: TableEntry) -> Self {
        self.tables.entry(node.to_owned()).or_default().push(entry);
        self
    }

    /// Pins `bucket` to `shard` in the steering table (builder-style).
    pub fn pin(mut self, bucket: usize, shard: usize) -> Self {
        self.pins.insert(bucket, shard);
        self
    }

    /// Selects the control core and its knobs (builder-style).
    pub fn control(mut self, core: &str, params: &[(&str, ParamValue)]) -> Self {
        self.control = Some(ControlDesc {
            core: core.to_owned(),
            params: params
                .iter()
                .map(|(k, v)| ((*k).to_owned(), v.clone()))
                .collect(),
        });
        self
    }

    /// The canonical form: edges and table entries sorted. Diffs and
    /// golden renders operate on canonical descriptions so the same
    /// topology always produces the same plan, however it was built.
    pub fn canonical(&self) -> Self {
        let mut c = self.clone();
        c.edges.sort();
        c.edges.dedup();
        for entries in c.tables.values_mut() {
            entries.sort();
            entries.dedup();
        }
        c.tables.retain(|_, v| !v.is_empty());
        c
    }

    /// Validates against the built-in [`schema`] registry only.
    ///
    /// # Errors
    ///
    /// See [`Self::validate_with`].
    pub fn validate(&self) -> Result<()> {
        self.validate_with(&BTreeSet::new())
    }

    /// Validates the description: every kind known (to the registry or
    /// to `external_kinds`), parameters typed per schema, edges
    /// well-formed, tables supported, the graph acyclic and fully
    /// reachable from the entry.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::CfViolation`] naming the first violated
    /// rule.
    pub fn validate_with(&self, external_kinds: &BTreeSet<String>) -> Result<()> {
        let rule = |msg: String| Error::CfViolation {
            framework: "desc".to_owned(),
            rule: msg,
        };
        if self.name.is_empty() {
            return Err(rule("pipeline name must not be empty".into()));
        }
        if self.elements.is_empty() {
            return Err(rule("a pipeline needs at least one element".into()));
        }
        if !self.elements.contains_key(&self.entry) {
            return Err(rule(format!(
                "entry `{}` is not a declared element",
                self.entry
            )));
        }

        // Element kinds and parameter types.
        for (name, el) in &self.elements {
            if external_kinds.contains(&el.kind) {
                continue;
            }
            let Some(schema) = schema::schema_for(&el.kind) else {
                return Err(rule(format!(
                    "element `{name}`: unknown kind `{}` (known: {})",
                    el.kind,
                    schema::known_kinds().join(", ")
                )));
            };
            schema.check_params(name, &el.params)?;
        }

        // Edges: endpoints exist, output arity respected, labels unique.
        let mut seen_edges = BTreeSet::new();
        let mut single_out: BTreeMap<&str, usize> = BTreeMap::new();
        for edge in &self.edges {
            let Some(from) = self.elements.get(&edge.from) else {
                return Err(rule(format!(
                    "edge `{}`: source `{}` is not declared",
                    edge.render(),
                    edge.from
                )));
            };
            if !self.elements.contains_key(&edge.to) {
                return Err(rule(format!(
                    "edge `{}`: destination `{}` is not declared",
                    edge.render(),
                    edge.to
                )));
            }
            if !seen_edges.insert((edge.from.clone(), edge.label.clone())) {
                return Err(rule(format!(
                    "edge `{}`: duplicate output label on `{}`",
                    edge.render(),
                    edge.from
                )));
            }
            let out_kind = if external_kinds.contains(&from.kind) {
                OutputKind::Single
            } else {
                schema::schema_for(&from.kind)
                    .expect("kind checked above")
                    .output
            };
            match out_kind {
                OutputKind::None => {
                    return Err(rule(format!(
                        "edge `{}`: `{}` ({}) has no outputs",
                        edge.render(),
                        edge.from,
                        from.kind
                    )));
                }
                OutputKind::Single => {
                    if !edge.label.is_empty() {
                        return Err(rule(format!(
                            "edge `{}`: `{}` ({}) is single-output; use an unlabelled edge",
                            edge.render(),
                            edge.from,
                            from.kind
                        )));
                    }
                    let n = single_out.entry(edge.from.as_str()).or_insert(0);
                    *n += 1;
                    if *n > 1 {
                        return Err(rule(format!(
                            "`{}` ({}) is single-output but has {n} edges",
                            edge.from, from.kind
                        )));
                    }
                }
                OutputKind::Labelled => {}
            }
        }

        // Tables: node exists, table kind supported, entries well-formed.
        for (node, entries) in &self.tables {
            let Some(el) = self.elements.get(node) else {
                return Err(rule(format!("table on `{node}`: element not declared")));
            };
            if entries.is_empty() {
                continue;
            }
            let supported: &[TableKind] = if external_kinds.contains(&el.kind) {
                &[]
            } else {
                schema::schema_for(&el.kind).expect("kind checked").tables
            };
            let mut seen = BTreeSet::new();
            for entry in entries {
                if !supported.contains(&entry.kind()) {
                    return Err(rule(format!(
                        "table on `{node}` ({}): {} entries are not supported",
                        el.kind,
                        entry.kind().name()
                    )));
                }
                if !seen.insert(entry.clone()) {
                    return Err(rule(format!(
                        "table on `{node}`: duplicate entry `{}`",
                        entry.render()
                    )));
                }
                match entry {
                    TableEntry::Filter {
                        pattern, output, ..
                    } => {
                        pattern.to_pattern()?;
                        let bound = self
                            .edges
                            .iter()
                            .any(|e| e.from == *node && e.label == *output);
                        if !bound {
                            return Err(rule(format!(
                                "filter on `{node}` routes to output `{output}` but no edge \
                                 carries that label"
                            )));
                        }
                    }
                    TableEntry::Route { prefix, egress } => {
                        if !prefix.contains('/') {
                            return Err(rule(format!(
                                "route on `{node}`: malformed prefix `{prefix}`"
                            )));
                        }
                        let label = egress.to_string();
                        let bound = self
                            .edges
                            .iter()
                            .any(|e| e.from == *node && (e.label == label || e.label == "out"));
                        if !bound {
                            return Err(rule(format!(
                                "route on `{node}` exits port {egress} but no edge is labelled \
                                 `{label}` or `out`"
                            )));
                        }
                    }
                    TableEntry::Backend { ip, .. } => {
                        if ip.parse::<std::net::Ipv4Addr>().is_err() {
                            return Err(rule(format!(
                                "backend on `{node}`: malformed address `{ip}`"
                            )));
                        }
                    }
                }
            }
        }

        // Steering pins stay inside the bucket space.
        for (&bucket, &shard) in &self.pins {
            if bucket >= RSS_BUCKETS {
                return Err(rule(format!(
                    "pin: bucket {bucket} out of range (0..{RSS_BUCKETS})"
                )));
            }
            let _ = shard; // shard bound is spec-dependent; checked at apply.
        }

        // Control section: known core, known + typed knobs.
        if let Some(ctl) = &self.control {
            schema::check_control(ctl)?;
        }

        // Reachability + acyclicity from the entry.
        self.check_graph()?;
        Ok(())
    }

    fn check_graph(&self) -> Result<()> {
        let rule = |msg: String| Error::CfViolation {
            framework: "desc".to_owned(),
            rule: msg,
        };
        let mut adjacency: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for edge in &self.edges {
            adjacency
                .entry(edge.from.as_str())
                .or_default()
                .push(edge.to.as_str());
        }
        // Iterative DFS with colouring: 0 unseen, 1 on stack, 2 done.
        let mut colour: BTreeMap<&str, u8> = BTreeMap::new();
        let mut stack: Vec<(&str, usize)> = vec![(self.entry.as_str(), 0)];
        colour.insert(self.entry.as_str(), 1);
        while let Some((node, next)) = stack.pop() {
            let succs = adjacency.get(node).map(Vec::as_slice).unwrap_or(&[]);
            if next < succs.len() {
                stack.push((node, next + 1));
                let succ = succs[next];
                match colour.get(succ).copied().unwrap_or(0) {
                    0 => {
                        colour.insert(succ, 1);
                        stack.push((succ, 0));
                    }
                    1 => {
                        return Err(rule(format!(
                            "cycle through `{succ}` — element graphs must be acyclic"
                        )));
                    }
                    _ => {}
                }
            } else {
                colour.insert(node, 2);
            }
        }
        for name in self.elements.keys() {
            if colour.get(name.as_str()).copied().unwrap_or(0) != 2 {
                return Err(rule(format!(
                    "element `{name}` is unreachable from entry `{}`",
                    self.entry
                )));
            }
        }
        Ok(())
    }

    /// A stable textual rendering of the canonical description — what
    /// the golden-file tests snapshot.
    pub fn render(&self) -> String {
        let c = self.canonical();
        let mut out = String::new();
        let _ = writeln!(out, "pipeline {} (entry {})", c.name, c.entry);
        for (name, el) in &c.elements {
            let params = el
                .params
                .iter()
                .map(|(k, v)| format!("{k}={}", v.render()))
                .collect::<Vec<_>>()
                .join(" ");
            if params.is_empty() {
                let _ = writeln!(out, "  element {name}: {}", el.kind);
            } else {
                let _ = writeln!(out, "  element {name}: {} {{{params}}}", el.kind);
            }
        }
        for edge in &c.edges {
            let _ = writeln!(out, "  edge {}", edge.render());
        }
        for (node, entries) in &c.tables {
            for entry in entries {
                let _ = writeln!(out, "  table {node}: {}", entry.render());
            }
        }
        for (bucket, shard) in &c.pins {
            let _ = writeln!(out, "  pin bucket {bucket} -> shard {shard}");
        }
        if let Some(ctl) = &c.control {
            let params = ctl
                .params
                .iter()
                .map(|(k, v)| format!("{k}={}", v.render()))
                .collect::<Vec<_>>()
                .join(" ");
            let _ = writeln!(out, "  control {} {{{params}}}", ctl.core);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> PipelineDesc {
        PipelineDesc::new("t")
            .element("a", "counter")
            .element("b", "counter")
            .element("sink", "discard")
            .ingress("a")
            .edge("a", "b")
            .edge("b", "sink")
    }

    #[test]
    fn a_valid_chain_validates() {
        chain().validate().unwrap();
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let d = PipelineDesc::new("t").element("a", "banana").ingress("a");
        let err = d.validate().unwrap_err().to_string();
        assert!(err.contains("unknown kind"), "{err}");
    }

    #[test]
    fn dangling_edge_is_rejected() {
        let d = PipelineDesc::new("t")
            .element("a", "counter")
            .ingress("a")
            .edge("a", "ghost");
        let err = d.validate().unwrap_err().to_string();
        assert!(err.contains("not declared"), "{err}");
    }

    #[test]
    fn sink_elements_cannot_have_outputs() {
        let d = PipelineDesc::new("t")
            .element("a", "discard")
            .element("b", "counter")
            .ingress("a")
            .edge("a", "b");
        let err = d.validate().unwrap_err().to_string();
        assert!(err.contains("no outputs"), "{err}");
    }

    #[test]
    fn single_output_elements_take_one_unlabelled_edge() {
        let d = chain().edge("a", "sink");
        let err = d.validate().unwrap_err().to_string();
        assert!(err.contains("duplicate output label"), "{err}");

        let d = PipelineDesc::new("t")
            .element("a", "counter")
            .element("b", "discard")
            .ingress("a")
            .edge_labelled("a", "tap", "b");
        let err = d.validate().unwrap_err().to_string();
        assert!(err.contains("unlabelled"), "{err}");
    }

    #[test]
    fn cycles_are_rejected() {
        let d = PipelineDesc::new("t")
            .element("a", "counter")
            .element("b", "counter")
            .ingress("a")
            .edge("a", "b")
            .edge("b", "a");
        let err = d.validate().unwrap_err().to_string();
        assert!(err.contains("cycle"), "{err}");
    }

    #[test]
    fn unreachable_elements_are_rejected() {
        let d = chain().element("orphan", "counter");
        let err = d.validate().unwrap_err().to_string();
        assert!(err.contains("unreachable"), "{err}");
    }

    #[test]
    fn mistyped_params_are_rejected() {
        let d = PipelineDesc::new("t")
            .element_with("a", "conntrack", &[("capacity", "lots".into())])
            .element("sink", "discard")
            .ingress("a")
            .edge("a", "sink");
        let err = d.validate().unwrap_err().to_string();
        assert!(err.contains("expects int"), "{err}");
    }

    #[test]
    fn unknown_params_are_rejected() {
        let d = PipelineDesc::new("t")
            .element_with("a", "counter", &[("speed", 9u64.into())])
            .element("sink", "discard")
            .ingress("a")
            .edge("a", "sink");
        let err = d.validate().unwrap_err().to_string();
        assert!(err.contains("unknown parameter"), "{err}");
    }

    #[test]
    fn filter_output_must_have_a_matching_edge() {
        let d = PipelineDesc::new("t")
            .element("cls", "classifier")
            .element("sink", "discard")
            .ingress("cls")
            .edge_labelled("cls", "default", "sink")
            .table(
                "cls",
                TableEntry::Filter {
                    pattern: PatternDesc::any().protocol(6),
                    output: "tcp".into(),
                    priority: 1,
                },
            );
        let err = d.validate().unwrap_err().to_string();
        assert!(err.contains("no edge carries"), "{err}");
    }

    #[test]
    fn tables_only_attach_to_supporting_kinds() {
        let d = chain().table(
            "a",
            TableEntry::Backend {
                ip: "10.0.0.1".into(),
                port: 80,
            },
        );
        let err = d.validate().unwrap_err().to_string();
        assert!(err.contains("not supported"), "{err}");
    }

    #[test]
    fn pins_stay_inside_the_bucket_space() {
        let d = chain().pin(RSS_BUCKETS, 0);
        let err = d.validate().unwrap_err().to_string();
        assert!(err.contains("out of range"), "{err}");
    }

    #[test]
    fn control_sections_are_checked() {
        let d = chain().control("banana", &[]);
        assert!(d.validate().is_err());
        let d = chain().control("weighted", &[("warp", 9.0.into())]);
        let err = d.validate().unwrap_err().to_string();
        assert!(err.contains("unknown control"), "{err}");
        chain()
            .control("hysteresis", &[("enter", 1.5.into()), ("arm", 2u64.into())])
            .validate()
            .unwrap();
    }

    #[test]
    fn canonical_render_is_stable() {
        let a = chain()
            .table(
                "a",
                TableEntry::Filter {
                    pattern: PatternDesc::any(),
                    output: "x".into(),
                    priority: 0,
                },
            )
            .render();
        // Built in a different order, same canonical text.
        let b = PipelineDesc::new("t")
            .element("sink", "discard")
            .element("b", "counter")
            .element("a", "counter")
            .ingress("a")
            .edge("b", "sink")
            .edge("a", "b")
            .table(
                "a",
                TableEntry::Filter {
                    pattern: PatternDesc::any(),
                    output: "x".into(),
                    priority: 0,
                },
            )
            .render();
        assert_eq!(a, b);
    }
}
