//! The element schema registry: what a description may say about each
//! element kind, and how a validated description becomes live objects.
//!
//! Each built-in kind declares its typed parameters (with defaults),
//! its output arity (none / single / labelled), and which match-action
//! table kinds it accepts. [`PipelineDesc::validate`] checks against
//! these schemas; the crate-internal `construct` lowering then turns a
//! checked `(kind, params)`
//! pair to a live element plus the [`ElementHandle`] the patch applier
//! uses to address its tables. Kinds the registry does not know can be
//! supplied by the compiling host as *externals* (see
//! [`Compiler::external`](super::Compiler::external)) — that is how
//! the simulator injects its egress collector into described
//! pipelines.
//!
//! [`PipelineDesc::validate`]: super::PipelineDesc::validate

use std::net::Ipv4Addr;
use std::sync::Arc;

use opencom::component::Component;
use opencom::error::{Error, Result};

use netkit_packet::sketch::FlowSketch;

use crate::api::IClassifier;
use crate::elements::{ClassifierEngine, Counter, Discard, IRouteControl, RouteLookup, Tee};
use crate::flow::{ConnTracker, Guard, GuardConfig, L4LoadBalancer, Nat44, Nat44Config};
use crate::shard::{core_by_name, RebalanceController, RebalancePolicy, WeightedRebalancePolicy};

use super::compile::ElementHandle;
use super::{ControlDesc, ParamValue, Params};

/// A parameter's schema type.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParamType {
    /// Unsigned integer.
    Int,
    /// Floating point (accepts int literals).
    Float,
    /// Boolean.
    Bool,
    /// String.
    Str,
}

impl ParamType {
    fn name(self) -> &'static str {
        match self {
            ParamType::Int => "int",
            ParamType::Float => "float",
            ParamType::Bool => "bool",
            ParamType::Str => "str",
        }
    }

    fn accepts(self, value: &ParamValue) -> bool {
        match self {
            // Float knobs accept integer literals (`1` for `1.0`).
            ParamType::Float => matches!(value, ParamValue::Float(_) | ParamValue::Int(_)),
            other => value.param_type() == other,
        }
    }
}

/// How many outputs a kind exposes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OutputKind {
    /// A sink: no outgoing edges allowed.
    None,
    /// Exactly one unlabelled outgoing edge.
    Single,
    /// Any number of labelled outgoing edges.
    Labelled,
}

/// Which match-action table a kind accepts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TableKind {
    /// Classifier filter entries.
    Filter,
    /// Routing-table entries.
    Route,
    /// Load-balancer backend entries.
    Backend,
}

impl TableKind {
    pub(super) fn name(self) -> &'static str {
        match self {
            TableKind::Filter => "filter",
            TableKind::Route => "route",
            TableKind::Backend => "backend",
        }
    }
}

/// One typed parameter a kind accepts.
#[derive(Clone, Copy, Debug)]
pub struct ParamSpec {
    /// Parameter name.
    pub name: &'static str,
    /// Expected type.
    pub ty: ParamType,
    /// Whether a description must supply it.
    pub required: bool,
}

const fn opt(name: &'static str, ty: ParamType) -> ParamSpec {
    ParamSpec {
        name,
        ty,
        required: false,
    }
}

const fn req(name: &'static str, ty: ParamType) -> ParamSpec {
    ParamSpec {
        name,
        ty,
        required: true,
    }
}

/// One element kind's schema.
#[derive(Clone, Copy, Debug)]
pub struct ElementSchema {
    /// Registry kind name.
    pub kind: &'static str,
    /// Accepted parameters.
    pub params: &'static [ParamSpec],
    /// Output arity.
    pub output: OutputKind,
    /// Accepted table kinds.
    pub tables: &'static [TableKind],
}

impl ElementSchema {
    /// Type-checks `params` against this schema.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::CfViolation`] on an unknown or mistyped
    /// parameter, or a missing required one.
    pub fn check_params(&self, element: &str, params: &Params) -> Result<()> {
        let rule = |msg: String| Error::CfViolation {
            framework: "desc".to_owned(),
            rule: msg,
        };
        for (key, value) in params {
            let Some(spec) = self.params.iter().find(|s| s.name == key) else {
                return Err(rule(format!(
                    "element `{element}` ({}): unknown parameter `{key}`",
                    self.kind
                )));
            };
            if !spec.ty.accepts(value) {
                return Err(rule(format!(
                    "element `{element}` ({}): `{key}` expects {}",
                    self.kind,
                    spec.ty.name()
                )));
            }
        }
        for spec in self.params.iter().filter(|s| s.required) {
            if !params.contains_key(spec.name) {
                return Err(rule(format!(
                    "element `{element}` ({}): missing required parameter `{}`",
                    self.kind, spec.name
                )));
            }
        }
        Ok(())
    }
}

const SCHEMAS: &[ElementSchema] = &[
    ElementSchema {
        kind: "counter",
        params: &[],
        output: OutputKind::Single,
        tables: &[],
    },
    ElementSchema {
        kind: "discard",
        params: &[],
        output: OutputKind::None,
        tables: &[],
    },
    ElementSchema {
        kind: "tee",
        params: &[],
        output: OutputKind::Labelled,
        tables: &[],
    },
    ElementSchema {
        kind: "classifier",
        params: &[],
        output: OutputKind::Labelled,
        tables: &[TableKind::Filter],
    },
    ElementSchema {
        kind: "route",
        params: &[],
        output: OutputKind::Labelled,
        tables: &[TableKind::Route],
    },
    ElementSchema {
        kind: "conntrack",
        params: &[
            opt("capacity", ParamType::Int),
            opt("idle_timeout", ParamType::Int),
            opt("closing_timeout", ParamType::Int),
            opt("syn_timeout", ParamType::Int),
        ],
        output: OutputKind::Single,
        tables: &[],
    },
    ElementSchema {
        kind: "nat44",
        params: &[
            opt("external_ip", ParamType::Str),
            opt("port_base", ParamType::Int),
            opt("blocks", ParamType::Int),
            opt("block_size", ParamType::Int),
            opt("table_capacity", ParamType::Int),
            opt("idle_timeout", ParamType::Int),
        ],
        output: OutputKind::Single,
        tables: &[],
    },
    ElementSchema {
        kind: "l4lb",
        params: &[
            req("vip", ParamType::Str),
            req("vport", ParamType::Int),
            opt("capacity", ParamType::Int),
            opt("idle_timeout", ParamType::Int),
        ],
        output: OutputKind::Single,
        tables: &[TableKind::Backend],
    },
    ElementSchema {
        kind: "guard",
        params: &[
            opt("byte_threshold", ParamType::Int),
            opt("window_budget", ParamType::Int),
            opt("table_capacity", ParamType::Int),
            opt("syn_limit", ParamType::Int),
            opt("syn_budget", ParamType::Int),
        ],
        output: OutputKind::Single,
        tables: &[],
    },
];

/// Looks up a built-in kind's schema.
pub fn schema_for(kind: &str) -> Option<&'static ElementSchema> {
    SCHEMAS.iter().find(|s| s.kind == kind)
}

/// The registry's kind names, in declaration order.
pub fn known_kinds() -> Vec<&'static str> {
    SCHEMAS.iter().map(|s| s.kind).collect()
}

fn get_u64(params: &Params, key: &str, default: u64) -> u64 {
    params
        .get(key)
        .and_then(ParamValue::as_u64)
        .unwrap_or(default)
}

fn get_f64(params: &Params, key: &str, default: f64) -> f64 {
    params
        .get(key)
        .and_then(ParamValue::as_f64)
        .unwrap_or(default)
}

fn parse_ip(params: &Params, key: &str, default: Ipv4Addr) -> Result<Ipv4Addr> {
    match params.get(key).and_then(ParamValue::as_str) {
        None => Ok(default),
        Some(s) => s.parse().map_err(|_| Error::StaleReference {
            what: format!("`{key}` address `{s}`"),
        }),
    }
}

/// Lowers a checked `(kind, params)` pair to a live element. `sketch`
/// is the shard's byte sketch — the guard reads it, everything else
/// ignores it.
///
/// # Errors
///
/// Fails with [`Error::StaleReference`] on an unknown kind (the
/// validator rejects these earlier) or a malformed address parameter.
pub(super) fn construct(
    kind: &str,
    params: &Params,
    sketch: &Arc<FlowSketch>,
) -> Result<(Arc<dyn Component>, ElementHandle)> {
    Ok(match kind {
        "counter" => (Counter::new(), ElementHandle::Plain),
        "discard" => (Discard::new(), ElementHandle::Plain),
        "tee" => (Tee::new(), ElementHandle::Plain),
        "classifier" => {
            let engine = ClassifierEngine::new();
            let handle: Arc<dyn IClassifier> = engine.clone();
            (engine, ElementHandle::Classifier(handle))
        }
        "route" => {
            let lookup = RouteLookup::new();
            let handle: Arc<dyn IRouteControl> = lookup.clone();
            (lookup, ElementHandle::Route(handle))
        }
        "conntrack" => {
            let tracker = ConnTracker::with_timeouts(
                get_u64(params, "capacity", 4096) as usize,
                get_u64(params, "idle_timeout", u64::MAX),
                get_u64(params, "closing_timeout", u64::MAX),
                get_u64(params, "syn_timeout", u64::MAX),
            );
            (tracker, ElementHandle::Plain)
        }
        "nat44" => {
            let defaults = Nat44Config::default();
            let cfg = Nat44Config {
                external_ip: parse_ip(params, "external_ip", defaults.external_ip)?,
                port_base: get_u64(params, "port_base", defaults.port_base.into()) as u16,
                blocks: get_u64(params, "blocks", defaults.blocks.into()) as u16,
                block_size: get_u64(params, "block_size", defaults.block_size.into()) as u16,
                table_capacity: get_u64(params, "table_capacity", defaults.table_capacity as u64)
                    as usize,
                idle_timeout: get_u64(params, "idle_timeout", defaults.idle_timeout),
            };
            (Nat44::new(cfg), ElementHandle::Plain)
        }
        "l4lb" => {
            let vip = parse_ip(params, "vip", Ipv4Addr::UNSPECIFIED)?;
            let vport = get_u64(params, "vport", 0) as u16;
            let lb = L4LoadBalancer::new(
                vip,
                vport,
                get_u64(params, "capacity", 4096) as usize,
                get_u64(params, "idle_timeout", u64::MAX),
            );
            (lb.clone(), ElementHandle::Lb(lb))
        }
        "guard" => {
            let defaults = GuardConfig::default();
            let cfg = GuardConfig {
                byte_threshold: get_u64(params, "byte_threshold", defaults.byte_threshold),
                window_budget: get_u64(params, "window_budget", defaults.window_budget),
                table_capacity: get_u64(params, "table_capacity", defaults.table_capacity as u64)
                    as usize,
                syn_limit: get_u64(params, "syn_limit", defaults.syn_limit),
                syn_budget: get_u64(params, "syn_budget", defaults.syn_budget),
            };
            (Guard::new(Arc::clone(sketch), cfg), ElementHandle::Plain)
        }
        other => {
            return Err(Error::StaleReference {
                what: format!("element kind `{other}`"),
            });
        }
    })
}

/// The control section's accepted knobs — all optional, all with the
/// controller's established defaults.
pub const CONTROL_PARAMS: &[ParamSpec] = &[
    opt("max_imbalance", ParamType::Float),
    opt("min_samples", ParamType::Int),
    opt("pressure_weight", ParamType::Float),
    opt("decay", ParamType::Float),
    opt("heavy_blend", ParamType::Float),
    opt("cooldown_ticks", ParamType::Int),
    opt("enter", ParamType::Float),
    opt("exit", ParamType::Float),
    opt("arm", ParamType::Int),
    opt("alpha", ParamType::Float),
];

/// Validates a control section: known core name, known + typed knobs.
///
/// # Errors
///
/// Fails with [`Error::CfViolation`] on unknown knobs,
/// [`Error::StaleReference`] on an unknown core name.
pub fn check_control(ctl: &ControlDesc) -> Result<()> {
    for (key, value) in &ctl.params {
        let Some(spec) = CONTROL_PARAMS.iter().find(|s| s.name == key) else {
            return Err(Error::CfViolation {
                framework: "desc".to_owned(),
                rule: format!("unknown control parameter `{key}`"),
            });
        };
        if !spec.ty.accepts(value) {
            return Err(Error::CfViolation {
                framework: "desc".to_owned(),
                rule: format!("control parameter `{key}` expects {}", spec.ty.name()),
            });
        }
    }
    // Resolve the name once to fail fast on typos.
    compile_control(ctl).map(|_| ())
}

/// Builds the [`RebalanceController`] a control section selects: the
/// policy knobs feed a [`WeightedRebalancePolicy`], the `core` name
/// resolves through [`core_by_name`], and `heavy_blend` /
/// `cooldown_ticks` configure the controller around it.
///
/// # Errors
///
/// Fails with [`Error::StaleReference`] on an unknown core name.
pub fn compile_control(ctl: &ControlDesc) -> Result<RebalanceController> {
    let p = &ctl.params;
    let max_imbalance = get_f64(p, "max_imbalance", 1.25);
    let policy = WeightedRebalancePolicy {
        base: RebalancePolicy {
            max_imbalance,
            min_samples: get_u64(p, "min_samples", 64),
        },
        pressure_weight: get_f64(p, "pressure_weight", 0.5),
        decay: get_f64(p, "decay", 0.5),
    };
    let enter = get_f64(p, "enter", max_imbalance);
    let exit = get_f64(p, "exit", (enter - 0.1).max(1.0));
    let arm = get_u64(p, "arm", 2) as u32;
    let alpha = get_f64(p, "alpha", 0.3);
    let core = core_by_name(&ctl.core, policy, enter, exit, arm, alpha)?;
    Ok(
        RebalanceController::with_core(core, get_u64(p, "cooldown_ticks", 0))
            .with_heavy_hitters(get_f64(p, "heavy_blend", 0.0)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use netkit_packet::sketch::SketchConfig;

    fn sketch() -> Arc<FlowSketch> {
        Arc::new(FlowSketch::new(SketchConfig::default()))
    }

    #[test]
    fn every_schema_kind_constructs_with_defaults() {
        for schema in SCHEMAS {
            let mut params = Params::new();
            // Required parameters get a plausible value.
            for spec in schema.params.iter().filter(|s| s.required) {
                let v = match spec.ty {
                    ParamType::Int => ParamValue::Int(443),
                    ParamType::Float => ParamValue::Float(1.0),
                    ParamType::Bool => ParamValue::Bool(true),
                    ParamType::Str => ParamValue::Str("10.0.0.1".into()),
                };
                params.insert(spec.name.to_owned(), v);
            }
            schema.check_params("x", &params).unwrap();
            construct(schema.kind, &params, &sketch())
                .unwrap_or_else(|e| panic!("{} failed: {e}", schema.kind));
        }
    }

    #[test]
    fn float_knobs_accept_int_literals() {
        assert!(ParamType::Float.accepts(&ParamValue::Int(1)));
        assert!(!ParamType::Int.accepts(&ParamValue::Float(1.0)));
    }

    #[test]
    fn control_compiles_each_core_by_name() {
        for core in ["weighted", "hysteresis", "ewma"] {
            let ctl = ControlDesc {
                core: core.into(),
                params: Params::new(),
            };
            let built = compile_control(&ctl).unwrap();
            assert_eq!(built.core_name(), core);
        }
        let bad = ControlDesc {
            core: "banana".into(),
            params: Params::new(),
        };
        assert!(compile_control(&bad).is_err());
    }
}
