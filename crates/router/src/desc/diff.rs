//! `diff(old, new) -> Patch`: the incremental half of the declarative
//! layer.
//!
//! The diff is **minimal** — it emits one op per changed fact, never a
//! rebuild of an unchanged element — and **deterministic**: both
//! descriptions are canonicalised first, every op category is emitted
//! in sorted order, and the same pair of descriptions always produces
//! the same op sequence (the golden-file tests snapshot exactly this).
//!
//! Op ordering is chosen so a single forward pass is always legal:
//! adds first (so later binds can reference new elements), then kind
//! rebuilds and param replaces (edges survive `Capsule::replace`),
//! then unbinds before removes (an edge into a removed element is
//! dropped by `destroy`, so the diff never emits it), then binds, the
//! ingress swap, table deletes before puts, and finally the
//! pipeline-level control/steering updates.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use super::{EdgeDesc, PipelineDesc, TableEntry};

/// One mutation in a patch plan. Ops name description-level objects;
/// [`DescBinding`](super::DescBinding) resolves them to live ids at
/// apply time, once per shard.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PatchOp {
    /// Adopt a new element (structural).
    AddElement {
        /// Description name.
        name: String,
    },
    /// Swap an element for one of a *different kind* (structural).
    RebuildElement {
        /// Description name.
        name: String,
    },
    /// Swap an element for a re-parameterised instance of the same
    /// kind — a hot `Capsule::replace`, not structural.
    ReplaceElement {
        /// Description name.
        name: String,
    },
    /// Destroy an element (structural; its edges die with it).
    RemoveElement {
        /// Description name.
        name: String,
    },
    /// Remove an edge (structural).
    Unbind {
        /// The edge.
        edge: EdgeDesc,
    },
    /// Add an edge (structural).
    Bind {
        /// The edge.
        edge: EdgeDesc,
    },
    /// Re-point the pipeline's ingress at this element.
    SetEntry {
        /// Description name.
        name: String,
    },
    /// Remove a match-action table entry (never structural).
    TableDel {
        /// Owning element.
        node: String,
        /// The entry.
        entry: TableEntry,
    },
    /// Install a match-action table entry (never structural).
    TablePut {
        /// Owning element.
        node: String,
        /// The entry.
        entry: TableEntry,
    },
    /// The control section changed — hosts re-query
    /// [`DescBinding::controller`](super::DescBinding::controller).
    SetControl,
    /// The steering pins changed — applied through the zero-loss
    /// migration path.
    SetSteering,
}

impl PatchOp {
    /// Whether this op mutates graph structure (and therefore needs a
    /// pipeline-wide quiesce window on the threaded driver).
    pub fn structural(&self) -> bool {
        matches!(
            self,
            PatchOp::AddElement { .. }
                | PatchOp::RebuildElement { .. }
                | PatchOp::RemoveElement { .. }
                | PatchOp::Unbind { .. }
                | PatchOp::Bind { .. }
        )
    }

    fn render(&self) -> String {
        match self {
            PatchOp::AddElement { name } => format!("add {name}"),
            PatchOp::RebuildElement { name } => format!("rebuild {name}"),
            PatchOp::ReplaceElement { name } => format!("replace {name}"),
            PatchOp::RemoveElement { name } => format!("remove {name}"),
            PatchOp::Unbind { edge } => format!("unbind {}", edge.render()),
            PatchOp::Bind { edge } => format!("bind {}", edge.render()),
            PatchOp::SetEntry { name } => format!("set-entry {name}"),
            PatchOp::TableDel { node, entry } => format!("table-del {node}: {}", entry.render()),
            PatchOp::TablePut { node, entry } => format!("table-put {node}: {}", entry.render()),
            PatchOp::SetControl => "set-control".to_owned(),
            PatchOp::SetSteering => "set-steering".to_owned(),
        }
    }
}

/// A deterministic mutation plan between two descriptions. Produced by
/// [`diff`], consumed by
/// [`DescBinding::apply_sharded`](super::DescBinding::apply_sharded) /
/// [`apply_solo`](super::DescBinding::apply_solo).
#[derive(Clone, Debug, PartialEq)]
pub struct Patch {
    from: PipelineDesc,
    to: PipelineDesc,
    ops: Vec<PatchOp>,
    quiesce: bool,
}

impl Patch {
    /// The ops, in apply order.
    pub fn ops(&self) -> &[PatchOp] {
        &self.ops
    }

    /// The canonical description this patch starts from.
    pub fn from_desc(&self) -> &PipelineDesc {
        &self.from
    }

    /// The canonical description this patch produces.
    pub fn to_desc(&self) -> &PipelineDesc {
        &self.to
    }

    /// True when nothing changed.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Structural mutations in the plan.
    pub fn structural_ops(&self) -> usize {
        self.ops.iter().filter(|op| op.structural()).count()
    }

    /// True when the plan touches **zero structure** — hot element
    /// swaps, table upserts, and pipeline-level updates only. This is
    /// the property the reconfiguration bench prices: param-only
    /// patches apply without a pipeline-wide quiesce.
    pub fn param_only(&self) -> bool {
        self.structural_ops() == 0
    }

    /// Whether the threaded applier must park the workers: any
    /// structural op, or a hot swap of the ingress element itself
    /// (workers hold its push handle, so the swap and the handle
    /// update must be atomic).
    pub fn requires_quiesce(&self) -> bool {
        self.quiesce
    }

    /// Whether the steering pins changed.
    pub fn steering_changed(&self) -> bool {
        self.ops.contains(&PatchOp::SetSteering)
    }

    /// Whether the control section changed.
    pub fn control_changed(&self) -> bool {
        self.ops.contains(&PatchOp::SetControl)
    }

    /// A stable textual rendering of the plan — what the golden-file
    /// tests snapshot.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "patch {} -> {} ({}, {} ops, {} structural)",
            self.from.name,
            self.to.name,
            if self.param_only() {
                "param-only"
            } else {
                "structural"
            },
            self.ops.len(),
            self.structural_ops(),
        );
        for op in &self.ops {
            let _ = writeln!(out, "  {}", op.render());
        }
        out
    }
}

/// Computes the minimal deterministic patch taking `old` to `new`.
///
/// Both descriptions are canonicalised first; callers are expected to
/// have validated them (the appliers re-validate the target against
/// their own external-kind set). Element identity is the description
/// *name*: renaming an element diffs as remove + add, same as any
/// config-diff system.
pub fn diff(old: &PipelineDesc, new: &PipelineDesc) -> Patch {
    let old = old.canonical();
    let new = new.canonical();
    let mut ops = Vec::new();

    // Element sets, by name.
    let mut added = BTreeSet::new();
    let mut rebuilt = BTreeSet::new();
    let mut replaced = BTreeSet::new();
    let mut removed = BTreeSet::new();
    for name in new.elements.keys() {
        if !old.elements.contains_key(name) {
            added.insert(name.clone());
        }
    }
    for (name, old_el) in &old.elements {
        match new.elements.get(name) {
            None => {
                removed.insert(name.clone());
            }
            Some(new_el) if new_el.kind != old_el.kind => {
                rebuilt.insert(name.clone());
            }
            Some(new_el) if new_el.params != old_el.params => {
                replaced.insert(name.clone());
            }
            Some(_) => {}
        }
    }
    for name in &added {
        ops.push(PatchOp::AddElement { name: name.clone() });
    }
    for name in &rebuilt {
        ops.push(PatchOp::RebuildElement { name: name.clone() });
    }
    for name in &replaced {
        ops.push(PatchOp::ReplaceElement { name: name.clone() });
    }

    // Edges. `destroy` drops edges touching removed elements, so the
    // diff only unbinds edges both of whose endpoints survive.
    let old_edges: BTreeSet<_> = old.edges.iter().cloned().collect();
    let new_edges: BTreeSet<_> = new.edges.iter().cloned().collect();
    for edge in old_edges.difference(&new_edges) {
        if removed.contains(&edge.from) || removed.contains(&edge.to) {
            continue;
        }
        ops.push(PatchOp::Unbind { edge: edge.clone() });
    }
    for name in &removed {
        ops.push(PatchOp::RemoveElement { name: name.clone() });
    }
    for edge in new_edges.difference(&old_edges) {
        ops.push(PatchOp::Bind { edge: edge.clone() });
    }

    // Ingress: re-pointed, or re-materialised under the workers.
    let entry_swapped = new.entry != old.entry
        || added.contains(&new.entry)
        || rebuilt.contains(&new.entry)
        || replaced.contains(&new.entry);
    if entry_swapped {
        ops.push(PatchOp::SetEntry {
            name: new.entry.clone(),
        });
    }

    // Tables. A replaced/rebuilt element is a fresh instance with
    // empty tables: everything it should hold is re-put, nothing is
    // deleted (the old instance died with its entries).
    let empty = Vec::new();
    let fresh: BTreeSet<_> = added.union(&rebuilt).chain(&replaced).cloned().collect();
    let nodes: BTreeSet<_> = old.tables.keys().chain(new.tables.keys()).collect();
    let mut dels = Vec::new();
    let mut puts = Vec::new();
    for node in nodes {
        if removed.contains(node) {
            continue;
        }
        let new_entries: BTreeSet<_> = new.tables.get(node).unwrap_or(&empty).iter().collect();
        if fresh.contains(node) {
            for entry in new_entries {
                puts.push(PatchOp::TablePut {
                    node: node.clone(),
                    entry: entry.clone(),
                });
            }
            continue;
        }
        let old_entries: BTreeSet<_> = old.tables.get(node).unwrap_or(&empty).iter().collect();
        for entry in old_entries.difference(&new_entries) {
            dels.push(PatchOp::TableDel {
                node: node.clone(),
                entry: (*entry).clone(),
            });
        }
        for entry in new_entries.difference(&old_entries) {
            puts.push(PatchOp::TablePut {
                node: node.clone(),
                entry: (*entry).clone(),
            });
        }
    }
    ops.extend(dels);
    ops.extend(puts);

    if old.control != new.control {
        ops.push(PatchOp::SetControl);
    }
    if old.pins != new.pins {
        ops.push(PatchOp::SetSteering);
    }

    let quiesce =
        ops.iter().any(PatchOp::structural) || (entry_swapped && replaced.contains(&new.entry));
    Patch {
        from: old,
        to: new,
        ops,
        quiesce,
    }
}

#[cfg(test)]
mod tests {
    use super::super::{ParamValue, PatternDesc};
    use super::*;

    fn base() -> PipelineDesc {
        PipelineDesc::new("t")
            .element("cls", "classifier")
            .element_with("ct", "conntrack", &[("capacity", 1024u64.into())])
            .element("sink", "discard")
            .ingress("cls")
            .edge_labelled("cls", "default", "sink")
            .edge_labelled("cls", "tracked", "ct")
            .edge("ct", "sink")
            .table(
                "cls",
                TableEntry::Filter {
                    pattern: PatternDesc::any().protocol(6),
                    output: "tracked".into(),
                    priority: 5,
                },
            )
    }

    #[test]
    fn identical_descriptions_diff_to_an_empty_patch() {
        let patch = diff(&base(), &base());
        assert!(patch.is_empty());
        assert!(patch.param_only());
        assert!(!patch.requires_quiesce());
    }

    #[test]
    fn a_param_change_is_one_hot_replace_and_nothing_else() {
        let next = base().set_param("ct", "capacity", ParamValue::Int(4096));
        let patch = diff(&base(), &next);
        assert_eq!(
            patch.ops(),
            &[PatchOp::ReplaceElement { name: "ct".into() }]
        );
        assert!(patch.param_only());
        assert_eq!(patch.structural_ops(), 0);
        assert!(!patch.requires_quiesce());
    }

    #[test]
    fn a_param_change_on_the_entry_quiesces_but_stays_param_only() {
        let with_entry_params = PipelineDesc::new("t")
            .element_with("ct", "conntrack", &[("capacity", 64u64.into())])
            .element("sink", "discard")
            .ingress("ct")
            .edge("ct", "sink");
        let next = with_entry_params
            .clone()
            .set_param("ct", "capacity", ParamValue::Int(128));
        let patch = diff(&with_entry_params, &next);
        assert!(patch.param_only());
        assert!(patch.requires_quiesce(), "workers hold the ingress handle");
        assert!(patch
            .ops()
            .contains(&PatchOp::SetEntry { name: "ct".into() }));
    }

    #[test]
    fn table_upserts_touch_no_structure() {
        let next = base().table(
            "cls",
            TableEntry::Filter {
                pattern: PatternDesc::any().protocol(17),
                output: "tracked".into(),
                priority: 4,
            },
        );
        let patch = diff(&base(), &next);
        assert_eq!(patch.ops().len(), 1);
        assert!(matches!(patch.ops()[0], PatchOp::TablePut { .. }));
        assert!(patch.param_only());
        assert!(!patch.requires_quiesce());
    }

    #[test]
    fn a_kind_change_is_structural() {
        let mut next = base();
        next.elements.get_mut("ct").unwrap().kind = "counter".into();
        next.elements.get_mut("ct").unwrap().params.clear();
        let patch = diff(&base(), &next);
        assert!(patch
            .ops()
            .contains(&PatchOp::RebuildElement { name: "ct".into() }));
        assert!(!patch.param_only());
        assert!(patch.requires_quiesce());
    }

    #[test]
    fn removal_drops_edges_implicitly() {
        let next = PipelineDesc::new("t")
            .element("cls", "classifier")
            .element("sink", "discard")
            .ingress("cls")
            .edge_labelled("cls", "default", "sink");
        let patch = diff(&base(), &next);
        // `ct` dies; its edges (cls[tracked]->ct, ct->sink) die with
        // it — no Unbind ops for them, and the filter routing to
        // `tracked` is deleted.
        assert!(patch
            .ops()
            .iter()
            .all(|op| !matches!(op, PatchOp::Unbind { .. })));
        assert!(patch
            .ops()
            .contains(&PatchOp::RemoveElement { name: "ct".into() }));
        assert!(patch
            .ops()
            .iter()
            .any(|op| matches!(op, PatchOp::TableDel { .. })));
    }

    #[test]
    fn diffs_are_deterministic_regardless_of_build_order() {
        let a = diff(
            &base(),
            &base().pin(3, 0).set_param("ct", "capacity", 9u64.into()),
        );
        let b = diff(
            &base(),
            &base().set_param("ct", "capacity", 9u64.into()).pin(3, 0),
        );
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn control_and_steering_changes_are_pipeline_level_ops() {
        let next = base()
            .control("hysteresis", &[("enter", 1.5.into())])
            .pin(7, 0);
        let patch = diff(&base(), &next);
        assert!(patch.control_changed());
        assert!(patch.steering_changed());
        assert!(patch.param_only());
    }
}
