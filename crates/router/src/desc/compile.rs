//! Lowering descriptions to live pipelines, and applying patches to
//! the result.
//!
//! [`Compiler`] drives the same factory path both pipeline drivers
//! share: for each shard it builds a fresh capsule, adopts one element
//! per description node (through the [`schema`](super::schema)
//! constructors, or a host-supplied *external* builder), binds the
//! described edges, installs the match-action tables, and hands the
//! [`ShardGraph`] recipe to [`ShardedPipeline::build`] or
//! [`SoloPipeline::build_with_sketches`]. The per-shard object map it
//! accumulates — name → [`ComponentId`], table entry → live id — is
//! returned as a [`DescBinding`], which is what makes *incremental*
//! reconfiguration possible: a later [`Patch`](super::Patch) is a list
//! of named mutations, and the binding resolves each name to the live
//! object it addresses.
//!
//! The patch applier is where the zero-loss contract lives:
//!
//! * **Param-only patches** ([`Patch::param_only`]) mutate no
//!   structure. Element re-parameterisations run as hot
//!   [`Capsule::replace`] swaps under per-edge quiescence, and table
//!   upserts go through the elements' own lock-protected control
//!   interfaces. The pipeline-wide epoch counter does not move — the
//!   reconfiguration benchmark asserts exactly that.
//! * **Structural patches** (adds, removes, rewires) run inside one
//!   [`ShardedPipeline::quiesce`] window: every worker parks at a
//!   batch boundary, the graph mutates, one epoch is paid, and no
//!   packet observes a half-rewired graph.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

use opencom::capsule::{Capsule, Quiescence};
use opencom::component::Component;
use opencom::error::{Error, Result};
use opencom::ident::{BindingId, ComponentId};
use opencom::meta::resources::ResourceManager;
use opencom::runtime::Runtime;

use netkit_kernel::shard::ShardSpec;
use netkit_packet::sketch::{FlowSketch, SketchConfig};

use crate::api::{
    register_packet_interfaces, FilterId, FilterSpec, IClassifier, IPacketPush, IPACKET_PUSH,
};
use crate::elements::IRouteControl;
use crate::flow::L4LoadBalancer;
use crate::routing::RouteEntry;
use crate::shard::{RebalanceController, ShardGraph, ShardedPipeline, SoloPipeline};

use super::schema;
use super::{EdgeDesc, Patch, PatchOp, PipelineDesc, TableEntry};

/// The live control surface of one compiled element — how the patch
/// applier addresses its match-action table.
#[derive(Clone)]
pub enum ElementHandle {
    /// No table surface.
    Plain,
    /// A classifier's filter table.
    Classifier(Arc<dyn IClassifier>),
    /// A routing element's prefix table.
    Route(Arc<dyn IRouteControl>),
    /// A load balancer's backend set.
    Lb(Arc<L4LoadBalancer>),
}

impl std::fmt::Debug for ElementHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ElementHandle::Plain => "Plain",
            ElementHandle::Classifier(_) => "Classifier",
            ElementHandle::Route(_) => "Route",
            ElementHandle::Lb(_) => "Lb",
        };
        write!(f, "ElementHandle::{name}")
    }
}

/// A host-supplied element builder for a kind the schema registry does
/// not know (e.g. the simulator's egress collector).
pub type ExternalBuild = dyn Fn(usize) -> (Arc<dyn Component>, ElementHandle) + Send + Sync;

/// One shard's compiled object graph: every description name resolved
/// to the live object it produced.
pub struct CompiledShard {
    capsule: Arc<Capsule>,
    ids: BTreeMap<String, ComponentId>,
    handles: BTreeMap<String, ElementHandle>,
    bindings: BTreeMap<EdgeDesc, BindingId>,
    filters: BTreeMap<(String, TableEntry), FilterId>,
    backends: BTreeMap<(String, TableEntry), u32>,
    sketch: Arc<FlowSketch>,
    _rt: Arc<Runtime>,
}

impl std::fmt::Debug for CompiledShard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CompiledShard({} elements, {} edges)",
            self.ids.len(),
            self.bindings.len()
        )
    }
}

fn push_of(capsule: &Arc<Capsule>, id: ComponentId) -> Result<Arc<dyn IPacketPush>> {
    capsule
        .query_interface(id, IPACKET_PUSH)?
        .downcast::<dyn IPacketPush>()
        .ok_or_else(|| Error::StaleReference {
            what: "IPacketPush on a compiled element".to_owned(),
        })
}

fn stale(what: String) -> Error {
    Error::StaleReference { what }
}

impl CompiledShard {
    /// Builds one shard's graph from a canonical, validated
    /// description.
    fn build(
        desc: &PipelineDesc,
        shard: usize,
        sketch: Arc<FlowSketch>,
        externals: &BTreeMap<String, Arc<ExternalBuild>>,
    ) -> Result<(ShardGraph, CompiledShard)> {
        let rt = Runtime::new();
        register_packet_interfaces(&rt);
        let capsule = Capsule::new(format!("{}#{shard}", desc.name), &rt);

        let mut ids = BTreeMap::new();
        let mut handles = BTreeMap::new();
        for (name, el) in &desc.elements {
            let (comp, handle) = match externals.get(&el.kind) {
                Some(build) => build(shard),
                None => schema::construct(&el.kind, &el.params, &sketch)?,
            };
            let id = capsule.adopt(comp)?;
            ids.insert(name.clone(), id);
            handles.insert(name.clone(), handle);
        }

        let mut bindings = BTreeMap::new();
        for edge in &desc.edges {
            let bid = capsule.bind(
                ids[&edge.from],
                "out",
                &edge.label,
                ids[&edge.to],
                IPACKET_PUSH,
            )?;
            bindings.insert(edge.clone(), bid);
        }

        let mut compiled = CompiledShard {
            capsule: Arc::clone(&capsule),
            ids,
            handles,
            bindings,
            filters: BTreeMap::new(),
            backends: BTreeMap::new(),
            sketch,
            _rt: rt,
        };
        // Tables install after edges: a classifier validates that the
        // filter's output label is bound before accepting the filter.
        for (node, entries) in &desc.tables {
            for entry in entries {
                compiled.table_put(node, entry)?;
            }
        }

        let entry = push_of(&capsule, compiled.ids[&desc.entry])?;
        let graph = ShardGraph::new(capsule, entry)
            .with_components(compiled.ids.values().copied().collect());
        Ok((graph, compiled))
    }

    /// The live id a description name compiled to (introspection).
    pub fn id_of(&self, name: &str) -> Option<ComponentId> {
        self.ids.get(name).copied()
    }

    /// The shard's capsule (introspection / escape hatch).
    pub fn capsule(&self) -> &Arc<Capsule> {
        &self.capsule
    }

    /// The live control handle a description name compiled to — the
    /// same surface the patch applier drives table ops through, so a
    /// host can introspect (say) a balancer's backend counters
    /// without keeping its own element references.
    pub fn handle_of(&self, name: &str) -> Option<&ElementHandle> {
        self.handles.get(name)
    }

    fn table_put(&mut self, node: &str, entry: &TableEntry) -> Result<()> {
        let handle = self
            .handles
            .get(node)
            .ok_or_else(|| stale(format!("element `{node}`")))?
            .clone();
        match (handle, entry) {
            (
                ElementHandle::Classifier(cls),
                TableEntry::Filter {
                    pattern,
                    output,
                    priority,
                },
            ) => {
                let id =
                    cls.register_filter(FilterSpec::new(pattern.to_pattern()?, output, *priority))?;
                self.filters.insert((node.to_owned(), entry.clone()), id);
            }
            (ElementHandle::Route(routes), TableEntry::Route { prefix, egress }) => {
                routes.add_route(
                    prefix,
                    RouteEntry {
                        egress: *egress,
                        next_hop: None,
                    },
                )?;
            }
            (ElementHandle::Lb(lb), TableEntry::Backend { ip, port }) => {
                let addr = ip
                    .parse()
                    .map_err(|_| stale(format!("backend address `{ip}`")))?;
                let id = lb.add_backend(addr, *port);
                self.backends.insert((node.to_owned(), entry.clone()), id);
            }
            (_, entry) => {
                return Err(stale(format!(
                    "element `{node}` takes no {} entries",
                    entry.kind().name()
                )));
            }
        }
        Ok(())
    }

    fn table_del(&mut self, node: &str, entry: &TableEntry) -> Result<()> {
        let handle = self
            .handles
            .get(node)
            .ok_or_else(|| stale(format!("element `{node}`")))?
            .clone();
        match (handle, entry) {
            (ElementHandle::Classifier(cls), TableEntry::Filter { .. }) => {
                let key = (node.to_owned(), entry.clone());
                let id = self
                    .filters
                    .remove(&key)
                    .ok_or_else(|| stale(format!("filter on `{node}`")))?;
                cls.remove_filter(id)?;
            }
            (ElementHandle::Route(routes), TableEntry::Route { prefix, .. }) => {
                routes.remove_route(prefix)?;
            }
            (ElementHandle::Lb(lb), TableEntry::Backend { .. }) => {
                let key = (node.to_owned(), entry.clone());
                let id = self
                    .backends
                    .remove(&key)
                    .ok_or_else(|| stale(format!("backend on `{node}`")))?;
                lb.remove_backend(id);
            }
            (_, entry) => {
                return Err(stale(format!(
                    "element `{node}` takes no {} entries",
                    entry.kind().name()
                )));
            }
        }
        Ok(())
    }

    /// Drops the table bookkeeping for `node` — called when a replace
    /// produced a fresh instance whose tables start empty.
    fn purge_tables(&mut self, node: &str) {
        self.filters.retain(|(n, _), _| n != node);
        self.backends.retain(|(n, _), _| n != node);
    }
}

/// Builds pipelines from descriptions. Hosts with element kinds of
/// their own (the simulator's egress collector, a bench's instrumented
/// sink) register them with [`Compiler::external`] before building.
#[derive(Default)]
pub struct Compiler {
    externals: BTreeMap<String, Arc<ExternalBuild>>,
}

impl std::fmt::Debug for Compiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Compiler({} externals)", self.externals.len())
    }
}

impl Compiler {
    /// A compiler with only the built-in schema kinds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an external element kind (builder-style): `build`
    /// is called once per shard and returns the component plus its
    /// table handle (almost always [`ElementHandle::Plain`]).
    /// External kinds are treated as single-output, parameter-less
    /// sinks or passthroughs by the validator.
    pub fn external(
        mut self,
        kind: &str,
        build: impl Fn(usize) -> (Arc<dyn Component>, ElementHandle) + Send + Sync + 'static,
    ) -> Self {
        self.externals.insert(kind.to_owned(), Arc::new(build));
        self
    }

    fn external_kinds(&self) -> BTreeSet<String> {
        self.externals.keys().cloned().collect()
    }

    /// Compiles `desc` to a threaded [`ShardedPipeline`], returning
    /// the pipeline and the [`DescBinding`] that can patch it later.
    ///
    /// Guards compiled into threaded pipelines read a private
    /// per-shard sketch (the worker-metered sketches are created
    /// after the factory runs); use the solo driver when byte-accurate
    /// guard admission matters.
    ///
    /// # Errors
    ///
    /// Propagates validation and graph-construction failures.
    pub fn build_sharded(
        &self,
        desc: &PipelineDesc,
        spec: ShardSpec,
        rm: Arc<ResourceManager>,
    ) -> Result<(ShardedPipeline, DescBinding)> {
        let desc = desc.canonical();
        desc.validate_with(&self.external_kinds())?;
        let workers = spec.workers.max(1);
        let shards: Arc<Mutex<Vec<Option<CompiledShard>>>> =
            Arc::new(Mutex::new((0..workers).map(|_| None).collect()));
        let slot = Arc::clone(&shards);
        let build_desc = desc.clone();
        let externals = self.externals.clone();
        let pipe = ShardedPipeline::build(&desc.name, spec, rm, move |shard| {
            let sketch = Arc::new(FlowSketch::new(SketchConfig::default()));
            let (graph, compiled) = CompiledShard::build(&build_desc, shard, sketch, &externals)?;
            slot.lock().expect("desc shard slot")[shard] = Some(compiled);
            Ok(graph)
        })?;
        let pins: Vec<(usize, usize)> = desc.pins.iter().map(|(&b, &s)| (b, s)).collect();
        if !pins.is_empty() {
            let map = pinned_map(pipe.bucket_map(), &pins, workers)?;
            pipe.install_bucket_map(map, &[]);
        }
        Ok((
            pipe,
            DescBinding {
                desc,
                externals: self.externals.clone(),
                shards,
            },
        ))
    }

    /// Compiles `desc` to a deterministic [`SoloPipeline`] with fresh
    /// per-shard sketches.
    ///
    /// # Errors
    ///
    /// See [`Self::build_sharded`].
    pub fn build_solo(
        &self,
        desc: &PipelineDesc,
        spec: ShardSpec,
        rm: Arc<ResourceManager>,
    ) -> Result<(SoloPipeline, DescBinding)> {
        let workers = spec.workers.max(1);
        let sketches = (0..workers)
            .map(|_| Arc::new(FlowSketch::new(SketchConfig::default())))
            .collect();
        self.build_solo_with_sketches(desc, spec, rm, sketches)
    }

    /// Compiles `desc` to a [`SoloPipeline`] over caller-supplied
    /// sketches — guards described in the pipeline share the same
    /// sketches the driver meters, so byte evidence is live.
    ///
    /// # Errors
    ///
    /// See [`Self::build_sharded`].
    pub fn build_solo_with_sketches(
        &self,
        desc: &PipelineDesc,
        spec: ShardSpec,
        rm: Arc<ResourceManager>,
        sketches: Vec<Arc<FlowSketch>>,
    ) -> Result<(SoloPipeline, DescBinding)> {
        let desc = desc.canonical();
        desc.validate_with(&self.external_kinds())?;
        let workers = spec.workers.max(1);
        let shards: Arc<Mutex<Vec<Option<CompiledShard>>>> =
            Arc::new(Mutex::new((0..workers).map(|_| None).collect()));
        let slot = Arc::clone(&shards);
        let mut pipe =
            SoloPipeline::build_with_sketches(&desc.name, spec, rm, sketches.clone(), |shard| {
                let (graph, compiled) = CompiledShard::build(
                    &desc,
                    shard,
                    Arc::clone(&sketches[shard]),
                    &self.externals,
                )?;
                slot.lock().expect("desc shard slot")[shard] = Some(compiled);
                Ok(graph)
            })?;
        let pins: Vec<(usize, usize)> = desc.pins.iter().map(|(&b, &s)| (b, s)).collect();
        if !pins.is_empty() {
            let map = pinned_map(pipe.bucket_map(), &pins, workers)?;
            pipe.install_bucket_map(map);
        }
        Ok((
            pipe,
            DescBinding {
                desc,
                externals: self.externals.clone(),
                shards,
            },
        ))
    }
}

fn pinned_map(
    base: netkit_packet::steer::BucketMap,
    pins: &[(usize, usize)],
    workers: usize,
) -> Result<netkit_packet::steer::BucketMap> {
    for &(bucket, shard) in pins {
        if shard >= workers {
            return Err(Error::CfViolation {
                framework: "desc".to_owned(),
                rule: format!("pin bucket {bucket} -> shard {shard}: only {workers} shards"),
            });
        }
    }
    Ok(base.with_pins(pins))
}

/// What applying a patch actually did — the receipts the benchmarks
/// and differential tests assert over.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ApplyReport {
    /// Structural mutations executed per shard (adds, removes,
    /// rebinds, kind rebuilds).
    pub structural: usize,
    /// Hot param-only [`Capsule::replace`] swaps per shard.
    pub replaced: usize,
    /// Table upserts / deletions per shard.
    pub table_ops: usize,
    /// Ingress handle swaps across all shards.
    pub entry_swaps: usize,
    /// Buckets moved by a steering update.
    pub moved_buckets: usize,
    /// Pipeline-wide quiesce epochs consumed (0 for param-only
    /// patches on the threaded driver; migrations count separately).
    pub epochs: u64,
    /// Shards whose object graph was touched.
    pub shards_touched: usize,
}

/// The link between a description and the live pipeline it compiled
/// to: apply patches through it, or introspect what each name became.
pub struct DescBinding {
    desc: PipelineDesc,
    externals: BTreeMap<String, Arc<ExternalBuild>>,
    shards: Arc<Mutex<Vec<Option<CompiledShard>>>>,
}

impl std::fmt::Debug for DescBinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DescBinding({})", self.desc.name)
    }
}

impl DescBinding {
    /// The description the live pipeline currently implements
    /// (canonical form).
    pub fn desc(&self) -> &PipelineDesc {
        &self.desc
    }

    /// Computes the patch that would take this binding to `next` —
    /// convenience over [`diff`](super::diff()).
    ///
    /// # Errors
    ///
    /// Propagates validation failures on `next`.
    pub fn diff_to(&self, next: &PipelineDesc) -> Result<Patch> {
        next.validate_with(&self.externals.keys().cloned().collect())?;
        Ok(super::diff(&self.desc, next))
    }

    /// The controller the description's control section selects, if
    /// any. Hosts re-query this after applying a patch whose diff
    /// included a control change.
    ///
    /// # Errors
    ///
    /// Propagates unknown core names (pre-validated descriptions
    /// cannot hit this).
    pub fn controller(&self) -> Result<Option<RebalanceController>> {
        self.desc
            .control
            .as_ref()
            .map(schema::compile_control)
            .transpose()
    }

    /// Runs `f` over one compiled shard's object map (introspection
    /// for tests and tooling).
    pub fn with_shard<R>(&self, shard: usize, f: impl FnOnce(&CompiledShard) -> R) -> Option<R> {
        let shards = self.shards.lock().expect("desc shard slot");
        shards.get(shard).and_then(Option::as_ref).map(f)
    }

    fn check_patch(&self, patch: &Patch) -> Result<()> {
        if patch.from_desc().render() != self.desc.render() {
            return Err(stale(
                "patch base does not match the binding's current description".to_owned(),
            ));
        }
        patch
            .to_desc()
            .validate_with(&self.externals.keys().cloned().collect())
    }

    /// Applies `patch` to a threaded pipeline built from this binding.
    ///
    /// Param-only patches run hot — no pipeline-wide quiesce, zero
    /// epochs. Structural patches (and param swaps of the ingress
    /// element, whose handle the workers hold) run inside exactly one
    /// quiesce window. Steering changes ride the existing zero-loss
    /// migration path and report their own epoch.
    ///
    /// # Errors
    ///
    /// Fails if the patch's base does not match this binding, or if a
    /// mutation fails mid-apply — in that case the binding is stale
    /// and the pipeline should be rebuilt from a fresh description.
    pub fn apply_sharded(&mut self, pipe: &ShardedPipeline, patch: &Patch) -> Result<ApplyReport> {
        self.check_patch(patch)?;
        let epoch_before = pipe.epoch();
        let mut report = ApplyReport::default();
        if patch.requires_quiesce() {
            pipe.quiesce(|| -> Result<()> {
                let swaps = self.apply_ops(patch, &mut report)?;
                for (shard, entry) in swaps {
                    pipe.set_entry(shard, entry);
                    report.entry_swaps += 1;
                }
                Ok(())
            })?;
        } else {
            let swaps = self.apply_ops(patch, &mut report)?;
            for (shard, entry) in swaps {
                pipe.set_entry(shard, entry);
                report.entry_swaps += 1;
            }
        }
        if patch.steering_changed() {
            let workers = pipe.spec().workers.max(1);
            let pins: Vec<(usize, usize)> =
                patch.to_desc().pins.iter().map(|(&b, &s)| (b, s)).collect();
            let map = pinned_map(pipe.bucket_map(), &pins, workers)?;
            let migration = pipe.install_bucket_map(map, &[]);
            report.moved_buckets = migration.moved_buckets;
        }
        self.desc = patch.to_desc().clone();
        report.epochs = pipe.epoch() - epoch_before;
        Ok(report)
    }

    /// Applies `patch` to a solo pipeline built from this binding.
    /// The caller is always at a batch boundary, so no quiesce is
    /// needed regardless of the patch's shape; `epochs` stays 0.
    ///
    /// # Errors
    ///
    /// See [`Self::apply_sharded`].
    pub fn apply_solo(&mut self, pipe: &mut SoloPipeline, patch: &Patch) -> Result<ApplyReport> {
        self.check_patch(patch)?;
        let mut report = ApplyReport::default();
        let swaps = self.apply_ops(patch, &mut report)?;
        for (shard, entry) in swaps {
            pipe.set_entry(shard, entry);
            report.entry_swaps += 1;
        }
        if patch.steering_changed() {
            let workers = pipe.workers();
            let pins: Vec<(usize, usize)> =
                patch.to_desc().pins.iter().map(|(&b, &s)| (b, s)).collect();
            let map = pinned_map(pipe.bucket_map(), &pins, workers)?;
            let migration = pipe.install_bucket_map(map);
            report.moved_buckets = migration.moved_buckets;
        }
        self.desc = patch.to_desc().clone();
        Ok(report)
    }

    /// Executes the patch's element/table ops on every compiled shard
    /// and returns the pending ingress swaps.
    fn apply_ops(
        &mut self,
        patch: &Patch,
        report: &mut ApplyReport,
    ) -> Result<Vec<(usize, Arc<dyn IPacketPush>)>> {
        let to = patch.to_desc();
        let mut swaps = Vec::new();
        let mut shards = self.shards.lock().expect("desc shard slot");
        let mut touched = false;
        for (shard, compiled) in shards.iter_mut().enumerate() {
            let Some(cs) = compiled.as_mut() else {
                continue;
            };
            for op in patch.ops() {
                match op {
                    PatchOp::AddElement { name } => {
                        let el = &to.elements[name];
                        let (comp, handle) = match self.externals.get(&el.kind) {
                            Some(build) => build(shard),
                            None => schema::construct(&el.kind, &el.params, &cs.sketch)?,
                        };
                        let id = cs.capsule.adopt(comp)?;
                        cs.ids.insert(name.clone(), id);
                        cs.handles.insert(name.clone(), handle);
                        report.structural += 1;
                        touched = true;
                    }
                    PatchOp::ReplaceElement { name } | PatchOp::RebuildElement { name } => {
                        let el = &to.elements[name];
                        let (comp, handle) = match self.externals.get(&el.kind) {
                            Some(build) => build(shard),
                            None => schema::construct(&el.kind, &el.params, &cs.sketch)?,
                        };
                        let new_id = cs.capsule.adopt(comp)?;
                        let old_id = *cs
                            .ids
                            .get(name)
                            .ok_or_else(|| stale(format!("element `{name}`")))?;
                        // Per-edge quiescence: each edge drains its
                        // in-flight call and rewires; binding ids (and
                        // interceptor chains) survive the swap.
                        cs.capsule.replace(old_id, new_id, Quiescence::PerEdge)?;
                        cs.ids.insert(name.clone(), new_id);
                        cs.handles.insert(name.clone(), handle);
                        cs.purge_tables(name);
                        if matches!(op, PatchOp::ReplaceElement { .. }) {
                            report.replaced += 1;
                        } else {
                            report.structural += 1;
                        }
                        touched = true;
                    }
                    PatchOp::RemoveElement { name } => {
                        let id = cs
                            .ids
                            .remove(name)
                            .ok_or_else(|| stale(format!("element `{name}`")))?;
                        cs.capsule.destroy(id)?;
                        cs.handles.remove(name);
                        cs.bindings
                            .retain(|edge, _| edge.from != *name && edge.to != *name);
                        cs.purge_tables(name);
                        report.structural += 1;
                        touched = true;
                    }
                    PatchOp::Bind { edge } => {
                        let from = *cs
                            .ids
                            .get(&edge.from)
                            .ok_or_else(|| stale(format!("element `{}`", edge.from)))?;
                        let dst = *cs
                            .ids
                            .get(&edge.to)
                            .ok_or_else(|| stale(format!("element `{}`", edge.to)))?;
                        let bid = cs
                            .capsule
                            .bind(from, "out", &edge.label, dst, IPACKET_PUSH)?;
                        cs.bindings.insert(edge.clone(), bid);
                        report.structural += 1;
                        touched = true;
                    }
                    PatchOp::Unbind { edge } => {
                        let bid = cs
                            .bindings
                            .remove(edge)
                            .ok_or_else(|| stale(format!("edge `{} -> {}`", edge.from, edge.to)))?;
                        cs.capsule.unbind(bid)?;
                        report.structural += 1;
                        touched = true;
                    }
                    PatchOp::SetEntry { name } => {
                        let id = *cs
                            .ids
                            .get(name)
                            .ok_or_else(|| stale(format!("element `{name}`")))?;
                        swaps.push((shard, push_of(&cs.capsule, id)?));
                        touched = true;
                    }
                    PatchOp::TableDel { node, entry } => {
                        cs.table_del(node, entry)?;
                        report.table_ops += 1;
                        touched = true;
                    }
                    PatchOp::TablePut { node, entry } => {
                        cs.table_put(node, entry)?;
                        report.table_ops += 1;
                        touched = true;
                    }
                    // Pipeline-level ops: handled by the apply_* wrappers.
                    PatchOp::SetControl | PatchOp::SetSteering => {}
                }
            }
            if touched {
                report.shards_touched += 1;
                touched = false;
            }
        }
        Ok(swaps)
    }
}
