//! The Router CF's packet-passing interfaces (paper Figure 2),
//! redesigned batch-first.
//!
//! Components acceptable to the Router CF "must support appropriate
//! numbers and combinations of specific packet-passing interfaces/
//! receptacles (called `IPacketPush` and `IPacketPull` …)" and "may
//! (optionally) support an `IClassifier` interface which exports an
//! operation `register_filter()`" (paper §5). This module defines those
//! three interfaces, their introspection descriptors, the interception
//! wrappers that make them interceptable, and the IPC stub/skeleton pair
//! that lets untrusted packet components run out-of-capsule.
//!
//! # The batch contract
//!
//! Both packet interfaces are **batch-first**: the unit of transfer is a
//! [`PacketBatch`], moved by [`IPacketPush::push_batch`] and
//! [`IPacketPull::pull_batch`]. The scalar methods remain as the
//! degenerate batch of one, and both batch methods have default
//! implementations that loop over the scalar ones — third-party
//! components written against the original Fig-2 contract keep working
//! unchanged, they just don't amortize.
//!
//! The contract a batch implementation must honour:
//!
//! * **Ordering** — packets are processed in batch order. On any single
//!   downstream output, the emitted sequence is exactly what the scalar
//!   path would produce for the same input sequence. Splitting
//!   components (classifier, route lookup) preserve relative order
//!   within each output.
//! * **Partial failure** — a batch push never fails wholesale. The
//!   returned [`BatchResult`] carries one verdict *per packet, in batch
//!   order*: `Ok(())` for accepted/forwarded packets and a
//!   [`PushError`] for each packet dropped, exactly the value the
//!   scalar `push` would have returned for that packet.
//! * **Equivalence** — counters, drop reasons, and per-packet side
//!   effects (TTL decrement, metadata annotation, meter colouring) must
//!   match the scalar path bit-for-bit. What batching may change is
//!   *amortization only*: one receptacle lock, one interceptor-chain
//!   traversal (`around("push_batch", …)`), and one marshalled IPC call
//!   per batch instead of per packet. A differential property test
//!   (`tests/proptest_batch_equiv.rs`) enforces this.
//!
//! # Sharded execution
//!
//! Under the sharded runtime ([`crate::shard::ShardedPipeline`]) these
//! interfaces are driven concurrently by N run-to-completion workers,
//! each against its own replica of the element graph. The contract
//! refines as follows:
//!
//! * **Ordering becomes per-flow.** Steering pins every flow to one
//!   worker, so on any single output the sequence *within each flow*
//!   is exactly the scalar sequence; ordering **between** flows that
//!   landed on different workers is unspecified. Aggregate counters
//!   and per-output multisets remain identical to the single-threaded
//!   pipeline (enforced by `tests/sharded_equiv.rs` for N = 1..4,
//!   with 0 shards ≡ 1 shard at every layer).
//! * **Steering is index-based, parse-free — and move-free on the
//!   dispatcher.** `dispatch` runs `PacketBatch::shard_split_with` —
//!   one counting-sort pass over driver-stamped
//!   `PacketMeta::rss_hash` values (written once at NIC rx or batch
//!   construction, never re-parsed) — then wraps the parent once
//!   (`ShardSplit::into_shared`) and publishes one refcounted
//!   shard-range *descriptor* per target ring. Packets move exactly
//!   once, on the **worker** (`SharedShardRange::take_into` into a
//!   pool-recycled gather container whose labels are shared from the
//!   parent's interned table). Elements therefore must not assume a
//!   batch's label table holds only labels its own packets use. See
//!   "The dispatch contract" below for the parent's lifecycle.
//! * **Batches arrive pool-homed.** A batch a worker receives may
//!   lease its container (and its packets' frame buffers) from the
//!   pipeline's `BatchPool`/`BufferPool`; terminal elements should
//!   drop batches whole, `pop` what they keep (as `Discard` does), or
//!   drain in place (`PacketBatch::drain_all`, as the tx device
//!   adapter does) so the storage recycles. The consuming methods
//!   (`into_packets`, `into_label_groups`) detach moved storage from
//!   its pool — correct, but off the zero-allocation path.
//! * **Implementations need no extra locking.** A replica is only ever
//!   driven by its own worker; `Send + Sync` plus the existing interior
//!   mutability suffices. Do not share an element instance between
//!   replicas — replicate it and let the counters roll up.
//! * **Reconfiguration is epoch-quiesced.** Architecture-meta-model
//!   changes apply inside [`crate::shard::ShardedPipeline::quiesce`],
//!   which parks every worker at a batch boundary: no `push_batch` is
//!   ever mid-flight anywhere while the graphs change, and traffic
//!   submitted meanwhile queues rather than drops.
//!
//! ## The steering contract, precisely
//!
//! Steering is governed by a 256-entry bucket → shard indirection
//! table (`netkit_packet::steer::BucketMap`): a packet's stamped RSS
//! hash reduces to a bucket, the table names the shard. The rules:
//!
//! * **Ownership.** The [`crate::shard::ShardedPipeline`] owns the
//!   authoritative table. NIC indirection tables and sim demux tables
//!   are *mirrors*, installed by
//!   [`crate::shard::ShardedPipeline::install_bucket_map`] inside the
//!   same quiesce epoch as the pipeline's own swap; elements never
//!   consult or mutate the table directly. The identity table
//!   reproduces classic `hash % shards` RSS steering.
//! * **Quiesce semantics of a migration.** `install_bucket_map` runs
//!   under the write half of the steering lock (every `dispatch` /
//!   `submit` / `pump_nic` holds the read half across its ring
//!   hand-off, so no steering decision interleaves with a swap) and
//!   inside one `WorkerPool::quiesce` epoch: all previously enqueued
//!   batches run to completion first; frames still parked in NIC rx
//!   queues are drained FIFO and re-steered by the *new* table onto
//!   their rings; then the table swaps. Wire-side injection must be
//!   quiescent across the swap (a simulated NIC cannot apply it
//!   atomically against racing injectors the way silicon does).
//! * **Per-flow ordering across a migration.** A flow maps to exactly
//!   one bucket, and a bucket to exactly one shard per epoch, so a
//!   migrated flow's packets partition into "before" (old shard,
//!   fully processed before the barrier) and "after" (new shard,
//!   processed after release) — the delivered per-flow sequence is
//!   identical to the unmigrated one. Nothing is lost or duplicated;
//!   *cross*-flow interleaving may change, exactly as between any two
//!   epochs. Enforced by `tests/rebalance_elephant.rs` (differential)
//!   and `crates/router/tests/proptest_rebalance.rs` (any remap,
//!   mid-stream).
//!
//! Runnable — a mid-stream remap is invisible to per-flow delivery:
//!
//! ```
//! use std::sync::Arc;
//! use netkit_kernel::shard::ShardSpec;
//! use netkit_packet::batch::PacketBatch;
//! use netkit_packet::flow::FlowKey;
//! use netkit_packet::packet::PacketBuilder;
//! use netkit_router::api::register_packet_interfaces;
//! use netkit_router::elements::Counter;
//! use netkit_router::shard::{ShardGraph, ShardedPipeline};
//! use opencom::capsule::Capsule;
//! use opencom::meta::resources::ResourceManager;
//! use opencom::runtime::Runtime;
//!
//! let rm = Arc::new(ResourceManager::new());
//! let pipe = ShardedPipeline::build("doc-steer", ShardSpec::new(2), rm, |_| {
//!     let rt = Runtime::new();
//!     register_packet_interfaces(&rt);
//!     let capsule = Capsule::new("shard", &rt);
//!     let counter = Counter::new(); // sink mode: counts and accepts
//!     Ok(ShardGraph::new(capsule, counter))
//! })?;
//!
//! // One flow (fixed 5-tuple); the sequence rides in the payload.
//! let mk = |seq: u16| {
//!     PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 7777, 443)
//!         .payload(&seq.to_be_bytes())
//!         .build()
//! };
//! let burst: PacketBatch = (0..8).map(mk).collect();
//! pipe.dispatch(burst);
//!
//! // Migrate the flow's bucket to the OTHER shard, mid-stream: the
//! // quiesce inside install_bucket_map drains the in-flight batch
//! // first, so "before" packets finish before "after" packets start.
//! let bucket = FlowKey::from_packet(&mk(0)).unwrap().bucket();
//! let mut map = pipe.bucket_map();
//! let (old, new) = (map.shard_of_bucket(bucket), 1 - map.shard_of_bucket(bucket));
//! map.set(bucket, new);
//! pipe.install_bucket_map(map, &[]);
//!
//! let burst: PacketBatch = (8..16).map(mk).collect();
//! pipe.dispatch(burst);
//! pipe.flush();
//!
//! // No loss, no duplication — and every post-migration packet of the
//! // flow ran on the new shard, after every pre-migration one.
//! let stats = pipe.stats();
//! assert_eq!((stats.packets, stats.dropped), (16, 0));
//! assert_eq!(pipe.shard_stats(old).packets, 8);
//! assert_eq!(pipe.shard_stats(new).packets, 8);
//! assert_eq!(pipe.migrations(), 1);
//! pipe.shutdown();
//! # Ok::<(), opencom::error::Error>(())
//! ```
//!
//! ## The dispatch contract, precisely
//!
//! Software dispatch ([`crate::shard::ShardedPipeline::dispatch`])
//! publishes **shared shard ranges**, not owned sub-batches. The
//! lifecycle rules:
//!
//! * **One publish per dispatch.** A dispatch is one counting-sort
//!   split, one shared wrap of the parent batch, one worker-pool gate
//!   transaction reserving *every* non-empty target shard, and one
//!   ring write per such shard — a refcount bump, not a packet move.
//!   The owned-move protocol (split, re-materialise each shard's
//!   packets into its own pooled sub-batch, one gate transaction per
//!   sub-batch) survives as
//!   [`crate::shard::ShardedPipeline::dispatch_owned`], the measured
//!   baseline of bench series `e13_dispatch`.
//! * **The last range handle frees the parent.** The caller hands the
//!   parent batch to `dispatch` and never sees it again: each ring's
//!   descriptor holds one reference; a worker consuming its range
//!   moves its packets out (disjoint permutation slots, so workers
//!   never contend for a packet) and drops its handle. Whichever
//!   handle drops **last** — normally the last worker to run, but
//!   equally a descriptor rejected by a dead worker or dropped on a
//!   re-steer — returns the parent's container to the pipeline's
//!   [`crate::shard::ShardedPipeline::batch_pool`]. Neither the
//!   dispatcher nor any element ever frees a parent explicitly, and a
//!   pool-leased parent recycles whole (the doctest below proves it).
//! * **Rejected ranges are accounted, then freed like any range.** A
//!   descriptor that cannot be delivered (dead worker, or a full ring
//!   on the non-blocking re-steer path) has its packet count added to
//!   the target shard's `dropped` meter; dropping the descriptor
//!   releases its parent reference, so rejection never leaks the
//!   container or wedges siblings that did get their ranges.
//! * **Quiesce interaction.** `dispatch` publishes with a *blocking*
//!   ring write outside any epoch, and every descriptor enqueued
//!   before a quiesce is consumed before its worker parks (the sync
//!   marker queues behind it) — so a quiesce closure never observes a
//!   live shared parent, and reconfiguration cannot interleave with a
//!   half-consumed split. Inside the epoch the rules invert: parked
//!   workers can never relieve a full ring, so the NIC-drain re-steer
//!   in `install_bucket_map` publishes its ranges with per-shard
//!   non-blocking writes and counts full-ring rejections as drops
//!   rather than deadlocking.
//!
//! Runnable — the caller leases the parent, the last worker frees it:
//!
//! ```
//! use std::sync::Arc;
//! use netkit_kernel::shard::ShardSpec;
//! use netkit_packet::packet::PacketBuilder;
//! use netkit_router::api::register_packet_interfaces;
//! use netkit_router::elements::Counter;
//! use netkit_router::shard::{ShardGraph, ShardedPipeline};
//! use opencom::capsule::Capsule;
//! use opencom::meta::resources::ResourceManager;
//! use opencom::runtime::Runtime;
//!
//! let rm = Arc::new(ResourceManager::new());
//! let pipe = ShardedPipeline::build("doc-dispatch", ShardSpec::new(2), rm, |_| {
//!     let rt = Runtime::new();
//!     register_packet_interfaces(&rt);
//!     let capsule = Capsule::new("shard", &rt);
//!     Ok(ShardGraph::new(capsule, Counter::new())) // sink mode
//! })?;
//!
//! // Lease the parent from the pipeline's own pool and fill it with
//! // several flows, so the split fans out to both workers.
//! let mut parent = pipe.batch_pool().take();
//! for port in 0..16u16 {
//!     parent.push(
//!         PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 5000 + port, 443).build(),
//!     );
//! }
//! let before = pipe.batch_pool().stats();
//!
//! // One publish; ownership of `parent` is gone from this thread.
//! pipe.dispatch(parent);
//! pipe.flush();
//!
//! // Every packet ran, nothing dropped — and the parent's container
//! // came back to the pool, recycled by the LAST worker to consume
//! // its range, never by the dispatcher.
//! let stats = pipe.stats();
//! assert_eq!((stats.packets, stats.dropped), (16, 0));
//! let after = pipe.batch_pool().stats();
//! assert!(after.recycled > before.recycled, "parent recycled: {after:?}");
//! assert_eq!(after.discarded, before.discarded, "recycled whole, not shed");
//! pipe.shutdown();
//! # Ok::<(), opencom::error::Error>(())
//! ```
//!
//! ## The control-loop contract, precisely
//!
//! Rebalancing runs **autonomously**: spawning a
//! [`crate::shard::control::ControlLoop`] on a pipeline closes the
//! reflective inspect → decide → adapt loop with no external caller.
//! The rules a steering surface and its controller agree on:
//!
//! * **Windows are evidence, and evidence is only consumed by a
//!   decision.** The per-bucket observation window is *peeked*, never
//!   pre-drained. A window below the policy's `min_samples`
//!   accumulates untouched across turns (a low-rate skew eventually
//!   gathers a verdict's worth of evidence); a judged-but-declined
//!   window is *decayed* (each bucket keeps the policy's `decay`
//!   fraction) — retained, not discarded; an applied migration
//!   *retires* exactly the snapshot it was planned on, so packets
//!   recorded mid-decision carry over to the next turn in full. The
//!   gate, the plan, and the retire all judge the **same snapshot**.
//! * **Decisions weigh pressure, not just throughput.** The
//!   [`crate::shard::WeightedRebalancePolicy`] inflates each bucket's
//!   count by its shard's ring occupancy (high-water / capacity,
//!   scaled by `pressure_weight`), so a packet skew sitting just
//!   under the imbalance threshold still converges once the hot
//!   shard's queue backs up. `min_samples` always gates on raw
//!   counts: pressure can amplify evidence, never conjure it.
//! * **Adaptation is rate-capped and backs off.** At most one
//!   migration per `cooldown_ticks + 1` turns (each migration costs a
//!   quiesce epoch), and the threaded loop multiplies its tick
//!   interval after every no-op turn (up to `max_tick`, snapping back
//!   to `tick` on a migration) — an idle control loop asymptotically
//!   costs nothing.
//! * **The loop is single-consumer and reflective.** One controller
//!   owns a pipeline's window (don't mix autonomous and manual
//!   `rebalance()` polling); it is an ordinary meta-object — its
//!   turns are accounted as `classes::TICKS` on its own
//!   `ResourceManager` task, each applied migration as
//!   `classes::REBALANCES` on the pipeline's, and the migrations it
//!   installs go through the identical write-locked quiesce epoch as
//!   any manual reconfiguration (every guarantee of the steering
//!   contract above holds across autonomous epochs too).
//! * **Determinism lives in the core.** The decision state machine
//!   ([`crate::shard::control::RebalanceController`]) is clockless
//!   and thread-free; the cadence (`PeriodicTask` wall-clock ticks)
//!   is the only nondeterministic layer. The simulator drives the
//!   same controller from its event loop, bit-for-bit reproducibly.
//!
//! Runnable — the decision core, one turn per outcome:
//!
//! ```
//! use netkit_packet::steer::{BucketMap, RSS_BUCKETS};
//! use netkit_router::shard::control::{ControlDecision, RebalanceController};
//! use netkit_router::shard::{RebalancePolicy, WeightedRebalancePolicy};
//!
//! let mut ctl = RebalanceController::new(
//!     WeightedRebalancePolicy {
//!         base: RebalancePolicy { max_imbalance: 1.25, min_samples: 64 },
//!         pressure_weight: 1.0,
//!         decay: 0.5,
//!     },
//!     0,
//! );
//! let map = BucketMap::identity(2);
//! let mut window = vec![0u64; RSS_BUCKETS];
//!
//! // Sub-min window: gathering — leave the meter untouched.
//! window[0] = 32;
//! assert!(matches!(ctl.decide(&window, &[], 1024, &map), ControlDecision::Gathering));
//!
//! // Balanced window: judged, declined — the caller decays by 0.5.
//! window[1] = 32;
//! assert!(matches!(ctl.decide(&window, &[], 1024, &map), ControlDecision::Hold));
//!
//! // Colocated skew: the adapt arm fires with an improving plan.
//! window[0] = 96;
//! window[2] = 64; // bucket 2 -> shard 0 under identity(2)
//! match ctl.decide(&window, &[], 1024, &map) {
//!     ControlDecision::Migrate(plan) => {
//!         assert_eq!(plan.moved, vec![2]);
//!         assert!(plan.imbalance_after < plan.imbalance_before);
//!     }
//!     other => panic!("skew must migrate, got {other:?}"),
//! }
//! assert_eq!((ctl.ticks(), ctl.migrations(), ctl.holds()), (3, 1, 1));
//! ```
//!
//! ## The flow-element contract, precisely
//!
//! Stateful elements ([`crate::flow`]: `ConnTracker`, `Nat44`,
//! `L4LoadBalancer`) are ordinary `IPacketPush` components — the batch
//! contract above applies unchanged — plus four rules of their own:
//!
//! * **Identity is canonical.** Per-flow state is keyed by
//!   [`FlowKey::canonical`](netkit_packet::flow::FlowKey::canonical),
//!   so both directions of a connection share one entry; and because
//!   the RSS hash is computed over the symmetric tuple, both
//!   directions land on the same shard. Under the sharded runtime
//!   each replica's table therefore has exactly one writer — elements
//!   need no cross-shard coherence, ever.
//! * **Pass-through with a sink mode.** An element tracks (or
//!   rewrites) and forwards on its `out` receptacle; with `out`
//!   unbound it accepts and drops — the tap deployment the doctest
//!   below uses. Frames without a flow identity (non-IP, fragments)
//!   pass through untracked and are counted, never dropped for
//!   statefulness' sake.
//! * **State is bounded, and eviction is observable.** Tables
//!   allocate at construction and never grow
//!   (`FlowTable::footprint_bytes` is a constant; `tests/flow_soak.rs`
//!   holds it byte-identical across a million flows). Admission into a
//!   full table evicts the LRU entry and returns it
//!   (`Admission::evicted`) so elements owning linked state — NAT's
//!   paired reverse bindings — unlink deterministically.
//! * **Migration re-establishes, it does not copy.** When a bucket
//!   moves shards, the flow's first packet on the new shard re-admits
//!   it and the state machines promote deterministically (a mid-stream
//!   ACK establishes immediately; an LB sticky entry re-selects by
//!   rendezvous hash, stable across shards). The old entry idles out.
//!   Normative text in [`crate::flow`]; enforced end-to-end by
//!   `tests/flow_state_rebalance.rs`.
//!
//! Runnable — canonical identity gives one bidirectional entry:
//!
//! ```
//! use netkit_packet::flow::FlowKey;
//! use netkit_packet::packet::PacketBuilder;
//! use netkit_router::api::IPacketPush;
//! use netkit_router::flow::{ConnState, ConnTracker};
//!
//! let tracker = ConnTracker::new(); // `out` unbound: tap / sink mode
//! let fwd = PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 7777, 443).build();
//! let rev = PacketBuilder::udp_v4("10.0.0.2", "10.0.0.1", 443, 7777).build();
//!
//! // The two directions canonicalise to the same key — and to the
//! // same RSS bucket, which is what makes the table single-writer.
//! let (kf, kr) = (
//!     FlowKey::from_packet(&fwd).unwrap(),
//!     FlowKey::from_packet(&rev).unwrap(),
//! );
//! assert_eq!(kf.canonical(), kr.canonical());
//! assert_eq!(kf.bucket(), kr.bucket());
//!
//! tracker.push(fwd).unwrap();
//! assert_eq!(tracker.info(&kf).unwrap().state, ConnState::New);
//! tracker.push(rev).unwrap(); // reverse traffic seen: established
//! assert_eq!(tracker.len(), 1, "one entry for both directions");
//! assert_eq!(tracker.info(&kr).unwrap().state, ConnState::Established);
//! ```
//!
//! ## The failure contract, precisely
//!
//! The sharded runtime treats a replica crash and sustained overload
//! as *expected inputs*, not exceptional states. The rules:
//!
//! * **A crash is contained to its shard, and published.** A panic
//!   anywhere in a replica's `push`/`push_batch` kills exactly that
//!   worker thread; the kernel marks it dead
//!   ([`crate::shard::ShardedPipeline::worker_alive`] →
//!   `Some(false)`) and sibling shards keep forwarding untouched. A
//!   dead shard's ring accepts no new descriptors: dispatches aimed
//!   at it are rejected on the spot and filed under the dead-worker
//!   drop cause — never queued behind a thread that will not return.
//! * **Recovery is a control-plane act, and only a control-plane
//!   act.** No element, worker, or dispatcher self-heals. The
//!   [`crate::shard::control::ControlLoop`] runs one
//!   [`crate::shard::ShardedPipeline::health_turn`] before each
//!   control turn: *quarantine* (one quiesce epoch re-steers every
//!   bucket of each dead shard round-robin onto the live ones — a
//!   bucket moves wholesale, so the per-flow ordering guarantee of
//!   the steering contract holds across the fault), *respawn*
//!   ([`crate::shard::ShardedPipeline::respawn_shard`]: the dead
//!   ring's stranded descriptors are drained, cause-accounted, and
//!   recycled — counted, never leaked — then the build-time factory
//!   produces a fresh replica on a fresh thread), and *restore* (the
//!   pre-fault steering table comes back, so recovered shards take
//!   their buckets back). Neither steering patch counts as a
//!   migration; recovery work bills `FAULTS` on the resources task.
//! * **Every loss has exactly one cause.** The pipeline's drop
//!   accounting ([`crate::shard::DropStats`]) partitions `dropped`
//!   into ring-full, dead-worker, re-steer-shed, guard, and graph;
//!   `DropStats::total` equals `PipelineStats::dropped` at every
//!   instant. The only packets outside the meters are the in-flight
//!   batch a dying worker takes down with it — those are the fault
//!   injector's to account (the chaos harness keeps a crash ledger
//!   and proves `delivered + drops + crash-lost = dispatched`).
//! * **Overload is shed inline, before the graph.** A
//!   [`crate::flow::Guard`] at a replica's head consumes the shard's
//!   always-on byte sketch: flows under the threshold pay one
//!   early-exit counter read; heavy flows spend a per-flow byte
//!   budget and then rate-limit, each such verdict filed under the
//!   guard drop cause by the worker. Shedding at the head means an
//!   attack *reduces* per-packet work instead of adding any
//!   (measured in `crates/bench/NOTES.md`, series `e14_guard`).
//! * **Proof is deterministic.** `tests/chaos_soak.rs` kills a
//!   worker mid-elephant under a seeded fault plan and requires the
//!   control loop alone to restore delivery with the books closed
//!   and per-flow order intact; `tests/proptest_chaos.rs` (router)
//!   does the same for arbitrary seeded fault schedules.
//!
//! Runnable — crash, one health turn, delivery resumes:
//!
//! ```
//! use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
//! use std::sync::Arc;
//! use netkit_kernel::shard::ShardSpec;
//! use netkit_packet::batch::PacketBatch;
//! use netkit_packet::packet::{Packet, PacketBuilder};
//! use netkit_router::api::{register_packet_interfaces, IPacketPush, PushResult};
//! use netkit_router::shard::{ShardGraph, ShardedPipeline};
//! use opencom::capsule::Capsule;
//! use opencom::meta::resources::ResourceManager;
//! use opencom::runtime::Runtime;
//!
//! // A replica that counts deliveries — and kills its worker when armed.
//! struct CrashOnce {
//!     armed: Arc<AtomicBool>,
//!     delivered: Arc<AtomicU64>,
//! }
//! impl IPacketPush for CrashOnce {
//!     fn push(&self, _pkt: Packet) -> PushResult {
//!         if self.armed.swap(false, Ordering::SeqCst) {
//!             panic!("doc: injected worker crash");
//!         }
//!         self.delivered.fetch_add(1, Ordering::Relaxed);
//!         Ok(())
//!     }
//! }
//!
//! // Keep the injected panic's report out of the test output; every
//! // other panic still prints normally.
//! let hook = std::panic::take_hook();
//! std::panic::set_hook(Box::new(move |info| {
//!     let injected = info
//!         .payload()
//!         .downcast_ref::<&str>()
//!         .is_some_and(|m| m.contains("injected worker crash"));
//!     if !injected {
//!         hook(info);
//!     }
//! }));
//!
//! let armed = Arc::new(AtomicBool::new(false));
//! let delivered = Arc::new(AtomicU64::new(0));
//! let rm = Arc::new(ResourceManager::new());
//! let pipe = {
//!     let (armed, delivered) = (Arc::clone(&armed), Arc::clone(&delivered));
//!     ShardedPipeline::build("doc-respawn", ShardSpec::new(2), rm, move |_shard| {
//!         let rt = Runtime::new();
//!         register_packet_interfaces(&rt);
//!         let capsule = Capsule::new("shard", &rt);
//!         let entry: Arc<dyn IPacketPush> = Arc::new(CrashOnce {
//!             armed: Arc::clone(&armed),
//!             delivered: Arc::clone(&delivered),
//!         });
//!         Ok(ShardGraph::new(capsule, entry))
//!     })?
//! };
//!
//! // One flow, pinned to shard 0 by its stamped RSS hash.
//! let mk = || {
//!     let mut p = PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 7777, 443).build();
//!     p.meta.rss_hash = Some(0);
//!     p
//! };
//! pipe.dispatch(PacketBatch::from_packets(vec![mk()]));
//! pipe.flush();
//! assert_eq!(delivered.load(Ordering::Relaxed), 1);
//!
//! // Crash shard 0 mid-packet, then wait for the kernel to publish it.
//! armed.store(true, Ordering::SeqCst);
//! pipe.dispatch(PacketBatch::from_packets(vec![mk()]));
//! while pipe.worker_alive(0) != Some(false) {
//!     std::thread::yield_now();
//! }
//!
//! // One health turn heals it: quarantine re-steer, factory rebuild,
//! // thread respawn, steering restore.
//! let recovery = pipe.health_turn(&[])?.expect("a dead shard recovers");
//! assert_eq!(recovery.respawned, vec![0]);
//! assert_eq!(pipe.worker_alive(0), Some(true));
//! assert_eq!(pipe.recoveries(), 1);
//!
//! // Delivery resumes through the rebuilt replica — and the books
//! // close: every metered loss is filed under exactly one cause.
//! pipe.dispatch(PacketBatch::from_packets(vec![mk()]));
//! pipe.flush();
//! assert_eq!(delivered.load(Ordering::Relaxed), 2);
//! assert_eq!(pipe.drop_stats().total(), pipe.stats().dropped);
//! pipe.shutdown();
//! # Ok::<(), opencom::error::Error>(())
//! ```

use std::fmt;
use std::net::{AddrParseError, IpAddr};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use opencom::error::{Error, Result};
use opencom::ident::{ComponentId, InterfaceId, Version};
use opencom::interception::InterceptorChain;
use opencom::interface::{InterfaceDescriptor, InterfaceRef};
use opencom::ipc::{wire, IpcClient, IpcDispatch};
use opencom::runtime::Runtime;

use netkit_packet::batch::PacketBatch;
use netkit_packet::error::ParseError;
use netkit_packet::flow::FlowKey;
use netkit_packet::packet::Packet;

/// Interface id for [`IPacketPush`].
pub const IPACKET_PUSH: InterfaceId = InterfaceId::new("netkit.IPacketPush");
/// Interface id for [`IPacketPull`].
pub const IPACKET_PULL: InterfaceId = InterfaceId::new("netkit.IPacketPull");
/// Interface id for [`IClassifier`].
pub const ICLASSIFIER: InterfaceId = InterfaceId::new("netkit.IClassifier");

/// Why a push was not completed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PushError {
    /// The component's downstream receptacle is unbound.
    Unbound,
    /// A queue refused the packet (tail drop / RED drop).
    QueueFull,
    /// The packet failed validation and was dropped.
    Malformed(ParseError),
    /// The TTL/hop-limit reached zero.
    TtlExpired,
    /// No route matched the destination.
    NoRoute,
    /// An interceptor or constraint vetoed the call.
    Veto(String),
    /// The (isolated) component crashed or its transport failed.
    Crashed(String),
    /// A finite resource pool (e.g. the NAT44 external-port pool) had
    /// no free slot for a new flow. Distinct from [`PushError::Veto`]:
    /// the packet was well-formed and admissible, the box simply ran
    /// out of the named pool — callers can shed load or retry after
    /// teardown reclaims capacity.
    Exhausted(&'static str),
    /// The inline heavy-hitter guard rate-limited the flow: its byte
    /// estimate crossed the guard's threshold and the flow's window
    /// budget was exhausted (see `netkit_router::flow::Guard`). The
    /// sharded pipeline files these under their own drop cause.
    RateLimited,
}

impl fmt::Display for PushError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PushError::Unbound => write!(f, "downstream receptacle unbound"),
            PushError::QueueFull => write!(f, "queue full"),
            PushError::Malformed(e) => write!(f, "malformed packet: {e}"),
            PushError::TtlExpired => write!(f, "ttl expired"),
            PushError::NoRoute => write!(f, "no route to destination"),
            PushError::Veto(msg) => write!(f, "call vetoed: {msg}"),
            PushError::Crashed(msg) => write!(f, "component crashed: {msg}"),
            PushError::Exhausted(pool) => write!(f, "pool exhausted: {pool}"),
            PushError::RateLimited => write!(f, "rate-limited by heavy-hitter guard"),
        }
    }
}

impl std::error::Error for PushError {}

impl From<ParseError> for PushError {
    fn from(e: ParseError) -> Self {
        PushError::Malformed(e)
    }
}

impl From<Error> for PushError {
    fn from(e: Error) -> Self {
        match e {
            Error::ComponentCrashed { message, .. } => PushError::Crashed(message),
            Error::IpcFailure { detail } => PushError::Crashed(detail),
            other => PushError::Veto(other.to_string()),
        }
    }
}

/// Push result alias.
pub type PushResult = std::result::Result<(), PushError>;

/// Per-packet outcomes of a batch push, in batch order.
///
/// Batch pushes never fail wholesale: each packet gets the verdict the
/// scalar [`IPacketPush::push`] would have returned for it.
#[derive(Debug, Default)]
pub struct BatchResult {
    /// One verdict per pushed packet, in batch order.
    pub verdicts: Vec<PushResult>,
}

impl BatchResult {
    /// An empty result with room for `capacity` verdicts.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            verdicts: Vec::with_capacity(capacity),
        }
    }

    /// A result of `n` accepted packets.
    pub fn ok(n: usize) -> Self {
        Self {
            verdicts: vec![Ok(()); n],
        }
    }

    /// A result of `n` packets all dropped for the same reason.
    pub fn err(n: usize, e: PushError) -> Self {
        Self {
            verdicts: vec![Err(e); n],
        }
    }

    /// Appends one verdict.
    pub fn record(&mut self, verdict: PushResult) {
        self.verdicts.push(verdict);
    }

    /// Number of verdicts (equals the size of the pushed batch).
    pub fn len(&self) -> usize {
        self.verdicts.len()
    }

    /// True when no verdicts were recorded (empty batch).
    pub fn is_empty(&self) -> bool {
        self.verdicts.is_empty()
    }

    /// Packets accepted/forwarded.
    pub fn accepted(&self) -> usize {
        self.verdicts.iter().filter(|v| v.is_ok()).count()
    }

    /// Packets dropped.
    pub fn dropped(&self) -> usize {
        self.verdicts.len() - self.accepted()
    }

    /// True when every packet was accepted.
    pub fn all_ok(&self) -> bool {
        self.verdicts.iter().all(|v| v.is_ok())
    }

    /// Scatters the verdicts of a sub-batch result back into `self` at
    /// the given original positions (see
    /// [`PacketBatch::into_label_groups`]). `self` must already hold a
    /// verdict slot for every index in `indices`.
    ///
    /// # Panics
    ///
    /// Panics if `indices` and `sub` disagree in length or an index is
    /// out of range.
    pub fn scatter(&mut self, indices: &[usize], sub: BatchResult) {
        assert_eq!(indices.len(), sub.verdicts.len(), "verdict count mismatch");
        for (&idx, verdict) in indices.iter().zip(sub.verdicts) {
            self.verdicts[idx] = verdict;
        }
    }
}

impl From<Vec<PushResult>> for BatchResult {
    fn from(verdicts: Vec<PushResult>) -> Self {
        Self { verdicts }
    }
}

/// Push-oriented inter-component packet transfer (Fig. 2), batch-first.
pub trait IPacketPush: Send + Sync {
    /// Accepts a packet, consuming it.
    ///
    /// # Errors
    ///
    /// Returns a [`PushError`] if the packet was dropped rather than
    /// forwarded; counters distinguish drop *policy* from failure.
    fn push(&self, pkt: Packet) -> PushResult;

    /// Accepts a batch, consuming it; returns one verdict per packet in
    /// batch order (see the module docs for the full contract).
    ///
    /// The default implementation loops over [`Self::push`], so scalar
    /// components interoperate with batch producers unchanged.
    /// Implementations overriding this must preserve scalar
    /// equivalence: identical per-packet verdicts, counters, and output
    /// sequences — batching may only amortize dispatch, locking,
    /// interception, and marshalling costs.
    fn push_batch(&self, batch: PacketBatch) -> BatchResult {
        let mut result = BatchResult::with_capacity(batch.len());
        for pkt in batch {
            result.record(self.push(pkt));
        }
        result
    }
}

/// Pull-oriented inter-component packet transfer (Fig. 2), batch-first.
pub trait IPacketPull: Send + Sync {
    /// Yields the next packet, if one is ready.
    fn pull(&self) -> Option<Packet>;

    /// Yields up to `max` ready packets, in the order [`Self::pull`]
    /// would have produced them. May return fewer (including an empty
    /// batch) when the source runs dry.
    ///
    /// The default implementation loops over [`Self::pull`];
    /// implementations override it to amortize per-packet locking.
    fn pull_batch(&self, max: usize) -> PacketBatch {
        let mut batch = PacketBatch::with_capacity(max.min(64));
        while batch.len() < max {
            match self.pull() {
                Some(pkt) => batch.push(pkt),
                None => break,
            }
        }
        batch
    }
}

/// Identifies an installed filter.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct FilterId(pub u64);

static FILTER_IDS: AtomicU64 = AtomicU64::new(1);

impl FilterId {
    /// Allocates the next filter id.
    pub fn next() -> Self {
        Self(FILTER_IDS.fetch_add(1, Ordering::Relaxed))
    }
}

/// The match half of a filter: every populated field must match.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FilterPattern {
    /// Source prefix `(address, prefix_len)`.
    pub src_prefix: Option<(IpAddr, u8)>,
    /// Destination prefix `(address, prefix_len)`.
    pub dst_prefix: Option<(IpAddr, u8)>,
    /// IP protocol number.
    pub protocol: Option<u8>,
    /// Inclusive source-port range.
    pub src_ports: Option<(u16, u16)>,
    /// Inclusive destination-port range.
    pub dst_ports: Option<(u16, u16)>,
    /// Exact DSCP.
    pub dscp: Option<u8>,
}

fn prefix_matches(addr: IpAddr, prefix: (IpAddr, u8)) -> bool {
    let (net, len) = prefix;
    match (addr, net) {
        (IpAddr::V4(a), IpAddr::V4(n)) => {
            let len = len.min(32);
            if len == 0 {
                return true;
            }
            let mask = if len == 32 {
                u32::MAX
            } else {
                !(u32::MAX >> len)
            };
            (u32::from(a) & mask) == (u32::from(n) & mask)
        }
        (IpAddr::V6(a), IpAddr::V6(n)) => {
            let len = len.min(128);
            if len == 0 {
                return true;
            }
            let mask = if len == 128 {
                u128::MAX
            } else {
                !(u128::MAX >> len)
            };
            (u128::from(a) & mask) == (u128::from(n) & mask)
        }
        _ => false,
    }
}

impl FilterPattern {
    /// A pattern that matches everything.
    pub fn any() -> Self {
        Self::default()
    }

    /// Requires the source address to fall in `prefix`, rejecting
    /// malformed address literals (builder-style).
    ///
    /// # Errors
    ///
    /// Returns the address parse error for malformed literals.
    pub fn try_src(mut self, prefix: &str, len: u8) -> std::result::Result<Self, AddrParseError> {
        self.src_prefix = Some((prefix.parse()?, len));
        Ok(self)
    }

    /// Requires the destination address to fall in `prefix`, rejecting
    /// malformed address literals (builder-style).
    ///
    /// # Errors
    ///
    /// Returns the address parse error for malformed literals.
    pub fn try_dst(mut self, prefix: &str, len: u8) -> std::result::Result<Self, AddrParseError> {
        self.dst_prefix = Some((prefix.parse()?, len));
        Ok(self)
    }

    /// Requires the source address to fall in `prefix` (builder-style).
    ///
    /// # Panics
    ///
    /// Panics on a malformed address literal; use [`Self::try_src`] for
    /// untrusted input.
    pub fn src(self, prefix: &str, len: u8) -> Self {
        self.try_src(prefix, len).expect("valid address")
    }

    /// Requires the destination address to fall in `prefix`
    /// (builder-style).
    ///
    /// # Panics
    ///
    /// Panics on a malformed address literal; use [`Self::try_dst`] for
    /// untrusted input.
    pub fn dst(self, prefix: &str, len: u8) -> Self {
        self.try_dst(prefix, len).expect("valid address")
    }

    /// Requires the IP protocol (builder-style).
    pub fn protocol(mut self, proto: u8) -> Self {
        self.protocol = Some(proto);
        self
    }

    /// Requires the destination port to fall in `[lo, hi]` (builder-style).
    pub fn dst_port_range(mut self, lo: u16, hi: u16) -> Self {
        self.dst_ports = Some((lo, hi));
        self
    }

    /// Requires the source port to fall in `[lo, hi]` (builder-style).
    pub fn src_port_range(mut self, lo: u16, hi: u16) -> Self {
        self.src_ports = Some((lo, hi));
        self
    }

    /// Requires an exact DSCP (builder-style).
    pub fn dscp(mut self, dscp: u8) -> Self {
        self.dscp = Some(dscp);
        self
    }

    /// Evaluates the pattern against a flow tuple and DSCP.
    pub fn matches(&self, flow: &FlowKey, dscp: u8) -> bool {
        if let Some(p) = self.src_prefix {
            if !prefix_matches(flow.src, p) {
                return false;
            }
        }
        if let Some(p) = self.dst_prefix {
            if !prefix_matches(flow.dst, p) {
                return false;
            }
        }
        if let Some(proto) = self.protocol {
            if flow.protocol != proto {
                return false;
            }
        }
        if let Some((lo, hi)) = self.src_ports {
            if !(lo..=hi).contains(&flow.src_port) {
                return false;
            }
        }
        if let Some((lo, hi)) = self.dst_ports {
            if !(lo..=hi).contains(&flow.dst_port) {
                return false;
            }
        }
        if let Some(d) = self.dscp {
            if d != dscp {
                return false;
            }
        }
        true
    }
}

/// A complete filter: pattern, the named output to emit matches on, and
/// a priority (higher wins; ties broken by installation order).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FilterSpec {
    /// What to match.
    pub pattern: FilterPattern,
    /// The labelled output (`IPacketPush` receptacle label) for matches.
    pub output: String,
    /// Priority; higher-priority filters are consulted first.
    pub priority: i32,
}

impl FilterSpec {
    /// Creates a filter emitting matches on `output`.
    pub fn new(pattern: FilterPattern, output: impl Into<String>, priority: i32) -> Self {
        Self {
            pattern,
            output: output.into(),
            priority,
        }
    }
}

/// The classifier control interface (Fig. 2): install/remove packet
/// filters at run time. Components exporting this must "honour the
/// semantics of installed filter specifications in terms of the
/// particular named outgoing … interface(s) on which each incoming packet
/// should be emitted" (paper §5) — behaviour the Router CF's tests
/// verify.
pub trait IClassifier: Send + Sync {
    /// Installs a filter; returns its id.
    ///
    /// # Errors
    ///
    /// Fails if the named output does not exist on the component.
    fn register_filter(&self, spec: FilterSpec) -> Result<FilterId>;

    /// Removes a filter.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::StaleReference`] for unknown ids.
    fn remove_filter(&self, id: FilterId) -> Result<()>;

    /// Lists installed filters, highest priority first.
    fn filters(&self) -> Vec<(FilterId, FilterSpec)>;
}

// ---- interception wrappers --------------------------------------------

struct PushWrapper {
    target: Arc<dyn IPacketPush>,
    chain: Arc<InterceptorChain>,
}

impl IPacketPush for PushWrapper {
    fn push(&self, pkt: Packet) -> PushResult {
        match self.chain.around("push", || self.target.push(pkt)) {
            Ok(inner) => inner,
            Err(veto) => Err(PushError::Veto(veto.to_string())),
        }
    }

    fn push_batch(&self, batch: PacketBatch) -> BatchResult {
        // One interceptor-chain traversal for the whole batch — the
        // per-packet hook cost the batch API exists to amortize. A veto
        // applies to the batch as a unit: every packet gets the veto
        // verdict, mirroring what per-packet interception would do.
        let n = batch.len();
        match self
            .chain
            .around("push_batch", || self.target.push_batch(batch))
        {
            Ok(inner) => inner,
            Err(veto) => BatchResult::err(n, PushError::Veto(veto.to_string())),
        }
    }
}

struct PullWrapper {
    target: Arc<dyn IPacketPull>,
    chain: Arc<InterceptorChain>,
}

impl IPacketPull for PullWrapper {
    fn pull(&self) -> Option<Packet> {
        self.chain
            .around("pull", || self.target.pull())
            .ok()
            .flatten()
    }

    fn pull_batch(&self, max: usize) -> PacketBatch {
        // One chain traversal per batch; a veto yields an empty batch,
        // the batch analogue of the vetoed scalar pull's `None`.
        self.chain
            .around("pull_batch", || self.target.pull_batch(max))
            .unwrap_or_default()
    }
}

// ---- IPC stub/skeleton ---------------------------------------------------

/// Marshals a packet (frame bytes + the meta fields that matter across a
/// capsule boundary) into the IPC wire form.
pub fn encode_packet(pkt: &Packet) -> Vec<u8> {
    let mut out = Vec::with_capacity(pkt.len() + 32);
    wire::put_bytes(&mut out, pkt.data());
    wire::put_u64(
        &mut out,
        pkt.meta.ingress.map(|p| p as u64 + 1).unwrap_or(0),
    );
    wire::put_u64(&mut out, pkt.meta.timestamp_ns);
    wire::put_u64(&mut out, pkt.meta.dscp.map(|d| d as u64 + 1).unwrap_or(0));
    out
}

/// Reconstructs a packet from the IPC wire form.
pub fn decode_packet(buf: &[u8]) -> Option<Packet> {
    let mut pos = 0;
    let data = wire::get_bytes(buf, &mut pos)?;
    let ingress = wire::get_u64(buf, &mut pos)?;
    let timestamp = wire::get_u64(buf, &mut pos)?;
    let dscp = wire::get_u64(buf, &mut pos)?;
    let mut pkt = Packet::from_slice(&data);
    pkt.meta.ingress = ingress.checked_sub(1).map(|p| p as u16);
    pkt.meta.timestamp_ns = timestamp;
    pkt.meta.dscp = dscp.checked_sub(1).map(|d| d as u8);
    Some(pkt)
}

/// Marshals a whole batch into one IPC payload: a count followed by the
/// length-prefixed per-packet encodings. Output labels are batch-local
/// routing scratch and do not cross the capsule boundary.
pub fn encode_batch(batch: &PacketBatch) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + batch.iter().map(|p| p.len() + 40).sum::<usize>());
    wire::put_u64(&mut out, batch.len() as u64);
    for pkt in batch {
        wire::put_bytes(&mut out, &encode_packet(pkt));
    }
    out
}

/// Reconstructs a batch from the IPC wire form.
pub fn decode_batch(buf: &[u8]) -> Option<PacketBatch> {
    let mut pos = 0;
    let count = wire::get_u64(buf, &mut pos)? as usize;
    // Cap the pre-allocation against adversarial counts; the loop below
    // still decodes exactly `count` packets or fails.
    let mut batch = PacketBatch::with_capacity(count.min(4096));
    for _ in 0..count {
        let encoded = wire::get_bytes(buf, &mut pos)?;
        batch.push(decode_packet(&encoded)?);
    }
    Some(batch)
}

fn encode_batch_result(result: &BatchResult) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + result.len() * 9);
    wire::put_u64(&mut out, result.len() as u64);
    for verdict in &result.verdicts {
        match verdict {
            Ok(()) => wire::put_u64(&mut out, 0),
            Err(e) => {
                wire::put_u64(&mut out, 1);
                wire::put_str(&mut out, &e.to_string());
            }
        }
    }
    out
}

fn decode_batch_result(buf: &[u8]) -> Option<BatchResult> {
    let mut pos = 0;
    let count = wire::get_u64(buf, &mut pos)? as usize;
    let mut result = BatchResult::with_capacity(count.min(4096));
    for _ in 0..count {
        match wire::get_u64(buf, &mut pos)? {
            0 => result.record(Ok(())),
            _ => {
                let msg = wire::get_str(buf, &mut pos)?;
                result.record(Err(PushError::Veto(msg)));
            }
        }
    }
    Some(result)
}

/// Client-side proxy: an [`IPacketPush`] that marshals into an isolated
/// capsule.
pub struct PushProxy {
    client: Arc<IpcClient>,
}

impl PushProxy {
    /// Creates a proxy over an IPC client.
    pub fn new(client: Arc<IpcClient>) -> Self {
        Self { client }
    }
}

impl IPacketPush for PushProxy {
    fn push(&self, pkt: Packet) -> PushResult {
        let reply = self
            .client
            .call(IPACKET_PUSH.name(), "push", encode_packet(&pkt))
            .map_err(PushError::from)?;
        let mut pos = 0;
        match wire::get_u64(&reply, &mut pos) {
            Some(0) => Ok(()),
            Some(_) => {
                let msg = wire::get_str(&reply, &mut pos).unwrap_or_default();
                Err(PushError::Veto(msg))
            }
            None => Err(PushError::Crashed("short ipc reply".into())),
        }
    }

    fn push_batch(&self, batch: PacketBatch) -> BatchResult {
        // One marshalled round-trip for the whole batch — the isolated
        // component pays one capsule-boundary crossing per burst instead
        // of per packet.
        let n = batch.len();
        if n == 0 {
            return BatchResult::default();
        }
        let reply = match self
            .client
            .call(IPACKET_PUSH.name(), "push_batch", encode_batch(&batch))
        {
            Ok(reply) => reply,
            Err(e) => return BatchResult::err(n, PushError::from(e)),
        };
        match decode_batch_result(&reply) {
            Some(result) if result.len() == n => result,
            _ => BatchResult::err(n, PushError::Crashed("bad batch ipc reply".into())),
        }
    }
}

impl fmt::Debug for PushProxy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PushProxy({:?})", self.client)
    }
}

/// Host-side skeleton: exposes any [`IPacketPush`] over IPC.
pub struct PushSkeleton {
    target: Arc<dyn IPacketPush>,
}

impl PushSkeleton {
    /// Wraps a concrete push component for out-of-capsule hosting.
    pub fn new(target: Arc<dyn IPacketPush>) -> Arc<Self> {
        Arc::new(Self { target })
    }
}

impl IpcDispatch for PushSkeleton {
    fn dispatch(
        &self,
        _interface: &str,
        method: &str,
        payload: &[u8],
    ) -> std::result::Result<Vec<u8>, String> {
        match method {
            "push" => {
                let pkt = decode_packet(payload).ok_or("bad packet encoding")?;
                let mut out = Vec::new();
                match self.target.push(pkt) {
                    Ok(()) => wire::put_u64(&mut out, 0),
                    Err(e) => {
                        wire::put_u64(&mut out, 1);
                        wire::put_str(&mut out, &e.to_string());
                    }
                }
                Ok(out)
            }
            "push_batch" => {
                let batch = decode_batch(payload).ok_or("bad batch encoding")?;
                Ok(encode_batch_result(&self.target.push_batch(batch)))
            }
            other => Err(format!("no method `{other}`")),
        }
    }
}

impl fmt::Debug for PushSkeleton {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PushSkeleton")
    }
}

// ---- runtime registration ----------------------------------------------

/// Registers everything the packet interfaces need with a runtime:
/// interface descriptors (introspection), interceptor wrapper factories
/// (interception meta-model), and the `IPacketPush` IPC proxy factory
/// (isolation).
pub fn register_packet_interfaces(rt: &Runtime) {
    rt.interfaces().register(
        InterfaceDescriptor::new(
            IPACKET_PUSH,
            Version::new(2, 0, 0),
            "push-oriented packet transfer (batch-first)",
        )
        .method(
            "push",
            &[("pkt", "Packet")],
            "PushResult",
            "accept a packet",
        )
        .method(
            "push_batch",
            &[("batch", "PacketBatch")],
            "BatchResult",
            "accept a batch; one verdict per packet in batch order",
        ),
    );
    rt.interfaces().register(
        InterfaceDescriptor::new(
            IPACKET_PULL,
            Version::new(2, 0, 0),
            "pull-oriented packet transfer (batch-first)",
        )
        .method("pull", &[], "Option<Packet>", "yield the next ready packet")
        .method(
            "pull_batch",
            &[("max", "usize")],
            "PacketBatch",
            "yield up to `max` ready packets in pull order",
        ),
    );
    rt.interfaces().register(
        InterfaceDescriptor::new(
            ICLASSIFIER,
            Version::new(1, 0, 0),
            "run-time packet filter management",
        )
        .method(
            "register_filter",
            &[("spec", "FilterSpec")],
            "FilterId",
            "install a filter",
        )
        .method(
            "remove_filter",
            &[("id", "FilterId")],
            "()",
            "remove a filter",
        )
        .method(
            "filters",
            &[],
            "Vec<(FilterId, FilterSpec)>",
            "list filters",
        ),
    );

    rt.interceptors().register(
        IPACKET_PUSH,
        Box::new(|target, chain| {
            let inner: Arc<dyn IPacketPush> = target.downcast().expect("IPacketPush");
            let provider = target.provider();
            let wrapped: Arc<dyn IPacketPush> = Arc::new(PushWrapper {
                target: inner,
                chain,
            });
            InterfaceRef::new(IPACKET_PUSH, provider, wrapped)
        }),
    );
    rt.interceptors().register(
        IPACKET_PULL,
        Box::new(|target, chain| {
            let inner: Arc<dyn IPacketPull> = target.downcast().expect("IPacketPull");
            let provider = target.provider();
            let wrapped: Arc<dyn IPacketPull> = Arc::new(PullWrapper {
                target: inner,
                chain,
            });
            InterfaceRef::new(IPACKET_PULL, provider, wrapped)
        }),
    );

    rt.isolation().register_proxy(
        IPACKET_PUSH,
        Box::new(|client, provider: ComponentId| {
            let proxy: Arc<dyn IPacketPush> = Arc::new(PushProxy::new(client));
            InterfaceRef::new(IPACKET_PUSH, provider, proxy)
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use netkit_packet::headers::proto;
    use netkit_packet::packet::PacketBuilder;

    fn flow(src: &str, dst: &str, sport: u16, dport: u16, protocol: u8) -> FlowKey {
        FlowKey {
            src: src.parse().unwrap(),
            dst: dst.parse().unwrap(),
            protocol,
            src_port: sport,
            dst_port: dport,
        }
    }

    #[test]
    fn empty_pattern_matches_anything() {
        let p = FilterPattern::any();
        assert!(p.matches(&flow("10.0.0.1", "8.8.8.8", 1, 2, proto::UDP), 0));
        assert!(p.matches(&flow("2001:db8::1", "2001:db8::2", 0, 0, proto::TCP), 63));
    }

    #[test]
    fn prefix_matching_v4() {
        let p = FilterPattern::any().dst("10.1.0.0", 16);
        assert!(p.matches(&flow("1.1.1.1", "10.1.200.3", 0, 0, 0), 0));
        assert!(!p.matches(&flow("1.1.1.1", "10.2.0.1", 0, 0, 0), 0));
        let exact = FilterPattern::any().dst("10.1.2.3", 32);
        assert!(exact.matches(&flow("1.1.1.1", "10.1.2.3", 0, 0, 0), 0));
        assert!(!exact.matches(&flow("1.1.1.1", "10.1.2.4", 0, 0, 0), 0));
        let all = FilterPattern::any().dst("0.0.0.0", 0);
        assert!(all.matches(&flow("1.1.1.1", "255.255.255.255", 0, 0, 0), 0));
    }

    #[test]
    fn prefix_matching_v6_and_family_mismatch() {
        let p = FilterPattern::any().dst("2001:db8::", 32);
        assert!(p.matches(&flow("::1", "2001:db8::42", 0, 0, 0), 0));
        assert!(!p.matches(&flow("::1", "2001:db9::42", 0, 0, 0), 0));
        // v4 address never matches a v6 prefix.
        assert!(!p.matches(&flow("10.0.0.1", "10.0.0.2", 0, 0, 0), 0));
    }

    #[test]
    fn port_ranges_and_protocol() {
        let p = FilterPattern::any()
            .protocol(proto::UDP)
            .dst_port_range(5000, 5010);
        assert!(p.matches(&flow("1.1.1.1", "2.2.2.2", 9, 5005, proto::UDP), 0));
        assert!(!p.matches(&flow("1.1.1.1", "2.2.2.2", 9, 5011, proto::UDP), 0));
        assert!(!p.matches(&flow("1.1.1.1", "2.2.2.2", 9, 5005, proto::TCP), 0));
    }

    #[test]
    fn dscp_match() {
        let p = FilterPattern::any().dscp(46);
        assert!(p.matches(&flow("1.1.1.1", "2.2.2.2", 0, 0, 0), 46));
        assert!(!p.matches(&flow("1.1.1.1", "2.2.2.2", 0, 0, 0), 0));
    }

    #[test]
    fn packet_codec_roundtrip() {
        let mut pkt = PacketBuilder::udp_v4("10.0.0.1", "10.0.0.9", 5, 6)
            .payload(b"abc")
            .build();
        pkt.meta.ingress = Some(2);
        pkt.meta.timestamp_ns = 12345;
        pkt.meta.dscp = Some(46);
        let encoded = encode_packet(&pkt);
        let back = decode_packet(&encoded).unwrap();
        assert_eq!(back.data(), pkt.data());
        assert_eq!(back.meta.ingress, Some(2));
        assert_eq!(back.meta.timestamp_ns, 12345);
        assert_eq!(back.meta.dscp, Some(46));
        assert!(decode_packet(&encoded[..encoded.len() - 1]).is_none());
    }

    #[test]
    fn packet_codec_handles_absent_meta() {
        let pkt = PacketBuilder::udp_v4("10.0.0.1", "10.0.0.9", 5, 6).build();
        let back = decode_packet(&encode_packet(&pkt)).unwrap();
        assert_eq!(back.meta.ingress, None);
        assert_eq!(back.meta.dscp, None);
    }

    #[test]
    fn push_error_conversions() {
        let e: PushError = Error::ComponentCrashed {
            component: ComponentId::from_raw(1),
            message: "boom".into(),
        }
        .into();
        assert!(matches!(e, PushError::Crashed(_)));
        let e2: PushError = Error::ConstraintVeto {
            constraint: "x".into(),
            reason: "y".into(),
        }
        .into();
        assert!(matches!(e2, PushError::Veto(_)));
        let e3: PushError = ParseError::BadChecksum { header: "ipv4" }.into();
        assert!(matches!(e3, PushError::Malformed(_)));
    }

    #[test]
    fn registration_populates_runtime() {
        let rt = Runtime::new();
        register_packet_interfaces(&rt);
        assert!(rt.interfaces().contains(IPACKET_PUSH));
        assert!(rt.interfaces().contains(IPACKET_PULL));
        assert!(rt.interfaces().contains(ICLASSIFIER));
        assert!(rt.interceptors().supports(IPACKET_PUSH));
        assert!(rt.interceptors().supports(IPACKET_PULL));
        assert!(rt.isolation().supports_interface(IPACKET_PUSH));
        let d = rt.interfaces().describe(ICLASSIFIER).unwrap();
        assert!(d.find_method("register_filter").is_some());
    }
}
