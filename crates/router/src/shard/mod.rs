//! Sharded pipeline execution: per-worker element-graph replicas behind
//! one logical reflective surface.
//!
//! The Router CF's element graphs are built from `Arc`'d components with
//! interior mutability, so a graph *could* be driven from many threads —
//! but then every counter, queue, and receptacle lock becomes a
//! cross-core contention point, which is exactly what run-to-completion
//! dataplanes avoid. [`ShardedPipeline`] instead **replicates** the
//! graph: a factory builds one independent replica (own capsule, own
//! elements) per worker of a [`ShardSpec`], and an RSS dispatcher
//! ([`PacketBatch::shard_split`] — a single counting-sort pass over
//! stamped RSS hashes, no sub-batch re-materialisation) keeps each flow
//! on one replica, preserving intra-flow order with zero sharing on the
//! fast path. The split parent is then *shared*, not moved:
//! [`ShardedPipeline::dispatch`] publishes one refcounted shard-range
//! descriptor per ring in a single batched fan-out
//! ([`WorkerPool::submit_fanout`]), each worker gathers its slice into
//! a pooled container in parallel, and the parent recycles when the
//! last range drops. Batch containers come from a [`BatchPool`]
//! freelist and the NIC pump path ([`ShardedPipeline::pump_nic`])
//! moves pool-leased frame buffers straight into packets, so
//! steady-state forwarding is allocation- and move-free per batch on
//! the dispatch thread.
//!
//! Two things keep the replicas *one component* in the reflective
//! model's eyes:
//!
//! * **Resource rollup** — the pipeline owns a single task in
//!   [`ResourceManager`]; every worker's packet count rolls up into that
//!   task's `packets` usage (lazily, at [`ShardedPipeline::flush`] /
//!   [`ShardedPipeline::stats`] time, so the hot path never touches the
//!   manager's locks). Introspection sees one task, one usage figure.
//! * **Atomic reconfiguration** — [`ShardedPipeline::quiesce`] runs a
//!   closure under the worker pool's epoch barrier
//!   ([`WorkerPool::quiesce`]): every worker is parked at a batch
//!   boundary, so an architecture-meta-model change (insert/remove
//!   element, `Capsule::replace` hot swap, classifier filter update)
//!   applied to each replica inside the closure is indivisible — no
//!   packet ever sees a half-reconfigured dataplane, and traffic
//!   submitted meanwhile queues rather than drops.
//!
//! ## The steering table and its ownership
//!
//! All steering — software dispatch here, hardware-modelled RSS in the
//! NIC, the sim's demux — goes through one
//! [`BucketMap`]: 256 hash buckets,
//! each assigned to a shard. **The pipeline owns the authoritative
//! copy**; NICs hold mirrors installed by
//! [`ShardedPipeline::install_bucket_map`] inside the same quiesce
//! epoch, so no packet can observe the dispatch table and the NIC
//! table disagreeing. Per-bucket load meters
//! ([`BucketLoad`], fed on the
//! worker side) and per-shard ring occupancy high-water marks feed the
//! [`rebalance`] policy, which plans a better table when one shard
//! runs hot and installs it atomically — the reflective
//! inspect → decide → adapt loop over the running dataplane. See the
//! [`rebalance`] module docs for the migration ordering contract.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use netkit_kernel::nic::Nic;
use netkit_kernel::shard::{ShardHandler, ShardJob, ShardSpec, SubmitRejection, WorkerPool};
use netkit_packet::batch::{BatchPool, PacketBatch};
use netkit_packet::sketch::{FlowSketch, HeavyHitter, SketchConfig, SpaceSaving};
use netkit_packet::steer::{BucketLoad, BucketMap, RSS_BUCKETS};
use opencom::capsule::Capsule;
use opencom::error::Result;
use opencom::ident::{ComponentId, TaskId};
use opencom::meta::resources::{classes, ResourceManager};
use parking_lot::{Mutex, RwLock};

use crate::api::{IPacketPush, PushError};

pub mod control;
pub mod decision;
pub mod rebalance;
pub mod solo;

pub use control::{ControlConfig, ControlDecision, ControlLoop, ControlStats, RebalanceController};
pub use decision::{core_by_name, DecisionCore, Evidence, EwmaCore, HysteresisCore, WeightedCore};
pub use rebalance::{
    HeavyHitterPolicy, MigrationReport, RebalancePlan, RebalancePolicy, WeightedRebalancePolicy,
};
pub use solo::SoloPipeline;

/// A swappable shard entry point: workers re-read it each batch, so a
/// quiesce closure can retarget a shard's ingress (e.g. after replacing
/// the head element) with [`ShardedPipeline::set_entry`].
pub type SharedEntry = Arc<RwLock<Arc<dyn IPacketPush>>>;

/// Packet capacity the pipeline's pooled batch containers are pre-sized
/// for (typical rx burst sizes are 32–64).
const DISPATCH_BATCH_CAPACITY: usize = 64;

/// One shard's replica of the element graph, as produced by the factory
/// passed to [`ShardedPipeline::build`].
pub struct ShardGraph {
    /// The capsule hosting this replica (kept alive by the pipeline).
    pub capsule: Arc<Capsule>,
    /// The replica's ingress push interface.
    pub entry: Arc<dyn IPacketPush>,
    /// Components to attach to the pipeline's rolled-up resources task.
    pub components: Vec<ComponentId>,
    /// Optional hook run on the worker after each batch — the place to
    /// drain pull-side stages (schedulers, shapers) into their sinks so
    /// the shard really runs to completion.
    pub drain: Option<Box<dyn FnMut() + Send>>,
}

impl ShardGraph {
    /// A replica with no attached components and no drain hook.
    pub fn new(capsule: Arc<Capsule>, entry: Arc<dyn IPacketPush>) -> Self {
        Self {
            capsule,
            entry,
            components: Vec::new(),
            drain: None,
        }
    }

    /// Attaches component ids to the rolled-up task (builder-style).
    pub fn with_components(mut self, components: Vec<ComponentId>) -> Self {
        self.components = components;
        self
    }

    /// Sets the per-batch drain hook (builder-style).
    pub fn with_drain(mut self, drain: Box<dyn FnMut() + Send>) -> Self {
        self.drain = Some(drain);
        self
    }
}

impl fmt::Debug for ShardGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ShardGraph({} components)", self.components.len())
    }
}

/// Why a dropped packet was dropped — the cause tag every loss
/// accounting site in the pipeline files its drops under. See
/// [`DropStats`] for the public roll-up.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum DropCause {
    /// Bounced off a full ring on a non-blocking publish.
    RingFull,
    /// Publish refused (or work stranded) because the target shard's
    /// worker died.
    DeadWorker,
    /// Shed while a fault-recovery steering patch (quarantine or
    /// restore — see [`ShardedPipeline::health_turn`]) re-steered
    /// queued frames.
    ResteerShed,
    /// Rate-limited by the inline heavy-hitter guard
    /// ([`crate::flow::Guard`] — verdict [`PushError::RateLimited`]).
    Guard,
    /// Dropped by graph policy (queue tail drop, TTL, no route, …) —
    /// any element verdict that is not the guard's.
    Graph,
}

/// Per-cause drop accounting — the breakdown of [`PipelineStats`]'s
/// aggregate `dropped` figure. Every packet the pipeline loses is
/// filed under exactly one cause, so [`Self::total`] always equals
/// the `dropped` sum: **zero silent loss** is an checkable invariant,
/// not an aspiration (the chaos soak asserts it after every fault
/// storm).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DropStats {
    /// Bounced off a full ring on a non-blocking publish (the
    /// migration re-steer path; blocking dispatch never tail-drops).
    pub ring_full: u64,
    /// Lost to a dead worker: failed publishes to a shard whose
    /// thread panicked, plus the stranded ring items drained (counted,
    /// recycled, never leaked) when the shard respawned.
    pub dead_worker: u64,
    /// Shed by a quarantine/restore steering patch while the
    /// self-healing control loop re-routed a dead shard's buckets.
    pub resteer_shed: u64,
    /// Rate-limited inline by the heavy-hitter guard.
    pub guard: u64,
    /// Dropped by ordinary graph policy (queue tail drop, TTL expiry,
    /// no route, veto, …).
    pub graph: u64,
}

impl DropStats {
    /// Sum over all causes — by construction identical to the
    /// aggregate [`PipelineStats::dropped`] figure.
    pub fn total(&self) -> u64 {
        self.ring_full + self.dead_worker + self.resteer_shed + self.guard + self.graph
    }
}

/// What one [`ShardedPipeline::health_turn`] did — the control loop's
/// record of a completed crash recovery.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultRecovery {
    /// Shards whose workers were respawned, in shard order.
    pub respawned: Vec<usize>,
    /// Packets drained off dead rings during the respawns (filed under
    /// the dead-worker drop cause — counted, recycled, never leaked).
    pub stranded: u64,
    /// Buckets temporarily re-steered off dead shards by the
    /// quarantine table.
    pub quarantined_buckets: usize,
    /// Frames re-steered onto live rings by the quarantine and restore
    /// patches (delivered, not lost).
    pub resteered: u64,
    /// Frames the patches could not land (full ring or still-dead
    /// worker), filed under the re-steer-shed drop cause.
    pub shed: u64,
}

#[derive(Debug, Default)]
struct ShardCounters {
    batches: AtomicU64,
    packets: AtomicU64,
    accepted: AtomicU64,
    dropped: AtomicU64,
    /// Packets already rolled up into the resources task.
    reported: AtomicU64,
    drop_ring_full: AtomicU64,
    drop_dead_worker: AtomicU64,
    drop_resteer_shed: AtomicU64,
    drop_guard: AtomicU64,
    drop_graph: AtomicU64,
}

impl ShardCounters {
    /// Files `n` drops under `cause`, keeping the aggregate `dropped`
    /// meter the exact sum of the cause meters.
    fn drop_cause(&self, cause: DropCause, n: u64) {
        if n == 0 {
            return;
        }
        self.dropped.fetch_add(n, Ordering::Relaxed);
        let cell = match cause {
            DropCause::RingFull => &self.drop_ring_full,
            DropCause::DeadWorker => &self.drop_dead_worker,
            DropCause::ResteerShed => &self.drop_resteer_shed,
            DropCause::Guard => &self.drop_guard,
            DropCause::Graph => &self.drop_graph,
        };
        cell.fetch_add(n, Ordering::Relaxed);
    }

    fn drop_stats(&self) -> DropStats {
        DropStats {
            ring_full: self.drop_ring_full.load(Ordering::Relaxed),
            dead_worker: self.drop_dead_worker.load(Ordering::Relaxed),
            resteer_shed: self.drop_resteer_shed.load(Ordering::Relaxed),
            guard: self.drop_guard.load(Ordering::Relaxed),
            graph: self.drop_graph.load(Ordering::Relaxed),
        }
    }
}

/// Aggregate dataplane counters — the single-logical-component view
/// over all shards.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Batches run to completion.
    pub batches: u64,
    /// Packets pushed through the replicas.
    pub packets: u64,
    /// Packets whose verdict was `Ok` (forwarded/accepted).
    pub accepted: u64,
    /// Packets whose verdict was an error (dropped).
    pub dropped: u64,
}

/// One shard's load meters (see [`ShardedPipeline::shard_loads`]):
/// cumulative work done plus instantaneous and high-water ring
/// pressure. `ring_high_water` near the ring capacity while sibling
/// shards idle is the signature of RSS skew the rebalancer corrects.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardLoad {
    /// Shard index.
    pub shard: usize,
    /// Packets run to completion on this shard.
    pub packets: u64,
    /// Batches run to completion on this shard.
    pub batches: u64,
    /// Batches currently waiting on (or executing from) the ring.
    pub in_flight: usize,
    /// High-water mark of `in_flight` in the current observation
    /// window (reset when a rebalance is applied).
    pub ring_high_water: usize,
}

/// N per-worker replicas of an element graph behind one dispatch entry,
/// one stats surface, and one resources task. See the module docs.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use netkit_kernel::shard::ShardSpec;
/// use netkit_packet::batch::PacketBatch;
/// use netkit_packet::packet::PacketBuilder;
/// use netkit_router::api::register_packet_interfaces;
/// use netkit_router::elements::{Counter, Discard};
/// use netkit_router::shard::{ShardGraph, ShardedPipeline};
/// use opencom::capsule::Capsule;
/// use opencom::meta::resources::ResourceManager;
/// use opencom::runtime::Runtime;
///
/// let rm = Arc::new(ResourceManager::new());
/// let pipe = ShardedPipeline::build("doc-pipe", ShardSpec::new(2), Arc::clone(&rm), |_shard| {
///     let rt = Runtime::new();
///     register_packet_interfaces(&rt);
///     let capsule = Capsule::new("shard", &rt);
///     let counter = Counter::new();
///     let sink = Discard::new();
///     let cid = capsule.adopt(counter.clone())?;
///     let sid = capsule.adopt(sink)?;
///     capsule.bind_simple(cid, "out", sid, netkit_router::api::IPACKET_PUSH)?;
///     Ok(ShardGraph::new(Arc::clone(&capsule), counter).with_components(vec![cid]))
/// })?;
///
/// let batch: PacketBatch = (0..64u16)
///     .map(|i| PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 1000 + i, 80).build())
///     .collect();
/// pipe.dispatch(batch);
/// pipe.flush();
/// assert_eq!(pipe.stats().packets, 64);
/// // Reflection sees ONE task with the rolled-up usage.
/// assert_eq!(rm.task_info(pipe.task())?.usage["packets"], 64);
/// pipe.shutdown();
/// # Ok::<(), opencom::error::Error>(())
/// ```
pub struct ShardedPipeline {
    pool: WorkerPool<ShardJob>,
    /// Batch-container freelist for the steering fast path: NIC rx
    /// batches and the workers' shard-range gather containers lease
    /// here and return on drop at the end of each worker's
    /// run-to-completion pass (shared split parents recycle here too
    /// when their last range drops).
    batch_pool: BatchPool,
    /// The authoritative bucket → shard table. Readers
    /// ([`Self::dispatch`], [`Self::pump_nic`], [`Self::submit`]) hold
    /// the read lock across their ring hand-off; a migration holds the
    /// write lock across its whole quiesce, which is what serialises
    /// steering against table swaps (see [`rebalance`]).
    steering: RwLock<Arc<BucketMap>>,
    /// Per-bucket packet meters, fed on the worker side (one relaxed
    /// increment per packet), drained per rebalance window.
    bucket_load: Arc<BucketLoad>,
    /// Per-shard flow sketches (count-min + Space-Saving top-k), fed
    /// on the worker side in **bytes** per flow hash. Where
    /// `bucket_load` counts packets, these meter byte mass — the
    /// evidence that catches elephants hiding under uniform packet
    /// counts. One sketch per shard: each worker writes its own,
    /// [`Self::heavy_hitters`] merges on the control plane.
    sketches: Vec<Arc<FlowSketch>>,
    /// Migration epochs applied via [`Self::install_bucket_map`].
    migrations: AtomicU64,
    /// Fault recoveries applied via [`Self::respawn_shard`].
    recoveries: AtomicU64,
    entries: Vec<SharedEntry>,
    /// Per-shard capsules, behind locks so [`Self::respawn_shard`] can
    /// swap in a fresh replica (safe: the shard's worker is dead while
    /// the swap happens, so nothing races the read side).
    capsules: Vec<RwLock<Arc<Capsule>>>,
    /// Per-shard components attached to the rolled-up task — detached
    /// and replaced when a respawn rebuilds the replica.
    components: Vec<Mutex<Vec<ComponentId>>>,
    /// The replica factory, retained so [`Self::respawn_shard`] can
    /// rebuild a crashed shard's graph with the same recipe that built
    /// it.
    factory: Mutex<Box<dyn FnMut(usize) -> Result<ShardGraph> + Send>>,
    counters: Arc<Vec<ShardCounters>>,
    rm: Arc<ResourceManager>,
    task: TaskId,
    spec: ShardSpec,
}

impl ShardedPipeline {
    /// Builds `spec.workers` replicas via `factory(shard)` (called in
    /// shard order), registers the pipeline as one task named `name` in
    /// `rm`, and starts the worker pool.
    ///
    /// # Errors
    ///
    /// Propagates factory failures and a duplicate task `name`.
    pub fn build<F>(
        name: &str,
        spec: ShardSpec,
        rm: Arc<ResourceManager>,
        mut factory: F,
    ) -> Result<Self>
    where
        F: FnMut(usize) -> Result<ShardGraph> + Send + 'static,
    {
        let task = rm.create_task(name)?;
        let mut entries: Vec<SharedEntry> = Vec::with_capacity(spec.workers);
        let mut capsules = Vec::with_capacity(spec.workers);
        let mut components = Vec::with_capacity(spec.workers);
        let mut drains = Vec::with_capacity(spec.workers);
        for shard in 0..spec.workers {
            let graph = factory(shard)?;
            for component in &graph.components {
                rm.attach(task, *component)?;
            }
            entries.push(Arc::new(RwLock::new(graph.entry)));
            capsules.push(RwLock::new(graph.capsule));
            components.push(Mutex::new(graph.components));
            drains.push(graph.drain);
        }
        let counters: Arc<Vec<ShardCounters>> = Arc::new(
            (0..spec.workers)
                .map(|_| ShardCounters::default())
                .collect(),
        );
        let worker_entries = entries.clone();
        let worker_counters = Arc::clone(&counters);
        let bucket_load = Arc::new(BucketLoad::new());
        let worker_bucket_load = Arc::clone(&bucket_load);
        let sketches: Vec<Arc<FlowSketch>> = (0..spec.workers)
            .map(|_| Arc::new(FlowSketch::new(SketchConfig::default())))
            .collect();
        let worker_sketches = sketches.clone();
        let mut drains = drains;
        // Built before the pool starts: each worker clones a handle so
        // it can gather shared shard ranges into pooled containers.
        let batch_pool = BatchPool::new(
            DISPATCH_BATCH_CAPACITY,
            spec.workers.saturating_mul(4),
            spec.workers.saturating_mul(8).max(16),
        );
        let worker_batch_pool = batch_pool.clone();
        let pool = WorkerPool::start(spec, move |shard| {
            Self::make_handler(
                shard,
                Arc::clone(&worker_entries[shard]),
                Arc::clone(&worker_counters),
                worker_batch_pool.clone(),
                // A single-worker pipeline never rebalances (there is
                // nowhere to move a bucket), and its dispatch fast path
                // skips the split that stamps RSS hashes — metering
                // there would re-parse headers per packet for evidence
                // nobody can act on. Meter only when sharded.
                (spec.workers > 1).then(|| Arc::clone(&worker_bucket_load)),
                (spec.workers > 1).then(|| Arc::clone(&worker_sketches[shard])),
                drains[shard].take(),
            )
        });
        Ok(Self {
            pool,
            batch_pool,
            steering: RwLock::new(Arc::new(BucketMap::identity(spec.workers))),
            bucket_load,
            sketches,
            migrations: AtomicU64::new(0),
            recoveries: AtomicU64::new(0),
            entries,
            capsules,
            components,
            factory: Mutex::new(Box::new(factory)),
            counters,
            rm,
            task,
            spec,
        })
    }

    /// Builds one shard's run-to-completion handler — the closure the
    /// worker thread runs per ring item. Shared between [`Self::build`]
    /// (pool start) and [`Self::respawn_shard`] (crash recovery), so a
    /// respawned worker runs *exactly* the same loop as an original
    /// one: gather, meter, push, cause-tagged accounting, drain.
    fn make_handler(
        shard: usize,
        entry: SharedEntry,
        counters: Arc<Vec<ShardCounters>>,
        gather_pool: BatchPool,
        bucket_load: Option<Arc<BucketLoad>>,
        sketch: Option<Arc<FlowSketch>>,
        mut drain: Option<Box<dyn FnMut() + Send>>,
    ) -> ShardHandler<ShardJob> {
        Box::new(move |job: ShardJob| {
            let batch = match job {
                // Pre-steered owned batch: runs as-is.
                ShardJob::Batch(batch) => batch,
                // Shared-range dispatch: gather this shard's slice
                // of the split parent into a pooled container. The
                // move happens *here*, on the worker, in parallel
                // across shards — the dispatch thread only wrote
                // one descriptor per ring. When the last sibling
                // range is consumed the parent container recycles.
                ShardJob::Range(range) => {
                    let mut out = gather_pool.take();
                    range.take_into(&mut out);
                    out
                }
            };
            let n = batch.len() as u64;
            // Meter per-bucket load on the worker (packets are
            // rss-stamped by the split / NIC by now, so this is a
            // modulo + relaxed increment each), keeping the
            // dispatch thread lean.
            if let Some(meter) = &bucket_load {
                meter.record_batch(&batch);
            }
            // Same gate for the byte sketch: per-flow byte mass
            // keyed by the stamped hash, feeding heavy-hitter
            // evidence to the control plane.
            if let Some(sketch) = &sketch {
                sketch.record_batch(&batch);
            }
            // Snapshot the entry once per batch: cheap, and the
            // quiesce closure can retarget it between batches.
            let target = Arc::clone(&entry.read());
            let result = target.push_batch(batch);
            let c = &counters[shard];
            c.batches.fetch_add(1, Ordering::Relaxed);
            c.packets.fetch_add(n, Ordering::Relaxed);
            c.accepted
                .fetch_add(result.accepted() as u64, Ordering::Relaxed);
            if result.dropped() > 0 {
                // Split graph verdicts by cause: the guard's
                // rate-limit verdict gets its own meter; everything
                // else is ordinary graph policy.
                let guard = result
                    .verdicts
                    .iter()
                    .filter(|v| matches!(v, Err(PushError::RateLimited)))
                    .count() as u64;
                let graph = result.dropped() as u64 - guard;
                c.drop_cause(DropCause::Guard, guard);
                c.drop_cause(DropCause::Graph, graph);
            }
            if let Some(drain) = drain.as_mut() {
                drain();
            }
        })
    }

    /// Number of shards (worker threads / replicas).
    pub fn workers(&self) -> usize {
        self.spec.workers
    }

    /// The configuring spec.
    pub fn spec(&self) -> ShardSpec {
        self.spec
    }

    /// The pipeline's task in the resources meta-model — the single
    /// logical handle reflection sees for all replicas.
    pub fn task(&self) -> TaskId {
        self.task
    }

    /// RSS-dispatches a batch, move-free: steers it by flow affinity
    /// through the installed bucket table with the index-based split
    /// ([`PacketBatch::shard_split_with`] — one counting-sort pass,
    /// RSS stamps reused or written once, no label re-interning), then
    /// shares the split parent ([`ShardSplit::into_shared`]) and
    /// publishes one [`ShardJob::Range`] descriptor per non-empty
    /// shard in a single batched fan-out
    /// ([`WorkerPool::submit_fanout`]: one gate transaction for the
    /// whole call, blocking on backpressure). No packet moves and no
    /// container leases on this thread — each worker gathers its slice
    /// into a pooled container in parallel, and the parent batch
    /// recycles to the [`BatchPool`] when the last shard's range is
    /// consumed. A single-worker pipeline skips the split entirely
    /// (0 ≡ 1 shard: the batch goes to shard 0 as-is). Returns the
    /// number of shard ranges enqueued.
    ///
    /// Packets whose ring publish fails (the shard's worker died) are
    /// counted into that shard's `dropped` statistic and released with
    /// the parent — nothing leaks and the loss is visible.
    ///
    /// The steering-table read lock is held across the ring hand-off,
    /// so a dispatch never interleaves with a table migration — the
    /// serialisation per-flow ordering across a rebalance relies on
    /// (see [`rebalance`]).
    ///
    /// [`ShardSplit::into_shared`]: netkit_packet::batch::ShardSplit::into_shared
    pub fn dispatch(&self, batch: PacketBatch) -> usize {
        let map = self.steering.read();
        if self.spec.workers <= 1 {
            return self.submit_counting_drops(0, batch);
        }
        let shared = batch.shard_split_with(&map).into_shared();
        self.pool.submit_fanout(
            (0..self.spec.workers).filter(|&s| shared.shard_len(s) > 0),
            |shard| ShardJob::Range(shared.range(shard)),
            |shard, job| {
                if let Some(c) = self.counters.get(shard) {
                    // Fanout only skips a shard whose worker died —
                    // blocking publishes never tail-drop on pressure.
                    c.drop_cause(DropCause::DeadWorker, job.len() as u64);
                }
                // The rejected range drops here; its packets release
                // with the shared parent, whose pooled container (if
                // leased) recycles on the last sibling's drop.
            },
        )
    }

    /// The pre-shared-ring dispatch baseline: the same counting-sort
    /// split, but each shard's slice is re-materialised as an **owned**
    /// sub-batch ([`PacketBatch`] leased from the pool, packets moved
    /// on *this* thread) and published with one ring transaction per
    /// sub-batch. Semantically equivalent to [`Self::dispatch`]
    /// (verdicts, per-output multisets, per-flow order — see the
    /// differential proptest); kept as the comparison arm for the E13
    /// dispatch bench and for callers that must not share the parent.
    pub fn dispatch_owned(&self, batch: PacketBatch) -> usize {
        let map = self.steering.read();
        if self.spec.workers <= 1 {
            return self.submit_counting_drops(0, batch);
        }
        let mut sent = 0;
        let split = batch.shard_split_with(&map);
        for (shard, part) in split
            .into_shard_batches_pooled(&self.batch_pool)
            .into_iter()
            .enumerate()
        {
            if part.is_empty() {
                continue;
            }
            let n = part.len() as u64;
            match self.pool.submit(shard, ShardJob::Batch(part)) {
                Ok(()) => sent += 1,
                Err(_) => {
                    if let Some(c) = self.counters.get(shard) {
                        c.drop_cause(DropCause::DeadWorker, n);
                    }
                }
            }
        }
        sent
    }

    /// Single-shard hand-off with loss accounting: empty batches are
    /// not published, and a failed publish (dead worker) lands in the
    /// shard's `dropped` stat instead of vanishing silently.
    fn submit_counting_drops(&self, shard: usize, batch: PacketBatch) -> usize {
        if batch.is_empty() {
            return 0;
        }
        let n = batch.len() as u64;
        match self.pool.submit(shard, ShardJob::Batch(batch)) {
            Ok(()) => 1,
            Err(_) => {
                if let Some(c) = self.counters.get(shard) {
                    c.drop_cause(DropCause::DeadWorker, n);
                }
                0
            }
        }
    }

    /// The pipeline's batch-container freelist. NIC pump loops should
    /// build their rx batches from it (as [`Self::pump_nic`] does) so
    /// the containers recycle instead of churning the allocator.
    pub fn batch_pool(&self) -> &BatchPool {
        &self.batch_pool
    }

    /// One iteration of a shard's zero-copy NIC rx loop: drains up to
    /// `max` frames from `nic`'s rx queue `shard` into a pooled batch
    /// ([`Nic::rx_burst_batch`] — pooled frame buffers move in without
    /// copying, rss pre-stamped) and runs it on that shard. With the
    /// NIC's RSS already steering at injection, there is no software
    /// partition here at all; together with [`Nic::with_buffer_pool`]
    /// and the batch freelist, steady-state forwarding allocates
    /// nothing per batch.
    ///
    /// Returns the number of packets handed to the shard (0 when the
    /// queue was empty, the shard is unknown, or its worker died).
    /// Frames already drained off the NIC when the hand-off fails (the
    /// worker died mid-pump) cannot be re-queued; they are counted into
    /// the shard's `dropped` statistic so the stack's zero-loss
    /// accounting stays truthful.
    pub fn pump_nic(&self, nic: &Nic, shard: usize, max: usize) -> usize {
        // Hold the steering read lock so a pump never interleaves with
        // a table migration (the migration itself drains these queues).
        let _map = self.steering.read();
        let mut batch = self.batch_pool.take();
        let taken = nic.rx_burst_batch(shard, max, &mut batch);
        if taken == 0 {
            return 0; // empty container recycles on drop
        }
        match self.pool.submit(shard, ShardJob::Batch(batch)) {
            Ok(()) => taken,
            Err(_) => {
                // The bounced batch drops here: frames counted lost,
                // pooled container recycles on drop.
                if let Some(c) = self.counters.get(shard) {
                    c.drop_cause(DropCause::DeadWorker, taken as u64);
                }
                0
            }
        }
    }

    /// Enqueues a pre-steered batch directly on `shard` (the multi-queue
    /// NIC path, where hardware already partitioned by RSS hash). The
    /// caller's steering decision must come from the same bucket table
    /// the pipeline holds ([`Self::bucket_map`]); the read lock held
    /// here keeps the hand-off from interleaving with a migration.
    ///
    /// # Errors
    ///
    /// Returns the batch if `shard` is out of range or its worker died.
    pub fn submit(&self, shard: usize, batch: PacketBatch) -> std::result::Result<(), PacketBatch> {
        let _map = self.steering.read();
        match self.pool.submit(shard, ShardJob::Batch(batch)) {
            Ok(()) => Ok(()),
            Err(ShardJob::Batch(batch)) => Err(batch),
            Err(ShardJob::Range(_)) => unreachable!("submitted a Batch"),
        }
    }

    /// Blocks until every dispatched batch has run to completion, then
    /// rolls per-shard counters up into the resources task.
    pub fn flush(&self) {
        self.pool.flush();
        self.sync_resources();
    }

    /// Runs `f` with every worker parked at a batch boundary (the epoch
    /// quiesce protocol — see the module docs). Reconfigure the replicas
    /// inside `f` via [`Self::capsule`] / [`Self::set_entry`]; the
    /// change is atomic across all shards and drops no traffic.
    pub fn quiesce<R>(&self, f: impl FnOnce() -> R) -> R {
        self.pool.quiesce(f)
    }

    /// Completed quiesce epochs.
    pub fn epoch(&self) -> u64 {
        self.pool.epoch()
    }

    /// Snapshot of the authoritative bucket → shard steering table.
    pub fn bucket_map(&self) -> BucketMap {
        BucketMap::clone(&self.steering.read())
    }

    /// Migration epochs applied via [`Self::install_bucket_map`].
    pub fn migrations(&self) -> u64 {
        self.migrations.load(Ordering::Relaxed)
    }

    /// Snapshot (peek, non-destructive) of the per-bucket packet
    /// meters — what has accumulated since the evidence was last
    /// consumed (retired by an applied migration, decayed by
    /// [`Self::decay_bucket_loads`], or drained).
    pub fn bucket_loads(&self) -> Vec<u64> {
        self.bucket_load.snapshot()
    }

    /// Takes the per-bucket observation window destructively: returns
    /// the counts and zeroes them. This is the legacy drain-based
    /// discipline for callers that unconditionally consume every
    /// window; the rebalancing paths ([`Self::rebalance`],
    /// [`Self::control_turn`]) use peek-then-commit instead so
    /// declined windows retain their evidence.
    pub fn drain_bucket_loads(&self) -> Vec<u64> {
        self.bucket_load.drain()
    }

    /// Per-shard load meters: work done plus ring pressure — the
    /// evidence a [`RebalancePolicy`] (or a human at the reflective
    /// console) reads to spot a hot shard.
    pub fn shard_loads(&self) -> Vec<ShardLoad> {
        (0..self.spec.workers)
            .map(|shard| ShardLoad {
                shard,
                packets: self.counters[shard].packets.load(Ordering::Relaxed),
                batches: self.counters[shard].batches.load(Ordering::Relaxed),
                in_flight: self.pool.in_flight_on(shard).unwrap_or(0),
                ring_high_water: self.pool.ring_high_water(shard).unwrap_or(0),
            })
            .collect()
    }

    /// Installs a new bucket → shard table atomically — the adapt arm
    /// of the reflective rebalancing loop.
    ///
    /// Under the write half of the steering lock (so no `dispatch` /
    /// `submit` / `pump_nic` overlaps) and inside one epoch quiesce
    /// (so every previously enqueued batch has run to completion and
    /// every worker is parked), this:
    ///
    /// 1. installs `map` as each `nic`'s RSS indirection table, then
    /// 2. drains every frame still waiting in the NICs' rx queues and
    ///    re-steers it by the new table onto its worker ring (FIFO per
    ///    queue, so per-flow order survives — a flow sat in exactly
    ///    one old queue and lands on exactly one new ring), then
    /// 3. swaps the pipeline's own table.
    ///
    /// Traffic dispatched after this returns steers by the new table
    /// and lands *behind* the re-steered frames; nothing is lost,
    /// duplicated, or reordered within any flow. Wire-side injection
    /// must be quiescent across the call (see the NIC module docs —
    /// simulated hardware cannot apply the swap atomically against
    /// racing injectors). Frames that cannot be re-steered because a
    /// ring is full or a worker died are counted as dropped (the same
    /// accounting as [`Self::pump_nic`]).
    ///
    /// # Panics
    ///
    /// Panics if `map` targets a different shard count than the
    /// pipeline runs — a table must never steer to a worker that does
    /// not exist.
    pub fn install_bucket_map(&self, map: BucketMap, nics: &[&Nic]) -> MigrationReport {
        self.install_map_inner(map, nics, None, true)
    }

    /// The shared body behind [`Self::install_bucket_map`] (a
    /// migration: counts an epoch, bills `REBALANCES`, files bounces
    /// by their real rejection) and [`Self::health_turn`]'s
    /// quarantine/restore patches (not migrations: every bounce is
    /// filed under `cause_override` — re-steer shed — and no
    /// rebalance accounting moves).
    fn install_map_inner(
        &self,
        map: BucketMap,
        nics: &[&Nic],
        cause_override: Option<DropCause>,
        as_migration: bool,
    ) -> MigrationReport {
        assert_eq!(
            map.shards(),
            self.spec.workers,
            "bucket map targets {} shards, pipeline runs {}",
            map.shards(),
            self.spec.workers
        );
        let mut steering = self.steering.write();
        let moved_buckets = map.moved_buckets(&steering).len();
        let mut report = MigrationReport {
            moved_buckets,
            ..MigrationReport::default()
        };
        self.pool.quiesce(|| {
            for nic in nics {
                nic.set_indirection(map.clone());
                for queue in 0..nic.queues() {
                    loop {
                        let mut batch = self.batch_pool.take();
                        if nic.rx_burst_batch(queue, DISPATCH_BATCH_CAPACITY, &mut batch) == 0 {
                            break; // empty container recycles on drop
                        }
                        let shared = batch.shard_split_with(&map).into_shared();
                        for shard in 0..self.spec.workers {
                            let n = shared.shard_len(shard);
                            if n == 0 {
                                continue;
                            }
                            // Per-range try_submit, NOT submit_fanout: a
                            // blocking publish inside the quiesce would
                            // deadlock against the parked workers if a
                            // ring were full.
                            match self
                                .pool
                                .try_submit_tagged(shard, ShardJob::Range(shared.range(shard)))
                            {
                                Ok(()) => report.resubmitted += n,
                                Err((_, rejection)) => {
                                    // The bounced range's packets free
                                    // with the shared parent, and the
                                    // parent's pooled container recycles
                                    // once the accepted siblings are
                                    // consumed — full-ring loss is
                                    // counted, never leaked.
                                    report.dropped += n;
                                    let cause = cause_override.unwrap_or(match rejection {
                                        SubmitRejection::RingFull => DropCause::RingFull,
                                        SubmitRejection::DeadWorker
                                        | SubmitRejection::OutOfRange => DropCause::DeadWorker,
                                    });
                                    if let Some(c) = self.counters.get(shard) {
                                        c.drop_cause(cause, n as u64);
                                    }
                                }
                            }
                        }
                    }
                }
            }
            *steering = Arc::new(map);
            // The migration epoch is the boundary between ring-pressure
            // observation windows. Reset the high-water marks *inside*
            // the quiesce (workers parked, steering writers excluded),
            // where no enqueue can interleave with the boundary — a
            // reset outside the epoch races concurrent submissions and
            // can erase occupancy evidence that belongs to the new
            // window (see `WorkerPool::take_ring_high_water`).
            self.pool.reset_ring_high_water();
        });
        report.epoch = self.pool.epoch();
        if as_migration {
            self.migrations.fetch_add(1, Ordering::Relaxed);
            let _ = self.rm.consume(self.task, classes::REBALANCES, 1);
        }
        report
    }

    /// One turn of the reflective rebalancing loop: **peek** at the
    /// per-bucket observation window, ask `policy` for a plan, and —
    /// when the skew warrants it — install the planned table via
    /// [`Self::install_bucket_map`] and **then** retire exactly the
    /// judged window. Returns the plan and migration report when a
    /// migration was applied, `None` when the placement was left alone
    /// (balanced, window too small, or single shard).
    ///
    /// Run this from the control plane (the ResourceManager side), not
    /// from a worker: it quiesces the pipeline it is called on. Window
    /// operations are single-consumer — one control-plane caller at a
    /// time (the autonomous [`ControlLoop`] *is* that caller when
    /// spawned; don't mix it with manual polling).
    ///
    /// The window discipline is peek-then-commit:
    ///
    /// * the `min_samples` gate, the plan, and the retire all judge
    ///   the **same snapshot** — samples recorded mid-call stay in the
    ///   meter for the next poll rather than being judged by one step
    ///   and invisible to another;
    /// * a window below `min_samples` keeps accumulating, so a
    ///   low-rate but persistently skewed workload eventually gathers
    ///   enough evidence across polls;
    /// * a window the policy *declines* (balanced, or no improving
    ///   plan) is **retained, not discarded** — under a weighted
    ///   policy the same packet evidence can tip the decision on a
    ///   later poll once queueing pressure shifts. Periodic callers
    ///   should age retained windows with
    ///   [`Self::decay_bucket_loads`] (the [`ControlLoop`] does).
    pub fn rebalance(
        &self,
        policy: &RebalancePolicy,
        nics: &[&Nic],
    ) -> Option<(RebalancePlan, MigrationReport)> {
        let window = self.bucket_load.snapshot();
        if window.iter().sum::<u64>() < policy.min_samples.max(1) {
            return None; // too little evidence: keep accumulating
        }
        let current = self.bucket_map();
        let Some(plan) = policy.plan(&window, &current) else {
            return None; // declined: the window is evidence, not waste
        };
        let report = self.install_bucket_map(plan.map.clone(), nics);
        // Consume exactly what was judged; concurrent arrivals stay.
        self.bucket_load.retire(&window);
        Some((plan, report))
    }

    /// The weighted analogue of [`Self::rebalance`]: the same
    /// peek-then-commit window discipline, with the decision made by a
    /// [`WeightedRebalancePolicy`] over the raw window *plus* the live
    /// per-shard queueing pressure ([`Self::shard_loads`]).
    pub fn rebalance_weighted(
        &self,
        policy: &WeightedRebalancePolicy,
        nics: &[&Nic],
    ) -> Option<(RebalancePlan, MigrationReport)> {
        let window = self.bucket_load.snapshot();
        let loads = self.shard_loads();
        let current = self.bucket_map();
        let plan = policy.plan(&window, &loads, self.spec.ring_capacity, &current)?;
        let report = self.install_bucket_map(plan.map.clone(), nics);
        self.bucket_load.retire(&window);
        Some((plan, report))
    }

    /// Applies one exponential decay step to the bucket observation
    /// window: every bucket keeps an `alpha` fraction of its count
    /// (see `BucketLoad::decay`). This is how periodic pollers age
    /// evidence the policy declined to act on, instead of draining it.
    pub fn decay_bucket_loads(&self, alpha: f64) {
        self.bucket_load.decay(alpha);
    }

    /// `shard`'s flow sketch: per-flow **byte** meters (count-min +
    /// Space-Saving top-k) fed on the worker side alongside
    /// [`Self::bucket_loads`]'s packet counts. Single-worker pipelines
    /// never feed it (nothing to rebalance — see the worker gate in
    /// [`Self::build`]).
    pub fn flow_sketch(&self, shard: usize) -> &Arc<FlowSketch> {
        &self.sketches[shard]
    }

    /// The merged heavy-hitter evidence across all shards: each
    /// shard's Space-Saving top-k, summed per flow hash and re-ranked
    /// (see [`SpaceSaving::merge`]). This is the byte-side input the
    /// control loop feeds to
    /// [`RebalanceController::decide_with_evidence`] when
    /// [`ControlConfig::heavy_blend`] is non-zero.
    pub fn heavy_hitters(&self) -> Vec<HeavyHitter> {
        let tops: Vec<Vec<HeavyHitter>> = self.sketches.iter().map(|s| s.heavy_hitters()).collect();
        SpaceSaving::merge(SketchConfig::default().top_capacity, &tops)
    }

    /// One full turn of the **autonomous** control loop against this
    /// pipeline: snapshot the window and the shard pressure meters,
    /// let `ctl` decide, and apply the outcome — install + retire on a
    /// migration, decay on a judged-but-held window, nothing while
    /// evidence is still gathering. The threaded [`ControlLoop`] calls
    /// this on every tick; tests and embedders can drive it directly
    /// for deterministic single-step control.
    pub fn control_turn(
        &self,
        ctl: &mut RebalanceController,
        nics: &[&Nic],
    ) -> Option<(RebalancePlan, MigrationReport)> {
        let window = self.bucket_load.snapshot();
        let loads = self.shard_loads();
        let current = self.bucket_map();
        // The sketches follow the same peek-then-commit discipline as
        // the packet window: snapshot what is judged, and on a
        // migration retire exactly that — bytes recorded mid-turn stay
        // for the next poll. Snapshots are only taken when the
        // evidence can matter (non-zero blend), keeping the zero-blend
        // control turn as cheap as it was without sketches.
        let with_evidence = ctl.heavy_blend() > 0.0;
        let sketch_windows: Vec<_> = if with_evidence {
            self.sketches.iter().map(|s| s.snapshot()).collect()
        } else {
            Vec::new()
        };
        let heavy = if with_evidence {
            SpaceSaving::merge(
                SketchConfig::default().top_capacity,
                &sketch_windows
                    .iter()
                    .map(|w| w.top.clone())
                    .collect::<Vec<_>>(),
            )
        } else {
            Vec::new()
        };
        match ctl.decide_with_evidence(&window, &loads, &heavy, self.spec.ring_capacity, &current) {
            ControlDecision::Gathering => None,
            ControlDecision::Hold => {
                self.bucket_load.decay(ctl.decay());
                for sketch in &self.sketches {
                    sketch.decay(ctl.decay());
                }
                None
            }
            ControlDecision::Migrate(plan) => {
                let report = self.install_bucket_map(plan.map.clone(), nics);
                self.bucket_load.retire(&window);
                for (sketch, w) in self.sketches.iter().zip(&sketch_windows) {
                    sketch.retire(w);
                }
                Some((plan, report))
            }
        }
    }

    /// Whether `shard`'s worker can still accept work (`Some(false)`
    /// once its thread died — the health signal
    /// [`Self::health_turn`] acts on). `None` for an out-of-range
    /// shard.
    pub fn worker_alive(&self, shard: usize) -> Option<bool> {
        self.pool.worker_alive(shard)
    }

    /// Fault recoveries applied: successful [`Self::respawn_shard`]
    /// calls over the pipeline's lifetime.
    pub fn recoveries(&self) -> u64 {
        self.recoveries.load(Ordering::Relaxed)
    }

    /// Per-cause drop accounting aggregated over all shards. The sum
    /// ([`DropStats::total`]) always equals [`PipelineStats::dropped`]
    /// from [`Self::stats`] — every lost packet is filed under exactly
    /// one cause.
    pub fn drop_stats(&self) -> DropStats {
        let mut total = DropStats::default();
        for c in self.counters.iter() {
            let s = c.drop_stats();
            total.ring_full += s.ring_full;
            total.dead_worker += s.dead_worker;
            total.resteer_shed += s.resteer_shed;
            total.guard += s.guard;
            total.graph += s.graph;
        }
        total
    }

    /// One shard's per-cause drop accounting.
    pub fn shard_drop_stats(&self, shard: usize) -> DropStats {
        self.counters[shard].drop_stats()
    }

    /// Replaces `shard`'s dead worker with a fresh replica and thread —
    /// the crash-recovery half of the self-healing dataplane.
    ///
    /// In order:
    ///
    /// 1. bails with `Ok(None)` unless the shard's worker is actually
    ///    dead (respawning a live worker would orphan its ring);
    /// 2. rebuilds the shard's element graph with the **same factory**
    ///    that built it at [`Self::build`] time, detaching the dead
    ///    replica's components from the rolled-up resources task and
    ///    attaching the new ones;
    /// 3. swaps the shard's entry and capsule — safe outside a quiesce
    ///    *only because the worker is dead*: nothing reads them, and
    ///    dispatchers merely clone the `Arc` behind the entry lock;
    /// 4. respawns the kernel worker ([`WorkerPool::respawn`]): the
    ///    dead ring's stranded descriptors are drained and their
    ///    packets filed under the dead-worker drop cause (counted,
    ///    recycled, never leaked), then a fresh thread starts on a
    ///    fresh ring and the shard accepts traffic again.
    ///
    /// Returns `Ok(Some(stranded_packets))` on success. Bills one
    /// `FAULTS` unit on the resources task, so recovery work is
    /// visible to the same reflective accounting as everything else.
    ///
    /// Call from the control plane only — the [`ControlLoop`]'s health
    /// turn is the intended (single) caller; concurrent respawns of
    /// the same shard are serialised by the kernel pool, but the
    /// entry/capsule swap assumes no other control-plane writer.
    ///
    /// # Errors
    ///
    /// Propagates factory and resource-attach failures (the worker
    /// stays dead; a later turn can retry).
    pub fn respawn_shard(&self, shard: usize) -> Result<Option<u64>> {
        if self.pool.worker_alive(shard) != Some(false) {
            return Ok(None);
        }
        let graph = (self.factory.lock())(shard)?;
        {
            let mut comps = self.components[shard].lock();
            for component in comps.drain(..) {
                let _ = self.rm.detach(self.task, component);
            }
            for component in &graph.components {
                self.rm.attach(self.task, *component)?;
            }
            *comps = graph.components.clone();
        }
        *self.entries[shard].write() = graph.entry;
        *self.capsules[shard].write() = graph.capsule;
        let handler = Self::make_handler(
            shard,
            Arc::clone(&self.entries[shard]),
            Arc::clone(&self.counters),
            self.batch_pool.clone(),
            (self.spec.workers > 1).then(|| Arc::clone(&self.bucket_load)),
            (self.spec.workers > 1).then(|| Arc::clone(&self.sketches[shard])),
            graph.drain,
        );
        let mut stranded_packets = 0u64;
        let respawned = self.pool.respawn(shard, handler, |job| {
            let n = job.len() as u64;
            stranded_packets += n;
            self.counters[shard].drop_cause(DropCause::DeadWorker, n);
        });
        if respawned.is_none() {
            // Lost a (theoretical) race with another respawner; the
            // replica swap above is idempotent-safe — the fresh graph
            // simply becomes the shard's current one.
            return Ok(None);
        }
        self.recoveries.fetch_add(1, Ordering::Relaxed);
        let _ = self.rm.consume(self.task, classes::FAULTS, 1);
        Ok(Some(stranded_packets))
    }

    /// One health turn of the self-healing loop: detect dead shards,
    /// quarantine their buckets onto live shards, respawn them, and
    /// restore steering. Returns `Ok(None)` when every worker is alive
    /// (the overwhelmingly common case — one liveness probe per shard
    /// and out).
    ///
    /// When at least one shard is dead and at least one is live:
    ///
    /// 1. **Quarantine** — installs a patched bucket table re-steering
    ///    every bucket of a dead shard round-robin onto the live
    ///    shards, under one quiesce epoch (same machinery as a
    ///    migration, same per-flow-order guarantee: a bucket moves
    ///    wholesale, so a flow's frames stay in one FIFO). Queued
    ///    frames for dead shards re-steer to live ones; anything that
    ///    cannot land is filed under the re-steer-shed drop cause.
    /// 2. **Respawn** — [`Self::respawn_shard`] for each dead shard;
    ///    stranded ring packets are cause-accounted dead-worker.
    /// 3. **Restore** — re-installs the pre-fault steering table so
    ///    the recovered shards take their buckets back.
    ///
    /// Neither patch counts as a migration ([`Self::migrations`] is
    /// unchanged — rebalance tests and policies keep their meaning);
    /// each bills one `FAULTS` unit instead. With *every* shard dead,
    /// there is nowhere to quarantine to: the turn just respawns them
    /// all.
    ///
    /// Single control-plane caller, like all window/steering
    /// operations — the [`ControlLoop`] runs this before each control
    /// turn when spawned.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::respawn_shard`] failures after attempting
    /// every dead shard (steering is still restored first so traffic
    /// keeps flowing to whatever recovered).
    pub fn health_turn(&self, nics: &[&Nic]) -> Result<Option<FaultRecovery>> {
        let dead: Vec<usize> = (0..self.spec.workers)
            .filter(|&s| self.pool.worker_alive(s) == Some(false))
            .collect();
        if dead.is_empty() {
            return Ok(None);
        }
        let live: Vec<usize> = (0..self.spec.workers)
            .filter(|s| !dead.contains(s))
            .collect();
        let saved = self.bucket_map();
        let mut recovery = FaultRecovery::default();
        if !live.is_empty() {
            let mut quarantine = saved.clone();
            let mut next = 0usize;
            for bucket in 0..RSS_BUCKETS {
                if dead.contains(&quarantine.shard_of_bucket(bucket)) {
                    quarantine.set(bucket, live[next % live.len()]);
                    next += 1;
                    recovery.quarantined_buckets += 1;
                }
            }
            let report =
                self.install_map_inner(quarantine, nics, Some(DropCause::ResteerShed), false);
            recovery.resteered += report.resubmitted as u64;
            recovery.shed += report.dropped as u64;
            let _ = self.rm.consume(self.task, classes::FAULTS, 1);
        }
        let mut first_err = None;
        for &shard in &dead {
            match self.respawn_shard(shard) {
                Ok(Some(stranded)) => {
                    recovery.stranded += stranded;
                    recovery.respawned.push(shard);
                }
                Ok(None) => {}
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        if !live.is_empty() {
            // Hand the recovered shards their buckets back. Restored
            // even when a respawn failed: the quarantine table is only
            // correct while its dead-set matches reality, and the next
            // health turn re-derives it from scratch anyway.
            let report = self.install_map_inner(saved, nics, Some(DropCause::ResteerShed), false);
            recovery.resteered += report.resubmitted as u64;
            recovery.shed += report.dropped as u64;
            let _ = self.rm.consume(self.task, classes::FAULTS, 1);
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(Some(recovery)),
        }
    }

    /// The capsule hosting `shard`'s replica (the *current* one — a
    /// respawn swaps in a fresh capsule).
    pub fn capsule(&self, shard: usize) -> Arc<Capsule> {
        Arc::clone(&self.capsules[shard].read())
    }

    /// `shard`'s current ingress interface.
    pub fn entry(&self, shard: usize) -> Arc<dyn IPacketPush> {
        Arc::clone(&self.entries[shard].read())
    }

    /// Retargets `shard`'s ingress (call from within a
    /// [`Self::quiesce`] closure after replacing the head element).
    pub fn set_entry(&self, shard: usize, entry: Arc<dyn IPacketPush>) {
        *self.entries[shard].write() = entry;
    }

    /// Aggregate counters over all shards — the one-logical-component
    /// view. Also rolls usage up into the resources task.
    pub fn stats(&self) -> PipelineStats {
        self.sync_resources();
        let mut total = PipelineStats::default();
        for c in self.counters.iter() {
            total.batches += c.batches.load(Ordering::Relaxed);
            total.packets += c.packets.load(Ordering::Relaxed);
            total.accepted += c.accepted.load(Ordering::Relaxed);
            total.dropped += c.dropped.load(Ordering::Relaxed);
        }
        total
    }

    /// One shard's counters.
    pub fn shard_stats(&self, shard: usize) -> PipelineStats {
        let c = &self.counters[shard];
        PipelineStats {
            batches: c.batches.load(Ordering::Relaxed),
            packets: c.packets.load(Ordering::Relaxed),
            accepted: c.accepted.load(Ordering::Relaxed),
            dropped: c.dropped.load(Ordering::Relaxed),
        }
    }

    /// Pushes the per-shard deltas into the resources task. Called from
    /// `flush`/`stats` so the per-batch hot path never takes the
    /// manager's locks. `fetch_max` keeps `reported` monotone, so
    /// concurrent callers that loaded different `packets` snapshots
    /// claim disjoint deltas (the stale one claims zero) and nothing is
    /// ever double-counted.
    fn sync_resources(&self) {
        for c in self.counters.iter() {
            let seen = c.packets.load(Ordering::Relaxed);
            let reported = c.reported.fetch_max(seen, Ordering::Relaxed);
            let delta = seen.saturating_sub(reported);
            if delta > 0 {
                let _ = self.rm.consume(self.task, classes::PACKETS, delta);
            }
        }
    }

    /// Flushes outstanding work, rolls counters up, releases the
    /// resources task, stops the workers, and returns the final
    /// aggregate stats.
    pub fn shutdown(self) -> PipelineStats {
        self.pool.flush();
        let stats = self.stats();
        let _ = self.rm.release_task(self.task);
        self.pool.shutdown();
        stats
    }
}

impl fmt::Debug for ShardedPipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ShardedPipeline({} shards, {:?})",
            self.spec.workers, self.pool
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{register_packet_interfaces, IPACKET_PUSH};
    use crate::elements::{Counter, Discard};
    use netkit_packet::packet::PacketBuilder;
    use opencom::runtime::Runtime;

    struct Rig {
        pipe: ShardedPipeline,
        sinks: Vec<Arc<Discard>>,
        rm: Arc<ResourceManager>,
    }

    fn rig(name: &str, workers: usize) -> Rig {
        rig_with(name, ShardSpec::new(workers))
    }

    fn rig_with(name: &str, spec: ShardSpec) -> Rig {
        let rm = Arc::new(ResourceManager::new());
        let sinks = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let sinks2 = Arc::clone(&sinks);
        let pipe = ShardedPipeline::build(name, spec, Arc::clone(&rm), {
            move |_shard| {
                let rt = Runtime::new();
                register_packet_interfaces(&rt);
                let capsule = Capsule::new("shard", &rt);
                let counter = Counter::new();
                let sink = Discard::new();
                let cid = capsule.adopt(counter.clone())?;
                let sid = capsule.adopt(sink.clone())?;
                capsule.bind_simple(cid, "out", sid, IPACKET_PUSH)?;
                sinks2.lock().push(sink);
                Ok(ShardGraph::new(Arc::clone(&capsule), counter).with_components(vec![cid, sid]))
            }
        })
        .unwrap();
        let sinks = std::mem::take(&mut *sinks.lock());
        Rig { pipe, sinks, rm }
    }

    fn burst(flows: u16, per_flow: u16) -> PacketBatch {
        let mut batch = PacketBatch::new();
        for seq in 0..per_flow {
            for flow in 0..flows {
                batch.push(
                    PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 2000 + flow, 5000 + seq).build(),
                );
            }
        }
        batch
    }

    #[test]
    fn dispatch_spreads_and_loses_nothing() {
        let r = rig("spread", 4);
        r.pipe.dispatch(burst(16, 8));
        r.pipe.flush();
        let stats = r.pipe.stats();
        assert_eq!(stats.packets, 128);
        assert_eq!(stats.accepted, 128);
        assert_eq!(stats.dropped, 0);
        let delivered: u64 = r.sinks.iter().map(|s| s.count()).sum();
        assert_eq!(delivered, 128);
        let busy = r.sinks.iter().filter(|s| s.count() > 0).count();
        assert!(busy > 1, "16 flows must spread over several shards");
        r.pipe.shutdown();
    }

    #[test]
    fn resources_roll_up_into_one_task() {
        let r = rig("rollup", 3);
        r.pipe.dispatch(burst(9, 4));
        r.pipe.flush();
        let info = r.rm.task_info(r.pipe.task()).unwrap();
        assert_eq!(info.usage[classes::PACKETS], 36);
        assert_eq!(info.attached.len(), 6, "all replica components attach");
        // Shutdown releases the logical task.
        let task = r.pipe.task();
        r.pipe.shutdown();
        assert!(r.rm.task_info(task).is_err());
    }

    #[test]
    fn duplicate_pipeline_names_are_rejected() {
        let rm = Arc::new(ResourceManager::new());
        rm.create_task("taken").unwrap();
        let err = ShardedPipeline::build("taken", ShardSpec::single(), rm, |_| {
            unreachable!("factory must not run")
        });
        assert!(err.is_err());
    }

    #[test]
    fn quiesce_swaps_entries_atomically() {
        let r = rig("swap", 2);
        r.pipe.dispatch(burst(8, 2));
        // Retarget every shard's ingress to a fresh counter-sink pair.
        let replacements: Vec<Arc<Counter>> = (0..2).map(|_| Counter::new()).collect();
        r.pipe.quiesce(|| {
            for (shard, c) in replacements.iter().enumerate() {
                r.pipe.set_entry(shard, c.clone());
            }
        });
        assert_eq!(r.pipe.epoch(), 1);
        r.pipe.dispatch(burst(8, 2));
        r.pipe.flush();
        let replaced: u64 = replacements.iter().map(|c| c.count()).sum();
        assert_eq!(replaced, 16, "post-quiesce traffic hits the new graph");
        let original: u64 = r.sinks.iter().map(|s| s.count()).sum();
        assert_eq!(original, 16, "pre-quiesce traffic ran to completion");
        assert_eq!(r.pipe.stats().packets, 32);
        r.pipe.shutdown();
    }

    #[test]
    fn pump_nic_feeds_shards_from_their_queues_without_copying() {
        use netkit_kernel::nic::{Nic, PortId};
        use netkit_packet::flow::FlowKey;
        use netkit_packet::pool::BufferPool;

        let workers = 2usize;
        let r = rig("pump", workers);
        let buffers = BufferPool::new(2048, 0, 64);
        let nic = Nic::with_queues(PortId(0), workers, 64, 64, 1_000_000).with_buffer_pool(buffers);

        let mut expect = vec![0u64; workers];
        for i in 0..32u16 {
            let wire = PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 2000 + i, 80).build();
            let shard = FlowKey::from_packet(&wire).unwrap().shard_for(workers);
            expect[shard] += 1;
            assert!(nic.inject_rx_frame(wire.data()));
        }
        let mut pumped = 0;
        for shard in 0..workers {
            pumped += r.pipe.pump_nic(&nic, shard, 64);
        }
        assert_eq!(pumped, 32);
        r.pipe.flush();
        for (shard, &count) in expect.iter().enumerate() {
            assert_eq!(r.pipe.shard_stats(shard).packets, count);
        }
        // Empty queue: nothing submitted, container recycled.
        assert_eq!(r.pipe.pump_nic(&nic, 0, 64), 0);
        assert_eq!(r.pipe.pump_nic(&nic, 99, 64), 0, "unknown queue");
        // Batch containers cycled through the pool, not the allocator.
        let stats = r.pipe.batch_pool().stats();
        assert!(stats.recycled >= workers as u64);
        r.pipe.shutdown();
    }

    #[test]
    fn dispatch_reuses_batch_containers_across_rounds() {
        let r = rig("reuse", 2);
        for _ in 0..4 {
            r.pipe.dispatch(burst(8, 2));
            r.pipe.flush();
        }
        let stats = r.pipe.batch_pool().stats();
        assert!(
            stats.reused > 0,
            "steady-state dispatch must reuse containers: {stats:?}"
        );
        r.pipe.shutdown();
    }

    #[test]
    fn zero_and_one_worker_pipelines_are_equivalent() {
        // ShardSpec::new clamps 0 → 1, and the whole stack (worker
        // pool, dispatch partition, NIC queue map) agrees.
        let r = rig("zero", 0);
        assert_eq!(r.pipe.workers(), 1);
        r.pipe.dispatch(burst(4, 2));
        r.pipe.flush();
        assert_eq!(r.pipe.stats().packets, 8);
        assert_eq!(r.pipe.shard_stats(0).packets, 8);
        r.pipe.shutdown();
    }

    #[test]
    fn dispatch_steers_by_the_installed_table() {
        use netkit_packet::flow::FlowKey;
        let r = rig("table", 4);
        assert!(r.pipe.bucket_map().is_identity());
        // Move every bucket the burst occupies onto shard 2 (each
        // (flow, seq) column of `burst` is a distinct 5-tuple, so
        // sample the same shape the dispatch below will see).
        let mut map = r.pipe.bucket_map();
        for p in burst(8, 4).iter() {
            map.set(FlowKey::from_packet(p).unwrap().bucket(), 2);
        }
        let report = r.pipe.install_bucket_map(map.clone(), &[]);
        assert!(report.moved_buckets > 0);
        assert_eq!(report.resubmitted, 0, "no NIC queues to drain");
        assert_eq!(r.pipe.migrations(), 1);
        assert_eq!(r.pipe.bucket_map(), map);

        r.pipe.dispatch(burst(8, 4));
        r.pipe.flush();
        assert_eq!(r.pipe.shard_stats(2).packets, 32, "all flows follow");
        for shard in [0usize, 1, 3] {
            assert_eq!(r.pipe.shard_stats(shard).packets, 0);
        }
        // The meters saw every packet, bucketwise.
        assert_eq!(r.pipe.bucket_loads().iter().sum::<u64>(), 32);
        assert_eq!(r.pipe.drain_bucket_loads().iter().sum::<u64>(), 32);
        assert_eq!(r.pipe.bucket_loads().iter().sum::<u64>(), 0);
        r.pipe.shutdown();
    }

    #[test]
    fn install_drains_and_resteers_nic_queues() {
        use netkit_kernel::nic::{Nic, PortId};
        use netkit_packet::flow::FlowKey;
        use netkit_packet::packet::PacketBuilder;

        let workers = 2usize;
        let r = rig("drain", workers);
        let nic = Nic::with_queues(PortId(0), workers, 64, 64, 1_000_000);
        // Park 16 frames in the NIC queues under the identity table.
        let mut keys = Vec::new();
        for i in 0..16u16 {
            let wire = PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 2000 + i, 80).build();
            keys.push(FlowKey::from_packet(&wire).unwrap());
            assert!(nic.inject_rx_frame(wire.data()));
        }
        // Migrate every occupied bucket to shard 1.
        let mut map = r.pipe.bucket_map();
        for k in &keys {
            map.set(k.bucket(), 1);
        }
        let report = r.pipe.install_bucket_map(map.clone(), &[&nic]);
        assert_eq!(report.resubmitted, 16, "queued frames migrated");
        assert_eq!(report.dropped, 0);
        assert_eq!(nic.indirection(), map, "NIC mirrors the table");
        r.pipe.flush();
        assert_eq!(r.pipe.shard_stats(1).packets, 16);
        assert_eq!(r.pipe.shard_stats(0).packets, 0);
        // Frames injected after the swap steer straight to the new
        // queue; pump_nic keeps its queue == shard contract.
        let wire = PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 2000, 80).build();
        assert!(nic.inject_rx_frame(wire.data()));
        assert_eq!(r.pipe.pump_nic(&nic, 1, 64), 1);
        r.pipe.flush();
        assert_eq!(r.pipe.shard_stats(1).packets, 17);
        r.pipe.shutdown();
    }

    #[test]
    fn rebalance_spreads_a_skewed_window() {
        use netkit_packet::steer::bucket_of;
        let workers = 4usize;
        let r = rig("skew", workers);
        // An elephant column plus colocated mice: stamps chosen so all
        // buckets land on shard 0 under the identity table.
        let mut batch = PacketBatch::new();
        for i in 0..64u64 {
            let mut p =
                netkit_packet::packet::PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 9, 9).build();
            // Half the load on bucket 0 (the elephant), the rest on
            // buckets 4, 8, 12 — all ≡ 0 (mod 4).
            let bucket = match i % 8 {
                0..=3 => 0u64,
                4 | 5 => 4,
                6 => 8,
                _ => 12,
            };
            p.meta.rss_hash = Some(bucket);
            batch.push(p);
        }
        r.pipe.dispatch(batch);
        r.pipe.flush();
        assert_eq!(r.pipe.shard_stats(0).packets, 64, "skew: one hot shard");
        let loads = r.pipe.shard_loads();
        assert_eq!(loads[0].packets, 64);
        assert!(loads[0].ring_high_water >= 1);

        let policy = RebalancePolicy {
            max_imbalance: 1.25,
            min_samples: 32,
        };
        let (plan, report) = r.pipe.rebalance(&policy, &[]).expect("skew triggers");
        assert!(plan.imbalance_before > 3.0);
        assert!(plan.imbalance_after <= 2.0, "{}", plan.imbalance_after);
        assert_eq!(report.moved_buckets, plan.moved.len());
        // The elephant's bucket stays put; the mice moved off shard 0.
        assert_eq!(r.pipe.bucket_map().shard_of_bucket(bucket_of(0)), 0);
        assert!(plan.moved.iter().all(|b| [4usize, 8, 12].contains(b)));

        // Second window with the same mix is now spread over shards.
        let mut batch = PacketBatch::new();
        for i in 0..64u64 {
            let mut p =
                netkit_packet::packet::PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 9, 9).build();
            let bucket = match i % 8 {
                0..=3 => 0u64,
                4 | 5 => 4,
                6 => 8,
                _ => 12,
            };
            p.meta.rss_hash = Some(bucket);
            batch.push(p);
        }
        r.pipe.dispatch(batch);
        r.pipe.flush();
        let hot = r.pipe.shard_stats(0).packets - 64;
        assert_eq!(hot, 32, "shard 0 now carries only the elephant");
        let elsewhere: u64 = (1..workers).map(|s| r.pipe.shard_stats(s).packets).sum();
        assert_eq!(elsewhere, 32, "mice ran elsewhere");
        // A balanced window does not trigger again.
        assert!(r.pipe.rebalance(&policy, &[]).is_none());
        r.pipe.shutdown();
    }

    #[test]
    fn small_windows_accumulate_across_rebalance_polls() {
        // Regression: polling rebalance() faster than min_samples
        // worth of traffic arrives must not throw the evidence away —
        // a low-rate but fully-skewed workload still triggers once
        // enough has accumulated.
        let r = rig("slow-skew", 4);
        let policy = RebalancePolicy {
            max_imbalance: 1.25,
            min_samples: 64,
        };
        for _ in 0..4 {
            // 24 packets per poll, all on shard 0's buckets.
            let mut batch = PacketBatch::new();
            for i in 0..24u64 {
                let mut p =
                    netkit_packet::packet::PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 9, 9)
                        .build();
                p.meta.rss_hash = Some(if i % 2 == 0 { 0 } else { 4 + 4 * (i % 3) });
                batch.push(p);
            }
            r.pipe.dispatch(batch);
            r.pipe.flush();
            if r.pipe.rebalance(&policy, &[]).is_some() {
                break;
            }
        }
        // 24 < 64 on the first two polls; by the third, 72 packets of
        // evidence have accumulated and the skew must have triggered.
        assert_eq!(r.pipe.migrations(), 1, "accumulated window triggered");
        r.pipe.shutdown();
    }

    /// Stamps `n` packets onto the given buckets, round-robin.
    fn stamped(buckets: &[u64], n: usize) -> PacketBatch {
        let mut batch = PacketBatch::new();
        for i in 0..n {
            let mut p =
                netkit_packet::packet::PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 9, 9).build();
            p.meta.rss_hash = Some(buckets[i % buckets.len()]);
            batch.push(p);
        }
        batch
    }

    #[test]
    fn declined_plan_windows_retain_their_evidence() {
        // Regression (drain-before-plan): rebalance() used to drain
        // the window *before* asking the policy, so a judged-but-
        // declined window was discarded. The evidence must survive a
        // declined poll: the same packet skew that cannot trigger the
        // unweighted policy still converges later, once queueing
        // pressure tips the weighted decision — which only works if
        // declined windows are retained.
        let r = rig_with("retain", ShardSpec::new(2).with_ring_capacity(8));
        let policy = RebalancePolicy {
            max_imbalance: 1.25,
            min_samples: 64,
        };
        // A sustained 1.2x skew: shard 0 carries 60 of every 100
        // packets (buckets 0 and 2), shard 1 carries 40 (bucket 1).
        let skew: Vec<u64> = std::iter::repeat_n([0u64, 2, 1, 0, 1, 2, 0, 1, 0, 1], 10)
            .flatten()
            .collect();
        r.pipe.dispatch(stamped(&skew, 100));
        r.pipe.flush();
        assert_eq!(r.pipe.bucket_loads().iter().sum::<u64>(), 100);

        // Judged and declined (1.2 < 1.25) — but NOT discarded.
        assert!(r.pipe.rebalance(&policy, &[]).is_none());
        assert_eq!(
            r.pipe.bucket_loads().iter().sum::<u64>(),
            100,
            "a declined window is evidence, not waste"
        );

        // The retained window converges under the weighted policy as
        // soon as the hot shard's ring shows pressure: barely any new
        // packet evidence is needed.
        let weighted = WeightedRebalancePolicy {
            base: policy,
            pressure_weight: 1.0,
            decay: 0.5,
        };
        // Pile work onto shard 0's ring inside a quiesce (workers
        // parked, nothing retires) so its high-water mark rides 6/8 of
        // the ring capacity — deterministic queueing pressure.
        r.pipe.quiesce(|| {
            for _ in 0..6 {
                r.pipe.submit(0, stamped(&[0], 1)).unwrap();
            }
        });
        r.pipe.flush();
        let loads = r.pipe.shard_loads();
        assert!(loads[0].ring_high_water >= 6, "{loads:?}");
        let (plan, _) = r
            .pipe
            .rebalance_weighted(&weighted, &[])
            .expect("retained evidence + pressure must converge");
        assert_eq!(plan.moved, vec![2], "colocated bucket leaves shard 0");
        assert_eq!(r.pipe.migrations(), 1);
        r.pipe.shutdown();
    }

    #[test]
    fn rebalance_gates_plans_and_retires_one_snapshot() {
        // Regression (TOCTOU): the min_samples gate used to read
        // total() and then separately drain() — the judged window
        // could differ from the gated one. Now one snapshot serves
        // gate, plan, and retire: after a triggered rebalance the
        // meter holds exactly what arrived after the snapshot (here:
        // nothing), and a declined poll leaves it bit-identical.
        let r = rig("snapshot", 4);
        let policy = RebalancePolicy {
            max_imbalance: 1.25,
            min_samples: 32,
        };
        r.pipe.dispatch(stamped(&[0, 4, 8, 12], 64)); // all -> shard 0
        r.pipe.flush();
        let before = r.pipe.bucket_loads();
        let (plan, _) = r.pipe.rebalance(&policy, &[]).expect("skew triggers");
        assert!(!plan.moved.is_empty());
        assert_eq!(
            r.pipe.bucket_loads().iter().sum::<u64>(),
            0,
            "the judged snapshot {before:?} is retired exactly"
        );
        r.pipe.shutdown();
    }

    #[test]
    fn control_turn_closes_the_loop_on_the_pipeline() {
        let r = rig("turn", 4);
        let mut ctl = RebalanceController::new(
            WeightedRebalancePolicy {
                base: RebalancePolicy {
                    max_imbalance: 1.25,
                    min_samples: 64,
                },
                pressure_weight: 1.0,
                decay: 0.5,
            },
            0,
        );
        // Turn 1: gathering (window below min_samples) — untouched.
        r.pipe.dispatch(stamped(&[0, 4, 8, 12], 24));
        r.pipe.flush();
        assert!(r.pipe.control_turn(&mut ctl, &[]).is_none());
        assert_eq!(r.pipe.bucket_loads().iter().sum::<u64>(), 24);
        // Turn 2: enough evidence accumulated across turns — migrate,
        // and the judged window retires.
        r.pipe.dispatch(stamped(&[0, 4, 8, 12], 48));
        r.pipe.flush();
        let (plan, report) = r
            .pipe
            .control_turn(&mut ctl, &[])
            .expect("colocation must migrate");
        assert_eq!(report.moved_buckets, plan.moved.len());
        assert_eq!(r.pipe.bucket_loads().iter().sum::<u64>(), 0);
        assert_eq!(r.pipe.migrations(), 1);
        // Turn 3: balanced traffic under the new table — Hold decays
        // the judged window instead of draining it.
        r.pipe.dispatch(stamped(&[0, 4, 8, 12], 128));
        r.pipe.flush();
        assert!(r.pipe.control_turn(&mut ctl, &[]).is_none());
        let retained = r.pipe.bucket_loads().iter().sum::<u64>();
        assert_eq!(retained, 64, "hold keeps alpha=0.5 of the window");
        assert_eq!(ctl.ticks(), 3);
        r.pipe.shutdown();
    }

    /// `n` stamped packets per bucket, every packet `payload` bytes of
    /// payload — uniform counts, controllable byte mass.
    fn stamped_sized(buckets: &[u64], n: usize, payload: usize) -> PacketBatch {
        let mut batch = PacketBatch::new();
        for i in 0..n * buckets.len() {
            let mut p = netkit_packet::packet::PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 9, 9)
                .payload_len(payload)
                .build();
            p.meta.rss_hash = Some(buckets[i % buckets.len()]);
            batch.push(p);
        }
        batch
    }

    #[test]
    fn sketch_evidence_migrates_byte_elephants_the_packet_window_hides() {
        let r = rig("elephants", 2);
        let mut ctl = RebalanceController::new(
            WeightedRebalancePolicy {
                base: RebalancePolicy {
                    max_imbalance: 1.25,
                    min_samples: 32,
                },
                pressure_weight: 0.0,
                decay: 0.5,
            },
            0,
        )
        .with_heavy_hitters(1.0);
        // Uniform packet counts: 8 packets in each of buckets 0..8
        // (identity(2): evens -> shard 0, odds -> shard 1). But every
        // even-bucket flow is an elephant (1200-byte payloads) while
        // the odd-bucket mice send empty datagrams — shard 0 carries
        // almost all the bytes behind a perfectly balanced packet
        // window.
        r.pipe.dispatch(stamped_sized(&[0, 2, 4, 6], 8, 1200));
        r.pipe.dispatch(stamped_sized(&[1, 3, 5, 7], 8, 0));
        r.pipe.flush();
        let heavy = r.pipe.heavy_hitters();
        assert!(!heavy.is_empty(), "workers must feed the sketches");
        let elephant_bytes: u64 = heavy
            .iter()
            .filter(|h| h.hash % 2 == 0)
            .map(|h| h.weight)
            .sum();
        let mouse_bytes: u64 = heavy
            .iter()
            .filter(|h| h.hash % 2 == 1)
            .map(|h| h.weight)
            .sum();
        assert!(elephant_bytes > 10 * mouse_bytes.max(1), "byte skew");

        // A packet-only controller holds forever on this window...
        let mut packets_only = RebalanceController::new(
            WeightedRebalancePolicy {
                base: RebalancePolicy {
                    max_imbalance: 1.25,
                    min_samples: 32,
                },
                pressure_weight: 0.0,
                decay: 0.5,
            },
            0,
        );
        assert!(r.pipe.control_turn(&mut packets_only, &[]).is_none());
        assert_eq!(packets_only.holds(), 1, "judged and declined");
        // (the hold decayed the windows; re-feed to full strength)
        r.pipe.dispatch(stamped_sized(&[0, 2, 4, 6], 8, 1200));
        r.pipe.dispatch(stamped_sized(&[1, 3, 5, 7], 8, 0));
        r.pipe.flush();

        // ...while the sketch-informed controller migrates, and the
        // judged sketch windows retire with the packet window.
        let (plan, _) = r
            .pipe
            .control_turn(&mut ctl, &[])
            .expect("byte evidence must migrate");
        assert!(plan.imbalance_after < plan.imbalance_before);
        assert_eq!(r.pipe.bucket_loads().iter().sum::<u64>(), 0);
        let residual: u64 = (0..r.pipe.workers())
            .map(|s| r.pipe.flow_sketch(s).total_bytes())
            .sum();
        assert_eq!(residual, 0, "judged sketch windows retire exactly");
        r.pipe.shutdown();
    }

    #[test]
    #[should_panic(expected = "bucket map targets")]
    fn install_rejects_mismatched_shard_count() {
        let r = rig("mismatch", 2);
        r.pipe
            .install_bucket_map(netkit_packet::steer::BucketMap::identity(4), &[]);
    }

    #[test]
    fn submit_targets_one_shard() {
        let r = rig("direct", 2);
        r.pipe.submit(0, burst(4, 1)).unwrap();
        r.pipe.flush();
        assert_eq!(r.pipe.shard_stats(0).packets, 4);
        assert_eq!(r.pipe.shard_stats(1).packets, 0);
        assert!(r.pipe.submit(5, PacketBatch::new()).is_err());
        r.pipe.shutdown();
    }

    #[test]
    fn dispatch_owned_agrees_with_shared_dispatch() {
        let shared = rig("agree-shared", 4);
        let owned = rig("agree-owned", 4);
        shared.pipe.dispatch(burst(16, 8));
        owned.pipe.dispatch_owned(burst(16, 8));
        shared.pipe.flush();
        owned.pipe.flush();
        assert_eq!(shared.pipe.stats(), owned.pipe.stats());
        for shard in 0..4 {
            assert_eq!(
                shared.pipe.shard_stats(shard),
                owned.pipe.shard_stats(shard),
                "per-shard steering identical on shard {shard}"
            );
        }
        shared.pipe.shutdown();
        owned.pipe.shutdown();
    }

    #[test]
    fn install_counts_full_ring_rejections_and_recycles_containers() {
        use netkit_kernel::nic::{Nic, PortId};
        use netkit_packet::flow::FlowKey;

        // Satellite regression: frames that bounce off a full ring
        // during the install re-steer must land in the shard's
        // `dropped` stat, and every pooled container — including the
        // shared parents of rejected ranges — must come back.
        let workers = 2usize;
        let r = rig_with(
            "install-full",
            ShardSpec::new(workers).with_ring_capacity(1),
        );
        let nic = Nic::with_queues(PortId(0), workers, 64, 64, 1_000_000);
        let mut per_queue = vec![0usize; workers];
        let mut map = r.pipe.bucket_map();
        for i in 0..16u16 {
            let wire = PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 2000 + i, 80).build();
            let key = FlowKey::from_packet(&wire).unwrap();
            per_queue[key.shard_for(workers)] += 1;
            map.set(key.bucket(), 1); // everything migrates to shard 1
            assert!(nic.inject_rx_frame(wire.data()));
        }
        assert!(
            per_queue.iter().all(|&n| n > 0),
            "flows span both queues: {per_queue:?}"
        );
        let before = r.pipe.batch_pool().stats();
        let report = r.pipe.install_bucket_map(map, &[&nic]);
        // Queue 0 drains first and its shard-1 range fills the 1-slot
        // ring (workers are parked); queue 1's range then bounces.
        assert_eq!(report.resubmitted, per_queue[0]);
        assert_eq!(report.dropped, per_queue[1]);
        r.pipe.flush();
        assert_eq!(r.pipe.shard_stats(1).packets, per_queue[0] as u64);
        assert_eq!(r.pipe.shard_stats(1).dropped, per_queue[1] as u64);
        // Both drained parents (accepted and rejected) plus the empty
        // end-of-queue takes recycled; the freelist never overflowed.
        let after = r.pipe.batch_pool().stats();
        assert!(
            after.recycled >= before.recycled + 4,
            "{before:?} -> {after:?}"
        );
        assert_eq!(after.discarded, before.discarded);
        r.pipe.shutdown();
    }

    /// An ingress that kills its worker on the first packet.
    struct Exploder;

    impl crate::api::IPacketPush for Exploder {
        fn push(&self, _pkt: netkit_packet::packet::Packet) -> crate::api::PushResult {
            panic!("injected fault");
        }
    }

    #[test]
    fn pump_nic_fails_fast_on_a_dead_worker_and_counts_the_loss() {
        use netkit_kernel::nic::{Nic, PortId};

        // Satellite regression: once the worker is marked dead,
        // pump_nic must return immediately (no ring-timeout block),
        // count the drained frames as dropped, and recycle its pooled
        // container.
        let rm = Arc::new(ResourceManager::new());
        let pipe = ShardedPipeline::build("dead-pump", ShardSpec::single(), rm, |_| {
            let rt = Runtime::new();
            register_packet_interfaces(&rt);
            let capsule = Capsule::new("shard", &rt);
            Ok(ShardGraph::new(Arc::clone(&capsule), Arc::new(Exploder)))
        })
        .unwrap();
        pipe.submit(0, burst(1, 1)).unwrap(); // poisons the worker
        while pipe.pool.worker_alive(0) == Some(true) {
            std::thread::yield_now();
        }
        let nic = Nic::with_queues(PortId(0), 1, 64, 64, 1_000_000);
        for i in 0..4u16 {
            let wire = PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 2000 + i, 80).build();
            assert!(nic.inject_rx_frame(wire.data()));
        }
        let before = pipe.batch_pool().stats();
        assert_eq!(pipe.pump_nic(&nic, 0, 64), 0, "dead worker: fast fail");
        assert_eq!(pipe.shard_stats(0).dropped, 4, "the loss is counted");
        let after = pipe.batch_pool().stats();
        assert_eq!(after.recycled, before.recycled + 1, "container returns");
        pipe.flush(); // does not wedge on the dead shard
        assert_eq!(
            pipe.shard_drop_stats(0).dead_worker,
            4,
            "fast-fail loss files under the dead-worker cause"
        );
        assert_eq!(pipe.drop_stats().total(), pipe.stats().dropped);
        pipe.shutdown();
    }

    /// Factory whose first build of `poison_shard` is an [`Exploder`];
    /// every rebuild is a healthy Counter→Discard replica whose sink
    /// is pushed onto `sinks`.
    fn poisoned_factory(
        poison_shard: usize,
        sinks: Arc<parking_lot::Mutex<Vec<Arc<Discard>>>>,
    ) -> impl FnMut(usize) -> Result<ShardGraph> + Send + 'static {
        let poisoned = Arc::new(std::sync::atomic::AtomicBool::new(false));
        move |shard| {
            let rt = Runtime::new();
            register_packet_interfaces(&rt);
            let capsule = Capsule::new("shard", &rt);
            if shard == poison_shard && !poisoned.swap(true, std::sync::atomic::Ordering::Relaxed) {
                return Ok(ShardGraph::new(Arc::clone(&capsule), Arc::new(Exploder)));
            }
            let counter = Counter::new();
            let sink = Discard::new();
            let cid = capsule.adopt(counter.clone())?;
            let sid = capsule.adopt(sink.clone())?;
            capsule.bind_simple(cid, "out", sid, IPACKET_PUSH)?;
            sinks.lock().push(sink);
            Ok(ShardGraph::new(Arc::clone(&capsule), counter).with_components(vec![cid, sid]))
        }
    }

    #[test]
    fn respawn_rebuilds_the_replica_and_accounts_stranded_packets() {
        let rm = Arc::new(ResourceManager::new());
        let sinks = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let pipe = ShardedPipeline::build(
            "respawn",
            ShardSpec::single(),
            Arc::clone(&rm),
            poisoned_factory(0, Arc::clone(&sinks)),
        )
        .unwrap();
        // Park the worker and pile the poison plus three more batches
        // into its ring; on release the first packet kills the worker
        // mid-job, stranding the three untouched batches (12 packets).
        pipe.quiesce(|| {
            pipe.submit(0, burst(1, 1)).unwrap();
            for _ in 0..3 {
                pipe.submit(0, burst(2, 2)).unwrap();
            }
        });
        while pipe.worker_alive(0) == Some(true) {
            std::thread::yield_now();
        }
        let stranded = pipe
            .respawn_shard(0)
            .unwrap()
            .expect("a dead worker respawns");
        assert_eq!(stranded, 12, "every stranded ring packet is counted");
        assert_eq!(pipe.shard_drop_stats(0).dead_worker, 12);
        assert_eq!(pipe.recoveries(), 1);
        assert_eq!(pipe.worker_alive(0), Some(true));
        // Respawning a live worker is refused, not destructive.
        assert_eq!(pipe.respawn_shard(0).unwrap(), None);
        assert_eq!(pipe.recoveries(), 1);
        // The fresh replica delivers; the recovery billed FAULTS.
        pipe.dispatch(burst(4, 4));
        pipe.flush();
        let delivered: u64 = sinks.lock().iter().map(|s| s.count()).sum();
        assert_eq!(delivered, 16, "traffic flows through the new graph");
        let info = rm.task_info(pipe.task()).unwrap();
        assert_eq!(info.usage[classes::FAULTS], 1);
        assert_eq!(
            info.attached.len(),
            2,
            "dead replica's components detached, fresh ones attached"
        );
        assert_eq!(pipe.drop_stats().total(), pipe.stats().dropped);
        pipe.shutdown();
    }

    #[test]
    fn health_turn_quarantines_respawns_and_restores_steering() {
        use netkit_kernel::nic::{Nic, PortId};
        use netkit_packet::flow::FlowKey;

        let workers = 2usize;
        let rm = Arc::new(ResourceManager::new());
        let sinks = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let pipe = ShardedPipeline::build(
            "health",
            ShardSpec::new(workers),
            Arc::clone(&rm),
            poisoned_factory(1, Arc::clone(&sinks)),
        )
        .unwrap();
        // Kill shard 1 with one poisoned packet.
        pipe.submit(1, burst(1, 1)).unwrap();
        while pipe.worker_alive(1) == Some(true) {
            std::thread::yield_now();
        }
        // Park frames for the dead shard in its NIC queue: under the
        // identity table they have nowhere to go.
        let nic = Nic::with_queues(PortId(0), workers, 64, 64, 1_000_000);
        let mut parked = 0u64;
        for i in 0..32u16 {
            let wire = PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 2000 + i, 80).build();
            let key = FlowKey::from_packet(&wire).unwrap();
            if key.shard_for(workers) == 1 {
                assert!(nic.inject_rx_frame(wire.data()));
                parked += 1;
            }
        }
        assert!(parked > 0, "some flows must steer to the dead shard");
        let saved = pipe.bucket_map();
        let migrations_before = pipe.migrations();

        let recovery = pipe
            .health_turn(&[&nic])
            .unwrap()
            .expect("a dead shard is detected");
        assert_eq!(recovery.respawned, vec![1]);
        assert_eq!(recovery.stranded, 0, "the poison job was consumed");
        assert_eq!(
            recovery.quarantined_buckets,
            RSS_BUCKETS / workers,
            "every bucket of the dead shard re-steers"
        );
        assert_eq!(
            recovery.resteered, parked,
            "queued frames re-steer to live shards"
        );
        assert_eq!(recovery.shed, 0);
        // Steering is restored, the quarantine never counted as a
        // migration, and the parked frames landed on the live shard.
        assert_eq!(pipe.bucket_map(), saved);
        assert_eq!(nic.indirection(), saved, "NIC mirrors the restore");
        assert_eq!(pipe.migrations(), migrations_before);
        pipe.flush();
        assert_eq!(pipe.shard_stats(0).packets, parked);
        // The respawned shard delivers again.
        assert_eq!(pipe.worker_alive(1), Some(true));
        pipe.submit(1, burst(2, 2)).unwrap();
        pipe.flush();
        let delivered: u64 = sinks.lock().iter().map(|s| s.count()).sum();
        assert_eq!(delivered, parked + 4);
        // Quarantine + respawn + restore each billed FAULTS.
        let info = rm.task_info(pipe.task()).unwrap();
        assert_eq!(info.usage[classes::FAULTS], 3);
        // A healthy pipeline's health turn is one probe and out.
        assert_eq!(pipe.health_turn(&[]).unwrap(), None);
        assert_eq!(pipe.drop_stats().total(), pipe.stats().dropped);
        pipe.shutdown();
    }

    /// An ingress that rejects even packets as rate-limited (the
    /// guard's verdict) and odd packets as queue-full (graph policy).
    struct Alternator(AtomicU64);

    impl crate::api::IPacketPush for Alternator {
        fn push(&self, _pkt: netkit_packet::packet::Packet) -> crate::api::PushResult {
            if self.0.fetch_add(1, Ordering::Relaxed).is_multiple_of(2) {
                Err(crate::api::PushError::RateLimited)
            } else {
                Err(crate::api::PushError::QueueFull)
            }
        }
    }

    #[test]
    fn workers_split_graph_verdicts_into_guard_and_graph_causes() {
        let rm = Arc::new(ResourceManager::new());
        let pipe = ShardedPipeline::build("causes", ShardSpec::single(), rm, |_| {
            let rt = Runtime::new();
            register_packet_interfaces(&rt);
            let capsule = Capsule::new("shard", &rt);
            Ok(ShardGraph::new(
                Arc::clone(&capsule),
                Arc::new(Alternator(AtomicU64::new(0))),
            ))
        })
        .unwrap();
        pipe.submit(0, burst(4, 4)).unwrap();
        pipe.flush();
        let causes = pipe.shard_drop_stats(0);
        assert_eq!(causes.guard, 8, "rate-limit verdicts meter separately");
        assert_eq!(causes.graph, 8, "other graph verdicts stay graph policy");
        assert_eq!(causes.total(), pipe.stats().dropped, "the sum invariant");
        assert_eq!(pipe.stats().accepted, 0);
        pipe.shutdown();
    }
}
