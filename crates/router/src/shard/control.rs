//! The autonomous reflective control loop: inspect → decide → adapt
//! with **no external caller**.
//!
//! PR 4's rebalancing subsystem shipped the three arms of the paper's
//! reflective loop — meters to *inspect*, a policy to *decide*, a
//! quiesced migration to *adapt* — but left the loop open: something
//! outside the system had to call `ShardedPipeline::rebalance`. This
//! module closes it. Two layers, deliberately separated:
//!
//! * [`RebalanceController`] — the **deterministic decision core**: a
//!   pure state machine over (observation window, shard pressure,
//!   current table) that owns the control-loop *policy* concerns the
//!   rebalance policy itself does not: evidence retention across
//!   declined decisions (windows are peeked and decayed, never
//!   drained — see `BucketLoad`), and a hard cap on migration rate
//!   (`cooldown_ticks` between applied plans, so a pathological
//!   workload cannot thrash the dataplane through quiesce epochs). It
//!   has no threads and no clock — the deterministic simulator drives
//!   the *same* controller from its event loop (see
//!   `netkit_sim::shard::ShardedBehaviour`), which is what makes
//!   autonomous-rebalancing experiments reproducible.
//! * [`ControlLoop`] — the **threaded supervisor**: a
//!   `netkit_kernel::task::PeriodicTask` ticking
//!   [`ShardedPipeline::control_turn`] against a live pipeline, with
//!   tick-interval backoff after no-op turns (an idle control loop
//!   goes quiet) and instant re-arming on a migration. The loop is a
//!   first-class citizen of the resources meta-model: it runs as its
//!   own task on the pipeline's `ResourceManager`, consuming
//!   `classes::TICKS` per turn, while each applied migration counts
//!   into the pipeline task's `classes::REBALANCES` as before —
//!   introspection sees both how often the system looks and how often
//!   it acts.
//!
//! The decision core, runnable (this is the whole contract —
//! `Gathering` accumulates, `Hold` decays, `Migrate` commits):
//!
//! ```
//! use netkit_packet::steer::{BucketMap, RSS_BUCKETS};
//! use netkit_router::shard::control::{ControlDecision, RebalanceController};
//! use netkit_router::shard::{RebalancePolicy, WeightedRebalancePolicy};
//!
//! let policy = WeightedRebalancePolicy {
//!     base: RebalancePolicy { max_imbalance: 1.25, min_samples: 64 },
//!     pressure_weight: 0.0,
//!     decay: 0.5,
//! };
//! let mut ctl = RebalanceController::new(policy, 0);
//! let map = BucketMap::identity(2);
//!
//! // Not enough evidence yet: the window keeps accumulating.
//! let mut window = vec![0u64; RSS_BUCKETS];
//! window[0] = 10;
//! assert!(matches!(ctl.decide(&window, &[], 1024, &map), ControlDecision::Gathering));
//!
//! // A judged window with everything colocated on shard 0 migrates.
//! window[0] = 90;
//! window[2] = 60; // bucket 2 -> shard 0 under identity(2)
//! match ctl.decide(&window, &[], 1024, &map) {
//!     ControlDecision::Migrate(plan) => {
//!         assert_eq!(plan.moved, vec![2]);
//!         assert_eq!(plan.map.shard_of_bucket(2), 1);
//!     }
//!     other => panic!("colocation must migrate, got {other:?}"),
//! }
//! assert_eq!(ctl.migrations(), 1);
//! ```

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use netkit_kernel::nic::Nic;
use netkit_kernel::task::{PeriodicSpec, PeriodicTask, TickOutcome};
use netkit_packet::steer::BucketMap;
use opencom::error::Result;
use opencom::ident::TaskId;
use opencom::meta::resources::{classes, ResourceManager};
use parking_lot::Mutex;

use netkit_packet::sketch::HeavyHitter;

use super::decision::{DecisionCore, Evidence, WeightedCore};
use super::rebalance::{RebalancePlan, WeightedRebalancePolicy};
use super::{ShardLoad, ShardedPipeline};

/// What one control turn concluded about the observation window.
#[derive(Clone, Debug)]
pub enum ControlDecision {
    /// Below `min_samples`: no judgment was made. The caller must
    /// leave the window untouched so evidence keeps accumulating.
    Gathering,
    /// The window was judged and declined (balanced, no improving
    /// plan, or the migration-rate cap is in force). The caller should
    /// age the window with the policy's `decay` — retained, not
    /// discarded.
    Hold,
    /// Apply this plan, then retire the judged window.
    Migrate(RebalancePlan),
}

/// The deterministic decision core of the autonomous control loop. See
/// the module docs for where it sits and a runnable example.
pub struct RebalanceController {
    core: Box<dyn DecisionCore>,
    /// Minimum number of ticks between two applied migrations — the
    /// hard cap on migration rate (each migration costs a quiesce
    /// epoch; 0 = no cap).
    cooldown_ticks: u64,
    heavy_blend: f64,
    ticks: u64,
    migrations: u64,
    holds: u64,
    last_migration_tick: Option<u64>,
    noop_streak: u64,
}

impl RebalanceController {
    /// A controller judging with the default [`WeightedCore`] over
    /// `policy`, applying at most one migration per
    /// `cooldown_ticks + 1` ticks.
    pub fn new(policy: WeightedRebalancePolicy, cooldown_ticks: u64) -> Self {
        Self::with_core(Box::new(WeightedCore::new(policy)), cooldown_ticks)
    }

    /// A controller judging with an arbitrary plug-in
    /// [`DecisionCore`] — how descriptions select hysteresis/EWMA (or
    /// external) judgments by name; see
    /// [`core_by_name`](super::decision::core_by_name).
    pub fn with_core(core: Box<dyn DecisionCore>, cooldown_ticks: u64) -> Self {
        Self {
            core,
            cooldown_ticks,
            heavy_blend: 0.0,
            ticks: 0,
            migrations: 0,
            holds: 0,
            last_migration_tick: None,
            noop_streak: 0,
        }
    }

    /// Folds sketch-based heavy-hitter byte evidence into every
    /// judgment that receives it (see
    /// [`decide_with_evidence`](Self::decide_with_evidence) and
    /// `HeavyHitterPolicy`). `blend` is clamped to
    /// `[0, 1]`; `0.0` (the default) ignores the evidence entirely.
    pub fn with_heavy_hitters(mut self, blend: f64) -> Self {
        self.heavy_blend = blend.clamp(0.0, 1.0);
        self
    }

    /// The registry name of the judging core (`"weighted"` unless a
    /// plug-in was installed via [`with_core`](Self::with_core)).
    pub fn core_name(&self) -> &'static str {
        self.core.name()
    }

    /// The core's judged-window retention factor (the caller needs it
    /// to apply [`ControlDecision::Hold`]).
    pub fn decay(&self) -> f64 {
        self.core.decay()
    }

    /// The core's gathering gate: minimum raw packets in a window
    /// before any judgment is made.
    pub fn min_samples(&self) -> u64 {
        self.core.min_samples()
    }

    /// The heavy-hitter byte-evidence blend factor in `[0, 1]`.
    pub fn heavy_blend(&self) -> f64 {
        self.heavy_blend
    }

    /// One inspect → decide turn. `window` is a **peeked** (not
    /// drained) per-bucket snapshot; `loads` the per-shard pressure
    /// meters (empty ⇒ no pressure weighting, as the deterministic sim
    /// passes); `current` the live table. The caller owns the adapt
    /// arm: apply the returned decision to its steering surface (see
    /// [`ControlDecision`] for the window obligation each variant
    /// carries — `ShardedPipeline::control_turn` is the reference
    /// implementation).
    pub fn decide(
        &mut self,
        window: &[u64],
        loads: &[ShardLoad],
        ring_capacity: usize,
        current: &BucketMap,
    ) -> ControlDecision {
        self.decide_with_evidence(window, loads, &[], ring_capacity, current)
    }

    /// [`decide`](Self::decide), additionally weighing `heavy` —
    /// merged per-flow byte evidence from the dataplane's flow
    /// sketches (see `netkit_packet::sketch::SpaceSaving::merge`).
    /// With a zero [`heavy_blend`](Self::heavy_blend) or no evidence
    /// this is exactly `decide`; otherwise the judged window is the
    /// mass-normalised packet/byte blend of
    /// `HeavyHitterPolicy`, which catches **byte**
    /// elephants that uniform packet counts provably hide. The
    /// gathering gate and cooldown cap always judge raw packets.
    pub fn decide_with_evidence(
        &mut self,
        window: &[u64],
        loads: &[ShardLoad],
        heavy: &[HeavyHitter],
        ring_capacity: usize,
        current: &BucketMap,
    ) -> ControlDecision {
        self.ticks += 1;
        let raw_total: u64 = window.iter().sum();
        if raw_total < self.core.min_samples().max(1) {
            self.noop_streak += 1;
            return ControlDecision::Gathering;
        }
        if let Some(last) = self.last_migration_tick {
            if self.ticks.saturating_sub(last) <= self.cooldown_ticks {
                // Rate cap: judged but deliberately not acted on. The
                // window still decays — the cap exists to *shed*
                // pressure to re-migrate, not to queue it up.
                self.holds += 1;
                self.noop_streak += 1;
                return ControlDecision::Hold;
            }
        }
        let plan = self.core.plan(&Evidence {
            window,
            loads,
            heavy,
            heavy_blend: self.heavy_blend,
            ring_capacity,
            current,
        });
        match plan {
            Some(plan) => {
                self.migrations += 1;
                self.last_migration_tick = Some(self.ticks);
                self.noop_streak = 0;
                ControlDecision::Migrate(plan)
            }
            None => {
                self.holds += 1;
                self.noop_streak += 1;
                ControlDecision::Hold
            }
        }
    }

    /// Turns taken so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Migrations decided (== plans returned via
    /// [`ControlDecision::Migrate`]).
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Judged-but-declined turns (balanced windows, no-improvement
    /// plans, and rate-capped turns).
    pub fn holds(&self) -> u64 {
        self.holds
    }

    /// Consecutive turns since the last migration decision. Pure
    /// introspection: the threaded [`ControlLoop`] derives its backoff
    /// from per-tick outcomes (`PeriodicTask`), not from this counter;
    /// an embedder driving the controller on its own cadence (the sim,
    /// a custom executor task) can read it to implement the same
    /// go-quiet-while-idle behaviour.
    pub fn noop_streak(&self) -> u64 {
        self.noop_streak
    }
}

impl fmt::Debug for RebalanceController {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "RebalanceController({} core, {} ticks, {} migrations, {} holds)",
            self.core.name(),
            self.ticks,
            self.migrations,
            self.holds
        )
    }
}

/// Configuration of the threaded [`ControlLoop`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ControlConfig {
    /// The weighted decision policy (thresholds, pressure weighting,
    /// window decay).
    pub policy: WeightedRebalancePolicy,
    /// Base tick interval while the loop is making progress.
    pub tick: Duration,
    /// Cap the backed-off interval saturates at after no-op turns.
    pub max_tick: Duration,
    /// Interval multiplier per no-op turn (≥ 1.0; see
    /// `netkit_kernel::task::PeriodicSpec`).
    pub backoff: f64,
    /// Hard cap on migration rate: minimum ticks between two applied
    /// migrations.
    pub cooldown_ticks: u64,
    /// Heavy-hitter byte-evidence blend in `[0, 1]` (see
    /// [`RebalanceController::with_heavy_hitters`]). `0.0` — the
    /// default — judges on packet counts alone; `> 0.0` folds the
    /// pipeline's merged flow-sketch top-k into every judgment.
    pub heavy_blend: f64,
}

impl Default for ControlConfig {
    fn default() -> Self {
        Self {
            policy: WeightedRebalancePolicy::default(),
            tick: Duration::from_millis(10),
            max_tick: Duration::from_millis(200),
            backoff: 2.0,
            cooldown_ticks: 4,
            heavy_blend: 0.0,
        }
    }
}

/// Counters of a (running or stopped) [`ControlLoop`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ControlStats {
    /// Loop ticks fired.
    pub ticks: u64,
    /// Migrations applied by the loop.
    pub migrations: u64,
    /// Judged-but-declined turns.
    pub holds: u64,
    /// Tick panics survived (supervision).
    pub panics: u64,
    /// Fault recoveries driven by the loop's health turn: dead-shard
    /// episodes it quarantined, respawned, and restored (see
    /// [`ShardedPipeline::health_turn`]).
    pub recoveries: u64,
    /// The interval the next tick will wait (backoff state).
    pub current_interval: Duration,
}

/// The supervised background task that runs the reflective loop
/// against a live [`ShardedPipeline`] — spawn it and the dataplane
/// adapts to traffic shifts on its own. See the module docs.
///
/// The loop assumes it is the pipeline's **only** window consumer: do
/// not mix it with manual `rebalance()` polling on the same pipeline.
pub struct ControlLoop {
    task: PeriodicTask,
    controller: Arc<Mutex<RebalanceController>>,
    recoveries: Arc<AtomicU64>,
    rm: Arc<ResourceManager>,
    rm_task: TaskId,
}

impl ControlLoop {
    /// Spawns the loop as resources task `name` on `rm` (one
    /// `classes::TICKS` unit is consumed per turn; migrations count
    /// into the pipeline task's `classes::REBALANCES` as always).
    /// `nics` are the NIC mirrors every applied migration must cover —
    /// the same slice a manual `rebalance()` caller would pass.
    ///
    /// # Errors
    ///
    /// Propagates a duplicate task `name`.
    pub fn spawn(
        name: &str,
        pipe: Arc<ShardedPipeline>,
        nics: Vec<Arc<Nic>>,
        cfg: ControlConfig,
        rm: Arc<ResourceManager>,
    ) -> Result<Self> {
        let rm_task = rm.create_task(name)?;
        let controller = Arc::new(Mutex::new(
            RebalanceController::new(cfg.policy, cfg.cooldown_ticks)
                .with_heavy_hitters(cfg.heavy_blend),
        ));
        let tick_ctl = Arc::clone(&controller);
        let tick_rm = Arc::clone(&rm);
        let recoveries = Arc::new(AtomicU64::new(0));
        let tick_recoveries = Arc::clone(&recoveries);
        let spec = PeriodicSpec::every(cfg.tick).with_backoff(cfg.backoff, cfg.max_tick);
        let task = PeriodicTask::spawn(name, spec, move || {
            let _ = tick_rm.consume(rm_task, classes::TICKS, 1);
            let nic_refs: Vec<&Nic> = nics.iter().map(Arc::as_ref).collect();
            // Health before balance: a dead shard makes every load
            // judgment moot (its buckets drain nowhere), so the turn
            // first quarantines/respawns/restores, then rebalances.
            let healed = match pipe.health_turn(&nic_refs) {
                Ok(Some(recovery)) => {
                    if !recovery.respawned.is_empty() {
                        tick_recoveries.fetch_add(1, Ordering::Relaxed);
                    }
                    true
                }
                Ok(None) => false,
                // Factory failure: the shard stays dead, quarantine
                // re-steering keeps traffic flowing, and the next turn
                // retries. Count it as progress so backoff resets and
                // the retry comes soon.
                Err(_) => true,
            };
            let mut ctl = tick_ctl.lock();
            match pipe.control_turn(&mut ctl, &nic_refs) {
                Some(_) => TickOutcome::Progress,
                None if healed => TickOutcome::Progress,
                None => TickOutcome::Idle,
            }
        });
        Ok(Self {
            task,
            controller,
            recoveries,
            rm,
            rm_task,
        })
    }

    /// The loop's task in the resources meta-model.
    pub fn task(&self) -> TaskId {
        self.rm_task
    }

    /// Live counters (loop-tick side from the periodic task,
    /// decision side from the controller).
    pub fn stats(&self) -> ControlStats {
        let ctl = self.controller.lock();
        ControlStats {
            ticks: self.task.ticks(),
            migrations: ctl.migrations(),
            holds: ctl.holds(),
            panics: self.task.panics(),
            recoveries: self.recoveries.load(Ordering::Relaxed),
            current_interval: self.task.current_interval(),
        }
    }

    /// True until the loop has been stopped.
    pub fn is_running(&self) -> bool {
        self.task.is_running()
    }

    /// Stops the loop and returns the final counters: the ticking
    /// thread is joined **first** (no turn can land afterwards, so
    /// the returned stats are exact and every applied migration is
    /// included), then the counters are snapshot; the loop's
    /// resources task is released by `Drop`, after the join — a late
    /// tick can never consume against a released task.
    pub fn stop(mut self) -> ControlStats {
        self.task.halt();
        self.stats()
        // Drop runs here: the already-halted task joins as a no-op
        // and the rm task is released.
    }
}

impl Drop for ControlLoop {
    /// A dropped loop stops and unregisters cleanly even when
    /// [`Self::stop`] was never called (unwinds, error paths): join
    /// the ticking thread, then release the resources task — in that
    /// order, so no tick can fire against a released task and the
    /// loop's name becomes reusable.
    fn drop(&mut self) {
        self.task.halt();
        let _ = self.rm.release_task(self.rm_task);
    }
}

impl fmt::Debug for ControlLoop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stats = self.stats();
        write!(
            f,
            "ControlLoop({} ticks, {} migrations, next in {:?})",
            stats.ticks, stats.migrations, stats.current_interval
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::rebalance::RebalancePolicy;
    use netkit_packet::steer::RSS_BUCKETS;

    fn window(entries: &[(usize, u64)]) -> Vec<u64> {
        let mut w = vec![0u64; RSS_BUCKETS];
        for &(bucket, load) in entries {
            w[bucket] = load;
        }
        w
    }

    fn eager_policy() -> WeightedRebalancePolicy {
        WeightedRebalancePolicy {
            base: RebalancePolicy {
                max_imbalance: 1.25,
                min_samples: 64,
            },
            pressure_weight: 0.0,
            decay: 0.5,
        }
    }

    #[test]
    fn controller_gathers_until_min_samples() {
        let mut ctl = RebalanceController::new(eager_policy(), 0);
        let map = BucketMap::identity(2);
        let small = window(&[(0, 10), (2, 10)]);
        for _ in 0..3 {
            assert!(matches!(
                ctl.decide(&small, &[], 1024, &map),
                ControlDecision::Gathering
            ));
        }
        assert_eq!(ctl.ticks(), 3);
        assert_eq!(ctl.holds(), 0, "gathering is not a judgment");
        assert_eq!(ctl.noop_streak(), 3);
    }

    #[test]
    fn controller_holds_on_balanced_and_migrates_on_skew() {
        let mut ctl = RebalanceController::new(eager_policy(), 0);
        let map = BucketMap::identity(2);
        let balanced = window(&[(0, 50), (1, 50)]);
        assert!(matches!(
            ctl.decide(&balanced, &[], 1024, &map),
            ControlDecision::Hold
        ));
        assert_eq!(ctl.holds(), 1);
        let skewed = window(&[(0, 90), (2, 60), (1, 30)]);
        match ctl.decide(&skewed, &[], 1024, &map) {
            ControlDecision::Migrate(plan) => {
                assert!(plan.imbalance_after < plan.imbalance_before)
            }
            other => panic!("skew must migrate, got {other:?}"),
        }
        assert_eq!(ctl.migrations(), 1);
        assert_eq!(ctl.noop_streak(), 0, "a migration resets the streak");
    }

    #[test]
    fn byte_evidence_flips_a_hold_into_a_migration() {
        // Uniform packets over buckets 0..8: the packet-only judgment
        // is a permanent Hold. The same controller with a heavy-hitter
        // blend sees the bytes and migrates.
        let map = BucketMap::identity(2);
        let uniform = window(&[
            (0, 8),
            (1, 8),
            (2, 8),
            (3, 8),
            (4, 8),
            (5, 8),
            (6, 8),
            (7, 8),
        ]);
        let evidence: Vec<HeavyHitter> = (0..8)
            .map(|b| HeavyHitter {
                hash: b as u64,
                error: 0,
                weight: if b % 2 == 0 { 2_000 } else { 500 },
            })
            .collect();
        let mut packets_only = RebalanceController::new(eager_policy(), 0);
        assert!(matches!(
            packets_only.decide_with_evidence(&uniform, &[], &evidence, 1024, &map),
            ControlDecision::Hold
        ));
        let mut blended = RebalanceController::new(eager_policy(), 0).with_heavy_hitters(1.0);
        assert_eq!(blended.heavy_blend(), 1.0);
        match blended.decide_with_evidence(&uniform, &[], &evidence, 1024, &map) {
            ControlDecision::Migrate(plan) => {
                assert!(plan.imbalance_after < plan.imbalance_before)
            }
            other => panic!("byte evidence must migrate, got {other:?}"),
        }
        // And with no evidence at hand the blended controller judges
        // exactly like the packet-only one.
        assert!(matches!(
            blended.decide(&uniform, &[], 1024, &map),
            ControlDecision::Hold
        ));
    }

    #[test]
    fn cooldown_caps_the_migration_rate() {
        let mut ctl = RebalanceController::new(eager_policy(), 2);
        let map = BucketMap::identity(2);
        let skewed = window(&[(0, 90), (2, 60), (1, 30)]);
        assert!(matches!(
            ctl.decide(&skewed, &[], 1024, &map),
            ControlDecision::Migrate(_)
        ));
        // The same skew re-presented is rate-capped for 2 ticks...
        for _ in 0..2 {
            assert!(matches!(
                ctl.decide(&skewed, &[], 1024, &map),
                ControlDecision::Hold
            ));
        }
        // ...and judged again afterwards.
        assert!(matches!(
            ctl.decide(&skewed, &[], 1024, &map),
            ControlDecision::Migrate(_)
        ));
        assert_eq!(ctl.migrations(), 2);
        assert_eq!(ctl.holds(), 2);
    }
}
