//! Pluggable decision cores for the autonomous control loop.
//!
//! PR 5 hard-wired one judgment into
//! [`RebalanceController`](super::RebalanceController): the
//! pressure-weighted LPT policy (optionally blended with heavy-hitter
//! byte evidence). That policy is right for steady skew, but other
//! workloads want other judgments — a flapping elephant wants a
//! *hysteresis band* that demands persistent evidence before paying a
//! quiesce epoch, a diurnal ramp wants an *EWMA* that plans on the
//! trend rather than the last window. [`DecisionCore`] makes the
//! judgment a plug-in, the way executor schedulers plug into the
//! kernel: the controller keeps the loop mechanics it always owned
//! (the gathering gate, the migration-rate cap, window retention),
//! and delegates exactly the *plan* step to the core.
//!
//! Cores are selected **by name** from a pipeline description's
//! control section (see [`crate::desc`]): `"weighted"` (the PR 5
//! policy, the default), `"hysteresis"`, `"ewma"` — or any external
//! implementation handed to
//! [`RebalanceController::with_core`](super::RebalanceController::with_core).
//!
//! Every core must stay **deterministic**: same evidence sequence,
//! same plans. The deterministic simulator drives cores from its
//! event loop, and the differential tests replay them bit-for-bit.

use netkit_packet::sketch::HeavyHitter;
use netkit_packet::steer::{BucketMap, RSS_BUCKETS};

use super::rebalance::{RebalancePlan, RebalancePolicy, WeightedRebalancePolicy};
use super::ShardLoad;

/// One observation the control loop presents to a core: everything the
/// dataplane can tell it about the judged window.
pub struct Evidence<'a> {
    /// Peeked per-bucket packet window ([`RSS_BUCKETS`] entries).
    pub window: &'a [u64],
    /// Per-shard pressure meters (empty ⇒ no pressure, as the
    /// deterministic sim passes).
    pub loads: &'a [ShardLoad],
    /// Merged heavy-hitter byte evidence from the flow sketches
    /// (empty when the controller's blend is zero).
    pub heavy: &'a [HeavyHitter],
    /// The controller's byte-evidence blend in `[0, 1]`.
    pub heavy_blend: f64,
    /// Worker ring capacity (pressure normalisation).
    pub ring_capacity: usize,
    /// The live bucket → shard table.
    pub current: &'a BucketMap,
}

/// The pluggable *decide* arm of the reflective control loop: turns
/// one [`Evidence`] observation into a migration plan, or `None` to
/// hold. See the module docs for the built-in cores and the
/// determinism contract.
pub trait DecisionCore: Send {
    /// The core's registry name (`"weighted"`, `"hysteresis"`,
    /// `"ewma"`, …) — what a pipeline description selects it by.
    fn name(&self) -> &'static str;

    /// Minimum raw packets in the observation window before the
    /// controller judges at all (the gathering gate).
    fn min_samples(&self) -> u64;

    /// Fraction of a judged-but-declined window the loop retains per
    /// decision (applied via `BucketLoad::decay`).
    fn decay(&self) -> f64;

    /// Judge one observation. Stateful cores (hysteresis streaks,
    /// EWMA accumulators) mutate themselves here; the controller
    /// guarantees one call per judged tick, in tick order.
    fn plan(&mut self, ev: &Evidence<'_>) -> Option<RebalancePlan>;
}

/// The PR 5 judgment as a core: pressure-weighted LPT, blending
/// heavy-hitter bytes when the controller supplies them. This is what
/// [`RebalanceController::new`](super::RebalanceController::new)
/// wraps, so existing behaviour is unchanged.
#[derive(Clone, Copy, Debug)]
pub struct WeightedCore {
    /// The judging policy.
    pub policy: WeightedRebalancePolicy,
}

impl WeightedCore {
    /// A core judging with `policy`.
    pub fn new(policy: WeightedRebalancePolicy) -> Self {
        Self { policy }
    }
}

impl DecisionCore for WeightedCore {
    fn name(&self) -> &'static str {
        "weighted"
    }
    fn min_samples(&self) -> u64 {
        self.policy.base.min_samples
    }
    fn decay(&self) -> f64 {
        self.policy.decay
    }
    fn plan(&mut self, ev: &Evidence<'_>) -> Option<RebalancePlan> {
        if ev.heavy_blend > 0.0 && !ev.heavy.is_empty() {
            self.policy.with_heavy_hitters(ev.heavy_blend).plan(
                ev.window,
                ev.loads,
                ev.ring_capacity,
                ev.heavy,
                ev.current,
            )
        } else {
            self.policy
                .plan(ev.window, ev.loads, ev.ring_capacity, ev.current)
        }
    }
}

/// A banded core for flapping workloads: it demands the imbalance stay
/// above the **enter** threshold for `arm_ticks` *consecutive* judged
/// windows before planning at all, and a single window back under the
/// **exit** threshold disarms it. The underlying plan is the weighted
/// policy's; what changes is *when* the core is willing to pay a
/// quiesce epoch — transient spikes (an elephant that dies within the
/// band) never trigger a migration, while persistent skew still
/// converges, just `arm_ticks` windows later.
#[derive(Clone, Copy, Debug)]
pub struct HysteresisCore {
    /// The judging policy once armed (its `max_imbalance` is ignored
    /// in favour of the band).
    pub policy: WeightedRebalancePolicy,
    /// Arm the core while effective imbalance exceeds this.
    pub enter: f64,
    /// Disarm (reset the streak) once imbalance falls below this.
    /// Must be ≤ `enter`; windows inside `[exit, enter]` keep the
    /// streak but do not extend it.
    pub exit: f64,
    /// Consecutive over-`enter` windows required before planning.
    pub arm_ticks: u32,
    streak: u32,
}

impl HysteresisCore {
    /// A banded core over `policy` with the `[exit, enter]` band,
    /// arming after `arm_ticks` consecutive over-threshold windows.
    pub fn new(policy: WeightedRebalancePolicy, enter: f64, exit: f64, arm_ticks: u32) -> Self {
        Self {
            policy,
            enter: enter.max(1.0),
            exit: exit.clamp(1.0, enter.max(1.0)),
            arm_ticks: arm_ticks.max(1),
            streak: 0,
        }
    }

    /// Consecutive over-`enter` windows seen so far (introspection).
    pub fn streak(&self) -> u32 {
        self.streak
    }
}

impl DecisionCore for HysteresisCore {
    fn name(&self) -> &'static str {
        "hysteresis"
    }
    fn min_samples(&self) -> u64 {
        self.policy.base.min_samples
    }
    fn decay(&self) -> f64 {
        self.policy.decay
    }
    fn plan(&mut self, ev: &Evidence<'_>) -> Option<RebalancePlan> {
        let effective =
            self.policy
                .effective_window(ev.window, ev.loads, ev.ring_capacity, ev.current);
        let imbalance = RebalancePolicy::imbalance(&effective, ev.current);
        if imbalance > self.enter {
            self.streak = self.streak.saturating_add(1);
        } else if imbalance < self.exit {
            self.streak = 0;
        }
        if self.streak < self.arm_ticks {
            return None;
        }
        // Armed: judge with the banded threshold (`enter`), not the
        // policy's own, so the band is the single source of truth.
        let judge = WeightedRebalancePolicy {
            base: RebalancePolicy {
                max_imbalance: self.enter,
                min_samples: self.policy.base.min_samples,
            },
            ..self.policy
        };
        let plan = judge.plan(ev.window, ev.loads, ev.ring_capacity, ev.current);
        if plan.is_some() {
            self.streak = 0;
        }
        plan
    }
}

/// A predictive core for trending workloads: every judged window is
/// folded into a per-bucket exponentially-weighted moving average,
/// and the plan is made over the *smoothed* loads. A one-window blip
/// moves the EWMA by only `alpha`, so noise is damped; a sustained
/// ramp accumulates until the smoothed shape crosses the threshold —
/// the core then plans on the trend, which predicts the next window
/// better than the last sample does.
#[derive(Clone, Debug)]
pub struct EwmaCore {
    /// The judging policy, applied to the smoothed window.
    pub policy: WeightedRebalancePolicy,
    /// Weight of the newest window in `[0, 1]` (`1.0` ⇒ no smoothing,
    /// identical to [`WeightedCore`] without byte evidence).
    pub alpha: f64,
    smoothed: Vec<f64>,
}

impl EwmaCore {
    /// A smoothing core over `policy` with newest-window weight
    /// `alpha`.
    pub fn new(policy: WeightedRebalancePolicy, alpha: f64) -> Self {
        Self {
            policy,
            alpha: alpha.clamp(0.0, 1.0),
            smoothed: vec![0.0; RSS_BUCKETS],
        }
    }
}

impl DecisionCore for EwmaCore {
    fn name(&self) -> &'static str {
        "ewma"
    }
    fn min_samples(&self) -> u64 {
        self.policy.base.min_samples
    }
    fn decay(&self) -> f64 {
        self.policy.decay
    }
    fn plan(&mut self, ev: &Evidence<'_>) -> Option<RebalancePlan> {
        assert_eq!(ev.window.len(), RSS_BUCKETS, "one load per bucket");
        for (s, &w) in self.smoothed.iter_mut().zip(ev.window) {
            *s = self.alpha * w as f64 + (1.0 - self.alpha) * *s;
        }
        let smoothed: Vec<u64> = self.smoothed.iter().map(|&s| s.round() as u64).collect();
        self.policy
            .plan(&smoothed, ev.loads, ev.ring_capacity, ev.current)
    }
}

/// Builds a core by registry name — the hook a pipeline description's
/// control section resolves through. Unknown names list the registry.
///
/// * `"weighted"` — [`WeightedCore`] (ignores `enter`/`exit`/`arm`/`alpha`).
/// * `"hysteresis"` — [`HysteresisCore::new`]`(policy, enter, exit, arm)`.
/// * `"ewma"` — [`EwmaCore::new`]`(policy, alpha)`.
///
/// # Errors
///
/// Fails with [`opencom::error::Error::StaleReference`] on an unknown
/// name.
pub fn core_by_name(
    name: &str,
    policy: WeightedRebalancePolicy,
    enter: f64,
    exit: f64,
    arm: u32,
    alpha: f64,
) -> opencom::error::Result<Box<dyn DecisionCore>> {
    match name {
        "weighted" => Ok(Box::new(WeightedCore::new(policy))),
        "hysteresis" => Ok(Box::new(HysteresisCore::new(policy, enter, exit, arm))),
        "ewma" => Ok(Box::new(EwmaCore::new(policy, alpha))),
        other => Err(opencom::error::Error::StaleReference {
            what: format!("decision core `{other}` (known: weighted, hysteresis, ewma)"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(entries: &[(usize, u64)]) -> Vec<u64> {
        let mut w = vec![0u64; RSS_BUCKETS];
        for &(bucket, load) in entries {
            w[bucket] = load;
        }
        w
    }

    fn eager() -> WeightedRebalancePolicy {
        WeightedRebalancePolicy {
            base: RebalancePolicy {
                max_imbalance: 1.25,
                min_samples: 1,
            },
            pressure_weight: 0.0,
            decay: 0.5,
        }
    }

    fn ev<'a>(w: &'a [u64], map: &'a BucketMap) -> Evidence<'a> {
        Evidence {
            window: w,
            loads: &[],
            heavy: &[],
            heavy_blend: 0.0,
            ring_capacity: 1024,
            current: map,
        }
    }

    #[test]
    fn weighted_core_matches_the_raw_policy() {
        let map = BucketMap::identity(2);
        let w = window(&[(0, 90), (2, 60), (1, 30)]);
        let mut core = WeightedCore::new(eager());
        let from_core = core.plan(&ev(&w, &map)).expect("skew plans");
        let direct = eager().plan(&w, &[], 1024, &map).expect("skew plans");
        assert_eq!(from_core.map, direct.map);
        assert_eq!(from_core.moved, direct.moved);
    }

    #[test]
    fn hysteresis_demands_persistent_skew() {
        let map = BucketMap::identity(2);
        let skew = window(&[(0, 90), (2, 60), (1, 30)]);
        let balanced = window(&[(0, 50), (1, 50)]);
        let mut core = HysteresisCore::new(eager(), 1.25, 1.1, 3);

        // Two over-threshold windows: still armed-but-waiting.
        assert!(core.plan(&ev(&skew, &map)).is_none());
        assert!(core.plan(&ev(&skew, &map)).is_none());
        assert_eq!(core.streak(), 2);
        // A balanced window disarms the streak entirely...
        assert!(core.plan(&ev(&balanced, &map)).is_none());
        assert_eq!(core.streak(), 0);
        // ...so the skew must persist for three fresh windows.
        assert!(core.plan(&ev(&skew, &map)).is_none());
        assert!(core.plan(&ev(&skew, &map)).is_none());
        let plan = core.plan(&ev(&skew, &map)).expect("armed after 3");
        assert!(plan.imbalance_after < plan.imbalance_before);
        assert_eq!(core.streak(), 0, "an applied plan resets the streak");
    }

    #[test]
    fn ewma_damps_a_blip_but_follows_a_trend() {
        let map = BucketMap::identity(2);
        let skew = window(&[(0, 900), (2, 600), (1, 300)]);
        let quiet = window(&[(0, 1), (1, 1)]);
        let mut core = EwmaCore::new(eager(), 0.3);

        // One loud window into a cold average: the smoothed shape is
        // only 30% of the spike — scaled down but same *shape*, so
        // shape-based imbalance may trigger; what matters is that the
        // average tracks. Feed quiet windows after and the plan
        // disappears as the average decays.
        let first = core.plan(&ev(&skew, &map));
        for _ in 0..20 {
            core.plan(&ev(&quiet, &map));
        }
        let after_quiet = core.plan(&ev(&quiet, &map));
        assert!(after_quiet.is_none(), "average decays toward quiet");
        // A sustained ramp converges to the skew and plans.
        let mut planned = false;
        for _ in 0..10 {
            if core.plan(&ev(&skew, &map)).is_some() {
                planned = true;
                break;
            }
        }
        assert!(planned, "persistent skew must eventually plan");
        let _ = first;
    }

    #[test]
    fn alpha_one_reproduces_the_weighted_core() {
        let map = BucketMap::identity(2);
        let w = window(&[(0, 90), (2, 60), (1, 30)]);
        let mut ewma = EwmaCore::new(eager(), 1.0);
        let mut weighted = WeightedCore::new(eager());
        let a = ewma.plan(&ev(&w, &map)).expect("plans");
        let b = weighted.plan(&ev(&w, &map)).expect("plans");
        assert_eq!(a.map, b.map);
    }

    #[test]
    fn registry_resolves_names_and_rejects_unknowns() {
        assert_eq!(
            core_by_name("weighted", eager(), 0.0, 0.0, 1, 0.5)
                .unwrap()
                .name(),
            "weighted"
        );
        assert_eq!(
            core_by_name("hysteresis", eager(), 1.5, 1.2, 2, 0.5)
                .unwrap()
                .name(),
            "hysteresis"
        );
        assert_eq!(
            core_by_name("ewma", eager(), 0.0, 0.0, 1, 0.3)
                .unwrap()
                .name(),
            "ewma"
        );
        assert!(core_by_name("banana", eager(), 0.0, 0.0, 1, 0.5).is_err());
    }
}
