//! Reflective load rebalancing: the policy that turns per-bucket load
//! meters into a new bucket → shard indirection table.
//!
//! Static RSS steering spreads **flows** evenly, not **load**: one
//! elephant flow pins its shard at 100% while siblings idle, and every
//! mouse flow whose bucket happens to share that shard queues behind
//! it. The rebalancer is the ResourceManager-side meta-object that
//! closes the loop the paper's reflective architecture promises —
//! *inspect* the running dataplane (per-bucket packet counters, ring
//! occupancy high-water marks), *decide* (this module's
//! [`RebalancePolicy`]), and *adapt* (install the planned
//! [`BucketMap`] atomically through the worker pool's epoch quiesce,
//! see `ShardedPipeline::install_bucket_map`).
//!
//! ## What rebalancing can and cannot fix
//!
//! The migration unit is the **bucket**, never the flow: moving a
//! bucket re-homes every flow hashing into it, preserving flow → shard
//! affinity (hence per-flow ordering). Consequently:
//!
//! * load that *shares* an overloaded shard with an elephant can be
//!   moved off it — this is where the throughput recovery comes from;
//! * the elephant's own bucket is indivisible: a single flow carrying
//!   50% of all packets bounds the best achievable balance at 50% on
//!   one shard. The policy therefore optimises the *makespan* (the
//!   most-loaded shard) with a greedy longest-processing-time
//!   assignment, which never produces a plan worse than the current
//!   map.
//!
//! ## The decision rule
//!
//! [`RebalancePolicy::plan`] fires only when (a) the observation
//! window holds at least `min_samples` packets (idle dataplanes are
//! not reshuffled by noise) and (b) the most-loaded shard exceeds the
//! ideal `total / shards` share by more than `max_imbalance`
//! (hysteresis: balanced-enough placements are left alone, because
//! every migration costs one quiesce epoch of pipeline pause).

use netkit_packet::sketch::HeavyHitter;
use netkit_packet::steer::{bucket_of, BucketMap, RSS_BUCKETS};

use super::ShardLoad;

/// When and how aggressively to rewrite the bucket table.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RebalancePolicy {
    /// Trigger threshold on `max_shard_load / ideal_shard_load`. `1.0`
    /// is perfect balance; the default `1.25` tolerates 25% skew
    /// before paying a migration epoch.
    pub max_imbalance: f64,
    /// Minimum packets in the observation window before any plan is
    /// made — protects against reshuffling on statistical noise.
    pub min_samples: u64,
}

impl Default for RebalancePolicy {
    fn default() -> Self {
        Self {
            max_imbalance: 1.25,
            min_samples: 64,
        }
    }
}

/// A planned migration: the new table plus the evidence it was planned
/// on.
#[derive(Clone, Debug)]
pub struct RebalancePlan {
    /// The bucket table to install.
    pub map: BucketMap,
    /// Buckets whose assignment changes, in bucket order.
    pub moved: Vec<usize>,
    /// `max_shard_load / ideal` under the current map.
    pub imbalance_before: f64,
    /// `max_shard_load / ideal` predicted under [`Self::map`] (same
    /// window).
    pub imbalance_after: f64,
}

impl RebalancePolicy {
    /// Measures the imbalance of `per_bucket` loads under `map`:
    /// `max_shard_load / (total / shards)`. Returns `1.0` for an empty
    /// window (nothing to be imbalanced about).
    pub fn imbalance(per_bucket: &[u64], map: &BucketMap) -> f64 {
        let per_shard = map.per_shard_load(per_bucket);
        let total: u64 = per_shard.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let ideal = total as f64 / map.shards() as f64;
        per_shard.iter().copied().max().unwrap_or(0) as f64 / ideal
    }

    /// Plans a migration from one observation window of per-bucket
    /// loads, or `None` when rebalancing is not warranted (single
    /// shard, window below `min_samples`, imbalance within
    /// `max_imbalance`, or no bucket would actually move).
    ///
    /// The plan is a deterministic greedy longest-processing-time
    /// assignment: loaded buckets are placed heaviest-first onto the
    /// least-loaded shard (current assignment wins ties, minimising
    /// churn); zero-load buckets keep their current homes so cold
    /// flows are never moved on no evidence.
    ///
    /// # Panics
    ///
    /// Panics if `per_bucket` does not hold
    /// [`RSS_BUCKETS`] entries (the
    /// meters and maps are all fixed-width).
    pub fn plan(&self, per_bucket: &[u64], current: &BucketMap) -> Option<RebalancePlan> {
        assert_eq!(per_bucket.len(), RSS_BUCKETS, "one load per bucket");
        let shards = current.shards();
        if shards <= 1 {
            return None;
        }
        let total: u64 = per_bucket.iter().sum();
        if total < self.min_samples.max(1) {
            return None;
        }
        let imbalance_before = Self::imbalance(per_bucket, current);
        if imbalance_before <= self.max_imbalance {
            return None;
        }

        // Greedy LPT over the loaded buckets, heaviest first; ties in
        // load break towards the lower bucket index so plans are
        // reproducible run to run.
        let mut order: Vec<usize> = (0..RSS_BUCKETS).filter(|&b| per_bucket[b] > 0).collect();
        order.sort_by(|&a, &b| per_bucket[b].cmp(&per_bucket[a]).then(a.cmp(&b)));

        let mut map = current.clone();
        let mut load = vec![0u64; shards];
        for &bucket in &order {
            let mut best = 0;
            for shard in 1..shards {
                if load[shard] < load[best] {
                    best = shard;
                }
            }
            // Prefer the bucket's current home on equal load: fewer
            // moved buckets, same makespan.
            let home = current.shard_of_bucket(bucket);
            if load[home] == load[best] {
                best = home;
            }
            map.set(bucket, best);
            load[best] += per_bucket[bucket];
        }

        let moved = map.moved_buckets(current);
        if moved.is_empty() {
            return None;
        }
        let ideal = total as f64 / shards as f64;
        let imbalance_after = load.iter().copied().max().unwrap_or(0) as f64 / ideal;
        // A migration that does not lower the makespan is all cost (a
        // quiesce epoch + re-homed flows) and no benefit — LPT can tie
        // the current placement while still shuffling buckets around.
        if imbalance_after >= imbalance_before {
            return None;
        }
        Some(RebalancePlan {
            map,
            moved,
            imbalance_before,
            imbalance_after,
        })
    }
}

/// A [`RebalancePolicy`] that weighs *queueing pressure* into the
/// evidence, not just packet counts.
///
/// Packet counts alone are a throughput meter: they say which buckets
/// are busy, not which shard is *drowning*. A shard whose ring
/// high-water mark rides its capacity is receiving work faster than it
/// retires it — its buckets hurt more per packet than the same count
/// on an idle shard. This policy folds that in: each bucket's count is
/// inflated by its current shard's pressure,
///
/// ```text
/// effective[b] = count[b] × (1 + pressure_weight × hwm[shard(b)] / ring_capacity)
/// ```
///
/// (pressure clamped to `[0, 1]`; `max(ring_high_water, in_flight)`
/// is used so a freshly reset mark still sees live occupancy), and the
/// base policy's threshold + LPT plan run over the effective loads. A
/// persistent packet skew sitting *just under* the imbalance threshold
/// therefore still converges once the hot shard's queue starts
/// backing up — evidence the unweighted policy is blind to.
/// `pressure_weight = 0` reproduces the base policy exactly.
///
/// The `min_samples` gate applies to the **raw** window (pressure must
/// never conjure evidence out of an idle dataplane), and `decay` is
/// the per-judged-decision exponential retention the control loop
/// applies instead of destructively draining windows (see
/// [`crate::shard::control`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WeightedRebalancePolicy {
    /// Threshold + window core. The imbalance test runs on *effective*
    /// (pressure-weighted) loads; `min_samples` gates on raw counts.
    pub base: RebalancePolicy,
    /// How strongly ring pressure inflates a shard's buckets: a shard
    /// riding its full ring weighs `1 + pressure_weight` per packet.
    /// `0.0` ≡ the unweighted base policy.
    pub pressure_weight: f64,
    /// Fraction of a judged-but-declined window retained per decision
    /// (`1.0` = never fades). Applied by the control loop via
    /// `BucketLoad::decay`, not by [`Self::plan`] itself.
    pub decay: f64,
}

impl Default for WeightedRebalancePolicy {
    fn default() -> Self {
        Self {
            base: RebalancePolicy::default(),
            pressure_weight: 1.0,
            decay: 0.5,
        }
    }
}

impl WeightedRebalancePolicy {
    /// Inflates a raw per-bucket window by per-shard queueing pressure
    /// under `current` (see the type docs for the formula). `loads`
    /// entries are matched to shards by their `shard` field; missing
    /// shards (or an empty slice, as the deterministic sim passes)
    /// contribute zero pressure.
    ///
    /// # Panics
    ///
    /// Panics if `per_bucket` does not hold [`RSS_BUCKETS`] entries.
    pub fn effective_window(
        &self,
        per_bucket: &[u64],
        loads: &[ShardLoad],
        ring_capacity: usize,
        current: &BucketMap,
    ) -> Vec<u64> {
        assert_eq!(per_bucket.len(), RSS_BUCKETS, "one load per bucket");
        let cap = ring_capacity.max(1) as f64;
        let mut factor = vec![1.0f64; current.shards()];
        if self.pressure_weight > 0.0 {
            for load in loads {
                if let Some(f) = factor.get_mut(load.shard) {
                    let occupancy = load.ring_high_water.max(load.in_flight) as f64;
                    *f = 1.0 + self.pressure_weight * (occupancy / cap).min(1.0);
                }
            }
        }
        per_bucket
            .iter()
            .enumerate()
            .map(|(bucket, &count)| {
                (count as f64 * factor[current.shard_of_bucket(bucket)]).round() as u64
            })
            .collect()
    }

    /// Plans a migration from one raw observation window plus the
    /// per-shard pressure meters, or `None` when rebalancing is not
    /// warranted. Semantics are [`RebalancePolicy::plan`] run over the
    /// [`Self::effective_window`] — the plan's `imbalance_before`/
    /// `imbalance_after` are therefore in effective (weighted) units —
    /// except that the `min_samples` gate judges the raw counts.
    ///
    /// # Panics
    ///
    /// Panics if `per_bucket` does not hold [`RSS_BUCKETS`] entries.
    pub fn plan(
        &self,
        per_bucket: &[u64],
        loads: &[ShardLoad],
        ring_capacity: usize,
        current: &BucketMap,
    ) -> Option<RebalancePlan> {
        let raw_total: u64 = per_bucket.iter().sum();
        if raw_total < self.base.min_samples.max(1) {
            return None;
        }
        let effective = self.effective_window(per_bucket, loads, ring_capacity, current);
        let judge = RebalancePolicy {
            max_imbalance: self.base.max_imbalance,
            min_samples: 1, // raw gate already passed
        };
        judge.plan(&effective, current)
    }

    /// Upgrades this policy with sketch-based heavy-hitter evidence:
    /// the returned [`HeavyHitterPolicy`] blends per-flow *byte*
    /// weight into the per-bucket window before planning. `blend` is
    /// clamped to `[0, 1]`; `0.0` reproduces this policy exactly.
    pub fn with_heavy_hitters(self, blend: f64) -> HeavyHitterPolicy {
        HeavyHitterPolicy { base: self, blend }
    }
}

/// A [`WeightedRebalancePolicy`] that additionally weighs **true
/// elephant flows** via sketch evidence.
///
/// `BucketLoad` counts packets: every packet weighs one, so a bucket
/// holding one elephant flow plus mice is indistinguishable from a
/// bucket of mice alone whenever packet *counts* are uniform — the
/// uniform policy provably holds while one shard carries most of the
/// **bytes**. The per-shard [`netkit_packet::sketch::FlowSketch`]es
/// meter bytes per flow; their merged top-k
/// ([`netkit_packet::sketch::SpaceSaving::merge`]) is the evidence
/// this policy folds in:
///
/// ```text
/// hh[b]       = Σ weight of heavy hitters whose hash buckets to b
/// scaled[b]   = hh[b] × (Σ effective / Σ hh)      (mass-normalised)
/// combined[b] = (1 − blend) × effective[b] + blend × scaled[b]
/// ```
///
/// The byte evidence is normalised to the packet window's total mass
/// before blending, so `blend` interpolates between two *unit-free*
/// load shapes: `0.0` plans purely on pressure-weighted packets,
/// `1.0` purely on heavy-hitter bytes. The `min_samples` gate still
/// judges the raw packet window (sketches never conjure evidence out
/// of an idle dataplane), and bucket-granularity constraints are
/// unchanged — the elephant's own bucket remains indivisible; the
/// recovery comes from migrating the mice buckets *colocated* with
/// it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HeavyHitterPolicy {
    /// The pressure-weighted policy supplying the packet-side window.
    pub base: WeightedRebalancePolicy,
    /// Byte-evidence blend factor in `[0, 1]`.
    pub blend: f64,
}

impl HeavyHitterPolicy {
    /// The blended per-bucket window (see the type docs). With
    /// `blend == 0`, no heavy hitters, or an empty packet window this
    /// is exactly the base policy's effective window.
    ///
    /// # Panics
    ///
    /// Panics if `per_bucket` does not hold [`RSS_BUCKETS`] entries.
    pub fn blended_window(
        &self,
        per_bucket: &[u64],
        loads: &[ShardLoad],
        ring_capacity: usize,
        heavy: &[HeavyHitter],
        current: &BucketMap,
    ) -> Vec<u64> {
        let effective = self
            .base
            .effective_window(per_bucket, loads, ring_capacity, current);
        let blend = self.blend.clamp(0.0, 1.0);
        if blend == 0.0 || heavy.is_empty() {
            return effective;
        }
        let mut hh = vec![0u64; RSS_BUCKETS];
        for h in heavy {
            hh[bucket_of(h.hash)] += h.weight;
        }
        let hh_total: u64 = hh.iter().sum();
        let eff_total: u64 = effective.iter().sum();
        if hh_total == 0 || eff_total == 0 {
            return effective;
        }
        let scale = eff_total as f64 / hh_total as f64;
        effective
            .iter()
            .zip(&hh)
            .map(|(&eff, &bytes)| {
                ((1.0 - blend) * eff as f64 + blend * bytes as f64 * scale).round() as u64
            })
            .collect()
    }

    /// Plans a migration over the blended window, or `None` when
    /// rebalancing is not warranted. The `min_samples` gate judges the
    /// **raw packet** window, exactly like
    /// [`WeightedRebalancePolicy::plan`]; the plan's imbalance figures
    /// are in blended units.
    ///
    /// # Panics
    ///
    /// Panics if `per_bucket` does not hold [`RSS_BUCKETS`] entries.
    pub fn plan(
        &self,
        per_bucket: &[u64],
        loads: &[ShardLoad],
        ring_capacity: usize,
        heavy: &[HeavyHitter],
        current: &BucketMap,
    ) -> Option<RebalancePlan> {
        let raw_total: u64 = per_bucket.iter().sum();
        if raw_total < self.base.base.min_samples.max(1) {
            return None;
        }
        let blended = self.blended_window(per_bucket, loads, ring_capacity, heavy, current);
        let judge = RebalancePolicy {
            max_imbalance: self.base.base.max_imbalance,
            min_samples: 1, // raw gate already passed
        };
        judge.plan(&blended, current)
    }
}

/// What a completed migration did — returned by
/// `ShardedPipeline::install_bucket_map` and `rebalance`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MigrationReport {
    /// Buckets whose assignment changed.
    pub moved_buckets: usize,
    /// Frames drained from NIC rx queues and re-steered by the new
    /// table inside the quiesce window.
    pub resubmitted: usize,
    /// Frames that could not be re-steered because a worker ring was
    /// full or its worker dead (counted into that shard's `dropped`
    /// statistic as well).
    pub dropped: usize,
    /// The quiesce epoch after which the new table is live.
    pub epoch: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loads(entries: &[(usize, u64)]) -> Vec<u64> {
        let mut v = vec![0u64; RSS_BUCKETS];
        for &(bucket, load) in entries {
            v[bucket] = load;
        }
        v
    }

    #[test]
    fn balanced_windows_produce_no_plan() {
        let policy = RebalancePolicy::default();
        let current = BucketMap::identity(4);
        // Four buckets, one per shard, equal load: imbalance 1.0.
        let w = loads(&[(0, 100), (1, 100), (2, 100), (3, 100)]);
        assert!(policy.plan(&w, &current).is_none());
        assert!((RebalancePolicy::imbalance(&w, &current) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn small_windows_and_single_shard_are_ignored() {
        let policy = RebalancePolicy::default();
        let skewed = loads(&[(0, 10), (4, 10)]); // both on shard 0, but tiny
        assert!(policy.plan(&skewed, &BucketMap::identity(4)).is_none());
        let big = loads(&[(0, 1000), (4, 1000)]);
        assert!(policy.plan(&big, &BucketMap::identity(1)).is_none());
        let empty = loads(&[]);
        assert_eq!(
            RebalancePolicy::imbalance(&empty, &BucketMap::identity(4)),
            1.0
        );
    }

    #[test]
    fn colocated_load_moves_off_the_hot_shard() {
        let policy = RebalancePolicy::default();
        let current = BucketMap::identity(4);
        // Buckets 0, 4, 8, 12 all map to shard 0 under identity:
        // an elephant (bucket 0) plus three colocated mice. Shard 0
        // carries 100% of the traffic; ideal is 25%.
        let w = loads(&[(0, 500), (4, 180), (8, 170), (12, 150)]);
        let plan = policy.plan(&w, &current).expect("skew must trigger");
        assert!(plan.imbalance_before > 3.9, "{}", plan.imbalance_before);
        // The elephant's bucket is indivisible (2x ideal), but the mice
        // spread out: makespan drops from 1000 to 500.
        assert_eq!(plan.map.per_shard_load(&w).iter().max(), Some(&500));
        assert!(plan.imbalance_after < plan.imbalance_before);
        assert!(!plan.moved.is_empty());
        // Zero-load buckets never move.
        for (bucket, &load) in w.iter().enumerate() {
            if load == 0 {
                assert_eq!(
                    plan.map.shard_of_bucket(bucket),
                    current.shard_of_bucket(bucket),
                    "cold bucket {bucket} moved"
                );
            }
        }
    }

    #[test]
    fn plans_are_deterministic_and_never_worse() {
        let policy = RebalancePolicy {
            max_imbalance: 1.1,
            min_samples: 1,
        };
        let current = BucketMap::identity(2);
        let w = loads(&[(0, 70), (2, 40), (4, 30), (1, 10)]);
        let a = policy.plan(&w, &current).expect("imbalanced");
        let b = policy.plan(&w, &current).expect("imbalanced");
        assert_eq!(a.map, b.map, "same window, same plan");
        assert!(a.imbalance_after <= a.imbalance_before);
    }

    #[test]
    fn zero_improvement_plans_are_rejected() {
        // Regression: three equal buckets, current map [0, 0, 1] —
        // imbalance 4/3 triggers an eager policy, but LPT can only
        // reproduce the same makespan while shuffling bucket 1 to the
        // other shard. Such a plan is all cost, no benefit.
        let policy = RebalancePolicy {
            max_imbalance: 1.25,
            min_samples: 1,
        };
        let mut current = BucketMap::identity(2);
        current.set(0, 0);
        current.set(1, 0);
        current.set(2, 1);
        let w = loads(&[(0, 2), (1, 2), (2, 2)]);
        assert!(
            (RebalancePolicy::imbalance(&w, &current) - 4.0 / 3.0).abs() < 1e-9,
            "precondition: above threshold"
        );
        assert!(
            policy.plan(&w, &current).is_none(),
            "a makespan tie must not cost a migration epoch"
        );
    }

    fn shard_pressure(shard: usize, hwm: usize) -> ShardLoad {
        ShardLoad {
            shard,
            ring_high_water: hwm,
            ..ShardLoad::default()
        }
    }

    #[test]
    fn zero_pressure_weight_matches_the_base_policy() {
        let policy = WeightedRebalancePolicy {
            base: RebalancePolicy {
                max_imbalance: 1.1,
                min_samples: 1,
            },
            pressure_weight: 0.0,
            decay: 1.0,
        };
        let current = BucketMap::identity(2);
        let w = loads(&[(0, 70), (2, 40), (4, 30), (1, 10)]);
        // Even under heavy reported pressure the effective window is
        // the raw window, and the plan matches the base policy's.
        let pressure = [shard_pressure(0, 1024), shard_pressure(1, 0)];
        assert_eq!(policy.effective_window(&w, &pressure, 1024, &current), w);
        let weighted = policy.plan(&w, &pressure, 1024, &current).expect("skew");
        let base = policy.base.plan(&w, &current).expect("skew");
        assert_eq!(weighted.map, base.map);
        assert_eq!(weighted.moved, base.moved);
    }

    #[test]
    fn queue_pressure_lifts_an_under_threshold_skew_over_the_line() {
        // Raw packet counts: shard 0 carries 60 (buckets 0 and 2),
        // shard 1 carries 40 — imbalance 1.2, under the 1.25
        // threshold, so the unweighted policy holds forever.
        let current = BucketMap::identity(2);
        let w = loads(&[(0, 40), (2, 20), (1, 40)]);
        let base = RebalancePolicy {
            max_imbalance: 1.25,
            min_samples: 32,
        };
        assert!(base.plan(&w, &current).is_none(), "1.2 < 1.25: no plan");

        // But shard 0's ring rides its capacity while shard 1 idles:
        // per-packet, shard 0's buckets hurt twice as much. Effective
        // window [80, 40, 40] → imbalance 1.5 → the mice (bucket 2)
        // move off the drowning shard.
        let policy = WeightedRebalancePolicy {
            base,
            pressure_weight: 1.0,
            decay: 0.5,
        };
        let pressure = [shard_pressure(0, 1024), shard_pressure(1, 2)];
        let plan = policy
            .plan(&w, &pressure, 1024, &current)
            .expect("pressure must tip the decision");
        assert!(plan.imbalance_before > 1.25, "{}", plan.imbalance_before);
        assert!(plan.imbalance_after < plan.imbalance_before);
        assert_eq!(plan.moved, vec![2], "the colocated bucket migrates");
        assert_eq!(plan.map.shard_of_bucket(2), 1);
    }

    #[test]
    fn pressure_never_conjures_evidence_from_an_idle_window() {
        // min_samples gates on RAW counts: a tiny window stays a tiny
        // window no matter how hard the rings are reported to back up.
        let policy = WeightedRebalancePolicy::default(); // min_samples 64
        let current = BucketMap::identity(2);
        let w = loads(&[(0, 10), (2, 10)]);
        let pressure = [shard_pressure(0, 4096), shard_pressure(1, 0)];
        assert!(policy.plan(&w, &pressure, 64, &current).is_none());
        // Missing / short pressure slices degrade to factor 1.0.
        let big = loads(&[(0, 500), (2, 300), (1, 100)]);
        assert_eq!(policy.effective_window(&big, &[], 64, &current), big);
    }

    fn hitter(bucket: usize, weight: u64) -> HeavyHitter {
        HeavyHitter {
            hash: bucket as u64, // bucket_of(hash) == hash % RSS_BUCKETS
            error: 0,
            weight,
        }
    }

    #[test]
    fn zero_blend_reproduces_the_weighted_policy() {
        let base = WeightedRebalancePolicy {
            base: RebalancePolicy {
                max_imbalance: 1.1,
                min_samples: 1,
            },
            pressure_weight: 1.0,
            decay: 0.5,
        };
        let hh = base.with_heavy_hitters(0.0);
        let current = BucketMap::identity(2);
        let w = loads(&[(0, 70), (2, 40), (4, 30), (1, 10)]);
        let pressure = [shard_pressure(0, 512), shard_pressure(1, 16)];
        // Even with loud byte evidence, blend 0 ignores it entirely.
        let evidence = [hitter(1, 1_000_000)];
        assert_eq!(
            hh.blended_window(&w, &pressure, 1024, &evidence, &current),
            base.effective_window(&w, &pressure, 1024, &current)
        );
        let a = hh
            .plan(&w, &pressure, 1024, &evidence, &current)
            .expect("skew");
        let b = base.plan(&w, &pressure, 1024, &current).expect("skew");
        assert_eq!(a.map, b.map);
        assert_eq!(a.moved, b.moved);
    }

    #[test]
    fn byte_evidence_migrates_a_packet_balanced_window() {
        // Packet counts are perfectly uniform: 8 packets in each of
        // buckets 0..8, identity(2) maps evens to shard 0 and odds to
        // shard 1 — 32/32, imbalance 1.0. The packet-only policy
        // provably has nothing to act on.
        let current = BucketMap::identity(2);
        let w = loads(&[
            (0, 8),
            (1, 8),
            (2, 8),
            (3, 8),
            (4, 8),
            (5, 8),
            (6, 8),
            (7, 8),
        ]);
        let base = WeightedRebalancePolicy {
            base: RebalancePolicy {
                max_imbalance: 1.25,
                min_samples: 32,
            },
            pressure_weight: 0.0,
            decay: 0.5,
        };
        assert!(
            base.plan(&w, &[], 1024, &current).is_none(),
            "uniform packets: the packet-only policy must hold"
        );

        // But the bytes are anything but uniform: every even bucket
        // carries a 2000-byte elephant while odd buckets carry 500
        // bytes of mice. Shard 0 owns 8000 of 10000 bytes.
        let evidence = [
            hitter(0, 2_000),
            hitter(1, 500),
            hitter(2, 2_000),
            hitter(3, 500),
            hitter(4, 2_000),
            hitter(5, 500),
            hitter(6, 2_000),
            hitter(7, 500),
        ];
        let hh = base.with_heavy_hitters(1.0);
        let blended = hh.blended_window(&w, &[], 1024, &evidence, &current);
        let shard_bytes = current.per_shard_load(&blended);
        assert!(
            shard_bytes[0] > 3 * shard_bytes[1],
            "blended window must surface the byte skew: {shard_bytes:?}"
        );
        let plan = hh
            .plan(&w, &[], 1024, &evidence, &current)
            .expect("byte evidence must trigger a plan");
        assert!(plan.imbalance_after < plan.imbalance_before);
        // LPT pairs each elephant with mice: perfect 50/50 in bytes.
        let after = plan.map.per_shard_load(&blended);
        assert_eq!(after[0], after[1], "{after:?}");
    }

    #[test]
    fn empty_or_zero_evidence_degrades_to_the_base_window() {
        let hh = WeightedRebalancePolicy::default().with_heavy_hitters(0.8);
        let current = BucketMap::identity(2);
        let w = loads(&[(0, 500), (2, 300), (1, 100)]);
        assert_eq!(hh.blended_window(&w, &[], 64, &[], &current), w);
        assert_eq!(hh.blended_window(&w, &[], 64, &[hitter(3, 0)], &current), w);
        // The min_samples gate still judges raw packets: byte evidence
        // cannot conjure a plan out of an idle dataplane.
        let idle = loads(&[(0, 10), (2, 10)]);
        assert!(hh
            .plan(&idle, &[], 64, &[hitter(0, 1_000_000)], &current)
            .is_none());
    }

    #[test]
    fn hysteresis_respects_threshold() {
        // 60/40 over 2 shards: imbalance 1.2 — below a 1.25 threshold,
        // above a 1.1 one.
        let current = BucketMap::identity(2);
        let w = loads(&[(0, 60), (1, 40)]);
        assert!(RebalancePolicy::default().plan(&w, &current).is_none());
        let eager = RebalancePolicy {
            max_imbalance: 1.1,
            min_samples: 1,
        };
        // Triggered, but a single indivisible bucket per shard cannot
        // improve: LPT reproduces a 60/40 split and the 60-bucket's
        // home pins it (no move -> no plan).
        assert!(eager.plan(&w, &current).is_none());
    }
}
