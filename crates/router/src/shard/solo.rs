//! Deterministic single-threaded replica drive for sharded element
//! graphs — the simulation entry into the real dataplane.
//!
//! [`SoloPipeline`] runs the *same* factory-built per-shard replicas as
//! [`ShardedPipeline`](super::ShardedPipeline) — same `ShardGraph`
//! recipe, same RSS counting-sort split, same per-shard metering
//! ([`BucketLoad`] packets + [`FlowSketch`] bytes, gated on more than
//! one shard), same cause-tagged verdict accounting (the guard's
//! [`PushError::RateLimited`] verdicts vs ordinary graph policy), same
//! peek-decide-commit control turn — but executes shards **in index
//! order on the calling thread**. No worker pool, no rings, no quiesce:
//! the caller is always at a batch boundary, so a steering-table swap
//! is a plain assignment and a run is bit-for-bit reproducible.
//!
//! That determinism is the whole point: a discrete-event simulator can
//! host one `SoloPipeline` per node and drive thousands of *real*
//! stateful dataplanes (conntrack/NAT/load-balancer/guard chains,
//! stratum-3 media filters) from simulated time, with the autonomous
//! [`RebalanceController`] deciding per node — and replay the entire
//! city identically from a seed. The differential test in
//! `tests/sim_pipeline_differential.rs` pins the equivalence: for the
//! same trace, `SoloPipeline` and the threaded `ShardedPipeline`
//! produce identical verdict counts, per-shard multisets, and per-flow
//! order.
//!
//! What is *not* mirrored, by construction: ring-full, dead-worker,
//! and re-steer-shed drops (there are no rings and nothing can die on
//! the caller's own thread), ring-pressure meters (`in_flight` and
//! `ring_high_water` read 0), and quiesce epochs (a migration's
//! `epoch` counts applied migrations instead).

use std::fmt;
use std::sync::Arc;

use netkit_packet::batch::PacketBatch;
use netkit_packet::sketch::{FlowSketch, HeavyHitter, SketchConfig, SpaceSaving};
use netkit_packet::steer::{BucketLoad, BucketMap};
use opencom::capsule::Capsule;
use opencom::error::Result;
use opencom::ident::TaskId;
use opencom::meta::resources::{classes, ResourceManager};

use crate::api::{IPacketPush, PushError};

use super::control::{ControlDecision, RebalanceController};
use super::rebalance::{MigrationReport, RebalancePlan};
use super::{DropCause, DropStats, PipelineStats, ShardCounters, ShardGraph, ShardLoad};

use netkit_kernel::shard::ShardSpec;

/// One shard's replica as the solo drive holds it.
struct SoloGraph {
    /// Kept alive for the replica's lifetime (elements live here).
    capsule: Arc<Capsule>,
    entry: Arc<dyn IPacketPush>,
    drain: Option<Box<dyn FnMut() + Send>>,
}

/// `spec.workers` replicas of an element graph driven deterministically
/// on the calling thread. See the module docs for the contract with
/// [`ShardedPipeline`](super::ShardedPipeline).
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use netkit_kernel::shard::ShardSpec;
/// use netkit_packet::batch::PacketBatch;
/// use netkit_packet::packet::PacketBuilder;
/// use netkit_router::api::register_packet_interfaces;
/// use netkit_router::elements::{Counter, Discard};
/// use netkit_router::shard::{ShardGraph, SoloPipeline};
/// use opencom::capsule::Capsule;
/// use opencom::meta::resources::ResourceManager;
/// use opencom::runtime::Runtime;
///
/// let rm = Arc::new(ResourceManager::new());
/// let mut pipe = SoloPipeline::build("doc-solo", ShardSpec::new(2), Arc::clone(&rm), |_shard| {
///     let rt = Runtime::new();
///     register_packet_interfaces(&rt);
///     let capsule = Capsule::new("shard", &rt);
///     let counter = Counter::new();
///     let sink = Discard::new();
///     let cid = capsule.adopt(counter.clone())?;
///     let sid = capsule.adopt(sink)?;
///     capsule.bind_simple(cid, "out", sid, netkit_router::api::IPACKET_PUSH)?;
///     Ok(ShardGraph::new(Arc::clone(&capsule), counter).with_components(vec![cid]))
/// })?;
///
/// let batch: PacketBatch = (0..64u16)
///     .map(|i| PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 1000 + i, 80).build())
///     .collect();
/// pipe.dispatch(batch);
/// assert_eq!(pipe.stats().packets, 64);
/// assert_eq!(rm.task_info(pipe.task())?.usage["packets"], 64);
/// # Ok::<(), opencom::error::Error>(())
/// ```
pub struct SoloPipeline {
    graphs: Vec<SoloGraph>,
    steering: BucketMap,
    bucket_load: BucketLoad,
    sketches: Vec<Arc<FlowSketch>>,
    counters: Vec<ShardCounters>,
    migrations: u64,
    rm: Arc<ResourceManager>,
    task: TaskId,
    spec: ShardSpec,
}

impl SoloPipeline {
    /// Builds `spec.workers` replicas via `factory(shard)` (called in
    /// shard order) and registers the pipeline as one task named
    /// `name` in `rm` — the same single-logical-component resource
    /// rollup as the threaded pipeline.
    ///
    /// # Errors
    ///
    /// Propagates factory failures and a duplicate task `name`.
    pub fn build<F>(
        name: &str,
        spec: ShardSpec,
        rm: Arc<ResourceManager>,
        factory: F,
    ) -> Result<Self>
    where
        F: FnMut(usize) -> Result<ShardGraph>,
    {
        let sketches = (0..spec.workers.max(1))
            .map(|_| Arc::new(FlowSketch::new(SketchConfig::default())))
            .collect();
        Self::build_with_sketches(name, spec, rm, sketches, factory)
    }

    /// [`build`](Self::build) with caller-supplied per-shard flow
    /// sketches. The threaded pipeline creates its sketches *after*
    /// the factory runs, so a factory can never hand its shard's
    /// sketch to a [`Guard`](crate::flow::Guard); here the caller
    /// creates the sketches first, clones each shard's `Arc` into the
    /// factory's guard, and passes the originals in — the guard then
    /// reads exactly the sketch the drive meters into, satisfying the
    /// guard's "estimates already include the current batch" contract
    /// (the drive records before the graph runs, like the worker
    /// does).
    ///
    /// # Errors
    ///
    /// Propagates factory failures and a duplicate task `name`.
    ///
    /// # Panics
    ///
    /// Panics unless exactly one sketch per shard is supplied.
    pub fn build_with_sketches<F>(
        name: &str,
        spec: ShardSpec,
        rm: Arc<ResourceManager>,
        sketches: Vec<Arc<FlowSketch>>,
        mut factory: F,
    ) -> Result<Self>
    where
        F: FnMut(usize) -> Result<ShardGraph>,
    {
        let workers = spec.workers.max(1);
        assert_eq!(
            sketches.len(),
            workers,
            "{} sketches supplied for {} shards",
            sketches.len(),
            workers
        );
        let task = rm.create_task(name)?;
        let mut graphs = Vec::with_capacity(workers);
        for shard in 0..workers {
            let graph = factory(shard)?;
            for component in &graph.components {
                rm.attach(task, *component)?;
            }
            graphs.push(SoloGraph {
                capsule: graph.capsule,
                entry: graph.entry,
                drain: graph.drain,
            });
        }
        Ok(Self {
            graphs,
            steering: BucketMap::identity(workers),
            bucket_load: BucketLoad::new(),
            sketches,
            counters: (0..workers).map(|_| ShardCounters::default()).collect(),
            migrations: 0,
            rm,
            task,
            spec,
        })
    }

    /// Number of shards (replicas).
    pub fn workers(&self) -> usize {
        self.graphs.len()
    }

    /// `shard`'s hosting capsule — the reflective mutation surface the
    /// declarative patch applier (and tests) reconfigure through.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn capsule(&self, shard: usize) -> Arc<Capsule> {
        Arc::clone(&self.graphs[shard].capsule)
    }

    /// Re-points `shard`'s ingress — the caller is always at a batch
    /// boundary, so this is a plain assignment (the solo twin of the
    /// threaded pipeline's `set_entry`).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn set_entry(&mut self, shard: usize, entry: Arc<dyn IPacketPush>) {
        self.graphs[shard].entry = entry;
    }

    /// The configuring spec.
    pub fn spec(&self) -> ShardSpec {
        self.spec
    }

    /// The pipeline's task in the resources meta-model.
    pub fn task(&self) -> TaskId {
        self.task
    }

    /// The resource manager the pipeline bills.
    pub fn resources(&self) -> &Arc<ResourceManager> {
        &self.rm
    }

    /// `shard`'s ingress entry (the factory's `ShardGraph::entry`).
    pub fn entry(&self, shard: usize) -> &Arc<dyn IPacketPush> {
        &self.graphs[shard].entry
    }

    /// RSS-dispatches a batch through the installed steering table and
    /// runs every non-empty shard **in index order** on this thread —
    /// the deterministic serialisation of the threaded dispatch. Each
    /// shard's slice is metered (packets into the shared bucket
    /// window, bytes into the shard's sketch — only when sharded, the
    /// same gate as the threaded build), pushed through the replica's
    /// entry, verdict-accounted (guard vs graph causes), and drained.
    /// Returns the number of shards that received packets.
    pub fn dispatch(&mut self, batch: PacketBatch) -> usize {
        if self.graphs.len() <= 1 {
            if batch.is_empty() {
                return 0;
            }
            self.run_on_shard(0, batch, false);
            return 1;
        }
        let shared = batch.shard_split_with(&self.steering).into_shared();
        let mut ran = 0;
        for shard in 0..self.graphs.len() {
            if shared.shard_len(shard) == 0 {
                continue;
            }
            let mut part = PacketBatch::new();
            shared.range(shard).take_into(&mut part);
            self.run_on_shard(shard, part, true);
            ran += 1;
        }
        ran
    }

    /// Runs a pre-steered batch on `shard` as-is — the analogue of the
    /// threaded [`submit`](super::ShardedPipeline::submit) path, where
    /// steering already happened (multi-queue NIC model). The caller's
    /// steering decision must come from [`Self::bucket_map`].
    pub fn run_steered(&mut self, shard: usize, batch: PacketBatch) {
        if batch.is_empty() {
            return;
        }
        let metered = self.graphs.len() > 1;
        self.run_on_shard(shard, batch, metered);
    }

    /// The worker loop body, verbatim from the threaded
    /// `make_handler`: meter, snapshot entry, push, account by cause,
    /// drain.
    fn run_on_shard(&mut self, shard: usize, batch: PacketBatch, meter: bool) {
        let n = batch.len() as u64;
        if meter {
            self.bucket_load.record_batch(&batch);
            self.sketches[shard].record_batch(&batch);
        }
        let entry = Arc::clone(&self.graphs[shard].entry);
        let result = entry.push_batch(batch);
        let c = &self.counters[shard];
        c.batches.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        c.packets.fetch_add(n, std::sync::atomic::Ordering::Relaxed);
        c.accepted.fetch_add(
            result.accepted() as u64,
            std::sync::atomic::Ordering::Relaxed,
        );
        if result.dropped() > 0 {
            let guard = result
                .verdicts
                .iter()
                .filter(|v| matches!(v, Err(PushError::RateLimited)))
                .count() as u64;
            let graph = result.dropped() as u64 - guard;
            c.drop_cause(DropCause::Guard, guard);
            c.drop_cause(DropCause::Graph, graph);
        }
        if let Some(drain) = self.graphs[shard].drain.as_mut() {
            drain();
        }
    }

    /// Snapshot of the steering table.
    pub fn bucket_map(&self) -> BucketMap {
        self.steering.clone()
    }

    /// Migrations applied via [`Self::install_bucket_map`].
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Snapshot (peek, non-destructive) of the per-bucket packet
    /// window — same discipline as the threaded pipeline.
    pub fn bucket_loads(&self) -> Vec<u64> {
        self.bucket_load.snapshot()
    }

    /// `shard`'s flow sketch (the one the drive meters into — and the
    /// one the shard's guard should read).
    pub fn flow_sketch(&self, shard: usize) -> &Arc<FlowSketch> {
        &self.sketches[shard]
    }

    /// Merged per-flow heavy-hitter byte evidence across all shards.
    pub fn heavy_hitters(&self) -> Vec<HeavyHitter> {
        let tops: Vec<Vec<HeavyHitter>> = self.sketches.iter().map(|s| s.heavy_hitters()).collect();
        SpaceSaving::merge(SketchConfig::default().top_capacity, &tops)
    }

    /// Installs a new bucket → shard table. No quiesce is needed — the
    /// single-threaded caller is by definition between batches, which
    /// is exactly the boundary the threaded migration manufactures.
    /// Counts a migration epoch and bills `REBALANCES`, like the
    /// threaded install.
    ///
    /// # Panics
    ///
    /// Panics if `map` targets a different shard count.
    pub fn install_bucket_map(&mut self, map: BucketMap) -> MigrationReport {
        assert_eq!(
            map.shards(),
            self.graphs.len(),
            "bucket map targets {} shards, pipeline runs {}",
            map.shards(),
            self.graphs.len()
        );
        let moved_buckets = map.moved_buckets(&self.steering).len();
        self.steering = map;
        self.migrations += 1;
        let _ = self.rm.consume(self.task, classes::REBALANCES, 1);
        MigrationReport {
            moved_buckets,
            resubmitted: 0,
            dropped: 0,
            epoch: self.migrations,
        }
    }

    /// One turn of the autonomous control loop — the exact
    /// peek-decide-commit sequence of the threaded
    /// [`control_turn`](super::ShardedPipeline::control_turn), minus
    /// NIC drains: snapshot the packet window, shard loads, and (when
    /// the controller blends byte evidence) the sketch windows; let
    /// `ctl` decide; decay everything on a `Hold`, install + retire
    /// exactly the judged windows on a `Migrate`.
    pub fn control_turn(
        &mut self,
        ctl: &mut RebalanceController,
    ) -> Option<(RebalancePlan, MigrationReport)> {
        let window = self.bucket_load.snapshot();
        let loads = self.shard_loads();
        let current = self.bucket_map();
        let with_evidence = ctl.heavy_blend() > 0.0;
        let sketch_windows: Vec<_> = if with_evidence {
            self.sketches.iter().map(|s| s.snapshot()).collect()
        } else {
            Vec::new()
        };
        let heavy = if with_evidence {
            SpaceSaving::merge(
                SketchConfig::default().top_capacity,
                &sketch_windows
                    .iter()
                    .map(|w| w.top.clone())
                    .collect::<Vec<_>>(),
            )
        } else {
            Vec::new()
        };
        match ctl.decide_with_evidence(&window, &loads, &heavy, self.spec.ring_capacity, &current) {
            ControlDecision::Gathering => None,
            ControlDecision::Hold => {
                self.bucket_load.decay(ctl.decay());
                for sketch in &self.sketches {
                    sketch.decay(ctl.decay());
                }
                None
            }
            ControlDecision::Migrate(plan) => {
                let report = self.install_bucket_map(plan.map.clone());
                self.bucket_load.retire(&window);
                for (sketch, w) in self.sketches.iter().zip(&sketch_windows) {
                    sketch.retire(w);
                }
                Some((plan, report))
            }
        }
    }

    /// Aggregate counters over all shards (also rolls packet usage
    /// into the resources task, like the threaded `stats`).
    pub fn stats(&self) -> PipelineStats {
        self.sync_resources();
        let mut total = PipelineStats::default();
        for c in &self.counters {
            total.batches += c.batches.load(std::sync::atomic::Ordering::Relaxed);
            total.packets += c.packets.load(std::sync::atomic::Ordering::Relaxed);
            total.accepted += c.accepted.load(std::sync::atomic::Ordering::Relaxed);
            total.dropped += c.dropped.load(std::sync::atomic::Ordering::Relaxed);
        }
        total
    }

    /// One shard's counters.
    pub fn shard_stats(&self, shard: usize) -> PipelineStats {
        let c = &self.counters[shard];
        PipelineStats {
            batches: c.batches.load(std::sync::atomic::Ordering::Relaxed),
            packets: c.packets.load(std::sync::atomic::Ordering::Relaxed),
            accepted: c.accepted.load(std::sync::atomic::Ordering::Relaxed),
            dropped: c.dropped.load(std::sync::atomic::Ordering::Relaxed),
        }
    }

    /// Per-cause drop accounting; [`DropStats::total`] equals the
    /// aggregate `dropped` by construction. Ring- and worker-related
    /// causes stay zero — nothing can die here.
    pub fn drop_stats(&self) -> DropStats {
        let mut total = DropStats::default();
        for c in &self.counters {
            let s = c.drop_stats();
            total.ring_full += s.ring_full;
            total.dead_worker += s.dead_worker;
            total.resteer_shed += s.resteer_shed;
            total.guard += s.guard;
            total.graph += s.graph;
        }
        total
    }

    /// Per-shard load meters. Ring pressure reads 0 (no rings); the
    /// packet/batch meters carry the rebalance evidence.
    pub fn shard_loads(&self) -> Vec<ShardLoad> {
        (0..self.graphs.len())
            .map(|shard| ShardLoad {
                shard,
                packets: self.counters[shard]
                    .packets
                    .load(std::sync::atomic::Ordering::Relaxed),
                batches: self.counters[shard]
                    .batches
                    .load(std::sync::atomic::Ordering::Relaxed),
                in_flight: 0,
                ring_high_water: 0,
            })
            .collect()
    }

    fn sync_resources(&self) {
        for c in &self.counters {
            let seen = c.packets.load(std::sync::atomic::Ordering::Relaxed);
            let reported = c
                .reported
                .fetch_max(seen, std::sync::atomic::Ordering::Relaxed);
            let delta = seen.saturating_sub(reported);
            if delta > 0 {
                let _ = self.rm.consume(self.task, classes::PACKETS, delta);
            }
        }
    }

    /// Rolls counters up, releases the resources task, and returns the
    /// final aggregate stats.
    pub fn shutdown(self) -> PipelineStats {
        let stats = self.stats();
        let _ = self.rm.release_task(self.task);
        stats
    }
}

impl fmt::Debug for SoloPipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SoloPipeline({} shards, {} migrations)",
            self.graphs.len(),
            self.migrations
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{register_packet_interfaces, BatchResult, PushResult};
    use crate::shard::{RebalancePolicy, WeightedRebalancePolicy};
    use netkit_packet::flow::FlowKey;
    use netkit_packet::packet::{Packet, PacketBuilder};
    use opencom::runtime::Runtime;
    use parking_lot::Mutex;

    /// Terminal element logging `(shard, src_port)` arrivals.
    struct Recorder {
        shard: usize,
        log: Arc<Mutex<Vec<(usize, u16)>>>,
    }

    impl IPacketPush for Recorder {
        fn push(&self, pkt: Packet) -> PushResult {
            self.log
                .lock()
                .push((self.shard, pkt.udp_v4().expect("udp").src_port));
            Ok(())
        }

        fn push_batch(&self, mut batch: PacketBatch) -> BatchResult {
            let mut result = BatchResult::with_capacity(batch.len());
            for pkt in batch.drain_all() {
                result.record(self.push(pkt));
            }
            result
        }
    }

    #[allow(clippy::type_complexity)]
    fn recorder_pipe(workers: usize) -> (SoloPipeline, Arc<Mutex<Vec<(usize, u16)>>>) {
        let log: Arc<Mutex<Vec<(usize, u16)>>> = Arc::new(Mutex::new(Vec::new()));
        let rm = Arc::new(ResourceManager::new());
        let log2 = Arc::clone(&log);
        let pipe = SoloPipeline::build(
            &format!("solo-test-{workers}"),
            ShardSpec::new(workers),
            rm,
            move |shard| {
                let rt = Runtime::new();
                register_packet_interfaces(&rt);
                let capsule = Capsule::new("shard", &rt);
                let entry: Arc<dyn IPacketPush> = Arc::new(Recorder {
                    shard,
                    log: Arc::clone(&log2),
                });
                Ok(ShardGraph::new(capsule, entry))
            },
        )
        .expect("pipeline builds");
        (pipe, log)
    }

    fn flow(port: u16) -> Packet {
        PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", port, 80).build()
    }

    #[test]
    fn dispatch_steers_by_flow_in_shard_order() {
        let (mut pipe, log) = recorder_pipe(4);
        let pkts: Vec<Packet> = (0..32u16).map(|i| flow(7000 + i)).collect();
        let expect_shard: Vec<usize> = pkts
            .iter()
            .map(|p| FlowKey::from_packet(p).unwrap().shard_for(4))
            .collect();
        pipe.dispatch(PacketBatch::from_packets(pkts));
        let log = log.lock();
        assert_eq!(log.len(), 32);
        // Shard visit order is index order, and each packet landed on
        // its RSS shard.
        let mut last_shard = 0;
        for &(shard, port) in log.iter() {
            assert!(shard >= last_shard, "shards visited in index order");
            last_shard = shard;
            assert_eq!(shard, expect_shard[(port - 7000) as usize]);
        }
        assert_eq!(pipe.stats().packets, 32);
        assert_eq!(pipe.stats().accepted, 32);
        assert_eq!(pipe.stats().dropped, 0);
    }

    #[test]
    fn single_shard_skips_metering() {
        let (mut pipe, _log) = recorder_pipe(1);
        pipe.dispatch((0..8u16).map(|i| flow(9000 + i)).collect());
        assert_eq!(pipe.bucket_loads().iter().sum::<u64>(), 0);
        assert_eq!(pipe.stats().packets, 8);
    }

    #[test]
    fn installed_map_redirects_and_counts_migration() {
        let (mut pipe, log) = recorder_pipe(2);
        let pkts: Vec<Packet> = (0..8u16).map(|i| flow(7000 + i)).collect();
        let mut map = pipe.bucket_map();
        for p in &pkts {
            map.set(FlowKey::from_packet(p).unwrap().bucket(), 1);
        }
        let report = pipe.install_bucket_map(map);
        assert!(report.moved_buckets > 0);
        assert_eq!(pipe.migrations(), 1);
        pipe.dispatch(PacketBatch::from_packets(pkts));
        assert!(log.lock().iter().all(|&(shard, _)| shard == 1));
    }

    #[test]
    fn control_turn_migrates_a_colocated_window() {
        let (mut pipe, _log) = recorder_pipe(2);
        let mut ctl = RebalanceController::new(
            WeightedRebalancePolicy {
                base: RebalancePolicy {
                    max_imbalance: 1.25,
                    min_samples: 8,
                },
                pressure_weight: 0.0,
                decay: 0.5,
            },
            0,
        );
        // Flows all colocated on shard 0 under the identity table.
        let mut colocated = Vec::new();
        let mut port = 7000u16;
        while colocated.len() < 32 {
            let p = flow(port);
            if FlowKey::from_packet(&p).unwrap().shard_for(2) == 0 {
                colocated.push(p);
            }
            port += 1;
        }
        pipe.dispatch(PacketBatch::from_packets(colocated));
        let migrated = pipe.control_turn(&mut ctl);
        assert!(migrated.is_some(), "colocation must migrate");
        assert_eq!(pipe.migrations(), 1);
        // The judged window was retired.
        assert_eq!(pipe.bucket_loads().iter().sum::<u64>(), 0);
    }

    #[test]
    fn drop_causes_sum_to_aggregate() {
        // A graph that rejects every packet as rate-limited on shard 0
        // and as vetoed elsewhere.
        let rm = Arc::new(ResourceManager::new());
        struct Reject(bool);
        impl IPacketPush for Reject {
            fn push(&self, _pkt: Packet) -> PushResult {
                if self.0 {
                    Err(PushError::RateLimited)
                } else {
                    Err(PushError::Veto("rejected".into()))
                }
            }
        }
        let mut pipe = SoloPipeline::build("solo-reject", ShardSpec::new(2), rm, |shard| {
            let rt = Runtime::new();
            register_packet_interfaces(&rt);
            let capsule = Capsule::new("shard", &rt);
            let entry: Arc<dyn IPacketPush> = Arc::new(Reject(shard == 0));
            Ok(ShardGraph::new(capsule, entry))
        })
        .expect("builds");
        pipe.dispatch((0..32u16).map(|i| flow(7000 + i)).collect());
        let stats = pipe.stats();
        let drops = pipe.drop_stats();
        assert_eq!(stats.dropped, 32);
        assert_eq!(drops.total(), 32);
        assert!(drops.guard > 0, "shard 0 verdicts file under guard");
        assert!(drops.graph > 0, "shard 1 verdicts file under graph");
        assert_eq!(drops.ring_full + drops.dead_worker + drops.resteer_shed, 0);
    }
}
