//! The stratum-2 **Router CF** (paper §5).
//!
//! The Router CF "accepts, as plug-ins, OpenCOM components that perform
//! arbitrary user-defined packet-forwarding functions" and enforces, *at
//! run time*, the three rules of paper §5:
//!
//! * **R1** — compliant components must support appropriate numbers and
//!   combinations of the packet-passing interfaces/receptacles
//!   [`IPacketPush`] /
//!   [`IPacketPull`](crate::api::IPacketPull); interfaces may be added and
//!   removed dynamically *as long as the rules remain satisfied* (enforced
//!   by [`RouterCf::recheck`]).
//! * **R2** — components may optionally export
//!   [`IClassifier`]; if they do, they must
//!   honour installed [`FilterSpec`]s by emitting
//!   each matching packet on the named outgoing interface. The CF verifies
//!   this *behaviourally* with a conformance probe
//!   ([`RouterCf::probe_classifier`]).
//! * **R3** — components may be composite, in which case all internal
//!   constituents must recursively conform and the composite must contain
//!   a *controller* component (see [`crate::composite`]).
//!
//! Per-component dynamic constraints (interceptors on OpenCOM's `bind`)
//! and their ACL policing are inherited from [`opencom::cf::Cf`].

use std::fmt;
use std::sync::Arc;

use opencom::binding::BindConstraint;
use opencom::capsule::Capsule;
use opencom::cf::{Acl, Cf, CfOperation, CfRules, Principal};
use opencom::component::Component;
use opencom::error::{Error, Result};
use opencom::ident::{BindingId, ComponentId, InterfaceId};

use netkit_packet::packet::PacketBuilder;

use crate::api::{
    FilterPattern, FilterSpec, IClassifier, IPacketPush, ICLASSIFIER, IPACKET_PULL, IPACKET_PUSH,
};
use crate::composite::{IComposite, ICOMPOSITE};

/// The rule set of the paper's Router CF (R1–R3 above).
#[derive(Debug, Default, Clone, Copy)]
pub struct RouterRules;

impl RouterRules {
    fn packet_surface(comp: &Arc<dyn Component>) -> (usize, usize) {
        let ifaces = comp.core().interfaces();
        let n_ifaces = ifaces
            .iter()
            .filter(|i| **i == IPACKET_PUSH || **i == IPACKET_PULL)
            .count();
        let n_receps = comp
            .core()
            .receptacle_infos()
            .iter()
            .filter(|r| r.interface == IPACKET_PUSH || r.interface == IPACKET_PULL)
            .count();
        (n_ifaces, n_receps)
    }

    fn violation(rule: impl Into<String>) -> Error {
        Error::CfViolation {
            framework: "router".into(),
            rule: rule.into(),
        }
    }
}

impl CfRules for RouterRules {
    fn name(&self) -> &str {
        "router"
    }

    fn admit(&self, comp: &Arc<dyn Component>) -> Result<()> {
        // R1: at least one packet-passing interface or receptacle.
        let (n_ifaces, n_receps) = Self::packet_surface(comp);
        if n_ifaces + n_receps == 0 {
            return Err(Self::violation(
                "R1: component exports no IPacketPush/IPacketPull interface or receptacle",
            ));
        }

        // R2 (structural half): a classifier must have somewhere to emit —
        // at least one outgoing packet receptacle for its named outputs.
        // Composites delegate to an internal classifier whose receptacles
        // are checked recursively under R3, so they are exempt here.
        let exports_classifier = comp.core().interfaces().contains(&ICLASSIFIER);
        if exports_classifier && n_receps == 0 && !comp.core().descriptor().composite {
            return Err(Self::violation(
                "R2: IClassifier exported but no outgoing packet receptacle to honour filters on",
            ));
        }

        // R3: composites must carry a controller and conforming constituents.
        if comp.core().descriptor().composite {
            let iref = comp.core().query_interface(ICOMPOSITE).map_err(|_| {
                Self::violation("R3: composite exports no IComposite meta-interface")
            })?;
            let inner: Arc<dyn IComposite> = iref
                .downcast()
                .ok_or_else(|| Self::violation("R3: IComposite has the wrong shape"))?;
            if inner.controller_id().is_none() {
                return Err(Self::violation("R3: composite has no controller component"));
            }
            for (label, constituent) in inner.constituent_components() {
                self.admit(&constituent).map_err(|e| {
                    Self::violation(format!("R3: constituent `{label}` does not conform: {e}"))
                })?;
            }
        }
        Ok(())
    }
}

/// Result of a behavioural classifier-conformance probe
/// ([`RouterCf::probe_classifier`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeReport {
    /// Packets the probe sent.
    pub sent: u64,
    /// Packets that arrived on the output named by the probe filter.
    pub on_expected_output: u64,
    /// Packets that leaked onto other outputs.
    pub misrouted: u64,
}

impl ProbeReport {
    /// True when every matching probe packet surfaced on the filter's
    /// named output and nowhere else.
    pub fn conformant(&self) -> bool {
        self.sent == self.on_expected_output && self.misrouted == 0
    }
}

/// Counting sink used by the conformance probe.
#[derive(Debug)]
struct ProbeSink {
    core: opencom::component::ComponentCore,
    hits: std::sync::atomic::AtomicU64,
}

impl ProbeSink {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            core: opencom::component::ComponentCore::new(
                opencom::component::ComponentDescriptor::new(
                    "netkit.ProbeSink",
                    opencom::ident::Version::new(1, 0, 0),
                ),
            ),
            hits: std::sync::atomic::AtomicU64::new(0),
        })
    }

    fn hits(&self) -> u64 {
        self.hits.load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl IPacketPush for ProbeSink {
    fn push(&self, _pkt: netkit_packet::packet::Packet) -> crate::api::PushResult {
        self.hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Ok(())
    }
}

impl Component for ProbeSink {
    fn core(&self) -> &opencom::component::ComponentCore {
        &self.core
    }
    fn publish(self: Arc<Self>, reg: &opencom::component::Registrar<'_>) {
        let push: Arc<dyn IPacketPush> = self.clone();
        reg.expose(IPACKET_PUSH, &push);
    }
}

/// The Router component framework: an [`opencom::cf::Cf`] specialised with
/// [`RouterRules`] plus router-specific management operations.
///
/// ```
/// use std::sync::Arc;
/// use opencom::cf::Principal;
/// use opencom::runtime::Runtime;
/// use opencom::capsule::Capsule;
/// use netkit_router::api::register_packet_interfaces;
/// use netkit_router::cf::RouterCf;
/// use netkit_router::elements::{ClassifierEngine, Discard};
///
/// let rt = Runtime::new();
/// register_packet_interfaces(&rt);
/// let capsule = Capsule::new("node", &rt);
/// let cf = RouterCf::new("router", Arc::clone(&capsule));
/// let sys = Principal::system();
///
/// let classifier = ClassifierEngine::new();
/// let sink = Discard::new();
/// let c = capsule.adopt(classifier)?;
/// let s = capsule.adopt(sink)?;
/// cf.plug(&sys, c)?;
/// cf.plug(&sys, s)?;
/// cf.bind(&sys, c, "out", "default", s, netkit_router::api::IPACKET_PUSH)?;
/// # Ok::<(), opencom::error::Error>(())
/// ```
pub struct RouterCf {
    inner: Cf,
}

impl RouterCf {
    /// Creates a Router CF over `capsule`.
    pub fn new(name: impl Into<String>, capsule: Arc<Capsule>) -> Self {
        Self {
            inner: Cf::new(name, capsule, Arc::new(RouterRules)),
        }
    }

    /// The underlying generic CF (rules, members, constraints).
    pub fn inner(&self) -> &Cf {
        &self.inner
    }

    /// The CF's name.
    pub fn name(&self) -> &str {
        self.inner.name()
    }

    /// The governing capsule.
    pub fn capsule(&self) -> &Arc<Capsule> {
        self.inner.capsule()
    }

    /// The ACL policing management operations.
    pub fn acl(&self) -> &Acl {
        self.inner.acl()
    }

    /// Current members, in plug order.
    pub fn members(&self) -> Vec<ComponentId> {
        self.inner.members()
    }

    /// Admits a component into the CF (runs rules R1–R3).
    ///
    /// # Errors
    ///
    /// Propagates ACL and [`Error::CfViolation`] failures.
    pub fn plug(&self, principal: &Principal, id: ComponentId) -> Result<()> {
        self.inner.plug(principal, id)
    }

    /// Unplugs a member.
    ///
    /// # Errors
    ///
    /// Propagates ACL failures and unknown-member errors.
    pub fn unplug(&self, principal: &Principal, id: ComponentId) -> Result<()> {
        self.inner.unplug(principal, id)
    }

    /// Binds two members, running rule and constraint checks first.
    ///
    /// # Errors
    ///
    /// Propagates ACL, rule, constraint, and capsule bind errors.
    pub fn bind(
        &self,
        principal: &Principal,
        src: ComponentId,
        receptacle: &str,
        label: &str,
        dst: ComponentId,
        interface: InterfaceId,
    ) -> Result<BindingId> {
        self.inner
            .bind(principal, src, receptacle, label, dst, interface)
    }

    /// Removes a binding.
    ///
    /// # Errors
    ///
    /// Propagates ACL and capsule errors.
    pub fn unbind(&self, principal: &Principal, binding: BindingId) -> Result<()> {
        self.inner.unbind(principal, binding)
    }

    /// Installs a dynamic bind-time constraint (ACL-policed).
    ///
    /// # Errors
    ///
    /// Fails with [`Error::AccessDenied`] without an `AddConstraint` grant.
    pub fn add_constraint(
        &self,
        principal: &Principal,
        constraint: Arc<dyn BindConstraint>,
    ) -> Result<()> {
        self.inner.add_constraint(principal, constraint)
    }

    /// Removes a dynamic constraint by name (ACL-policed).
    ///
    /// # Errors
    ///
    /// Propagates ACL failures and unknown-name errors.
    pub fn remove_constraint(&self, principal: &Principal, name: &str) -> Result<()> {
        self.inner.remove_constraint(principal, name)
    }

    /// Re-checks every member against R1–R3; call after dynamic interface
    /// addition/removal ("as long as the CF's rules remain satisfied").
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn recheck(&self) -> Result<()> {
        self.inner.recheck()
    }

    /// ACL-gated access to a member's `IClassifier` (Fig. 3's "Access to
    /// IClassifier interfaces" arrow).
    ///
    /// # Errors
    ///
    /// * [`Error::AccessDenied`] without an `Intercept` grant.
    /// * [`Error::InterfaceNotFound`] if the member has no classifier.
    pub fn classifier_access(
        &self,
        principal: &Principal,
        id: ComponentId,
    ) -> Result<Arc<dyn IClassifier>> {
        self.acl().check(principal, CfOperation::Intercept)?;
        let iref = self.capsule().query_interface(id, ICLASSIFIER)?;
        iref.downcast().ok_or(Error::InterfaceNotFound {
            component: id,
            interface: ICLASSIFIER,
        })
    }

    /// Behavioural half of rule R2: instantiates a *fresh* instance of the
    /// member's type in a scratch capsule, binds two probe sinks, installs
    /// a filter targeting one of them, and verifies every matching packet
    /// surfaces on the named output (and only there).
    ///
    /// The member's type must be in the runtime's component registry so a
    /// fresh instance can be created; probing a live member would disturb
    /// its bindings.
    ///
    /// # Errors
    ///
    /// * [`Error::UnknownComponentType`] if the type is not registered.
    /// * [`Error::InterfaceNotFound`] if the fresh instance lacks
    ///   `IClassifier`.
    /// * [`Error::CfViolation`] if the probe finds non-conformant routing.
    pub fn probe_classifier(&self, id: ComponentId) -> Result<ProbeReport> {
        let member = self.capsule().component(id)?;
        let type_name = member.core().descriptor().type_name.clone();

        let scratch = Capsule::new("router-probe", self.capsule().runtime());
        let fresh = scratch.instantiate(&type_name)?;
        let probe_out = ProbeSink::new();
        let other_out = ProbeSink::new();
        let probe_id = scratch.adopt(probe_out.clone())?;
        let other_id = scratch.adopt(other_out.clone())?;

        // Use the component's declared packet receptacle for the probe taps.
        let recep = scratch
            .component(fresh)?
            .core()
            .receptacle_infos()
            .into_iter()
            .find(|r| r.interface == IPACKET_PUSH)
            .ok_or_else(|| RouterRules::violation("R2 probe: no IPacketPush receptacle"))?;
        scratch.bind(fresh, &recep.name, "__probe", probe_id, IPACKET_PUSH)?;
        scratch.bind(fresh, &recep.name, "__other", other_id, IPACKET_PUSH)?;

        let classifier: Arc<dyn IClassifier> = scratch
            .query_interface(fresh, ICLASSIFIER)?
            .downcast()
            .ok_or(Error::InterfaceNotFound {
                component: fresh,
                interface: ICLASSIFIER,
            })?;
        classifier.register_filter(FilterSpec::new(
            FilterPattern::any()
                .protocol(17)
                .dst_port_range(50_000, 50_000),
            "__probe",
            i32::MAX,
        ))?;

        let pusher: Arc<dyn IPacketPush> = scratch
            .query_interface(fresh, IPACKET_PUSH)?
            .downcast()
            .ok_or(Error::InterfaceNotFound {
                component: fresh,
                interface: IPACKET_PUSH,
            })?;

        // Probe both transfer styles: half the packets go through the
        // scalar path, half as one batch — R2 conformance now covers the
        // batch contract (matching packets must surface on the named
        // output regardless of how they were delivered).
        const N: u64 = 8;
        let probe_pkt = |i: u64| {
            PacketBuilder::udp_v4("192.0.2.1", "198.51.100.1", 1000 + i as u16, 50_000)
                .payload(b"probe")
                .build()
        };
        for i in 0..N / 2 {
            // Drops are conformance failures, surfaced via the report below.
            let _ = pusher.push(probe_pkt(i));
        }
        let batch: netkit_packet::batch::PacketBatch = (N / 2..N).map(probe_pkt).collect();
        let _ = pusher.push_batch(batch);

        let report = ProbeReport {
            sent: N,
            on_expected_output: probe_out.hits(),
            misrouted: other_out.hits(),
        };
        if report.conformant() {
            Ok(report)
        } else {
            Err(RouterRules::violation(format!(
                "R2 probe: {}/{} packets reached the named output, {} misrouted",
                report.on_expected_output, report.sent, report.misrouted
            )))
        }
    }
}

impl fmt::Debug for RouterCf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RouterCf({:?})", self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::register_packet_interfaces;
    use crate::elements::{ClassifierEngine, Counter, Discard, DropTailQueue};
    use opencom::component::{ComponentCore, ComponentDescriptor, Registrar};
    use opencom::ident::Version;
    use opencom::runtime::Runtime;

    fn setup() -> (Arc<Runtime>, Arc<Capsule>, RouterCf) {
        let rt = Runtime::new();
        register_packet_interfaces(&rt);
        let capsule = Capsule::new("t", &rt);
        let cf = RouterCf::new("router", Arc::clone(&capsule));
        (rt, capsule, cf)
    }

    /// A component with no packet interfaces at all.
    struct NotAPacketComponent {
        core: ComponentCore,
    }
    impl Component for NotAPacketComponent {
        fn core(&self) -> &ComponentCore {
            &self.core
        }
        fn publish(self: Arc<Self>, _reg: &Registrar<'_>) {}
    }

    #[test]
    fn r1_rejects_components_without_packet_surface() {
        let (_rt, capsule, cf) = setup();
        let id = capsule
            .adopt(Arc::new(NotAPacketComponent {
                core: ComponentCore::new(ComponentDescriptor::new("t.None", Version::new(1, 0, 0))),
            }))
            .unwrap();
        let err = cf.plug(&Principal::system(), id).unwrap_err();
        assert!(err.to_string().contains("R1"), "{err}");
    }

    #[test]
    fn r1_admits_standard_elements() {
        let (_rt, capsule, cf) = setup();
        let sys = Principal::system();
        for comp in [
            capsule.adopt(ClassifierEngine::new()).unwrap(),
            capsule.adopt(Discard::new()).unwrap(),
            capsule.adopt(Counter::new()).unwrap(),
            capsule.adopt(DropTailQueue::new(16)).unwrap(),
        ] {
            cf.plug(&sys, comp).unwrap();
        }
        assert_eq!(cf.members().len(), 4);
        cf.recheck().unwrap();
    }

    /// Classifier that exports IClassifier but has no outgoing receptacle.
    struct BadClassifier {
        core: ComponentCore,
    }
    impl IPacketPush for BadClassifier {
        fn push(&self, _pkt: netkit_packet::packet::Packet) -> crate::api::PushResult {
            Ok(())
        }
    }
    impl IClassifier for BadClassifier {
        fn register_filter(&self, _spec: FilterSpec) -> Result<crate::api::FilterId> {
            Ok(crate::api::FilterId::next())
        }
        fn remove_filter(&self, _id: crate::api::FilterId) -> Result<()> {
            Ok(())
        }
        fn filters(&self) -> Vec<(crate::api::FilterId, FilterSpec)> {
            Vec::new()
        }
    }
    impl Component for BadClassifier {
        fn core(&self) -> &ComponentCore {
            &self.core
        }
        fn publish(self: Arc<Self>, reg: &Registrar<'_>) {
            let push: Arc<dyn IPacketPush> = self.clone();
            reg.expose(IPACKET_PUSH, &push);
            let cls: Arc<dyn IClassifier> = self.clone();
            reg.expose(ICLASSIFIER, &cls);
        }
    }

    #[test]
    fn r2_structural_rejects_classifier_without_outputs() {
        let (_rt, capsule, cf) = setup();
        let id = capsule
            .adopt(Arc::new(BadClassifier {
                core: ComponentCore::new(ComponentDescriptor::new(
                    "t.BadCls",
                    Version::new(1, 0, 0),
                )),
            }))
            .unwrap();
        let err = cf.plug(&Principal::system(), id).unwrap_err();
        assert!(err.to_string().contains("R2"), "{err}");
    }

    #[test]
    fn r2_probe_passes_for_conformant_classifier() {
        let (rt, capsule, cf) = setup();
        rt.registry().register(
            "netkit.Classifier",
            Version::new(1, 0, 0),
            Box::new(|| ClassifierEngine::new() as Arc<dyn Component>),
        );
        let id = capsule.adopt(ClassifierEngine::new()).unwrap();
        cf.plug(&Principal::system(), id).unwrap();
        let report = cf.probe_classifier(id).unwrap();
        assert!(report.conformant());
        assert_eq!(report.sent, 8);
    }

    /// A classifier that accepts filters but ignores them, always emitting
    /// on whatever output happens to be bound first — non-conformant.
    struct LyingClassifier {
        core: ComponentCore,
        outs: opencom::receptacle::Receptacle<dyn IPacketPush>,
    }
    impl LyingClassifier {
        fn new() -> Arc<Self> {
            Arc::new(Self {
                core: ComponentCore::new(ComponentDescriptor::new(
                    "t.LyingCls",
                    Version::new(1, 0, 0),
                )),
                outs: opencom::receptacle::Receptacle::multi("out", IPACKET_PUSH),
            })
        }
    }
    impl IPacketPush for LyingClassifier {
        fn push(&self, pkt: netkit_packet::packet::Packet) -> crate::api::PushResult {
            // Deliberately ignores filter semantics.
            self.outs
                .with_labelled("__other", |n| n.push(pkt))
                .unwrap_or(Err(crate::api::PushError::Unbound))
        }
    }
    impl IClassifier for LyingClassifier {
        fn register_filter(&self, _spec: FilterSpec) -> Result<crate::api::FilterId> {
            Ok(crate::api::FilterId::next())
        }
        fn remove_filter(&self, _id: crate::api::FilterId) -> Result<()> {
            Ok(())
        }
        fn filters(&self) -> Vec<(crate::api::FilterId, FilterSpec)> {
            Vec::new()
        }
    }
    impl Component for LyingClassifier {
        fn core(&self) -> &ComponentCore {
            &self.core
        }
        fn publish(self: Arc<Self>, reg: &Registrar<'_>) {
            let push: Arc<dyn IPacketPush> = self.clone();
            reg.expose(IPACKET_PUSH, &push);
            let cls: Arc<dyn IClassifier> = self.clone();
            reg.expose(ICLASSIFIER, &cls);
            reg.receptacle(&self.outs);
        }
    }

    #[test]
    fn r2_probe_catches_lying_classifier() {
        let (rt, capsule, cf) = setup();
        rt.registry().register(
            "t.LyingCls",
            Version::new(1, 0, 0),
            Box::new(|| LyingClassifier::new() as Arc<dyn Component>),
        );
        let id = capsule.adopt(LyingClassifier::new()).unwrap();
        cf.plug(&Principal::system(), id).unwrap();
        let err = cf.probe_classifier(id).unwrap_err();
        assert!(err.to_string().contains("R2 probe"), "{err}");
    }

    #[test]
    fn probe_requires_registered_type() {
        let (_rt, capsule, cf) = setup();
        let id = capsule.adopt(ClassifierEngine::new()).unwrap();
        cf.plug(&Principal::system(), id).unwrap();
        assert!(matches!(
            cf.probe_classifier(id),
            Err(Error::UnknownComponentType { .. })
        ));
    }

    #[test]
    fn classifier_access_is_acl_gated() {
        let (_rt, capsule, cf) = setup();
        let sys = Principal::system();
        let id = capsule.adopt(ClassifierEngine::new()).unwrap();
        cf.plug(&sys, id).unwrap();

        let eve = Principal::new("eve");
        assert!(matches!(
            cf.classifier_access(&eve, id),
            Err(Error::AccessDenied { .. })
        ));
        cf.acl().grant(eve.clone(), CfOperation::Intercept);
        let cls = cf.classifier_access(&eve, id).unwrap();
        assert!(cls.filters().is_empty());
    }

    #[test]
    fn bind_requires_membership_of_both_endpoints() {
        let (_rt, capsule, cf) = setup();
        let sys = Principal::system();
        let a = capsule.adopt(ClassifierEngine::new()).unwrap();
        let b = capsule.adopt(Discard::new()).unwrap();
        cf.plug(&sys, a).unwrap();
        // b not plugged.
        let err = cf
            .bind(&sys, a, "out", "default", b, IPACKET_PUSH)
            .unwrap_err();
        assert!(matches!(err, Error::CfViolation { .. }));
        cf.plug(&sys, b).unwrap();
        cf.bind(&sys, a, "out", "default", b, IPACKET_PUSH).unwrap();
    }

    #[test]
    fn dynamic_interface_retraction_is_caught_by_recheck() {
        let (_rt, capsule, cf) = setup();
        let sys = Principal::system();
        let comp = Discard::new();
        let id = capsule.adopt(comp.clone()).unwrap();
        cf.plug(&sys, id).unwrap();
        cf.recheck().unwrap();
        comp.core().retract_interface(IPACKET_PUSH).unwrap();
        let err = cf.recheck().unwrap_err();
        assert!(err.to_string().contains("R1"), "{err}");
    }
}
