//! # netkit-router — the stratum-2 Router component framework
//!
//! Rust reproduction of the **Router CF** from *"Reflective
//! Middleware-based Programmable Networking"* (Coulson et al., RM2003):
//! a component framework that "accepts, as plug-ins, OpenCOM components
//! that perform arbitrary user-defined packet-forwarding functions"
//! (paper §5).
//!
//! * [`api`] — the packet-passing interfaces of Figure 2:
//!   [`IPacketPush`], [`IPacketPull`],
//!   and [`IClassifier`] with its
//!   [`FilterSpec`] language, plus interception wrappers
//!   and IPC stubs/skeletons for isolated hosting.
//! * [`cf`] — the Router CF itself: run-time-checked admission rules
//!   R1–R3, behavioural classifier conformance probing, ACL-policed
//!   management, dynamic bind-time constraints.
//! * [`composite`] — Figure 3 composites: nested CF instances with a
//!   *controller* constituent, topology constraints, hot replacement, and
//!   out-of-capsule (isolated) constituents.
//! * [`elements`] — the standard in-band element library: device
//!   adapters, protocol recogniser, IPv4/IPv6 processors, classifier
//!   engine, queues (drop-tail, RED), schedulers (priority, DRR, WFQ),
//!   token-bucket shaper/policer/meter, counters and taps.
//! * [`flow`] — the stateful services layer: per-shard single-writer
//!   flow tables keyed by the canonical bidirectional flow key, and
//!   the stateful elements on top ([`flow::ConnTracker`],
//!   [`flow::Nat44`], [`flow::L4LoadBalancer`]).
//! * [`routing`] — longest-prefix-match tables (binary tries) for IPv4
//!   and IPv6.
//! * [`shard`] — the sharded dataplane: per-worker element-graph
//!   replicas ([`shard::ShardedPipeline`]) fed by RSS flow-affine
//!   dispatch, with per-shard counters rolled up into one resources
//!   task, epoch-quiesced atomic reconfiguration, and the autonomous
//!   reflective control loop ([`shard::control::ControlLoop`]) that
//!   rebalances a skewed placement with no external caller.
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use opencom::capsule::Capsule;
//! use opencom::cf::Principal;
//! use opencom::runtime::Runtime;
//! use netkit_packet::packet::PacketBuilder;
//! use netkit_router::api::{register_packet_interfaces, IPacketPush, IPACKET_PUSH};
//! use netkit_router::cf::RouterCf;
//! use netkit_router::elements::{ClassifierEngine, Counter, Discard};
//!
//! // A capsule is the address-space analogue; the runtime carries the
//! // meta-models.
//! let rt = Runtime::new();
//! register_packet_interfaces(&rt);
//! let capsule = Capsule::new("node", &rt);
//! let cf = RouterCf::new("router", Arc::clone(&capsule));
//! let sys = Principal::system();
//!
//! // classifier -> counter -> discard
//! let cls = capsule.adopt(ClassifierEngine::new())?;
//! let cnt = capsule.adopt(Counter::new())?;
//! let sink = capsule.adopt(Discard::new())?;
//! for id in [cls, cnt, sink] { cf.plug(&sys, id)?; }
//! cf.bind(&sys, cls, "out", "default", cnt, IPACKET_PUSH)?;
//! cf.bind(&sys, cnt, "out", "", sink, IPACKET_PUSH)?;
//!
//! let input: Arc<dyn IPacketPush> =
//!     capsule.query_interface(cls, IPACKET_PUSH)?.downcast().unwrap();
//! input.push(PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 5, 7).build()).unwrap();
//! # Ok::<(), opencom::error::Error>(())
//! ```

#![warn(missing_docs)]

pub mod api;
pub mod cf;
pub mod composite;
pub mod desc;
pub mod elements;
pub mod flow;
pub mod routing;
pub mod shard;

pub use api::{
    register_packet_interfaces, FilterId, FilterPattern, FilterSpec, IClassifier, IPacketPull,
    IPacketPush, PushError, PushResult, ICLASSIFIER, IPACKET_PULL, IPACKET_PUSH,
};
pub use cf::{ProbeReport, RouterCf, RouterRules};
pub use composite::{
    Composite, CompositeBuilder, IComposite, IController, ICOMPOSITE, ICONTROLLER,
};
pub use flow::{ConnTracker, L4LoadBalancer, Nat44};
pub use routing::{PrefixParseError, RouteEntry, RoutingTable};
pub use shard::{ControlLoop, PipelineStats, ShardGraph, ShardedPipeline};
