//! The classifier engine — the paper's flagship Router-CF plug-in.
//!
//! Exports [`IClassifier`] (Fig. 2): `register_filter()` installs
//! [`FilterSpec`]s at run time, and the component "must honour the
//! semantics of installed filter specifications in terms of the
//! particular named outgoing `IPacketPush` … interface(s) on which each
//! incoming packet should be emitted" (paper §5).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use netkit_packet::batch::PacketBatch;
use netkit_packet::flow::FlowKey;
use netkit_packet::packet::Packet;
use opencom::component::{Component, ComponentCore, Registrar};
use opencom::error::{Error, Result};
use opencom::receptacle::Receptacle;
use parking_lot::RwLock;

use crate::api::{
    BatchResult, FilterId, FilterSpec, IClassifier, IPacketPush, PushError, PushResult,
    ICLASSIFIER, IPACKET_PUSH,
};

use super::element_core;

/// Label of the fallthrough output used when no filter matches.
pub const DEFAULT_OUTPUT: &str = "default";

/// A run-time-programmable packet classifier.
///
/// Filters are consulted highest-priority first (ties broken by
/// installation order); the first match wins and the packet is emitted on
/// the filter's named output. Unmatched packets go to the
/// [`DEFAULT_OUTPUT`] if bound, else are counted and dropped.
pub struct ClassifierEngine {
    core: ComponentCore,
    outs: Receptacle<dyn IPacketPush>,
    filters: RwLock<Vec<(FilterId, FilterSpec)>>,
    matched: AtomicU64,
    unmatched: AtomicU64,
}

impl ClassifierEngine {
    /// Creates an empty classifier.
    pub fn new() -> Arc<Self> {
        Arc::new(Self {
            core: element_core("netkit.Classifier"),
            outs: Receptacle::multi("out", IPACKET_PUSH),
            filters: RwLock::new(Vec::new()),
            matched: AtomicU64::new(0),
            unmatched: AtomicU64::new(0),
        })
    }

    /// `(matched, unmatched)` packet counts.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.matched.load(Ordering::Relaxed),
            self.unmatched.load(Ordering::Relaxed),
        )
    }

    fn output_bound(&self, label: &str) -> bool {
        self.outs.snapshot_labelled(label).is_some()
    }

    fn dscp_of(pkt: &Packet) -> u8 {
        if let Some(d) = pkt.meta.dscp {
            return d;
        }
        if let Ok(ip) = pkt.ipv4() {
            return ip.dscp;
        }
        if let Ok(ip6) = pkt.ipv6() {
            return ip6.traffic_class >> 2;
        }
        0
    }
}

impl IPacketPush for ClassifierEngine {
    fn push(&self, mut pkt: Packet) -> PushResult {
        let dscp = Self::dscp_of(&pkt);
        pkt.meta.dscp = Some(dscp);
        let flow = FlowKey::from_packet(&pkt);
        let label: Option<String> = {
            let filters = self.filters.read();
            flow.as_ref().and_then(|f| {
                filters
                    .iter()
                    .find(|(_, spec)| spec.pattern.matches(f, dscp))
                    .map(|(_, spec)| spec.output.clone())
            })
        };
        match label {
            Some(out) => {
                self.matched.fetch_add(1, Ordering::Relaxed);
                match self.outs.with_labelled(&out, |next| next.push(pkt)) {
                    Some(result) => result,
                    None => Err(PushError::Unbound),
                }
            }
            None => {
                match self
                    .outs
                    .with_labelled(DEFAULT_OUTPUT, |next| next.push(pkt))
                {
                    Some(result) => {
                        self.matched.fetch_add(1, Ordering::Relaxed);
                        result
                    }
                    None => {
                        self.unmatched.fetch_add(1, Ordering::Relaxed);
                        Ok(()) // drop policy for unmatched traffic
                    }
                }
            }
        }
    }

    fn push_batch(&self, mut batch: PacketBatch) -> BatchResult {
        // Batch fast path: one pass over the filter list under a single
        // read lock labels every packet; the batch then splits into one
        // sub-batch per output and each output's binding is traversed
        // once. Unmatched packets stay unlabelled — the `None` group —
        // and fall to the default output, same as scalar. (No in-band
        // sentinel: a user filter output could spell any string.)
        let n = batch.len();
        {
            let filters = self.filters.read();
            for idx in 0..n {
                let pkt = &mut batch.packets_mut()[idx];
                let dscp = Self::dscp_of(pkt);
                pkt.meta.dscp = Some(dscp);
                let flow = FlowKey::from_packet(pkt);
                let label = flow.as_ref().and_then(|f| {
                    filters
                        .iter()
                        .find(|(_, spec)| spec.pattern.matches(f, dscp))
                        .map(|(_, spec)| spec.output.clone())
                });
                if let Some(out) = label {
                    let interned = batch.intern(&out);
                    batch.set_label(idx, interned);
                }
            }
        }
        let mut result = BatchResult::from(vec![Ok(()); n]);
        for group in batch.into_label_groups() {
            let size = group.batch.len();
            match group.label.as_deref() {
                None => {
                    let sub = match self
                        .outs
                        .with_labelled(DEFAULT_OUTPUT, |next| next.push_batch(group.batch))
                    {
                        Some(sub) => {
                            self.matched.fetch_add(size as u64, Ordering::Relaxed);
                            sub
                        }
                        None => {
                            self.unmatched.fetch_add(size as u64, Ordering::Relaxed);
                            BatchResult::ok(size) // drop policy for unmatched traffic
                        }
                    };
                    result.scatter(&group.indices, sub);
                }
                Some(out) => {
                    self.matched.fetch_add(size as u64, Ordering::Relaxed);
                    let sub = match self
                        .outs
                        .with_labelled(out, |next| next.push_batch(group.batch))
                    {
                        Some(sub) => sub,
                        None => BatchResult::err(size, PushError::Unbound),
                    };
                    result.scatter(&group.indices, sub);
                }
            }
        }
        result
    }
}

impl IClassifier for ClassifierEngine {
    fn register_filter(&self, spec: FilterSpec) -> Result<FilterId> {
        if !self.output_bound(&spec.output) {
            return Err(Error::CfViolation {
                framework: "router".into(),
                rule: format!("classifier output `{}` is not bound", spec.output),
            });
        }
        let id = FilterId::next();
        let mut filters = self.filters.write();
        // Insert keeping (priority desc, insertion order) stable.
        let pos = filters
            .iter()
            .position(|(_, existing)| existing.priority < spec.priority)
            .unwrap_or(filters.len());
        filters.insert(pos, (id, spec));
        Ok(id)
    }

    fn remove_filter(&self, id: FilterId) -> Result<()> {
        let mut filters = self.filters.write();
        match filters.iter().position(|(fid, _)| *fid == id) {
            Some(pos) => {
                filters.remove(pos);
                Ok(())
            }
            None => Err(Error::StaleReference {
                what: format!("filter {id:?}"),
            }),
        }
    }

    fn filters(&self) -> Vec<(FilterId, FilterSpec)> {
        self.filters.read().clone()
    }
}

impl Component for ClassifierEngine {
    fn core(&self) -> &ComponentCore {
        &self.core
    }
    fn publish(self: Arc<Self>, reg: &Registrar<'_>) {
        let push: Arc<dyn IPacketPush> = self.clone();
        reg.expose(IPACKET_PUSH, &push);
        let classify: Arc<dyn IClassifier> = self.clone();
        reg.expose(ICLASSIFIER, &classify);
        reg.receptacle(&self.outs);
    }
    fn footprint_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.filters.read().len() * std::mem::size_of::<(FilterId, FilterSpec)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::FilterPattern;
    use crate::elements::misc::Discard;
    use netkit_packet::headers::proto;
    use netkit_packet::packet::PacketBuilder;
    use opencom::capsule::Capsule;
    use opencom::ident::ComponentId;
    use opencom::runtime::Runtime;

    struct Rig {
        capsule: Arc<Capsule>,
        classifier: Arc<ClassifierEngine>,
        cid: ComponentId,
        sinks: Vec<(String, Arc<Discard>)>,
    }

    fn rig(outputs: &[&str]) -> Rig {
        let rt = Runtime::new();
        crate::api::register_packet_interfaces(&rt);
        let capsule = Capsule::new("t", &rt);
        let classifier = ClassifierEngine::new();
        let cid = capsule.adopt(classifier.clone()).unwrap();
        let mut sinks = Vec::new();
        for label in outputs {
            let sink = Discard::new();
            let sid = capsule.adopt(sink.clone()).unwrap();
            capsule.bind(cid, "out", label, sid, IPACKET_PUSH).unwrap();
            sinks.push((label.to_string(), sink));
        }
        Rig {
            capsule,
            classifier,
            cid,
            sinks,
        }
    }

    fn sink<'a>(r: &'a Rig, label: &str) -> &'a Arc<Discard> {
        &r.sinks.iter().find(|(l, _)| l == label).unwrap().1
    }

    #[test]
    fn first_matching_filter_routes_packet() {
        let r = rig(&["voice", "bulk", "default"]);
        r.classifier
            .register_filter(FilterSpec::new(
                FilterPattern::any()
                    .protocol(proto::UDP)
                    .dst_port_range(5000, 5999),
                "voice",
                10,
            ))
            .unwrap();
        r.classifier
            .register_filter(FilterSpec::new(FilterPattern::any(), "bulk", 0))
            .unwrap();
        r.classifier
            .push(PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 4000, 5004).build())
            .unwrap();
        r.classifier
            .push(PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 4000, 80).build())
            .unwrap();
        assert_eq!(sink(&r, "voice").count(), 1);
        assert_eq!(sink(&r, "bulk").count(), 1);
        assert_eq!(sink(&r, "default").count(), 0);
        assert_eq!(r.classifier.stats(), (2, 0));
    }

    #[test]
    fn priority_order_beats_insertion_order() {
        let r = rig(&["a", "b"]);
        r.classifier
            .register_filter(FilterSpec::new(FilterPattern::any(), "a", 1))
            .unwrap();
        r.classifier
            .register_filter(FilterSpec::new(FilterPattern::any(), "b", 5))
            .unwrap();
        r.classifier
            .push(PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 1, 2).build())
            .unwrap();
        assert_eq!(sink(&r, "b").count(), 1, "higher priority wins");
        let listed = r.classifier.filters();
        assert_eq!(listed[0].1.output, "b");
    }

    #[test]
    fn unmatched_goes_to_default_or_drops() {
        let r = rig(&["default"]);
        r.classifier
            .push(PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 1, 2).build())
            .unwrap();
        assert_eq!(sink(&r, "default").count(), 1);
        // Remove the default binding; now unmatched counts as dropped.
        let binding = r.capsule.arch().binding_records()[0].id;
        r.capsule.unbind(binding).unwrap();
        r.classifier
            .push(PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 1, 2).build())
            .unwrap();
        assert_eq!(r.classifier.stats().1, 1);
    }

    #[test]
    fn register_filter_validates_output_exists() {
        let r = rig(&["a"]);
        let err = r
            .classifier
            .register_filter(FilterSpec::new(FilterPattern::any(), "missing", 0))
            .unwrap_err();
        assert!(matches!(err, Error::CfViolation { .. }));
        let _ = r.cid;
    }

    #[test]
    fn remove_filter_restores_fallthrough() {
        let r = rig(&["a", "default"]);
        let id = r
            .classifier
            .register_filter(FilterSpec::new(FilterPattern::any(), "a", 0))
            .unwrap();
        r.classifier
            .push(PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 1, 2).build())
            .unwrap();
        r.classifier.remove_filter(id).unwrap();
        r.classifier
            .push(PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 1, 2).build())
            .unwrap();
        assert_eq!(sink(&r, "a").count(), 1);
        assert_eq!(sink(&r, "default").count(), 1);
        assert!(r.classifier.remove_filter(id).is_err());
    }

    #[test]
    fn batch_keeps_weird_output_labels_distinct_from_unmatched() {
        use netkit_packet::batch::PacketBatch;
        // A user is free to name an output anything — including strings
        // that look like internal markers. Matched packets must reach
        // that output; unmatched ones must fall to `default`.
        let weird = "\0unmatched";
        let r = rig(&[weird, "default"]);
        r.classifier
            .register_filter(FilterSpec::new(
                FilterPattern::any()
                    .protocol(proto::UDP)
                    .dst_port_range(5000, 5999),
                weird,
                10,
            ))
            .unwrap();
        let batch: PacketBatch = (0..4u16)
            .map(|i| {
                let dport = if i < 2 { 5500 } else { 80 };
                PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", i, dport).build()
            })
            .collect();
        let result = r.classifier.push_batch(batch);
        assert!(result.all_ok());
        assert_eq!(
            sink(&r, weird).count(),
            2,
            "matched traffic on its own output"
        );
        assert_eq!(
            sink(&r, "default").count(),
            2,
            "unmatched traffic on default"
        );
    }

    #[test]
    fn dscp_filters_use_header_dscp() {
        let r = rig(&["ef", "default"]);
        r.classifier
            .register_filter(FilterSpec::new(FilterPattern::any().dscp(46), "ef", 0))
            .unwrap();
        r.classifier
            .push(
                PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 1, 2)
                    .dscp(46)
                    .build(),
            )
            .unwrap();
        r.classifier
            .push(PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 1, 2).build())
            .unwrap();
        assert_eq!(sink(&r, "ef").count(), 1);
        assert_eq!(sink(&r, "default").count(), 1);
        // The classifier caches the DSCP in metadata for downstream queues.
        assert_eq!(sink(&r, "ef").last().unwrap().meta.dscp, Some(46));
    }
}
