//! The route-lookup element and its management interface.
//!
//! Performs longest-prefix-match against a [`RoutingTable`], annotates
//! the packet with its egress port and next hop, and emits it on the
//! per-port labelled output (falling back to the `out` label when no
//! per-port output is bound). The [`IRouteControl`] interface is the
//! control-plane hook used by the stratum-4 signaling systems.

use std::net::IpAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use netkit_packet::batch::PacketBatch;
use netkit_packet::headers::EtherType;
use netkit_packet::packet::Packet;
use opencom::component::{Component, ComponentCore, Registrar};
use opencom::error::{Error, Result};
use opencom::ident::InterfaceId;
use opencom::receptacle::Receptacle;
use parking_lot::RwLock;

use crate::api::{BatchResult, IPacketPush, PushError, PushResult, IPACKET_PUSH};
use crate::routing::{RouteEntry, RoutingTable};

use super::element_core;

/// Interface id for [`IRouteControl`].
pub const IROUTE_CONTROL: InterfaceId = InterfaceId::new("netkit.IRouteControl");

/// Control-plane management of a route-lookup element.
pub trait IRouteControl: Send + Sync {
    /// Installs a route for a textual prefix (`"10.0.0.0/8"`).
    ///
    /// # Errors
    ///
    /// Fails with [`Error::StaleReference`] on malformed prefixes.
    fn add_route(&self, prefix: &str, entry: RouteEntry) -> Result<()>;

    /// Removes a route.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::StaleReference`] if the prefix is absent or
    /// malformed.
    fn remove_route(&self, prefix: &str) -> Result<()>;

    /// Looks up the route for an address.
    fn lookup(&self, addr: IpAddr) -> Option<RouteEntry>;
}

fn parse_prefix(prefix: &str) -> Result<(IpAddr, u8)> {
    let (addr, len) = prefix
        .split_once('/')
        .ok_or_else(|| Error::StaleReference {
            what: format!("prefix `{prefix}` (expected addr/len)"),
        })?;
    let addr: IpAddr = addr.parse().map_err(|_| Error::StaleReference {
        what: format!("address `{addr}`"),
    })?;
    let len: u8 = len.parse().map_err(|_| Error::StaleReference {
        what: format!("prefix length `{len}`"),
    })?;
    Ok((addr, len))
}

/// The route-lookup element.
pub struct RouteLookup {
    core: ComponentCore,
    table: RwLock<RoutingTable>,
    outs: Receptacle<dyn IPacketPush>,
    routed: AtomicU64,
    unrouted: AtomicU64,
}

impl RouteLookup {
    /// Creates an element with an empty routing table.
    pub fn new() -> Arc<Self> {
        Self::with_table(RoutingTable::new())
    }

    /// Creates an element with a prepopulated table.
    pub fn with_table(table: RoutingTable) -> Arc<Self> {
        Arc::new(Self {
            core: element_core("netkit.RouteLookup"),
            table: RwLock::new(table),
            outs: Receptacle::multi("out", IPACKET_PUSH),
            routed: AtomicU64::new(0),
            unrouted: AtomicU64::new(0),
        })
    }

    /// `(routed, unrouted)` packet counts.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.routed.load(Ordering::Relaxed),
            self.unrouted.load(Ordering::Relaxed),
        )
    }

    fn destination(pkt: &Packet) -> Option<IpAddr> {
        match pkt.ethernet().ok()?.ethertype {
            EtherType::Ipv4 => pkt.ipv4().ok().map(|h| IpAddr::V4(h.dst)),
            EtherType::Ipv6 => pkt.ipv6().ok().map(|h| IpAddr::V6(h.dst)),
            _ => None,
        }
    }
}

impl IPacketPush for RouteLookup {
    fn push(&self, mut pkt: Packet) -> PushResult {
        let Some(dst) = Self::destination(&pkt) else {
            self.unrouted.fetch_add(1, Ordering::Relaxed);
            return Err(PushError::NoRoute);
        };
        let Some(entry) = self.table.read().lookup(dst) else {
            self.unrouted.fetch_add(1, Ordering::Relaxed);
            return Err(PushError::NoRoute);
        };
        pkt.meta.egress = Some(entry.egress);
        pkt.meta.next_hop = entry.next_hop.or(Some(dst));
        self.routed.fetch_add(1, Ordering::Relaxed);
        let label = entry.egress.to_string();
        match self
            .outs
            .with_labelled(&label, |next| next.push(pkt.clone()))
        {
            Some(result) => result,
            None => match self.outs.with_labelled("out", |next| next.push(pkt)) {
                Some(result) => result,
                None => Err(PushError::Unbound),
            },
        }
    }

    fn push_batch(&self, mut batch: PacketBatch) -> BatchResult {
        // Batch fast path: all LPM lookups under one table read lock,
        // one binding traversal per egress port group.
        let n = batch.len();
        let mut result = BatchResult::from(vec![Ok(()); n]);
        let mut no_route = 0u64;
        let mut routed = 0u64;
        {
            let table = self.table.read();
            for idx in 0..n {
                let pkt = &mut batch.packets_mut()[idx];
                let Some(dst) = Self::destination(pkt) else {
                    no_route += 1;
                    result.verdicts[idx] = Err(PushError::NoRoute);
                    continue;
                };
                let Some(entry) = table.lookup(dst) else {
                    no_route += 1;
                    result.verdicts[idx] = Err(PushError::NoRoute);
                    continue;
                };
                pkt.meta.egress = Some(entry.egress);
                pkt.meta.next_hop = entry.next_hop.or(Some(dst));
                routed += 1;
                let interned = batch.intern(&entry.egress.to_string());
                batch.set_label(idx, interned);
            }
        }
        self.unrouted.fetch_add(no_route, Ordering::Relaxed);
        self.routed.fetch_add(routed, Ordering::Relaxed);
        for group in batch.into_label_groups() {
            let Some(label) = group.label else {
                // Unlabelled packets already carry their NoRoute verdicts.
                continue;
            };
            let size = group.batch.len();
            // Same fallback chain as scalar: per-port label, then `out`.
            let mut pending = Some(group.batch);
            let direct = self.outs.with_labelled(&label, |next| {
                next.push_batch(pending.take().expect("unconsumed"))
            });
            let sub = match direct {
                Some(sub) => sub,
                None => {
                    let fallback = self.outs.with_labelled("out", |next| {
                        next.push_batch(pending.take().expect("unconsumed"))
                    });
                    match fallback {
                        Some(sub) => sub,
                        None => BatchResult::err(size, PushError::Unbound),
                    }
                }
            };
            result.scatter(&group.indices, sub);
        }
        result
    }
}

impl IRouteControl for RouteLookup {
    fn add_route(&self, prefix: &str, entry: RouteEntry) -> Result<()> {
        let (addr, len) = parse_prefix(prefix)?;
        let mut table = self.table.write();
        match addr {
            IpAddr::V4(a) => {
                table.add_v4(a, len, entry);
            }
            IpAddr::V6(a) => {
                table.add_v6(a, len, entry);
            }
        }
        Ok(())
    }

    fn remove_route(&self, prefix: &str) -> Result<()> {
        let (addr, len) = parse_prefix(prefix)?;
        let removed = {
            let mut table = self.table.write();
            match addr {
                IpAddr::V4(a) => table.remove_v4(a, len),
                IpAddr::V6(a) => table.remove_v6(a, len),
            }
        };
        match removed {
            Some(_) => Ok(()),
            None => Err(Error::StaleReference {
                what: format!("route `{prefix}`"),
            }),
        }
    }

    fn lookup(&self, addr: IpAddr) -> Option<RouteEntry> {
        self.table.read().lookup(addr)
    }
}

impl Component for RouteLookup {
    fn core(&self) -> &ComponentCore {
        &self.core
    }
    fn publish(self: Arc<Self>, reg: &Registrar<'_>) {
        let push: Arc<dyn IPacketPush> = self.clone();
        reg.expose(IPACKET_PUSH, &push);
        let control: Arc<dyn IRouteControl> = self.clone();
        reg.expose(IROUTE_CONTROL, &control);
        reg.receptacle(&self.outs);
    }
    fn footprint_bytes(&self) -> usize {
        let (v4, v6) = self.table.read().len();
        std::mem::size_of::<Self>() + (v4 + v6) * 64 // trie node estimate
    }
}

impl std::fmt::Debug for RouteLookup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (routed, unrouted) = self.stats();
        write!(f, "RouteLookup(routed {routed}, unrouted {unrouted})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elements::misc::Discard;
    use netkit_packet::packet::PacketBuilder;
    use opencom::capsule::Capsule;
    use opencom::runtime::Runtime;

    fn rig() -> (Arc<Capsule>, Arc<RouteLookup>, Arc<Discard>, Arc<Discard>) {
        let rt = Runtime::new();
        crate::api::register_packet_interfaces(&rt);
        let capsule = Capsule::new("t", &rt);
        let route = RouteLookup::new();
        let (p0, p1) = (Discard::new(), Discard::new());
        let rid = capsule.adopt(route.clone()).unwrap();
        let id0 = capsule.adopt(p0.clone()).unwrap();
        let id1 = capsule.adopt(p1.clone()).unwrap();
        capsule.bind(rid, "out", "0", id0, IPACKET_PUSH).unwrap();
        capsule.bind(rid, "out", "1", id1, IPACKET_PUSH).unwrap();
        (capsule, route, p0, p1)
    }

    #[test]
    fn routes_to_per_port_outputs() {
        let (_c, route, p0, p1) = rig();
        route
            .add_route(
                "10.0.0.0/8",
                RouteEntry {
                    egress: 0,
                    next_hop: None,
                },
            )
            .unwrap();
        route
            .add_route(
                "10.1.0.0/16",
                RouteEntry {
                    egress: 1,
                    next_hop: Some("10.1.0.254".parse().unwrap()),
                },
            )
            .unwrap();
        route
            .push(PacketBuilder::udp_v4("9.9.9.9", "10.2.3.4", 1, 2).build())
            .unwrap();
        route
            .push(PacketBuilder::udp_v4("9.9.9.9", "10.1.3.4", 1, 2).build())
            .unwrap();
        assert_eq!((p0.count(), p1.count()), (1, 1));
        let routed = p1.last().unwrap();
        assert_eq!(routed.meta.egress, Some(1));
        assert_eq!(routed.meta.next_hop, Some("10.1.0.254".parse().unwrap()));
        // Directly connected: next hop defaults to the destination.
        assert_eq!(
            p0.last().unwrap().meta.next_hop,
            Some("10.2.3.4".parse().unwrap())
        );
    }

    #[test]
    fn no_route_is_an_error() {
        let (_c, route, _p0, _p1) = rig();
        let res = route.push(PacketBuilder::udp_v4("9.9.9.9", "8.8.8.8", 1, 2).build());
        assert!(matches!(res, Err(PushError::NoRoute)));
        assert_eq!(route.stats(), (0, 1));
    }

    #[test]
    fn remove_route_takes_effect() {
        let (_c, route, _p0, _p1) = rig();
        route
            .add_route(
                "10.0.0.0/8",
                RouteEntry {
                    egress: 0,
                    next_hop: None,
                },
            )
            .unwrap();
        assert!(route.lookup("10.5.5.5".parse().unwrap()).is_some());
        route.remove_route("10.0.0.0/8").unwrap();
        assert!(route.lookup("10.5.5.5".parse().unwrap()).is_none());
        assert!(route.remove_route("10.0.0.0/8").is_err());
    }

    #[test]
    fn malformed_prefixes_rejected() {
        let (_c, route, _p0, _p1) = rig();
        let e = RouteEntry {
            egress: 0,
            next_hop: None,
        };
        assert!(route.add_route("10.0.0.0", e).is_err());
        assert!(route.add_route("10.0.0.0/x", e).is_err());
        assert!(route.add_route("banana/8", e).is_err());
    }

    #[test]
    fn v6_routing_works() {
        let (_c, route, p0, _p1) = rig();
        route
            .add_route(
                "2001:db8::/32",
                RouteEntry {
                    egress: 0,
                    next_hop: None,
                },
            )
            .unwrap();
        route
            .push(PacketBuilder::udp_v6("2001:db8::1", "2001:db8::2", 1, 2).build())
            .unwrap();
        assert_eq!(p0.count(), 1);
    }

    #[test]
    fn control_interface_is_exported() {
        let rt = Runtime::new();
        crate::api::register_packet_interfaces(&rt);
        let capsule = Capsule::new("t", &rt);
        let route = RouteLookup::new();
        let rid = capsule.adopt(route).unwrap();
        let iref = capsule.query_interface(rid, IROUTE_CONTROL).unwrap();
        let control: Arc<dyn IRouteControl> = iref.downcast().unwrap();
        control
            .add_route(
                "10.0.0.0/8",
                RouteEntry {
                    egress: 3,
                    next_hop: None,
                },
            )
            .unwrap();
        assert_eq!(
            control.lookup("10.1.1.1".parse().unwrap()).unwrap().egress,
            3
        );
    }
}
