//! Utility elements: counters, duplicators, sinks, and the protocol
//! recogniser of paper Figure 3.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use netkit_packet::batch::PacketBatch;
use netkit_packet::headers::EtherType;
use netkit_packet::packet::Packet;
use opencom::component::{Component, ComponentCore, Registrar};
use opencom::receptacle::Receptacle;
use parking_lot::Mutex;

use crate::api::{BatchResult, IPacketPush, PushError, PushResult, IPACKET_PUSH};

use super::element_core;

/// Pass-through element counting packets and bytes; keeps the last
/// packet for test inspection. With no downstream binding it acts as a
/// sink.
pub struct Counter {
    core: ComponentCore,
    out: Receptacle<dyn IPacketPush>,
    packets: AtomicU64,
    bytes: AtomicU64,
    last: Mutex<Option<Packet>>,
}

impl Counter {
    /// Creates a counter.
    pub fn new() -> Arc<Self> {
        Arc::new(Self {
            core: element_core("netkit.Counter"),
            out: Receptacle::single("out", IPACKET_PUSH),
            packets: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            last: Mutex::new(None),
        })
    }

    /// Packets seen.
    pub fn count(&self) -> u64 {
        self.packets.load(Ordering::Relaxed)
    }

    /// Bytes seen.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// The most recent packet (cloned).
    pub fn last(&self) -> Option<Packet> {
        self.last.lock().clone()
    }
}

impl IPacketPush for Counter {
    fn push(&self, pkt: Packet) -> PushResult {
        self.packets.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(pkt.len() as u64, Ordering::Relaxed);
        *self.last.lock() = Some(pkt.clone());
        match self.out.with_bound(|next| next.push(pkt)) {
            Some(result) => result,
            None => Ok(()), // sink mode
        }
    }

    fn push_batch(&self, batch: PacketBatch) -> BatchResult {
        // Batch fast path: two counter adds and one lock for the whole
        // burst, one receptacle traversal downstream.
        let n = batch.len();
        self.packets.fetch_add(n as u64, Ordering::Relaxed);
        self.bytes.fetch_add(
            batch.iter().map(|p| p.len() as u64).sum::<u64>(),
            Ordering::Relaxed,
        );
        if let Some(last) = batch.packets().last() {
            *self.last.lock() = Some(last.clone());
        }
        match self.out.with_bound(|next| next.push_batch(batch)) {
            Some(result) => result,
            None => BatchResult::ok(n), // sink mode
        }
    }
}

impl Component for Counter {
    fn core(&self) -> &ComponentCore {
        &self.core
    }
    fn publish(self: Arc<Self>, reg: &Registrar<'_>) {
        let push: Arc<dyn IPacketPush> = self.clone();
        reg.expose(IPACKET_PUSH, &push);
        reg.receptacle(&self.out);
    }
    fn footprint_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.last.lock().as_ref().map_or(0, |p| p.len())
    }
}

/// Terminal sink: accepts and drops everything, keeping counters and the
/// last packet for inspection.
pub struct Discard {
    core: ComponentCore,
    packets: AtomicU64,
    last: Mutex<Option<Packet>>,
}

impl Discard {
    /// Creates a sink.
    pub fn new() -> Arc<Self> {
        Arc::new(Self {
            core: element_core("netkit.Discard"),
            packets: AtomicU64::new(0),
            last: Mutex::new(None),
        })
    }

    /// Packets swallowed.
    pub fn count(&self) -> u64 {
        self.packets.load(Ordering::Relaxed)
    }

    /// The most recent packet (cloned).
    pub fn last(&self) -> Option<Packet> {
        self.last.lock().clone()
    }
}

impl IPacketPush for Discard {
    fn push(&self, pkt: Packet) -> PushResult {
        self.packets.fetch_add(1, Ordering::Relaxed);
        *self.last.lock() = Some(pkt);
        Ok(())
    }

    fn push_batch(&self, mut batch: PacketBatch) -> BatchResult {
        let n = batch.len();
        self.packets.fetch_add(n as u64, Ordering::Relaxed);
        if let Some(last) = batch.pop() {
            *self.last.lock() = Some(last);
        }
        // `batch` drops whole here: a pool-leased container (and its
        // packets' pooled frame buffers) recycles instead of freeing.
        BatchResult::ok(n)
    }
}

impl Component for Discard {
    fn core(&self) -> &ComponentCore {
        &self.core
    }
    fn publish(self: Arc<Self>, reg: &Registrar<'_>) {
        let push: Arc<dyn IPacketPush> = self.clone();
        reg.expose(IPACKET_PUSH, &push);
    }
    fn footprint_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }
}

/// Duplicates each packet to every bound output (multicast fan-out).
pub struct Tee {
    core: ComponentCore,
    outs: Receptacle<dyn IPacketPush>,
    forwarded: AtomicU64,
}

impl Tee {
    /// Creates a duplicator.
    pub fn new() -> Arc<Self> {
        Arc::new(Self {
            core: element_core("netkit.Tee"),
            outs: Receptacle::multi("out", IPACKET_PUSH),
            forwarded: AtomicU64::new(0),
        })
    }

    /// Copies emitted (one per bound output per input packet).
    pub fn forwarded(&self) -> u64 {
        self.forwarded.load(Ordering::Relaxed)
    }
}

impl IPacketPush for Tee {
    fn push(&self, pkt: Packet) -> PushResult {
        let mut any = false;
        self.outs.for_each(|_, next| {
            if next.push(pkt.clone()).is_ok() {
                self.forwarded.fetch_add(1, Ordering::Relaxed);
            }
            any = true;
        });
        if any {
            Ok(())
        } else {
            Err(PushError::Unbound)
        }
    }

    fn push_batch(&self, batch: PacketBatch) -> BatchResult {
        // One cloned batch per output instead of one clone + one
        // traversal per packet per output.
        let n = batch.len();
        let mut any = false;
        self.outs.for_each(|_, next| {
            let copy: PacketBatch = batch.packets().to_vec().into();
            let sub = next.push_batch(copy);
            self.forwarded
                .fetch_add(sub.accepted() as u64, Ordering::Relaxed);
            any = true;
        });
        if any {
            BatchResult::ok(n)
        } else {
            BatchResult::err(n, PushError::Unbound)
        }
    }
}

impl Component for Tee {
    fn core(&self) -> &ComponentCore {
        &self.core
    }
    fn publish(self: Arc<Self>, reg: &Registrar<'_>) {
        let push: Arc<dyn IPacketPush> = self.clone();
        reg.expose(IPACKET_PUSH, &push);
        reg.receptacle(&self.outs);
    }
    fn footprint_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }
}

/// The "protocol recogn" element of paper Figure 3: demultiplexes frames
/// onto labelled outputs by EtherType (`ipv4`, `ipv6`, `arp`, `other`).
pub struct ProtocolRecogniser {
    core: ComponentCore,
    outs: Receptacle<dyn IPacketPush>,
    unroutable: AtomicU64,
}

impl ProtocolRecogniser {
    /// Creates a recogniser.
    pub fn new() -> Arc<Self> {
        Arc::new(Self {
            core: element_core("netkit.ProtocolRecogniser"),
            outs: Receptacle::multi("out", IPACKET_PUSH),
            unroutable: AtomicU64::new(0),
        })
    }

    /// Frames dropped because no output matched their protocol.
    pub fn unroutable(&self) -> u64 {
        self.unroutable.load(Ordering::Relaxed)
    }
}

impl ProtocolRecogniser {
    fn label_for(pkt: &Packet) -> &'static str {
        match pkt.ethernet() {
            Ok(eth) => match eth.ethertype {
                EtherType::Ipv4 => "ipv4",
                EtherType::Ipv6 => "ipv6",
                EtherType::Arp => "arp",
                EtherType::Other(_) => "other",
            },
            Err(_) => "other",
        }
    }
}

impl IPacketPush for ProtocolRecogniser {
    fn push(&self, pkt: Packet) -> PushResult {
        let label = Self::label_for(&pkt);
        match self
            .outs
            .with_labelled(label, |next| next.push(pkt.clone()))
        {
            Some(result) => result,
            None => match self.outs.with_labelled("other", |next| next.push(pkt)) {
                Some(result) => result,
                None => {
                    self.unroutable.fetch_add(1, Ordering::Relaxed);
                    Ok(()) // drop policy: unmatched protocols are discarded
                }
            },
        }
    }

    fn push_batch(&self, mut batch: PacketBatch) -> BatchResult {
        // Batch fast path: demux the burst into one sub-batch per
        // EtherType and cross each binding once.
        let n = batch.len();
        for idx in 0..n {
            let label = Self::label_for(&batch.packets()[idx]);
            let interned = batch.intern(label);
            batch.set_label(idx, interned);
        }
        let mut result = BatchResult::from(vec![Ok(()); n]);
        for group in batch.into_label_groups() {
            let size = group.batch.len();
            let label: &str = group.label.as_deref().unwrap_or("other");
            // Same fallback chain as scalar: the protocol's own output,
            // then `other`, then drop-with-count. The Option dance keeps
            // the batch alive across an unbound first attempt.
            let mut pending = Some(group.batch);
            let direct = self.outs.with_labelled(label, |next| {
                next.push_batch(pending.take().expect("unconsumed"))
            });
            let sub = match direct {
                Some(sub) => sub,
                None => {
                    let fallback = self.outs.with_labelled("other", |next| {
                        next.push_batch(pending.take().expect("unconsumed"))
                    });
                    match fallback {
                        Some(sub) => sub,
                        None => {
                            self.unroutable.fetch_add(size as u64, Ordering::Relaxed);
                            BatchResult::ok(size)
                        }
                    }
                }
            };
            result.scatter(&group.indices, sub);
        }
        result
    }
}

impl Component for ProtocolRecogniser {
    fn core(&self) -> &ComponentCore {
        &self.core
    }
    fn publish(self: Arc<Self>, reg: &Registrar<'_>) {
        let push: Arc<dyn IPacketPush> = self.clone();
        reg.expose(IPACKET_PUSH, &push);
        reg.receptacle(&self.outs);
    }
    fn footprint_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netkit_packet::packet::PacketBuilder;
    use opencom::capsule::Capsule;
    use opencom::runtime::Runtime;

    fn capsule() -> Arc<Capsule> {
        let rt = Runtime::new();
        crate::api::register_packet_interfaces(&rt);
        Capsule::new("t", &rt)
    }

    fn v4_pkt() -> Packet {
        PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 1, 2)
            .payload(b"xy")
            .build()
    }

    #[test]
    fn counter_counts_and_passes_through() {
        let c = capsule();
        let counter = Counter::new();
        let sink = Discard::new();
        let cid = c.adopt(counter.clone()).unwrap();
        let sid = c.adopt(sink.clone()).unwrap();
        c.bind_simple(cid, "out", sid, IPACKET_PUSH).unwrap();
        counter.push(v4_pkt()).unwrap();
        counter.push(v4_pkt()).unwrap();
        assert_eq!(counter.count(), 2);
        assert_eq!(counter.bytes(), 2 * v4_pkt().len() as u64);
        assert_eq!(sink.count(), 2);
    }

    #[test]
    fn counter_without_downstream_is_a_sink() {
        let counter = Counter::new();
        assert!(counter.push(v4_pkt()).is_ok());
        assert_eq!(counter.count(), 1);
        assert!(counter.last().is_some());
    }

    #[test]
    fn tee_duplicates_to_all_outputs() {
        let c = capsule();
        let tee = Tee::new();
        let (a, b) = (Discard::new(), Discard::new());
        let tid = c.adopt(tee.clone()).unwrap();
        let aid = c.adopt(a.clone()).unwrap();
        let bid = c.adopt(b.clone()).unwrap();
        c.bind(tid, "out", "a", aid, IPACKET_PUSH).unwrap();
        c.bind(tid, "out", "b", bid, IPACKET_PUSH).unwrap();
        tee.push(v4_pkt()).unwrap();
        assert_eq!((a.count(), b.count()), (1, 1));
        assert_eq!(tee.forwarded(), 2);
    }

    #[test]
    fn tee_unbound_errors() {
        let tee = Tee::new();
        assert!(matches!(tee.push(v4_pkt()), Err(PushError::Unbound)));
    }

    #[test]
    fn recogniser_demuxes_by_ethertype() {
        let c = capsule();
        let recog = ProtocolRecogniser::new();
        let (v4, v6) = (Discard::new(), Discard::new());
        let rid = c.adopt(recog.clone()).unwrap();
        let v4id = c.adopt(v4.clone()).unwrap();
        let v6id = c.adopt(v6.clone()).unwrap();
        c.bind(rid, "out", "ipv4", v4id, IPACKET_PUSH).unwrap();
        c.bind(rid, "out", "ipv6", v6id, IPACKET_PUSH).unwrap();
        recog.push(v4_pkt()).unwrap();
        recog
            .push(PacketBuilder::udp_v6("2001:db8::1", "2001:db8::2", 1, 2).build())
            .unwrap();
        assert_eq!((v4.count(), v6.count()), (1, 1));
    }

    #[test]
    fn recogniser_falls_back_to_other_then_drops() {
        let c = capsule();
        let recog = ProtocolRecogniser::new();
        let other = Discard::new();
        let rid = c.adopt(recog.clone()).unwrap();
        let oid = c.adopt(other.clone()).unwrap();
        // v6 with no ipv6 output falls back to "other".
        c.bind(rid, "out", "other", oid, IPACKET_PUSH).unwrap();
        recog
            .push(PacketBuilder::udp_v6("2001:db8::1", "2001:db8::2", 1, 2).build())
            .unwrap();
        assert_eq!(other.count(), 1);
        // Unbind and verify the drop counter path.
        let binding = c.arch().binding_records()[0].id;
        c.unbind(binding).unwrap();
        recog.push(v4_pkt()).unwrap();
        assert_eq!(recog.unroutable(), 1);
    }
}
