//! Traffic conditioning elements: token-bucket shaper, policer, and a
//! single-rate three-colour meter — the paper's "shapers" and meters in
//! the in-band functions stratum.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use netkit_kernel::time::VirtualClock;
use netkit_packet::batch::PacketBatch;
use netkit_packet::packet::{Color, Packet};
use opencom::component::{Component, ComponentCore, Registrar};
use opencom::receptacle::Receptacle;
use parking_lot::Mutex;

use crate::api::{
    BatchResult, IPacketPull, IPacketPush, PushError, PushResult, IPACKET_PULL, IPACKET_PUSH,
};

use super::element_core;

/// A token bucket refilled against the virtual clock.
#[derive(Debug)]
struct Bucket {
    tokens: f64,
    capacity: f64,
    rate_bytes_per_sec: f64,
    last_refill_ns: u64,
}

impl Bucket {
    fn new(rate_bytes_per_sec: f64, capacity: f64) -> Self {
        Self {
            tokens: capacity,
            capacity,
            rate_bytes_per_sec,
            last_refill_ns: 0,
        }
    }

    fn refill(&mut self, now_ns: u64) {
        let elapsed = now_ns.saturating_sub(self.last_refill_ns) as f64 / 1e9;
        self.last_refill_ns = now_ns;
        self.tokens = (self.tokens + elapsed * self.rate_bytes_per_sec).min(self.capacity);
    }

    fn try_take(&mut self, bytes: f64, now_ns: u64) -> bool {
        self.refill(now_ns);
        if self.tokens >= bytes {
            self.tokens -= bytes;
            true
        } else {
            false
        }
    }
}

/// Pull-path token-bucket shaper: delays traffic to the configured rate.
/// Pulls from its `in` receptacle only when the head packet conforms;
/// non-conforming packets wait in the upstream queue (no loss).
pub struct TokenBucketShaper {
    core: ComponentCore,
    input: Receptacle<dyn IPacketPull>,
    clock: Arc<VirtualClock>,
    bucket: Mutex<Bucket>,
    head: Mutex<Option<Packet>>,
    released: AtomicU64,
}

impl TokenBucketShaper {
    /// Creates a shaper limiting output to `rate_bytes_per_sec` with
    /// `burst_bytes` of burst tolerance.
    pub fn new(rate_bytes_per_sec: f64, burst_bytes: f64, clock: Arc<VirtualClock>) -> Arc<Self> {
        Arc::new(Self {
            core: element_core("netkit.TokenBucketShaper"),
            input: Receptacle::single("in", IPACKET_PULL),
            clock,
            bucket: Mutex::new(Bucket::new(rate_bytes_per_sec, burst_bytes)),
            head: Mutex::new(None),
            released: AtomicU64::new(0),
        })
    }

    /// Packets released so far.
    pub fn released(&self) -> u64 {
        self.released.load(Ordering::Relaxed)
    }
}

impl TokenBucketShaper {
    fn pull_conforming(&self, head: &mut Option<Packet>, bucket: &mut Bucket) -> Option<Packet> {
        if head.is_none() {
            *head = self.input.with_bound(|p| p.pull()).flatten();
        }
        let size = head.as_ref()?.len() as f64;
        let now = self.clock.now().as_nanos();
        if bucket.try_take(size, now) {
            self.released.fetch_add(1, Ordering::Relaxed);
            head.take()
        } else {
            None
        }
    }
}

impl IPacketPull for TokenBucketShaper {
    fn pull(&self) -> Option<Packet> {
        let mut head = self.head.lock();
        let mut bucket = self.bucket.lock();
        self.pull_conforming(&mut head, &mut bucket)
    }

    fn pull_batch(&self, max: usize) -> PacketBatch {
        // Batch fast path: head/bucket locks taken once per burst; the
        // conformance decision is unchanged per packet, so the release
        // schedule matches repeated scalar pulls.
        let mut batch = PacketBatch::with_capacity(max.min(64));
        let mut head = self.head.lock();
        let mut bucket = self.bucket.lock();
        while batch.len() < max {
            match self.pull_conforming(&mut head, &mut bucket) {
                Some(pkt) => batch.push(pkt),
                None => break,
            }
        }
        batch
    }
}

impl Component for TokenBucketShaper {
    fn core(&self) -> &ComponentCore {
        &self.core
    }
    fn publish(self: Arc<Self>, reg: &Registrar<'_>) {
        let pull: Arc<dyn IPacketPull> = self.clone();
        reg.expose(IPACKET_PULL, &pull);
        reg.receptacle(&self.input);
    }
    fn footprint_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }
}

impl std::fmt::Debug for TokenBucketShaper {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TokenBucketShaper({} released)", self.released())
    }
}

/// Push-path policer: drops non-conforming packets instead of delaying
/// them.
pub struct Policer {
    core: ComponentCore,
    out: Receptacle<dyn IPacketPush>,
    clock: Arc<VirtualClock>,
    bucket: Mutex<Bucket>,
    passed: AtomicU64,
    dropped: AtomicU64,
}

impl Policer {
    /// Creates a policer at `rate_bytes_per_sec` with `burst_bytes`
    /// tolerance.
    pub fn new(rate_bytes_per_sec: f64, burst_bytes: f64, clock: Arc<VirtualClock>) -> Arc<Self> {
        Arc::new(Self {
            core: element_core("netkit.Policer"),
            out: Receptacle::single("out", IPACKET_PUSH),
            clock,
            bucket: Mutex::new(Bucket::new(rate_bytes_per_sec, burst_bytes)),
            passed: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        })
    }

    /// `(passed, dropped)` counts.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.passed.load(Ordering::Relaxed),
            self.dropped.load(Ordering::Relaxed),
        )
    }
}

impl IPacketPush for Policer {
    fn push(&self, pkt: Packet) -> PushResult {
        let now = self.clock.now().as_nanos();
        if !self.bucket.lock().try_take(pkt.len() as f64, now) {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return Err(PushError::QueueFull);
        }
        self.passed.fetch_add(1, Ordering::Relaxed);
        match self.out.with_bound(|next| next.push(pkt)) {
            Some(result) => result,
            None => Err(PushError::Unbound),
        }
    }

    fn push_batch(&self, batch: PacketBatch) -> BatchResult {
        // Batch fast path: one bucket lock for the burst; conformance is
        // still judged packet-by-packet (the clock is re-read per packet
        // exactly as the scalar path does).
        let n = batch.len();
        let mut result = BatchResult::from(vec![Ok(()); n]);
        let mut conforming = PacketBatch::with_capacity(n);
        let mut conforming_idx = Vec::with_capacity(n);
        let mut passed = 0u64;
        let mut dropped = 0u64;
        {
            let mut bucket = self.bucket.lock();
            for (idx, pkt) in batch.into_packets().into_iter().enumerate() {
                let now = self.clock.now().as_nanos();
                if bucket.try_take(pkt.len() as f64, now) {
                    passed += 1;
                    conforming.push(pkt);
                    conforming_idx.push(idx);
                } else {
                    dropped += 1;
                    result.verdicts[idx] = Err(PushError::QueueFull);
                }
            }
        }
        self.passed.fetch_add(passed, Ordering::Relaxed);
        self.dropped.fetch_add(dropped, Ordering::Relaxed);
        if !conforming.is_empty() {
            let size = conforming.len();
            let mut pending = Some(conforming);
            let sub = match self
                .out
                .with_bound(|next| next.push_batch(pending.take().expect("unconsumed")))
            {
                Some(sub) => sub,
                None => BatchResult::err(size, PushError::Unbound),
            };
            result.scatter(&conforming_idx, sub);
        }
        result
    }
}

impl Component for Policer {
    fn core(&self) -> &ComponentCore {
        &self.core
    }
    fn publish(self: Arc<Self>, reg: &Registrar<'_>) {
        let push: Arc<dyn IPacketPush> = self.clone();
        reg.expose(IPACKET_PUSH, &push);
        reg.receptacle(&self.out);
    }
    fn footprint_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }
}

impl std::fmt::Debug for Policer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (p, d) = self.stats();
        write!(f, "Policer(passed {p}, dropped {d})")
    }
}

/// Single-rate three-colour meter (srTCM, RFC 2697 colour-blind mode):
/// marks packets green/yellow/red in their metadata and always forwards.
/// Downstream droppers or queues act on the colour.
pub struct Meter {
    core: ComponentCore,
    out: Receptacle<dyn IPacketPush>,
    clock: Arc<VirtualClock>,
    committed: Mutex<Bucket>,
    excess: Mutex<Bucket>,
    counts: [AtomicU64; 3],
}

impl Meter {
    /// Creates a meter with committed rate `cir_bytes_per_sec`, committed
    /// burst `cbs`, and excess burst `ebs` (both in bytes).
    pub fn new(cir_bytes_per_sec: f64, cbs: f64, ebs: f64, clock: Arc<VirtualClock>) -> Arc<Self> {
        Arc::new(Self {
            core: element_core("netkit.Meter"),
            out: Receptacle::single("out", IPACKET_PUSH),
            clock,
            committed: Mutex::new(Bucket::new(cir_bytes_per_sec, cbs)),
            excess: Mutex::new(Bucket::new(cir_bytes_per_sec, ebs)),
            counts: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
        })
    }

    /// `(green, yellow, red)` packet counts.
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            self.counts[0].load(Ordering::Relaxed),
            self.counts[1].load(Ordering::Relaxed),
            self.counts[2].load(Ordering::Relaxed),
        )
    }
}

impl IPacketPush for Meter {
    fn push(&self, mut pkt: Packet) -> PushResult {
        let now = self.clock.now().as_nanos();
        let size = pkt.len() as f64;
        let color = if self.committed.lock().try_take(size, now) {
            Color::Green
        } else if self.excess.lock().try_take(size, now) {
            Color::Yellow
        } else {
            Color::Red
        };
        let idx = match color {
            Color::Green => 0,
            Color::Yellow => 1,
            Color::Red => 2,
        };
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        pkt.meta.color = Some(color);
        match self.out.with_bound(|next| next.push(pkt)) {
            Some(result) => result,
            None => Err(PushError::Unbound),
        }
    }

    fn push_batch(&self, mut batch: PacketBatch) -> BatchResult {
        // Batch fast path: both bucket locks held once across the burst;
        // colouring decisions per packet are unchanged, and the whole
        // coloured burst crosses the downstream binding once.
        let n = batch.len();
        let mut tallies = [0u64; 3];
        {
            let mut committed = self.committed.lock();
            let mut excess = self.excess.lock();
            for pkt in batch.packets_mut() {
                let now = self.clock.now().as_nanos();
                let size = pkt.len() as f64;
                let color = if committed.try_take(size, now) {
                    Color::Green
                } else if excess.try_take(size, now) {
                    Color::Yellow
                } else {
                    Color::Red
                };
                let idx = match color {
                    Color::Green => 0,
                    Color::Yellow => 1,
                    Color::Red => 2,
                };
                tallies[idx] += 1;
                pkt.meta.color = Some(color);
            }
        }
        for (idx, tally) in tallies.iter().enumerate() {
            if *tally > 0 {
                self.counts[idx].fetch_add(*tally, Ordering::Relaxed);
            }
        }
        match self.out.with_bound(|next| next.push_batch(batch)) {
            Some(result) => result,
            None => BatchResult::err(n, PushError::Unbound),
        }
    }
}

impl Component for Meter {
    fn core(&self) -> &ComponentCore {
        &self.core
    }
    fn publish(self: Arc<Self>, reg: &Registrar<'_>) {
        let push: Arc<dyn IPacketPush> = self.clone();
        reg.expose(IPACKET_PUSH, &push);
        reg.receptacle(&self.out);
    }
    fn footprint_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }
}

impl std::fmt::Debug for Meter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (g, y, r) = self.stats();
        write!(f, "Meter(green {g}, yellow {y}, red {r})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elements::misc::Discard;
    use crate::elements::queues::DropTailQueue;
    use netkit_packet::packet::PacketBuilder;
    use opencom::capsule::Capsule;
    use opencom::runtime::Runtime;

    fn capsule() -> Arc<Capsule> {
        let rt = Runtime::new();
        crate::api::register_packet_interfaces(&rt);
        Capsule::new("t", &rt)
    }

    fn pkt100() -> Packet {
        // 100-byte frame: 42 bytes of headers + 58 payload.
        PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 1, 2)
            .payload_len(58)
            .build()
    }

    #[test]
    fn shaper_limits_rate_over_virtual_time() {
        let c = capsule();
        let clock = Arc::new(VirtualClock::new());
        // 1000 B/s, burst of exactly one 100-byte packet.
        let shaper = TokenBucketShaper::new(1000.0, 100.0, Arc::clone(&clock));
        let q = DropTailQueue::new(64);
        let shid = c.adopt(shaper.clone()).unwrap();
        let qid = c.adopt(q.clone()).unwrap();
        c.bind_simple(shid, "in", qid, IPACKET_PULL).unwrap();
        for _ in 0..10 {
            q.push(pkt100()).unwrap();
        }
        // Burst allows exactly one packet now.
        assert!(shaper.pull().is_some());
        assert!(shaper.pull().is_none(), "no tokens left");
        // 100 bytes accrue every 100 ms at 1000 B/s.
        clock.advance(100_000_000);
        assert!(shaper.pull().is_some());
        assert!(shaper.pull().is_none());
        // A long gap accrues at most the burst (100 bytes = 1 packet).
        clock.advance(10_000_000_000);
        assert!(shaper.pull().is_some());
        assert!(shaper.pull().is_none(), "burst caps accumulation");
    }

    #[test]
    fn shaper_head_packet_is_not_lost() {
        let c = capsule();
        let clock = Arc::new(VirtualClock::new());
        let shaper = TokenBucketShaper::new(1000.0, 50.0, Arc::clone(&clock));
        let q = DropTailQueue::new(4);
        let shid = c.adopt(shaper.clone()).unwrap();
        let qid = c.adopt(q.clone()).unwrap();
        c.bind_simple(shid, "in", qid, IPACKET_PULL).unwrap();
        q.push(pkt100()).unwrap();
        assert!(shaper.pull().is_none(), "burst (50B) below packet size");
        clock.advance(60_000_000); // 60 ms -> 60 bytes, total usable = 50 cap... bucket caps at 50
        assert!(shaper.pull().is_none(), "bucket capacity caps below size");
        // The packet is held, not dropped: enlarge time won't help with
        // a 50-byte bucket, so this documents the head-of-line property.
        assert_eq!(q.depth(), 0, "packet moved to the shaper head slot");
        assert_eq!(shaper.released(), 0);
    }

    #[test]
    fn policer_drops_excess() {
        let c = capsule();
        let clock = Arc::new(VirtualClock::new());
        let policer = Policer::new(1000.0, 200.0, Arc::clone(&clock));
        let sink = Discard::new();
        let pid = c.adopt(policer.clone()).unwrap();
        let sid = c.adopt(sink.clone()).unwrap();
        c.bind_simple(pid, "out", sid, IPACKET_PUSH).unwrap();
        // Burst of 200 bytes admits 2 packets; the rest drop.
        let mut ok = 0;
        for _ in 0..5 {
            if policer.push(pkt100()).is_ok() {
                ok += 1;
            }
        }
        assert_eq!(ok, 2);
        assert_eq!(policer.stats(), (2, 3));
        assert_eq!(sink.count(), 2);
    }

    #[test]
    fn meter_colours_by_rate() {
        let c = capsule();
        let clock = Arc::new(VirtualClock::new());
        let meter = Meter::new(1000.0, 100.0, 100.0, Arc::clone(&clock));
        let sink = Discard::new();
        let mid = c.adopt(meter.clone()).unwrap();
        let sid = c.adopt(sink.clone()).unwrap();
        c.bind_simple(mid, "out", sid, IPACKET_PUSH).unwrap();
        // First packet green (CBS), second yellow (EBS), third red.
        meter.push(pkt100()).unwrap();
        meter.push(pkt100()).unwrap();
        meter.push(pkt100()).unwrap();
        assert_eq!(meter.stats(), (1, 1, 1));
        assert_eq!(sink.count(), 3, "meter never drops");
        assert_eq!(sink.last().unwrap().meta.color, Some(Color::Red));
    }
}
