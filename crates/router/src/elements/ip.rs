//! IPv4/IPv6 header processor elements (the "hdr processor" boxes of
//! paper Figure 3): validate, decrement TTL/hop-limit with incremental
//! checksum, and forward — errors exit on the `err` receptacle when
//! bound, otherwise count as drops.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use netkit_packet::batch::PacketBatch;
use netkit_packet::headers::{Ipv4Header, Ipv6Header};
use netkit_packet::packet::Packet;
use opencom::component::{Component, ComponentCore, Registrar};
use opencom::receptacle::Receptacle;

use crate::api::{BatchResult, IPacketPush, PushError, PushResult, IPACKET_PUSH};

use super::element_core;

/// Counters shared by both processors.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IpStats {
    /// Packets validated and forwarded.
    pub forwarded: u64,
    /// Packets dropped for malformed headers.
    pub malformed: u64,
    /// Packets dropped (or diverted) for TTL expiry.
    pub ttl_expired: u64,
}

macro_rules! ip_processor {
    ($(#[$doc:meta])* $name:ident, $type_name:literal, $validate:expr, $decrement:expr) => {
        $(#[$doc])*
        pub struct $name {
            core: ComponentCore,
            out: Receptacle<dyn IPacketPush>,
            err: Receptacle<dyn IPacketPush>,
            forwarded: AtomicU64,
            malformed: AtomicU64,
            ttl_expired: AtomicU64,
        }

        impl $name {
            /// Creates the processor.
            pub fn new() -> Arc<Self> {
                Arc::new(Self {
                    core: element_core($type_name),
                    out: Receptacle::single("out", IPACKET_PUSH),
                    err: Receptacle::single("err", IPACKET_PUSH),
                    forwarded: AtomicU64::new(0),
                    malformed: AtomicU64::new(0),
                    ttl_expired: AtomicU64::new(0),
                })
            }

            /// Snapshot of the processor's counters.
            pub fn stats(&self) -> IpStats {
                IpStats {
                    forwarded: self.forwarded.load(Ordering::Relaxed),
                    malformed: self.malformed.load(Ordering::Relaxed),
                    ttl_expired: self.ttl_expired.load(Ordering::Relaxed),
                }
            }

            fn divert_err(&self, pkt: Packet, reason: PushError) -> PushResult {
                match self.err.with_bound(|e| e.push(pkt)) {
                    Some(result) => result,
                    None => Err(reason),
                }
            }
        }

        impl IPacketPush for $name {
            fn push(&self, mut pkt: Packet) -> PushResult {
                #[allow(clippy::redundant_closure_call)]
                if let Err(e) = ($validate)(&pkt) {
                    self.malformed.fetch_add(1, Ordering::Relaxed);
                    return self.divert_err(pkt, PushError::Malformed(e));
                }
                #[allow(clippy::redundant_closure_call)]
                if ($decrement)(&mut pkt).is_err() {
                    self.ttl_expired.fetch_add(1, Ordering::Relaxed);
                    return self.divert_err(pkt, PushError::TtlExpired);
                }
                match self.out.with_bound(|next| next.push(pkt)) {
                    Some(result) => {
                        if result.is_ok() {
                            self.forwarded.fetch_add(1, Ordering::Relaxed);
                        }
                        result
                    }
                    None => Err(PushError::Unbound),
                }
            }

            fn push_batch(&self, batch: PacketBatch) -> BatchResult {
                // Batch fast path: validate + decrement per packet, then
                // cross each receptacle once — survivors as one batch on
                // `out`, failures as one batch on `err`.
                let n = batch.len();
                let mut result = BatchResult::from(vec![Ok(()); n]);
                let mut ok_batch = PacketBatch::with_capacity(n);
                let mut ok_idx = Vec::with_capacity(n);
                let mut err_batch = PacketBatch::new();
                let mut err_idx = Vec::new();
                let mut err_reasons: Vec<PushError> = Vec::new();
                for (idx, mut pkt) in batch.into_packets().into_iter().enumerate() {
                    #[allow(clippy::redundant_closure_call)]
                    if let Err(e) = ($validate)(&pkt) {
                        self.malformed.fetch_add(1, Ordering::Relaxed);
                        err_batch.push(pkt);
                        err_idx.push(idx);
                        err_reasons.push(PushError::Malformed(e));
                        continue;
                    }
                    #[allow(clippy::redundant_closure_call)]
                    if ($decrement)(&mut pkt).is_err() {
                        self.ttl_expired.fetch_add(1, Ordering::Relaxed);
                        err_batch.push(pkt);
                        err_idx.push(idx);
                        err_reasons.push(PushError::TtlExpired);
                        continue;
                    }
                    ok_batch.push(pkt);
                    ok_idx.push(idx);
                }
                if !err_batch.is_empty() {
                    let mut pending = Some(err_batch);
                    let diverted = self
                        .err
                        .with_bound(|e| e.push_batch(pending.take().expect("unconsumed")));
                    let sub = match diverted {
                        Some(sub) => sub,
                        None => BatchResult::from(
                            err_reasons.into_iter().map(Err).collect::<Vec<_>>(),
                        ),
                    };
                    result.scatter(&err_idx, sub);
                }
                if !ok_batch.is_empty() {
                    let size = ok_batch.len();
                    let mut pending = Some(ok_batch);
                    let forwarded = self
                        .out
                        .with_bound(|next| next.push_batch(pending.take().expect("unconsumed")));
                    let sub = match forwarded {
                        Some(sub) => {
                            self.forwarded.fetch_add(sub.accepted() as u64, Ordering::Relaxed);
                            sub
                        }
                        None => BatchResult::err(size, PushError::Unbound),
                    };
                    result.scatter(&ok_idx, sub);
                }
                result
            }
        }

        impl Component for $name {
            fn core(&self) -> &ComponentCore {
                &self.core
            }
            fn publish(self: Arc<Self>, reg: &Registrar<'_>) {
                let push: Arc<dyn IPacketPush> = self.clone();
                reg.expose(IPACKET_PUSH, &push);
                reg.receptacle(&self.out);
                reg.receptacle(&self.err);
            }
            fn footprint_bytes(&self) -> usize {
                std::mem::size_of::<Self>()
            }
        }
    };
}

ip_processor!(
    /// IPv4 header processor: verifies the checksum-validated header,
    /// decrements the TTL with an RFC 1624 incremental checksum update,
    /// and forwards. Packets arriving with TTL ≤ 1 are expired (they
    /// must not be forwarded with TTL 0).
    Ipv4Processor,
    "netkit.Ipv4Processor",
    |pkt: &Packet| pkt.ipv4().map(|_| ()),
    |pkt: &mut Packet| {
        let l3 = pkt.l3_mut();
        if l3.len() > 8 && l3[8] <= 1 {
            return Err(());
        }
        Ipv4Header::decrement_ttl_in_place(l3).map(|_| ()).map_err(|_| ())
    }
);

ip_processor!(
    /// IPv6 header processor: validates the fixed header and decrements
    /// the hop limit. Packets arriving with hop limit ≤ 1 are expired.
    Ipv6Processor,
    "netkit.Ipv6Processor",
    |pkt: &Packet| pkt.ipv6().map(|_| ()),
    |pkt: &mut Packet| {
        let l3 = pkt.l3_mut();
        if l3.len() > 7 && l3[7] <= 1 {
            return Err(());
        }
        Ipv6Header::decrement_hop_limit_in_place(l3).map(|_| ()).map_err(|_| ())
    }
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elements::misc::{Counter, Discard};
    use netkit_packet::packet::PacketBuilder;
    use opencom::capsule::Capsule;
    use opencom::runtime::Runtime;

    fn setup() -> (
        Arc<opencom::capsule::Capsule>,
        Arc<Ipv4Processor>,
        Arc<Discard>,
        Arc<Discard>,
    ) {
        let rt = Runtime::new();
        crate::api::register_packet_interfaces(&rt);
        let capsule = Capsule::new("t", &rt);
        let proc4 = Ipv4Processor::new();
        let sink = Discard::new();
        let errsink = Discard::new();
        let pid = capsule.adopt(proc4.clone()).unwrap();
        let sid = capsule.adopt(sink.clone()).unwrap();
        let eid = capsule.adopt(errsink.clone()).unwrap();
        capsule.bind_simple(pid, "out", sid, IPACKET_PUSH).unwrap();
        capsule.bind_simple(pid, "err", eid, IPACKET_PUSH).unwrap();
        (capsule, proc4, sink, errsink)
    }

    #[test]
    fn valid_packet_is_ttl_decremented_and_forwarded() {
        let (_c, proc4, sink, err) = setup();
        let pkt = PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 1, 2)
            .ttl(9)
            .build();
        proc4.push(pkt).unwrap();
        assert_eq!(sink.count(), 1);
        assert_eq!(err.count(), 0);
        assert_eq!(proc4.stats().forwarded, 1);
        let got = sink.last().unwrap();
        assert_eq!(
            got.ipv4().unwrap().ttl,
            8,
            "ttl decremented, checksum valid"
        );
    }

    #[test]
    fn ttl_one_expires_to_err_port() {
        let (_c, proc4, sink, err) = setup();
        for ttl in [0, 1] {
            let pkt = PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 1, 2)
                .ttl(ttl)
                .build();
            let res = proc4.push(pkt);
            assert!(res.is_ok(), "diverted to err sink: {res:?}");
        }
        assert_eq!(err.count(), 2);
        assert_eq!(sink.count(), 0);
        assert_eq!(proc4.stats().ttl_expired, 2);
    }

    #[test]
    fn corrupt_checksum_goes_to_err() {
        let (_c, proc4, sink, err) = setup();
        let mut pkt = PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 1, 2).build();
        pkt.l3_mut()[9] ^= 0xff;
        proc4.push(pkt).unwrap();
        assert_eq!(err.count(), 1);
        assert_eq!(sink.count(), 0);
        assert_eq!(proc4.stats().malformed, 1);
    }

    #[test]
    fn error_without_err_binding_is_reported() {
        let rt = Runtime::new();
        crate::api::register_packet_interfaces(&rt);
        let capsule = Capsule::new("t", &rt);
        let proc4 = Ipv4Processor::new();
        let sink = Counter::new();
        let pid = capsule.adopt(proc4.clone()).unwrap();
        let sid = capsule.adopt(sink).unwrap();
        capsule.bind_simple(pid, "out", sid, IPACKET_PUSH).unwrap();
        let pkt = PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 1, 2)
            .ttl(0)
            .build();
        assert!(matches!(proc4.push(pkt), Err(PushError::TtlExpired)));
    }

    #[test]
    fn ipv6_processor_decrements_hop_limit() {
        let rt = Runtime::new();
        crate::api::register_packet_interfaces(&rt);
        let capsule = Capsule::new("t", &rt);
        let proc6 = Ipv6Processor::new();
        let sink = Discard::new();
        let pid = capsule.adopt(proc6.clone()).unwrap();
        let sid = capsule.adopt(sink.clone()).unwrap();
        capsule.bind_simple(pid, "out", sid, IPACKET_PUSH).unwrap();
        let pkt = PacketBuilder::udp_v6("2001:db8::1", "2001:db8::2", 1, 2)
            .ttl(4)
            .build();
        proc6.push(pkt).unwrap();
        assert_eq!(sink.last().unwrap().ipv6().unwrap().hop_limit, 3);
    }
}
