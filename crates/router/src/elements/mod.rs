//! Standard in-band packet-processing components for the Router CF.
//!
//! These are the "'standard' components that interface to network cards
//! and wrap efficient kernel-user space communication mechanisms"
//! (paper §5) plus the in-band functions stratum's staple elements:
//! "packet filters, checksum validators, classifiers, diffserv
//! schedulers, shapers, etc." (paper §3).
//!
//! Every element is an OpenCOM component: it embeds a
//! [`ComponentCore`], exports
//! [`IPacketPush`](crate::api::IPacketPush) /
//! [`IPacketPull`](crate::api::IPacketPull) interfaces, declares its
//! downstream dependencies as receptacles, and is therefore fully visible
//! to the architecture meta-model (introspectable, rewireable,
//! hot-replaceable, interceptable).

mod classifier;
mod device;
mod ip;
mod misc;
mod queues;
mod route;
mod sched;
mod shaper;

pub use classifier::{ClassifierEngine, DEFAULT_OUTPUT};
pub use device::{FromDevice, ToDevice};
pub use ip::{Ipv4Processor, Ipv6Processor};
pub use misc::{Counter, Discard, ProtocolRecogniser, Tee};
pub use queues::{DropTailQueue, RedConfig, RedQueue};
pub use route::{IRouteControl, RouteLookup, IROUTE_CONTROL};
pub use sched::{DrrScheduler, PriorityScheduler, Scheduler, WfqScheduler};
pub use shaper::{Meter, Policer, TokenBucketShaper};

use opencom::component::{ComponentCore, ComponentDescriptor};
use opencom::ident::Version;

pub(crate) fn element_core(type_name: &str) -> ComponentCore {
    ComponentCore::new(ComponentDescriptor::new(type_name, Version::new(1, 0, 0)))
}
