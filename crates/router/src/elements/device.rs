//! Device adapter elements: the boundary between NICs and the component
//! graph.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use netkit_kernel::nic::Nic;
use netkit_kernel::time::VirtualClock;
use netkit_packet::batch::PacketBatch;
use netkit_packet::packet::Packet;
use opencom::component::{Component, ComponentCore, Registrar};
use opencom::receptacle::Receptacle;

use crate::api::{
    BatchResult, IPacketPull, IPacketPush, PushError, PushResult, IPACKET_PULL, IPACKET_PUSH,
};

use super::element_core;

/// Pulls frames from a NIC's rx ring and pushes them downstream.
///
/// Exposes both styles: `pump()` actively pushes through the `out`
/// receptacle (poll-mode driver), and the exported `IPacketPull` lets a
/// downstream scheduler pull directly.
pub struct FromDevice {
    core: ComponentCore,
    nic: Arc<Nic>,
    clock: Arc<VirtualClock>,
    out: Receptacle<dyn IPacketPush>,
    pumped: AtomicU64,
    push_drops: AtomicU64,
}

impl FromDevice {
    /// Creates an adapter over `nic`, timestamping arrivals from `clock`.
    pub fn new(nic: Arc<Nic>, clock: Arc<VirtualClock>) -> Arc<Self> {
        Arc::new(Self {
            core: element_core("netkit.FromDevice"),
            nic,
            clock,
            out: Receptacle::single("out", IPACKET_PUSH),
            pumped: AtomicU64::new(0),
            push_drops: AtomicU64::new(0),
        })
    }

    fn wrap(&self, frame: Bytes) -> Packet {
        let mut pkt = Packet::from_slice(&frame);
        pkt.meta.ingress = Some(self.nic.port().0);
        pkt.meta.timestamp_ns = self.clock.now().as_nanos();
        pkt
    }

    /// Polls up to `budget` frames off the NIC, pushing each through the
    /// `out` receptacle. Returns the number of frames moved.
    pub fn pump(&self, budget: usize) -> usize {
        let mut moved = 0;
        for _ in 0..budget {
            let Some(frame) = self.nic.poll_rx() else {
                break;
            };
            let pkt = self.wrap(frame);
            let pushed = self.out.with_bound(|next| next.push(pkt));
            match pushed {
                Some(Ok(())) => moved += 1,
                Some(Err(_)) => {
                    self.push_drops.fetch_add(1, Ordering::Relaxed);
                }
                None => {
                    self.push_drops.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        self.pumped.fetch_add(moved as u64, Ordering::Relaxed);
        moved
    }

    /// Batch poll-mode driver loop: drains up to `budget` frames from
    /// the NIC in one ring-lock burst and pushes them downstream as one
    /// batch — one receptacle traversal (and one interceptor pass, one
    /// IPC call for isolated peers) per burst instead of per frame.
    /// Returns the number of frames accepted downstream.
    pub fn pump_batch(&self, budget: usize) -> usize {
        let frames = self.nic.rx_burst(budget);
        if frames.is_empty() {
            return 0;
        }
        let n = frames.len();
        let batch: PacketBatch = frames.into_iter().map(|f| self.wrap(f)).collect();
        let moved = match self.out.with_bound(|next| next.push_batch(batch)) {
            Some(result) => result.accepted(),
            None => 0,
        };
        self.pumped.fetch_add(moved as u64, Ordering::Relaxed);
        self.push_drops
            .fetch_add((n - moved) as u64, Ordering::Relaxed);
        moved
    }

    /// `(frames pumped, frames dropped because downstream refused)`.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.pumped.load(Ordering::Relaxed),
            self.push_drops.load(Ordering::Relaxed),
        )
    }
}

impl IPacketPull for FromDevice {
    fn pull(&self) -> Option<Packet> {
        self.nic.poll_rx().map(|frame| self.wrap(frame))
    }

    fn pull_batch(&self, max: usize) -> PacketBatch {
        // One rx-ring lock per burst.
        self.nic
            .rx_burst(max)
            .into_iter()
            .map(|f| self.wrap(f))
            .collect()
    }
}

impl Component for FromDevice {
    fn core(&self) -> &ComponentCore {
        &self.core
    }
    fn publish(self: Arc<Self>, reg: &Registrar<'_>) {
        let pull: Arc<dyn IPacketPull> = self.clone();
        reg.expose(IPACKET_PULL, &pull);
        reg.receptacle(&self.out);
    }
    fn footprint_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }
}

/// Pushes packets onto a NIC's tx ring, **moving** each packet's frame
/// storage (no copy — `Nic::send_tx_packet`): a pool-leased rx slab
/// keeps its lease all the way onto the wire and recycles when the
/// wire side drops it (`Nic::drain_tx_frame`), so steady-state egress
/// allocates nothing per frame.
pub struct ToDevice {
    core: ComponentCore,
    nic: Arc<Nic>,
    /// The tx queue this adapter transmits on (its shard's queue under
    /// the sharded runtime; 0 for the single-queue adapter).
    queue: usize,
    sent: AtomicU64,
    drops: AtomicU64,
}

impl ToDevice {
    /// Creates an adapter transmitting on `nic`'s tx queue 0.
    pub fn new(nic: Arc<Nic>) -> Arc<Self> {
        Self::with_queue(nic, 0)
    }

    /// Creates an adapter transmitting on tx queue `queue` — one per
    /// shard under the sharded runtime, so workers share no tx ring.
    pub fn with_queue(nic: Arc<Nic>, queue: usize) -> Arc<Self> {
        Arc::new(Self {
            core: element_core("netkit.ToDevice"),
            nic,
            queue,
            sent: AtomicU64::new(0),
            drops: AtomicU64::new(0),
        })
    }

    /// The tx queue this adapter transmits on.
    pub fn queue(&self) -> usize {
        self.queue
    }

    /// `(frames sent, frames dropped at the tx ring)`.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.sent.load(Ordering::Relaxed),
            self.drops.load(Ordering::Relaxed),
        )
    }
}

impl IPacketPush for ToDevice {
    fn push(&self, pkt: Packet) -> PushResult {
        if self.nic.send_tx_packet(self.queue, pkt) {
            self.sent.fetch_add(1, Ordering::Relaxed);
            Ok(())
        } else {
            self.drops.fetch_add(1, Ordering::Relaxed);
            Err(PushError::QueueFull)
        }
    }

    fn push_batch(&self, batch: PacketBatch) -> BatchResult {
        // One tx-ring pass per burst, frame storage moved rather than
        // cloned. The ring accepts in order until full, so the verdicts
        // are first-k-accepted then QueueFull — exactly the scalar
        // sequence for the same ring state.
        let n = batch.len();
        let accepted = self.nic.tx_burst_packets(self.queue, batch);
        self.sent.fetch_add(accepted as u64, Ordering::Relaxed);
        self.drops
            .fetch_add((n - accepted) as u64, Ordering::Relaxed);
        let mut result = BatchResult::with_capacity(n);
        for idx in 0..n {
            result.record(if idx < accepted {
                Ok(())
            } else {
                Err(PushError::QueueFull)
            });
        }
        result
    }
}

impl Component for ToDevice {
    fn core(&self) -> &ComponentCore {
        &self.core
    }
    fn publish(self: Arc<Self>, reg: &Registrar<'_>) {
        let push: Arc<dyn IPacketPush> = self.clone();
        reg.expose(IPACKET_PUSH, &push);
    }
    fn footprint_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netkit_kernel::nic::PortId;
    use netkit_packet::packet::PacketBuilder;
    use opencom::capsule::Capsule;
    use opencom::runtime::Runtime;

    fn nic() -> Arc<Nic> {
        Arc::new(Nic::new(PortId(3), 16, 16, 1_000_000_000))
    }

    #[test]
    fn from_device_stamps_ingress_and_time() {
        let n = nic();
        let clock = Arc::new(VirtualClock::new());
        clock.advance(500);
        let fd = FromDevice::new(Arc::clone(&n), clock);
        n.inject_rx(Bytes::from_static(b"\x00\x01"));
        let pkt = fd.pull().unwrap();
        assert_eq!(pkt.meta.ingress, Some(3));
        assert_eq!(pkt.meta.timestamp_ns, 500);
    }

    #[test]
    fn pump_moves_frames_through_binding() {
        let rt = Runtime::new();
        crate::api::register_packet_interfaces(&rt);
        let capsule = Capsule::new("t", &rt);
        let n_in = nic();
        let n_out = nic();
        let clock = Arc::new(VirtualClock::new());
        let fd = FromDevice::new(Arc::clone(&n_in), clock);
        let td = ToDevice::new(Arc::clone(&n_out));
        let fd_id = capsule.adopt(fd.clone()).unwrap();
        let td_id = capsule.adopt(td).unwrap();
        capsule
            .bind_simple(fd_id, "out", td_id, IPACKET_PUSH)
            .unwrap();
        let frame = PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 1, 2).build();
        for _ in 0..5 {
            n_in.inject_rx(Bytes::copy_from_slice(frame.data()));
        }
        assert_eq!(fd.pump(10), 5);
        assert_eq!(n_out.stats().tx_frames, 5);
        assert_eq!(fd.stats(), (5, 0));
    }

    #[test]
    fn pump_unbound_counts_drops() {
        let n = nic();
        let clock = Arc::new(VirtualClock::new());
        let fd = FromDevice::new(Arc::clone(&n), clock);
        n.inject_rx(Bytes::from_static(b"xx"));
        assert_eq!(fd.pump(10), 0);
        assert_eq!(fd.stats().1, 1);
    }

    #[test]
    fn to_device_moves_pooled_frames_without_copying() {
        use netkit_packet::pool::BufferPool;
        let pool = BufferPool::new(2048, 0, 8);
        let n = Arc::new(
            Nic::with_queues(PortId(0), 2, 8, 8, 1_000_000).with_buffer_pool(pool.clone()),
        );
        let wire = PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 1, 2).build();
        let queue = netkit_packet::flow::FlowKey::from_packet(&wire)
            .unwrap()
            .shard_for(2);
        let td = ToDevice::with_queue(Arc::clone(&n), queue);
        assert_eq!(td.queue(), queue);

        // rx leases a slab; the graph pushes the packet out via ToDevice.
        assert!(n.inject_rx_frame(wire.data()));
        let mut batch = PacketBatch::new();
        assert_eq!(n.rx_burst_batch(queue, 4, &mut batch), 1);
        assert!(td.push_batch(batch).all_ok());
        assert_eq!(pool.stats().allocated, 1);
        assert_eq!(pool.stats().recycled, 0, "slab rode through to tx");
        // Wire side serialises and drops: the slab recycles.
        let frame = n.drain_tx_frame(queue).unwrap();
        assert_eq!(&*frame, wire.data());
        drop(frame);
        assert_eq!(pool.stats().recycled, 1);
        assert_eq!(td.stats(), (1, 0));
    }

    #[test]
    fn to_device_reports_tx_ring_overflow() {
        let n = Arc::new(Nic::new(PortId(0), 2, 1, 1_000_000));
        let td = ToDevice::new(Arc::clone(&n));
        let pkt = PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 1, 2).build();
        assert!(td.push(pkt.clone()).is_ok());
        assert!(matches!(td.push(pkt), Err(PushError::QueueFull)));
        assert_eq!(td.stats(), (1, 1));
    }
}
