//! Diffserv scheduler elements.
//!
//! Schedulers sit on the pull path (Fig. 3's "link scheduler" feeds from
//! the queueing stage): they hold a multi-receptacle of `IPacketPull`
//! inputs, bound under labels in priority order, and export a single
//! `IPacketPull` that the downstream link driver polls.
//!
//! Three disciplines are provided — strict priority, deficit round-robin
//! (DRR), and a start-time-based weighted-fair approximation — matching
//! the paper's "diffserv schedulers" in the in-band functions stratum.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use netkit_packet::batch::PacketBatch;
use netkit_packet::packet::Packet;
use opencom::component::{Component, ComponentCore, Registrar};
use opencom::receptacle::Receptacle;
use parking_lot::Mutex;

use crate::api::{IPacketPull, IPACKET_PULL};

use super::element_core;

/// Per-input scheduler state; `head` holds a packet pulled from the
/// input but not yet eligible to leave (DRR/WFQ need packet sizes before
/// committing).
struct InputState {
    label: String,
    head: Option<Packet>,
    deficit: f64,
    finish_tag: f64,
    weight: f64,
    served_packets: u64,
    served_bytes: u64,
}

struct SchedState {
    inputs: Vec<InputState>,
    cursor: usize,
    virtual_time: f64,
}

/// The scheduling discipline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Discipline {
    Strict,
    Drr,
    Wfq,
}

/// Common machinery for the three disciplines.
pub struct Scheduler {
    core: ComponentCore,
    inputs: Receptacle<dyn IPacketPull>,
    state: Mutex<SchedState>,
    discipline: Discipline,
    quantum: f64,
    weights: Mutex<Vec<(String, f64)>>,
    served: AtomicU64,
}

impl Scheduler {
    fn make(
        discipline: Discipline,
        type_name: &str,
        quantum: f64,
        weights: &[(&str, f64)],
    ) -> Arc<Self> {
        Arc::new(Self {
            core: element_core(type_name),
            inputs: Receptacle::multi("in", IPACKET_PULL),
            state: Mutex::new(SchedState {
                inputs: Vec::new(),
                cursor: 0,
                virtual_time: 0.0,
            }),
            discipline,
            quantum,
            weights: Mutex::new(weights.iter().map(|(l, w)| (l.to_string(), *w)).collect()),
            served: AtomicU64::new(0),
        })
    }

    /// Total packets dispatched.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Sets (or adds) the weight for input `label`; live inputs adopt it
    /// on the next pull. Used by stratum-4 controllers to re-share a link
    /// between virtual networks at run time.
    pub fn set_weight(&self, label: &str, weight: f64) {
        assert!(weight > 0.0, "weights must be positive");
        {
            let mut weights = self.weights.lock();
            match weights.iter_mut().find(|(l, _)| l == label) {
                Some((_, w)) => *w = weight,
                None => weights.push((label.to_string(), weight)),
            }
        }
        let mut state = self.state.lock();
        if let Some(input) = state.inputs.iter_mut().find(|i| i.label == label) {
            input.weight = weight;
        }
    }

    /// Packets and bytes served per input label, in bind order.
    pub fn per_input_stats(&self) -> Vec<(String, u64, u64)> {
        let state = self.state.lock();
        state
            .inputs
            .iter()
            .map(|i| (i.label.clone(), i.served_packets, i.served_bytes))
            .collect()
    }

    /// Synchronises internal state with the receptacle's current
    /// bindings (new inputs appear, removed inputs vanish).
    fn sync_inputs(&self, state: &mut SchedState) {
        let bindings = self.inputs.bindings();
        let labels: Vec<String> = bindings.into_iter().map(|(label, _, _)| label).collect();
        let changed = state.inputs.len() != labels.len()
            || state.inputs.iter().zip(&labels).any(|(s, l)| &s.label != l);
        if !changed {
            return;
        }
        let old: Vec<InputState> = std::mem::take(&mut state.inputs);
        let mut old_by_label: Vec<Option<InputState>> = old.into_iter().map(Some).collect();
        state.inputs = labels
            .into_iter()
            .map(|label| {
                if let Some(slot) = old_by_label
                    .iter_mut()
                    .find(|s| s.as_ref().is_some_and(|i| i.label == label))
                {
                    slot.take().expect("checked above")
                } else {
                    let weight = self
                        .weights
                        .lock()
                        .iter()
                        .find(|(l, _)| *l == label)
                        .map(|(_, w)| *w)
                        .unwrap_or(1.0);
                    InputState {
                        label,
                        head: None,
                        deficit: 0.0,
                        finish_tag: 0.0,
                        weight,
                        served_packets: 0,
                        served_bytes: 0,
                    }
                }
            })
            .collect();
        state.cursor = 0;
    }

    /// Fills the head slot of input `idx` from its bound puller. A newly
    /// arrived head packet is stamped with its WFQ finish tag
    /// (self-clocked fair queueing: `max(flow finish, virtual time) +
    /// size/weight`); the stamp is unused by the other disciplines.
    fn refill_head(&self, state: &mut SchedState, idx: usize) {
        if state.inputs[idx].head.is_some() {
            return;
        }
        let label = state.inputs[idx].label.clone();
        let pulled = self.inputs.with_labelled(&label, |p| p.pull()).flatten();
        if let Some(pkt) = pulled {
            let virtual_time = state.virtual_time;
            let input = &mut state.inputs[idx];
            let start = input.finish_tag.max(virtual_time);
            input.finish_tag = start + pkt.len() as f64 / input.weight;
            input.head = Some(pkt);
        }
    }

    fn serve(&self, state: &mut SchedState, idx: usize) -> Packet {
        let pkt = state.inputs[idx].head.take().expect("head present");
        state.inputs[idx].served_packets += 1;
        state.inputs[idx].served_bytes += pkt.len() as u64;
        self.served.fetch_add(1, Ordering::Relaxed);
        pkt
    }

    fn pull_strict(&self, state: &mut SchedState) -> Option<Packet> {
        for idx in 0..state.inputs.len() {
            self.refill_head(state, idx);
            if state.inputs[idx].head.is_some() {
                return Some(self.serve(state, idx));
            }
        }
        None
    }

    fn pull_drr(&self, state: &mut SchedState) -> Option<Packet> {
        let n = state.inputs.len();
        if n == 0 {
            return None;
        }
        // At most two full rounds: one to grant quanta, one to serve.
        for _ in 0..(2 * n) {
            let idx = state.cursor % n;
            self.refill_head(state, idx);
            match state.inputs[idx].head.as_ref().map(|p| p.len() as f64) {
                Some(size) => {
                    if state.inputs[idx].deficit >= size {
                        state.inputs[idx].deficit -= size;
                        return Some(self.serve(state, idx));
                    }
                    // Not enough credit: grant a quantum and move on.
                    state.inputs[idx].deficit += self.quantum;
                    state.cursor = (state.cursor + 1) % n;
                }
                None => {
                    // Idle inputs lose their deficit (standard DRR).
                    state.inputs[idx].deficit = 0.0;
                    state.cursor = (state.cursor + 1) % n;
                }
            }
        }
        // Everything idle, or quantum too small for any head packet:
        // serve the best-credited head to guarantee progress.
        let best = (0..n)
            .filter(|i| state.inputs[*i].head.is_some())
            .max_by(|a, b| {
                state.inputs[*a]
                    .deficit
                    .partial_cmp(&state.inputs[*b].deficit)
                    .expect("finite")
            })?;
        Some(self.serve(state, best))
    }

    fn pull_wfq(&self, state: &mut SchedState) -> Option<Packet> {
        let n = state.inputs.len();
        for idx in 0..n {
            self.refill_head(state, idx);
        }
        let candidate = (0..n)
            .filter(|i| state.inputs[*i].head.is_some())
            .min_by(|a, b| {
                state.inputs[*a]
                    .finish_tag
                    .partial_cmp(&state.inputs[*b].finish_tag)
                    .expect("finite")
            })?;
        // Self-clocked fair queueing: the system virtual time is the
        // finish tag of the packet in service.
        state.virtual_time = state.inputs[candidate].finish_tag;
        Some(self.serve(state, candidate))
    }
}

impl Scheduler {
    fn pull_one(&self, state: &mut SchedState) -> Option<Packet> {
        match self.discipline {
            Discipline::Strict => self.pull_strict(state),
            Discipline::Drr => self.pull_drr(state),
            Discipline::Wfq => self.pull_wfq(state),
        }
    }
}

impl IPacketPull for Scheduler {
    fn pull(&self) -> Option<Packet> {
        let mut state = self.state.lock();
        self.sync_inputs(&mut state);
        self.pull_one(&mut state)
    }

    fn pull_batch(&self, max: usize) -> PacketBatch {
        // Batch fast path: one state lock and one binding sync for the
        // whole burst; the discipline decision still runs per packet so
        // the service order is identical to repeated scalar pulls.
        let mut batch = PacketBatch::with_capacity(max.min(64));
        let mut state = self.state.lock();
        self.sync_inputs(&mut state);
        while batch.len() < max {
            match self.pull_one(&mut state) {
                Some(pkt) => batch.push(pkt),
                None => break,
            }
        }
        batch
    }
}

impl Component for Scheduler {
    fn core(&self) -> &ComponentCore {
        &self.core
    }
    fn publish(self: Arc<Self>, reg: &Registrar<'_>) {
        let pull: Arc<dyn IPacketPull> = self.clone();
        reg.expose(IPACKET_PULL, &pull);
        reg.receptacle(&self.inputs);
    }
    fn footprint_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.state.lock().inputs.len() * std::mem::size_of::<InputState>()
    }
}

/// Strict-priority scheduler: inputs are served in bind order — the
/// first-bound label always wins when it has traffic.
#[derive(Debug)]
pub struct PriorityScheduler;

impl PriorityScheduler {
    /// Creates a strict-priority scheduler.
    #[allow(clippy::new_ret_no_self)]
    pub fn new() -> Arc<Scheduler> {
        Scheduler::make(Discipline::Strict, "netkit.PriorityScheduler", 0.0, &[])
    }
}

/// Deficit-round-robin scheduler with a byte quantum per round.
#[derive(Debug)]
pub struct DrrScheduler;

impl DrrScheduler {
    /// Creates a DRR scheduler granting `quantum` bytes per input per
    /// round.
    #[allow(clippy::new_ret_no_self)]
    pub fn new(quantum: f64) -> Arc<Scheduler> {
        Scheduler::make(Discipline::Drr, "netkit.DrrScheduler", quantum, &[])
    }
}

/// Weighted-fair scheduler (start-time-fair approximation). Inputs not
/// named in `weights` default to weight 1.
#[derive(Debug)]
pub struct WfqScheduler;

impl WfqScheduler {
    /// Creates a WFQ scheduler with per-label weights.
    #[allow(clippy::new_ret_no_self)]
    pub fn new(weights: &[(&str, f64)]) -> Arc<Scheduler> {
        Scheduler::make(Discipline::Wfq, "netkit.WfqScheduler", 0.0, weights)
    }
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Scheduler({:?}, {} inputs, {} served)",
            self.discipline,
            self.state.lock().inputs.len(),
            self.served()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::IPacketPush;
    use crate::elements::queues::DropTailQueue;
    use netkit_packet::packet::PacketBuilder;
    use opencom::capsule::Capsule;
    use opencom::runtime::Runtime;

    fn rig(
        sched: Arc<Scheduler>,
        queues: &[(&str, usize)],
    ) -> (Arc<Capsule>, Vec<Arc<DropTailQueue>>) {
        let rt = Runtime::new();
        crate::api::register_packet_interfaces(&rt);
        let capsule = Capsule::new("t", &rt);
        let sid = capsule.adopt(sched).unwrap();
        let mut out = Vec::new();
        for (label, cap) in queues {
            let q = DropTailQueue::new(*cap);
            let qid = capsule.adopt(q.clone()).unwrap();
            capsule.bind(sid, "in", label, qid, IPACKET_PULL).unwrap();
            out.push(q);
        }
        (capsule, out)
    }

    fn pkt_sized(payload: usize, sport: u16) -> netkit_packet::packet::Packet {
        PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", sport, 9)
            .payload_len(payload)
            .build()
    }

    #[test]
    fn strict_priority_serves_first_bound_first() {
        let sched = PriorityScheduler::new();
        let (_c, queues) = rig(sched.clone(), &[("hi", 16), ("lo", 16)]);
        for _ in 0..3 {
            queues[0].push(pkt_sized(10, 1)).unwrap();
            queues[1].push(pkt_sized(10, 2)).unwrap();
        }
        let order: Vec<u16> = (0..6)
            .filter_map(|_| sched.pull())
            .map(|p| p.udp_v4().unwrap().src_port)
            .collect();
        assert_eq!(order, [1, 1, 1, 2, 2, 2]);
    }

    #[test]
    fn strict_priority_resumes_high_when_traffic_returns() {
        let sched = PriorityScheduler::new();
        let (_c, queues) = rig(sched.clone(), &[("hi", 16), ("lo", 16)]);
        queues[1].push(pkt_sized(10, 2)).unwrap();
        assert_eq!(sched.pull().unwrap().udp_v4().unwrap().src_port, 2);
        queues[0].push(pkt_sized(10, 1)).unwrap();
        queues[1].push(pkt_sized(10, 2)).unwrap();
        assert_eq!(sched.pull().unwrap().udp_v4().unwrap().src_port, 1);
    }

    #[test]
    fn drr_shares_bytes_evenly_with_equal_quanta() {
        let sched = DrrScheduler::new(500.0);
        let (_c, queues) = rig(sched.clone(), &[("a", 512), ("b", 512)]);
        // a sends small packets, b sends large; byte shares should even out.
        for _ in 0..200 {
            queues[0].push(pkt_sized(58, 1)).unwrap(); // 100-byte frames
            let _ = queues[1].push(pkt_sized(458, 2)); // 500-byte frames
        }
        for _ in 0..150 {
            sched.pull().unwrap();
        }
        let stats = sched.per_input_stats();
        let a_bytes = stats[0].2 as f64;
        let b_bytes = stats[1].2 as f64;
        let ratio = a_bytes / b_bytes;
        assert!(
            (0.7..=1.4).contains(&ratio),
            "DRR byte shares should be near 1:1, got {ratio} ({a_bytes} vs {b_bytes})"
        );
    }

    #[test]
    fn drr_serves_oversized_packets_eventually() {
        // Quantum far below packet size: progress guarantee must kick in.
        let sched = DrrScheduler::new(10.0);
        let (_c, queues) = rig(sched.clone(), &[("a", 8)]);
        queues[0].push(pkt_sized(500, 1)).unwrap();
        assert!(
            sched.pull().is_some(),
            "oversized head must still be served"
        );
    }

    #[test]
    fn wfq_respects_weights() {
        let sched = WfqScheduler::new(&[("gold", 3.0), ("bronze", 1.0)]);
        let (_c, queues) = rig(sched.clone(), &[("gold", 1024), ("bronze", 1024)]);
        for _ in 0..400 {
            queues[0].push(pkt_sized(100, 1)).unwrap();
            queues[1].push(pkt_sized(100, 2)).unwrap();
        }
        for _ in 0..200 {
            sched.pull().unwrap();
        }
        let stats = sched.per_input_stats();
        let gold = stats.iter().find(|s| s.0 == "gold").unwrap().1 as f64;
        let bronze = stats.iter().find(|s| s.0 == "bronze").unwrap().1 as f64;
        let ratio = gold / bronze;
        assert!((2.5..=3.5).contains(&ratio), "expected ~3:1, got {ratio}");
    }

    #[test]
    fn wfq_work_conserving_when_one_idle() {
        let sched = WfqScheduler::new(&[("gold", 3.0), ("bronze", 1.0)]);
        let (_c, queues) = rig(sched.clone(), &[("gold", 16), ("bronze", 16)]);
        for _ in 0..5 {
            queues[1].push(pkt_sized(100, 2)).unwrap();
        }
        let mut served = 0;
        while sched.pull().is_some() {
            served += 1;
        }
        assert_eq!(served, 5, "idle gold queue must not block bronze");
    }

    #[test]
    fn empty_scheduler_pulls_none() {
        let sched = DrrScheduler::new(100.0);
        let (_c, _queues) = rig(sched.clone(), &[]);
        assert!(sched.pull().is_none());
    }

    #[test]
    fn dynamic_input_addition_is_picked_up() {
        let sched = PriorityScheduler::new();
        let (capsule, queues) = rig(sched.clone(), &[("a", 16)]);
        queues[0].push(pkt_sized(10, 1)).unwrap();
        assert!(sched.pull().is_some());
        // Bind a second queue at run time.
        let q2 = DropTailQueue::new(16);
        let q2id = capsule.adopt(q2.clone()).unwrap();
        let sid = capsule.arch().find_by_type("netkit.PriorityScheduler")[0]
            .core()
            .id();
        capsule.bind(sid, "in", "b", q2id, IPACKET_PULL).unwrap();
        q2.push(pkt_sized(10, 2)).unwrap();
        assert_eq!(sched.pull().unwrap().udp_v4().unwrap().src_port, 2);
    }
}
