//! Queue elements: drop-tail and RED.
//!
//! Queues are the push/pull boundary of the diffserv path (Fig. 3's
//! "queueing" stage): upstream pushes in, a scheduler pulls out.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use netkit_packet::batch::PacketBatch;
use netkit_packet::packet::Packet;
use opencom::component::{Component, ComponentCore, Registrar};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::api::{
    BatchResult, IPacketPull, IPacketPush, PushError, PushResult, IPACKET_PULL, IPACKET_PUSH,
};

use super::element_core;

/// Queue counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Packets accepted.
    pub enqueued: u64,
    /// Packets handed to the puller.
    pub dequeued: u64,
    /// Packets dropped because the queue was full (forced drops).
    pub dropped: u64,
    /// Packets dropped early by RED (probabilistic drops).
    pub early_dropped: u64,
}

/// A bounded FIFO with tail-drop.
pub struct DropTailQueue {
    core: ComponentCore,
    queue: Mutex<VecDeque<Packet>>,
    capacity: usize,
    enqueued: AtomicU64,
    dequeued: AtomicU64,
    dropped: AtomicU64,
}

impl DropTailQueue {
    /// Creates a queue bounded to `capacity` packets.
    pub fn new(capacity: usize) -> Arc<Self> {
        Arc::new(Self {
            core: element_core("netkit.DropTailQueue"),
            queue: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
            enqueued: AtomicU64::new(0),
            dequeued: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        })
    }

    /// Packets currently queued.
    pub fn depth(&self) -> usize {
        self.queue.lock().len()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            enqueued: self.enqueued.load(Ordering::Relaxed),
            dequeued: self.dequeued.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            early_dropped: 0,
        }
    }
}

impl IPacketPush for DropTailQueue {
    fn push(&self, pkt: Packet) -> PushResult {
        let mut q = self.queue.lock();
        if q.len() >= self.capacity {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return Err(PushError::QueueFull);
        }
        q.push_back(pkt);
        self.enqueued.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn push_batch(&self, batch: PacketBatch) -> BatchResult {
        // Batch fast path: one lock acquisition for the whole burst.
        let mut result = BatchResult::with_capacity(batch.len());
        let mut accepted = 0u64;
        let mut dropped = 0u64;
        let mut q = self.queue.lock();
        for pkt in batch {
            if q.len() >= self.capacity {
                dropped += 1;
                result.record(Err(PushError::QueueFull));
            } else {
                q.push_back(pkt);
                accepted += 1;
                result.record(Ok(()));
            }
        }
        drop(q);
        self.enqueued.fetch_add(accepted, Ordering::Relaxed);
        self.dropped.fetch_add(dropped, Ordering::Relaxed);
        result
    }
}

impl IPacketPull for DropTailQueue {
    fn pull(&self) -> Option<Packet> {
        let pkt = self.queue.lock().pop_front();
        if pkt.is_some() {
            self.dequeued.fetch_add(1, Ordering::Relaxed);
        }
        pkt
    }

    fn pull_batch(&self, max: usize) -> PacketBatch {
        let mut q = self.queue.lock();
        let take = max.min(q.len());
        let mut batch = PacketBatch::with_capacity(take);
        for _ in 0..take {
            batch.push(q.pop_front().expect("length checked"));
        }
        drop(q);
        self.dequeued.fetch_add(take as u64, Ordering::Relaxed);
        batch
    }
}

impl Component for DropTailQueue {
    fn core(&self) -> &ComponentCore {
        &self.core
    }
    fn publish(self: Arc<Self>, reg: &Registrar<'_>) {
        let push: Arc<dyn IPacketPush> = self.clone();
        reg.expose(IPACKET_PUSH, &push);
        let pull: Arc<dyn IPacketPull> = self.clone();
        reg.expose(IPACKET_PULL, &pull);
    }
    fn footprint_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.queue.lock().iter().map(|p| p.len()).sum::<usize>()
    }
}

/// RED parameters.
#[derive(Clone, Copy, Debug)]
pub struct RedConfig {
    /// Physical capacity in packets.
    pub capacity: usize,
    /// Average-depth threshold below which nothing is dropped.
    pub min_threshold: f64,
    /// Average-depth threshold above which everything is dropped.
    pub max_threshold: f64,
    /// Drop probability at `max_threshold`.
    pub max_probability: f64,
    /// EWMA weight for the average queue depth.
    pub weight: f64,
    /// RNG seed (deterministic experiments).
    pub seed: u64,
}

impl Default for RedConfig {
    fn default() -> Self {
        Self {
            capacity: 128,
            min_threshold: 16.0,
            max_threshold: 64.0,
            max_probability: 0.1,
            weight: 0.2,
            seed: 1,
        }
    }
}

struct RedState {
    queue: VecDeque<Packet>,
    avg: f64,
    rng: SmallRng,
}

/// A Random-Early-Detection queue.
pub struct RedQueue {
    core: ComponentCore,
    state: Mutex<RedState>,
    config: RedConfig,
    enqueued: AtomicU64,
    dequeued: AtomicU64,
    dropped: AtomicU64,
    early_dropped: AtomicU64,
}

impl RedQueue {
    /// Creates a RED queue with the given parameters.
    pub fn new(config: RedConfig) -> Arc<Self> {
        Arc::new(Self {
            core: element_core("netkit.RedQueue"),
            state: Mutex::new(RedState {
                queue: VecDeque::with_capacity(config.capacity),
                avg: 0.0,
                rng: SmallRng::seed_from_u64(config.seed),
            }),
            config,
            enqueued: AtomicU64::new(0),
            dequeued: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            early_dropped: AtomicU64::new(0),
        })
    }

    /// Packets currently queued.
    pub fn depth(&self) -> usize {
        self.state.lock().queue.len()
    }

    /// The EWMA average depth.
    pub fn average_depth(&self) -> f64 {
        self.state.lock().avg
    }

    /// Counter snapshot.
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            enqueued: self.enqueued.load(Ordering::Relaxed),
            dequeued: self.dequeued.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            early_dropped: self.early_dropped.load(Ordering::Relaxed),
        }
    }
}

impl RedQueue {
    /// The RED admit decision for one packet; **must** stay in lockstep
    /// with itself across the scalar and batch paths (same EWMA update,
    /// same RNG draw order) so both produce identical drop sequences.
    fn admit(&self, s: &mut RedState, pkt: Packet) -> PushResult {
        s.avg = (1.0 - self.config.weight) * s.avg + self.config.weight * s.queue.len() as f64;
        if s.queue.len() >= self.config.capacity {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return Err(PushError::QueueFull);
        }
        if s.avg >= self.config.max_threshold {
            self.early_dropped.fetch_add(1, Ordering::Relaxed);
            return Err(PushError::QueueFull);
        }
        if s.avg > self.config.min_threshold {
            let p = self.config.max_probability * (s.avg - self.config.min_threshold)
                / (self.config.max_threshold - self.config.min_threshold);
            if s.rng.gen_bool(p.clamp(0.0, 1.0)) {
                self.early_dropped.fetch_add(1, Ordering::Relaxed);
                return Err(PushError::QueueFull);
            }
        }
        s.queue.push_back(pkt);
        self.enqueued.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

impl IPacketPush for RedQueue {
    fn push(&self, pkt: Packet) -> PushResult {
        let mut s = self.state.lock();
        self.admit(&mut s, pkt)
    }

    fn push_batch(&self, batch: PacketBatch) -> BatchResult {
        // One lock for the burst; per-packet EWMA/RNG decisions are
        // identical to the scalar path by construction (shared `admit`).
        let mut result = BatchResult::with_capacity(batch.len());
        let mut s = self.state.lock();
        for pkt in batch {
            result.record(self.admit(&mut s, pkt));
        }
        result
    }
}

impl IPacketPull for RedQueue {
    fn pull(&self) -> Option<Packet> {
        let pkt = self.state.lock().queue.pop_front();
        if pkt.is_some() {
            self.dequeued.fetch_add(1, Ordering::Relaxed);
        }
        pkt
    }

    fn pull_batch(&self, max: usize) -> PacketBatch {
        let mut s = self.state.lock();
        let take = max.min(s.queue.len());
        let mut batch = PacketBatch::with_capacity(take);
        for _ in 0..take {
            batch.push(s.queue.pop_front().expect("length checked"));
        }
        drop(s);
        self.dequeued.fetch_add(take as u64, Ordering::Relaxed);
        batch
    }
}

impl Component for RedQueue {
    fn core(&self) -> &ComponentCore {
        &self.core
    }
    fn publish(self: Arc<Self>, reg: &Registrar<'_>) {
        let push: Arc<dyn IPacketPush> = self.clone();
        reg.expose(IPACKET_PUSH, &push);
        let pull: Arc<dyn IPacketPull> = self.clone();
        reg.expose(IPACKET_PULL, &pull);
    }
    fn footprint_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .state
                .lock()
                .queue
                .iter()
                .map(|p| p.len())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netkit_packet::packet::PacketBuilder;

    fn pkt() -> Packet {
        PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 1, 2).build()
    }

    #[test]
    fn drop_tail_fifo_order() {
        let q = DropTailQueue::new(4);
        for port in [1u16, 2, 3] {
            q.push(PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", port, 9).build())
                .unwrap();
        }
        assert_eq!(q.pull().unwrap().udp_v4().unwrap().src_port, 1);
        assert_eq!(q.pull().unwrap().udp_v4().unwrap().src_port, 2);
        assert_eq!(q.pull().unwrap().udp_v4().unwrap().src_port, 3);
        assert!(q.pull().is_none());
        let s = q.stats();
        assert_eq!((s.enqueued, s.dequeued, s.dropped), (3, 3, 0));
    }

    #[test]
    fn drop_tail_overflow() {
        let q = DropTailQueue::new(2);
        q.push(pkt()).unwrap();
        q.push(pkt()).unwrap();
        assert!(matches!(q.push(pkt()), Err(PushError::QueueFull)));
        assert_eq!(q.stats().dropped, 1);
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn red_accepts_everything_when_shallow() {
        let q = RedQueue::new(RedConfig {
            capacity: 100,
            min_threshold: 50.0,
            ..RedConfig::default()
        });
        for _ in 0..20 {
            q.push(pkt()).unwrap();
        }
        assert_eq!(q.stats().early_dropped, 0);
    }

    #[test]
    fn red_drops_early_under_sustained_load() {
        let q = RedQueue::new(RedConfig {
            capacity: 1000,
            min_threshold: 8.0,
            max_threshold: 32.0,
            max_probability: 0.5,
            weight: 0.5,
            seed: 7,
        });
        let mut accepted = 0;
        for _ in 0..500 {
            if q.push(pkt()).is_ok() {
                accepted += 1;
            }
        }
        let s = q.stats();
        assert!(s.early_dropped > 0, "RED must drop early under load");
        assert!(accepted > 0, "RED must not drop everything");
        assert!(
            q.average_depth() <= 40.0,
            "average depth is controlled, got {}",
            q.average_depth()
        );
    }

    #[test]
    fn red_is_deterministic_per_seed() {
        let run = |seed| {
            let q = RedQueue::new(RedConfig {
                seed,
                ..RedConfig::default()
            });
            let mut drops = 0;
            for _ in 0..300 {
                if q.push(pkt()).is_err() {
                    drops += 1;
                }
            }
            drops
        };
        assert_eq!(run(3), run(3));
    }

    #[test]
    fn red_drains_and_recovers() {
        let q = RedQueue::new(RedConfig::default());
        for _ in 0..50 {
            let _ = q.push(pkt());
        }
        while q.pull().is_some() {}
        assert_eq!(q.depth(), 0);
        // After draining, the EWMA decays and new traffic is accepted.
        for _ in 0..200 {
            let _ = q.pull();
            let _ = q.push(pkt());
        }
        assert!(q.stats().enqueued > 50);
    }
}
