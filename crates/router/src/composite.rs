//! Composite components and their **controller** (paper Figure 3).
//!
//! Paper §5, rule R3: "compliant components may be composite, in which
//! case all their internal constituents must (recursively) conform to the
//! CF's rules; additionally, composite components should contain a
//! so-called *controller* component that manages and configures the other
//! internal constituents."
//!
//! A [`Composite`] here is an ordinary OpenCOM component whose internals
//! are a *nested CF instance* governing its constituents ("Gw CF
//! instance" in Fig. 3) — "CFs accept plug-in components and, furthermore,
//! are themselves built in terms of components; the whole structure is
//! uniformly component-based" (paper §2). The composite:
//!
//! * delegates its own `IPacketPush` input to a designated *ingress*
//!   constituent, and `IPacketPull` to a designated *egress* constituent;
//! * optionally re-exports a constituent's `IClassifier`;
//! * exposes [`IComposite`] so the Router CF can recursively admit the
//!   internal graph, and [`IController`] so managers can reconfigure it;
//! * polices constraint addition/removal through the nested CF's ACL,
//!   "managed by the composite's controller" (paper §5).
//!
//! Untrusted constituents can be hosted **out-of-capsule** (separate
//! simulated address space, bindings over marshalling IPC) via
//! [`CompositeBuilder::add_isolated`], mirroring paper §5's crash
//! containment.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;

use opencom::binding::BindConstraint;
use opencom::capsule::{Capsule, Quiescence};
use opencom::cf::{CfOperation, Principal};
use opencom::component::{Component, ComponentCore, ComponentDescriptor, Registrar};
use opencom::error::{Error, Result};
use opencom::ident::{BindingId, ComponentId, InterfaceId, Version};

use netkit_packet::batch::PacketBatch;
use netkit_packet::packet::Packet;

use crate::api::{
    BatchResult, IClassifier, IPacketPull, IPacketPush, PushError, PushResult, ICLASSIFIER,
    IPACKET_PULL, IPACKET_PUSH,
};
use crate::cf::RouterCf;

/// Interface id for [`IComposite`].
pub const ICOMPOSITE: InterfaceId = InterfaceId::new("netkit.IComposite");
/// Interface id for [`IController`].
pub const ICONTROLLER: InterfaceId = InterfaceId::new("netkit.IController");

/// Structural introspection over a composite, used by the Router CF's
/// recursive admission check (rule R3).
pub trait IComposite: Send + Sync {
    /// `(label, component)` pairs for every constituent, controller
    /// excluded.
    fn constituent_components(&self) -> Vec<(String, Arc<dyn Component>)>;

    /// The controller's component id, if one is present (R3 requires it).
    fn controller_id(&self) -> Option<ComponentId>;

    /// Name of the nested CF instance governing the constituents.
    fn cf_name(&self) -> String;
}

/// Management interface of a composite's controller (Fig. 3).
///
/// All mutating operations are policed by the nested CF's ACL; the
/// controller's *owner* principal (set at build time) additionally holds
/// the exclusive right to delegate rights to others via [`grant`].
///
/// [`grant`]: IController::grant
pub trait IController: Send + Sync {
    /// `(label, id)` pairs for every constituent, controller excluded.
    fn constituents(&self) -> Vec<(String, ComponentId)>;

    /// Installs a constraint on the composite's internal topology
    /// (an interceptor on the nested CF's `bind`).
    ///
    /// # Errors
    ///
    /// [`Error::AccessDenied`] without an `AddConstraint` grant.
    fn add_constraint(&self, principal: &Principal, c: Arc<dyn BindConstraint>) -> Result<()>;

    /// Removes a constraint by name.
    ///
    /// # Errors
    ///
    /// [`Error::AccessDenied`] without a `RemoveConstraint` grant;
    /// [`Error::StaleReference`] for unknown names.
    fn remove_constraint(&self, principal: &Principal, name: &str) -> Result<()>;

    /// Names of the currently installed constraints.
    fn constraint_names(&self) -> Vec<String>;

    /// Delegates a management right. Only the owner (or `system`) may
    /// grant.
    ///
    /// # Errors
    ///
    /// [`Error::AccessDenied`] for non-owner granters.
    fn grant(&self, granter: &Principal, to: Principal, op: CfOperation) -> Result<()>;

    /// Creates an internal binding between constituents (checked against
    /// the CF rules and installed constraints).
    ///
    /// # Errors
    ///
    /// Propagates ACL, rule, constraint, and bind failures.
    fn rewire(
        &self,
        principal: &Principal,
        src_label: &str,
        receptacle: &str,
        bind_label: &str,
        dst_label: &str,
        interface: InterfaceId,
    ) -> Result<BindingId>;

    /// Removes an internal binding.
    ///
    /// # Errors
    ///
    /// Propagates ACL and unbind failures.
    fn unwire(&self, principal: &Principal, binding: BindingId) -> Result<()>;

    /// ACL-gated access to a constituent's `IClassifier` (the "Access to
    /// IClassifier interfaces" arrow in Fig. 3).
    ///
    /// # Errors
    ///
    /// [`Error::AccessDenied`] without an `Intercept` grant;
    /// [`Error::InterfaceNotFound`] if the constituent lacks a classifier.
    fn classifier(&self, principal: &Principal, label: &str) -> Result<Arc<dyn IClassifier>>;

    /// Hot-replaces the constituent at `label` with an already-hosted
    /// component, rewiring every edge under the chosen quiescence mode.
    ///
    /// # Errors
    ///
    /// Propagates ACL, CF admission, and replacement failures.
    fn replace(
        &self,
        principal: &Principal,
        label: &str,
        new: ComponentId,
        mode: Quiescence,
    ) -> Result<()>;
}

/// Shared mutable state between a [`Composite`] and its [`Controller`].
struct CompositeState {
    cf: RouterCf,
    labels: RwLock<HashMap<String, ComponentId>>,
    owner: Principal,
}

impl CompositeState {
    fn lookup(&self, label: &str) -> Result<ComponentId> {
        self.labels
            .read()
            .get(label)
            .copied()
            .ok_or_else(|| Error::StaleReference {
                what: format!("constituent `{label}`"),
            })
    }
}

/// The controller constituent (Fig. 3, bottom-left box).
pub struct Controller {
    core: ComponentCore,
    state: Arc<CompositeState>,
}

impl Controller {
    fn new(state: Arc<CompositeState>) -> Arc<Self> {
        Arc::new(Self {
            core: ComponentCore::new(ComponentDescriptor::new(
                "netkit.Controller",
                Version::new(1, 0, 0),
            )),
            state,
        })
    }
}

impl IController for Controller {
    fn constituents(&self) -> Vec<(String, ComponentId)> {
        let mut out: Vec<(String, ComponentId)> = self
            .state
            .labels
            .read()
            .iter()
            .map(|(l, id)| (l.clone(), *id))
            .collect();
        out.sort();
        out
    }

    fn add_constraint(&self, principal: &Principal, c: Arc<dyn BindConstraint>) -> Result<()> {
        self.state.cf.add_constraint(principal, c)
    }

    fn remove_constraint(&self, principal: &Principal, name: &str) -> Result<()> {
        self.state.cf.remove_constraint(principal, name)
    }

    fn constraint_names(&self) -> Vec<String> {
        self.state.cf.inner().constraint_names()
    }

    fn grant(&self, granter: &Principal, to: Principal, op: CfOperation) -> Result<()> {
        if granter != &self.state.owner && granter != &Principal::system() {
            return Err(Error::AccessDenied {
                principal: granter.0.clone(),
                operation: "Grant".into(),
            });
        }
        self.state.cf.acl().grant(to, op);
        Ok(())
    }

    fn rewire(
        &self,
        principal: &Principal,
        src_label: &str,
        receptacle: &str,
        bind_label: &str,
        dst_label: &str,
        interface: InterfaceId,
    ) -> Result<BindingId> {
        let src = self.state.lookup(src_label)?;
        let dst = self.state.lookup(dst_label)?;
        self.state
            .cf
            .bind(principal, src, receptacle, bind_label, dst, interface)
    }

    fn unwire(&self, principal: &Principal, binding: BindingId) -> Result<()> {
        self.state.cf.unbind(principal, binding)
    }

    fn classifier(&self, principal: &Principal, label: &str) -> Result<Arc<dyn IClassifier>> {
        let id = self.state.lookup(label)?;
        self.state.cf.classifier_access(principal, id)
    }

    fn replace(
        &self,
        principal: &Principal,
        label: &str,
        new: ComponentId,
        mode: Quiescence,
    ) -> Result<()> {
        self.state.cf.acl().check(principal, CfOperation::Replace)?;
        let old = self.state.lookup(label)?;
        // Admit the replacement against the CF rules *before* touching the
        // graph (R1–R3 still hold afterwards).
        let new_comp = self.state.cf.capsule().component(new)?;
        opencom::cf::CfRules::admit(&crate::cf::RouterRules, &new_comp)?;
        self.state.cf.capsule().replace(old, new, mode)?;
        // Keep the CF membership and label table coherent.
        self.state.cf.unplug(&Principal::system(), old)?;
        self.state.cf.plug(&Principal::system(), new)?;
        self.state.labels.write().insert(label.to_string(), new);
        Ok(())
    }
}

impl Component for Controller {
    fn core(&self) -> &ComponentCore {
        &self.core
    }
    fn publish(self: Arc<Self>, reg: &Registrar<'_>) {
        let me: Arc<dyn IController> = self.clone();
        reg.expose(ICONTROLLER, &me);
    }
}

impl fmt::Debug for Controller {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Controller({} constituents)",
            self.state.labels.read().len()
        )
    }
}

/// A composite component accepted by the Router CF (Fig. 3).
///
/// Build one with [`CompositeBuilder`]; see the crate examples for the
/// full Fig. 3 gateway.
pub struct Composite {
    core: ComponentCore,
    state: Arc<CompositeState>,
    controller: Arc<Controller>,
    controller_id: ComponentId,
    ingress: Option<Arc<dyn IPacketPush>>,
    egress: Option<Arc<dyn IPacketPull>>,
    classifier: Option<Arc<dyn IClassifier>>,
}

impl Composite {
    /// The controller's management interface.
    pub fn controller(&self) -> Arc<dyn IController> {
        self.controller.clone()
    }

    /// The nested CF governing the constituents.
    pub fn cf(&self) -> &RouterCf {
        &self.state.cf
    }

    /// Id of the constituent registered under `label`.
    ///
    /// # Errors
    ///
    /// [`Error::StaleReference`] for unknown labels.
    pub fn constituent(&self, label: &str) -> Result<ComponentId> {
        self.state.lookup(label)
    }
}

impl IComposite for Composite {
    fn constituent_components(&self) -> Vec<(String, Arc<dyn Component>)> {
        let labels = self.state.labels.read();
        let mut out = Vec::with_capacity(labels.len());
        for (label, id) in labels.iter() {
            if let Ok(c) = self.state.cf.capsule().component(*id) {
                out.push((label.clone(), c));
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    fn controller_id(&self) -> Option<ComponentId> {
        Some(self.controller_id)
    }

    fn cf_name(&self) -> String {
        self.state.cf.name().to_string()
    }
}

impl IPacketPush for Composite {
    fn push(&self, pkt: Packet) -> PushResult {
        match &self.ingress {
            Some(input) => input.push(pkt),
            None => Err(PushError::Unbound),
        }
    }

    fn push_batch(&self, batch: PacketBatch) -> BatchResult {
        // Whole batches cross the composite boundary in one delegation,
        // so a Fig-3 gateway adds no per-packet indirection cost.
        match &self.ingress {
            Some(input) => input.push_batch(batch),
            None => BatchResult::err(batch.len(), PushError::Unbound),
        }
    }
}

impl IPacketPull for Composite {
    fn pull(&self) -> Option<Packet> {
        self.egress.as_ref().and_then(|e| e.pull())
    }

    fn pull_batch(&self, max: usize) -> PacketBatch {
        match &self.egress {
            Some(egress) => egress.pull_batch(max),
            None => PacketBatch::new(),
        }
    }
}

impl IClassifier for Composite {
    fn register_filter(&self, spec: crate::api::FilterSpec) -> Result<crate::api::FilterId> {
        match &self.classifier {
            Some(c) => c.register_filter(spec),
            None => Err(Error::InterfaceNotFound {
                component: self.core.id(),
                interface: ICLASSIFIER,
            }),
        }
    }
    fn remove_filter(&self, id: crate::api::FilterId) -> Result<()> {
        match &self.classifier {
            Some(c) => c.remove_filter(id),
            None => Err(Error::InterfaceNotFound {
                component: self.core.id(),
                interface: ICLASSIFIER,
            }),
        }
    }
    fn filters(&self) -> Vec<(crate::api::FilterId, crate::api::FilterSpec)> {
        self.classifier
            .as_ref()
            .map(|c| c.filters())
            .unwrap_or_default()
    }
}

impl Component for Composite {
    fn core(&self) -> &ComponentCore {
        &self.core
    }

    fn publish(self: Arc<Self>, reg: &Registrar<'_>) {
        let meta: Arc<dyn IComposite> = self.clone();
        reg.expose(ICOMPOSITE, &meta);
        let ctl: Arc<dyn IController> = self.controller.clone();
        reg.expose(ICONTROLLER, &ctl);
        if self.ingress.is_some() {
            let push: Arc<dyn IPacketPush> = self.clone();
            reg.expose(IPACKET_PUSH, &push);
        }
        if self.egress.is_some() {
            let pull: Arc<dyn IPacketPull> = self.clone();
            reg.expose(IPACKET_PULL, &pull);
        }
        if self.classifier.is_some() {
            let cls: Arc<dyn IClassifier> = self.clone();
            reg.expose(ICLASSIFIER, &cls);
        }
    }

    fn footprint_bytes(&self) -> usize {
        let mut total = std::mem::size_of::<Self>();
        for (_, c) in self.constituent_components() {
            total += c.footprint_bytes();
        }
        total
    }
}

impl fmt::Debug for Composite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Composite(`{}`, {} constituents)",
            self.core.descriptor().type_name,
            self.state.labels.read().len()
        )
    }
}

/// Pending internal bind recorded by the builder.
struct PendingBind {
    src: String,
    receptacle: String,
    bind_label: String,
    dst: String,
    interface: InterfaceId,
}

/// Builder for [`Composite`] components.
///
/// ```
/// use std::sync::Arc;
/// use opencom::capsule::Capsule;
/// use opencom::cf::Principal;
/// use opencom::runtime::Runtime;
/// use netkit_router::api::{register_packet_interfaces, IPACKET_PUSH};
/// use netkit_router::composite::CompositeBuilder;
/// use netkit_router::elements::{ClassifierEngine, Discard};
///
/// let rt = Runtime::new();
/// register_packet_interfaces(&rt);
/// let capsule = Capsule::new("node", &rt);
///
/// let composite = CompositeBuilder::new("demo.Gateway", Arc::clone(&capsule))
///     .owner(Principal::new("admin"))
///     .add("cls", ClassifierEngine::new())?
///     .add("sink", Discard::new())?
///     .wire("cls", "out", "default", "sink", IPACKET_PUSH)
///     .ingress("cls")
///     .classifier("cls")
///     .build()?;
/// assert!(composite.constituent("cls").is_ok());
/// # Ok::<(), opencom::error::Error>(())
/// ```
pub struct CompositeBuilder {
    type_name: String,
    capsule: Arc<Capsule>,
    owner: Principal,
    members: Vec<(String, ComponentId)>,
    binds: Vec<PendingBind>,
    ingress: Option<String>,
    egress: Option<String>,
    classifier: Option<String>,
}

impl CompositeBuilder {
    /// Starts a composite of deployable type `type_name` hosted in
    /// `capsule`.
    pub fn new(type_name: impl Into<String>, capsule: Arc<Capsule>) -> Self {
        Self {
            type_name: type_name.into(),
            capsule,
            owner: Principal::system(),
            members: Vec::new(),
            binds: Vec::new(),
            ingress: None,
            egress: None,
            classifier: None,
        }
    }

    /// Sets the owning principal (may later delegate rights via the
    /// controller). Defaults to `system`.
    pub fn owner(mut self, owner: Principal) -> Self {
        self.owner = owner;
        self
    }

    /// Adopts `component` into the capsule and registers it as the
    /// constituent `label`.
    ///
    /// # Errors
    ///
    /// Propagates adoption failures; duplicate labels are refused.
    pub fn add(mut self, label: impl Into<String>, component: Arc<dyn Component>) -> Result<Self> {
        let label = label.into();
        if self.members.iter().any(|(l, _)| *l == label) {
            return Err(Error::CfViolation {
                framework: self.type_name.clone(),
                rule: format!("duplicate constituent label `{label}`"),
            });
        }
        let id = self.capsule.adopt(component)?;
        self.members.push((label, id));
        Ok(self)
    }

    /// Adds an already-hosted component (e.g. created through the
    /// registry) as constituent `label`.
    ///
    /// # Errors
    ///
    /// Refuses duplicate labels or unknown ids.
    pub fn add_existing(mut self, label: impl Into<String>, id: ComponentId) -> Result<Self> {
        let label = label.into();
        if self.members.iter().any(|(l, _)| *l == label) {
            return Err(Error::CfViolation {
                framework: self.type_name.clone(),
                rule: format!("duplicate constituent label `{label}`"),
            });
        }
        self.capsule.component(id)?; // existence check
        self.members.push((label, id));
        Ok(self)
    }

    /// Instantiates an **untrusted** constituent in a separate (simulated)
    /// address space, bound transparently via IPC (paper §5 crash
    /// containment). `interfaces` lists the interfaces to proxy.
    ///
    /// # Errors
    ///
    /// Propagates registry and isolation failures.
    pub fn add_isolated(
        mut self,
        label: impl Into<String>,
        type_name: &str,
        interfaces: &[InterfaceId],
    ) -> Result<Self> {
        let label = label.into();
        if self.members.iter().any(|(l, _)| *l == label) {
            return Err(Error::CfViolation {
                framework: self.type_name.clone(),
                rule: format!("duplicate constituent label `{label}`"),
            });
        }
        let id = self.capsule.instantiate_isolated(type_name, interfaces)?;
        self.members.push((label, id));
        Ok(self)
    }

    /// Records an internal binding to be created at build time (checked
    /// against the nested CF's rules and constraints).
    pub fn wire(
        mut self,
        src: impl Into<String>,
        receptacle: impl Into<String>,
        bind_label: impl Into<String>,
        dst: impl Into<String>,
        interface: InterfaceId,
    ) -> Self {
        self.binds.push(PendingBind {
            src: src.into(),
            receptacle: receptacle.into(),
            bind_label: bind_label.into(),
            dst: dst.into(),
            interface,
        });
        self
    }

    /// Designates the constituent whose `IPacketPush` becomes the
    /// composite's input.
    pub fn ingress(mut self, label: impl Into<String>) -> Self {
        self.ingress = Some(label.into());
        self
    }

    /// Designates the constituent whose `IPacketPull` becomes the
    /// composite's output.
    pub fn egress(mut self, label: impl Into<String>) -> Self {
        self.egress = Some(label.into());
        self
    }

    /// Designates the constituent whose `IClassifier` the composite
    /// re-exports.
    pub fn classifier(mut self, label: impl Into<String>) -> Self {
        self.classifier = Some(label.into());
        self
    }

    /// Builds the composite: creates the nested CF, plugs every
    /// constituent (running rules R1–R3 on each), creates the internal
    /// bindings, instantiates the controller, and adopts the composite
    /// itself into the capsule.
    ///
    /// # Errors
    ///
    /// Any rule violation, failed bind, or missing designated label
    /// aborts the build.
    pub fn build(self) -> Result<Arc<Composite>> {
        let cf = RouterCf::new(format!("{}::cf", self.type_name), Arc::clone(&self.capsule));
        let sys = Principal::system();

        let mut labels = HashMap::new();
        for (label, id) in &self.members {
            cf.plug(&sys, *id)?;
            labels.insert(label.clone(), *id);
        }

        let state = Arc::new(CompositeState {
            cf,
            labels: RwLock::new(labels),
            owner: self.owner.clone(),
        });

        for b in &self.binds {
            let src = state.lookup(&b.src)?;
            let dst = state.lookup(&b.dst)?;
            state
                .cf
                .bind(&sys, src, &b.receptacle, &b.bind_label, dst, b.interface)?;
        }

        let resolve_iface = |label: &Option<String>,
                             iface: InterfaceId|
         -> Result<Option<opencom::interface::InterfaceRef>> {
            match label {
                Some(l) => {
                    let id = state.lookup(l)?;
                    Ok(Some(self.capsule.query_interface(id, iface)?))
                }
                None => Ok(None),
            }
        };

        let ingress: Option<Arc<dyn IPacketPush>> = resolve_iface(&self.ingress, IPACKET_PUSH)?
            .map(|r| {
                r.downcast().ok_or(Error::InterfaceNotFound {
                    component: state
                        .lookup(self.ingress.as_ref().expect("present"))
                        .expect("checked"),
                    interface: IPACKET_PUSH,
                })
            })
            .transpose()?;
        let egress: Option<Arc<dyn IPacketPull>> = resolve_iface(&self.egress, IPACKET_PULL)?
            .map(|r| {
                r.downcast().ok_or(Error::InterfaceNotFound {
                    component: state
                        .lookup(self.egress.as_ref().expect("present"))
                        .expect("checked"),
                    interface: IPACKET_PULL,
                })
            })
            .transpose()?;
        let classifier: Option<Arc<dyn IClassifier>> =
            resolve_iface(&self.classifier, ICLASSIFIER)?
                .map(|r| {
                    r.downcast().ok_or(Error::InterfaceNotFound {
                        component: state
                            .lookup(self.classifier.as_ref().expect("present"))
                            .expect("checked"),
                        interface: ICLASSIFIER,
                    })
                })
                .transpose()?;

        let controller = Controller::new(Arc::clone(&state));
        let controller_id = self.capsule.adopt(controller.clone())?;

        let composite = Arc::new(Composite {
            core: ComponentCore::new(
                ComponentDescriptor::new(self.type_name, Version::new(1, 0, 0)).composite(),
            ),
            state,
            controller,
            controller_id,
            ingress,
            egress,
            classifier,
        });
        self.capsule.adopt(composite.clone())?;
        Ok(composite)
    }
}

impl fmt::Debug for CompositeBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CompositeBuilder(`{}`, {} members, {} binds)",
            self.type_name,
            self.members.len(),
            self.binds.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{register_packet_interfaces, FilterPattern, FilterSpec};
    use crate::elements::{ClassifierEngine, Discard, DropTailQueue};
    use netkit_packet::packet::PacketBuilder;
    use opencom::binding::TopologyRule;
    use opencom::runtime::Runtime;

    fn setup() -> Arc<Capsule> {
        let rt = Runtime::new();
        register_packet_interfaces(&rt);
        Capsule::new("t", &rt)
    }

    fn demo_composite(capsule: &Arc<Capsule>) -> Arc<Composite> {
        CompositeBuilder::new("t.Gateway", Arc::clone(capsule))
            .owner(Principal::new("admin"))
            .add("cls", ClassifierEngine::new())
            .unwrap()
            .add("q", DropTailQueue::new(64))
            .unwrap()
            .add("sink", Discard::new())
            .unwrap()
            .wire("cls", "out", "default", "q", IPACKET_PUSH)
            .ingress("cls")
            .egress("q")
            .classifier("cls")
            .build()
            .unwrap()
    }

    #[test]
    fn composite_delegates_push_and_pull() {
        let capsule = setup();
        let composite = demo_composite(&capsule);
        composite
            .push(
                PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 1, 2)
                    .payload(b"x")
                    .build(),
            )
            .unwrap();
        let out = composite.pull().expect("queued packet");
        assert_eq!(out.meta.dscp, Some(0));
        assert!(composite.pull().is_none());
    }

    #[test]
    fn composite_reexports_classifier() {
        let capsule = setup();
        let composite = demo_composite(&capsule);
        // The "default" output exists, so a filter to it is accepted.
        composite
            .register_filter(FilterSpec::new(FilterPattern::any(), "default", 1))
            .unwrap();
        assert_eq!(composite.filters().len(), 1);
        let err = composite
            .register_filter(FilterSpec::new(FilterPattern::any(), "nowhere", 1))
            .unwrap_err();
        assert!(matches!(err, Error::CfViolation { .. }));
    }

    #[test]
    fn composite_satisfies_router_cf_r3() {
        let capsule = setup();
        let composite = demo_composite(&capsule);
        let cf = RouterCf::new("outer", Arc::clone(&capsule));
        let id = composite.core().id();
        cf.plug(&Principal::system(), id).unwrap();
        assert!(cf.members().contains(&id));
    }

    #[test]
    fn controller_lists_constituents_and_rewires() {
        let capsule = setup();
        let composite = demo_composite(&capsule);
        let ctl = composite.controller();
        let names: Vec<String> = ctl.constituents().into_iter().map(|(l, _)| l).collect();
        assert_eq!(names, ["cls", "q", "sink"]);

        // admin has no Bind grant yet.
        let admin = Principal::new("admin");
        let err = ctl
            .rewire(&admin, "cls", "out", "bulk", "sink", IPACKET_PUSH)
            .unwrap_err();
        assert!(matches!(err, Error::AccessDenied { .. }));

        ctl.grant(&admin, admin.clone(), CfOperation::Bind).unwrap();
        ctl.rewire(&admin, "cls", "out", "bulk", "sink", IPACKET_PUSH)
            .unwrap();
    }

    #[test]
    fn only_owner_may_grant() {
        let capsule = setup();
        let composite = demo_composite(&capsule);
        let ctl = composite.controller();
        let eve = Principal::new("eve");
        assert!(matches!(
            ctl.grant(&eve, eve.clone(), CfOperation::Bind),
            Err(Error::AccessDenied { .. })
        ));
        // system can always grant.
        ctl.grant(&Principal::system(), eve.clone(), CfOperation::Bind)
            .unwrap();
    }

    #[test]
    fn constraints_police_internal_topology() {
        let capsule = setup();
        let composite = demo_composite(&capsule);
        let ctl = composite.controller();
        let admin = Principal::new("admin");
        ctl.grant(&admin, admin.clone(), CfOperation::AddConstraint)
            .unwrap();
        ctl.grant(&admin, admin.clone(), CfOperation::Bind).unwrap();

        // Forbid classifier → sink edges, then try to create one.
        ctl.add_constraint(
            &admin,
            TopologyRule::Forbid("netkit.Classifier".into(), "netkit.Discard".into())
                .into_constraint(),
        )
        .unwrap();
        let err = ctl
            .rewire(&admin, "cls", "out", "bulk", "sink", IPACKET_PUSH)
            .unwrap_err();
        assert!(matches!(err, Error::ConstraintVeto { .. }));

        // Removal requires its own grant; then the edge becomes legal.
        let name = ctl.constraint_names()[0].clone();
        assert!(ctl.remove_constraint(&admin, &name).is_err());
        ctl.grant(&admin, admin.clone(), CfOperation::RemoveConstraint)
            .unwrap();
        ctl.remove_constraint(&admin, &name).unwrap();
        ctl.rewire(&admin, "cls", "out", "bulk", "sink", IPACKET_PUSH)
            .unwrap();
    }

    #[test]
    fn classifier_access_via_controller_is_acl_gated() {
        let capsule = setup();
        let composite = demo_composite(&capsule);
        let ctl = composite.controller();
        let ops = Principal::new("ops");
        assert!(matches!(
            ctl.classifier(&ops, "cls"),
            Err(Error::AccessDenied { .. })
        ));
        ctl.grant(&Principal::system(), ops.clone(), CfOperation::Intercept)
            .unwrap();
        let cls = ctl.classifier(&ops, "cls").unwrap();
        cls.register_filter(FilterSpec::new(FilterPattern::any(), "default", 7))
            .unwrap();
        assert_eq!(composite.filters().len(), 1);
    }

    #[test]
    fn controller_hot_replaces_constituent() {
        let capsule = setup();
        let composite = demo_composite(&capsule);
        let ctl = composite.controller();
        let sys = Principal::system();

        // Push one packet through the original queue.
        composite
            .push(PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 1, 2).build())
            .unwrap();

        // Replace the queue with a bigger one.
        let new_q = DropTailQueue::new(256);
        let new_id = capsule.adopt(new_q).unwrap();
        ctl.replace(&sys, "q", new_id, Quiescence::PerEdge).unwrap();

        // Data path still flows end-to-end after the swap. The in-flight
        // packet in the *old* queue is gone with the old component; the
        // composite's egress delegate still points at the old instance by
        // Arc, so re-resolve through the constituent id instead.
        assert_eq!(composite.constituent("q").unwrap(), new_id);
        composite
            .push(PacketBuilder::udp_v4("10.0.0.1", "10.0.0.3", 3, 4).build())
            .unwrap();
        let q: Arc<dyn IPacketPull> = capsule
            .query_interface(new_id, IPACKET_PULL)
            .unwrap()
            .downcast()
            .unwrap();
        assert!(q.pull().is_some());
    }

    #[test]
    fn replace_admits_against_rules_first() {
        let capsule = setup();
        let composite = demo_composite(&capsule);
        let ctl = composite.controller();

        struct NoSurface {
            core: ComponentCore,
        }
        impl Component for NoSurface {
            fn core(&self) -> &ComponentCore {
                &self.core
            }
            fn publish(self: Arc<Self>, _reg: &Registrar<'_>) {}
        }
        let bad = capsule
            .adopt(Arc::new(NoSurface {
                core: ComponentCore::new(ComponentDescriptor::new("t.Bad", Version::new(1, 0, 0))),
            }))
            .unwrap();
        let err = ctl
            .replace(&Principal::system(), "q", bad, Quiescence::PerEdge)
            .unwrap_err();
        assert!(err.to_string().contains("R1"), "{err}");
        // Label table unchanged.
        assert_ne!(composite.constituent("q").unwrap(), bad);
    }

    #[test]
    fn builder_rejects_duplicate_labels_and_unknown_designates() {
        let capsule = setup();
        let dup = CompositeBuilder::new("t.G", Arc::clone(&capsule))
            .add("a", Discard::new())
            .unwrap()
            .add("a", Discard::new());
        assert!(dup.is_err());

        let missing = CompositeBuilder::new("t.G2", Arc::clone(&capsule))
            .add("a", Discard::new())
            .unwrap()
            .ingress("nope")
            .build();
        assert!(missing.is_err());
    }

    #[test]
    fn composite_without_ingress_rejects_push() {
        let capsule = setup();
        let composite = CompositeBuilder::new("t.G3", Arc::clone(&capsule))
            .add("sink", Discard::new())
            .unwrap()
            .build()
            .unwrap();
        let err = composite
            .push(PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 1, 2).build())
            .unwrap_err();
        assert_eq!(err, PushError::Unbound);
    }

    #[test]
    fn footprint_includes_constituents() {
        let capsule = setup();
        let composite = demo_composite(&capsule);
        let own = std::mem::size_of::<Composite>();
        assert!(composite.footprint_bytes() > own);
    }
}
