//! NAT44: source NAT with deterministic port-block allocation.

use std::fmt;
use std::net::{IpAddr, Ipv4Addr};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use netkit_packet::batch::PacketBatch;
use netkit_packet::flow::FlowKey;
use netkit_packet::headers::proto;
use netkit_packet::packet::Packet;
use opencom::component::{Component, ComponentCore, Registrar};
use opencom::receptacle::Receptacle;
use parking_lot::Mutex;

use crate::api::{BatchResult, IPacketPush, PushError, PushResult, IPACKET_PUSH};
use crate::elements::element_core;

use super::conntrack::tcp_flags;
use super::rewrite::{rewrite_ipv4_endpoint, RewriteSide};
use super::table::{FlowClock, FlowTable};

/// Configuration for [`Nat44`].
#[derive(Clone, Copy, Debug)]
pub struct Nat44Config {
    /// The external (public) IPv4 address bindings translate to.
    pub external_ip: Ipv4Addr,
    /// First external port of the pool.
    pub port_base: u16,
    /// Number of port blocks in the pool.
    pub blocks: u16,
    /// Ports per block. The pool spans
    /// `port_base .. port_base + blocks × block_size`.
    pub block_size: u16,
    /// Flow-table bound (each binding holds two entries).
    pub table_capacity: usize,
    /// Idle timeout in [`FlowClock`] ticks (`u64::MAX` disables).
    pub idle_timeout: u64,
}

impl Default for Nat44Config {
    fn default() -> Self {
        Self {
            external_ip: Ipv4Addr::new(192, 0, 2, 1),
            port_base: 10_000,
            blocks: 64,
            block_size: 64,
            table_capacity: 8_192,
            idle_timeout: u64::MAX,
        }
    }
}

/// Lifetime counters for a [`Nat44`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Nat44Stats {
    /// Outbound packets translated.
    pub translated_out: u64,
    /// Inbound packets reverse-translated.
    pub translated_in: u64,
    /// Packets passed through untouched (non-IPv4 / port-less).
    pub passthrough: u64,
    /// Packets dropped: no free external port.
    pub exhausted: u64,
    /// Inbound packets dropped: no binding.
    pub unbound: u64,
}

/// One direction of a NAT binding.
#[derive(Clone, Copy, Debug)]
enum NatEntry {
    /// Keyed by the canonical *inside* tuple.
    Forward {
        /// Allocated external port (index into the pool).
        ext_port: u16,
        /// The paired reverse entry's key.
        pair: FlowKey,
    },
    /// Keyed by the canonical *outside* tuple.
    Reverse {
        /// The inside endpoint to restore on inbound traffic.
        inside_ip: Ipv4Addr,
        /// The inside port to restore.
        inside_port: u16,
        /// The paired forward entry's key.
        pair: FlowKey,
    },
}

struct NatInner {
    table: FlowTable<NatEntry>,
    /// Port-pool occupancy, indexed by `port - port_base`.
    used: Vec<bool>,
    used_count: usize,
}

impl NatInner {
    /// Unlinks whatever an eviction left dangling: the pair entry, and
    /// the external port if a forward binding died.
    fn unlink(&mut self, cfg: &Nat44Config, entry: NatEntry) {
        let pair_key = match entry {
            NatEntry::Forward { ext_port, pair } => {
                self.release(cfg, ext_port);
                pair
            }
            NatEntry::Reverse { pair, .. } => pair,
        };
        if let Some(NatEntry::Forward { ext_port, .. }) = self.table.remove(&pair_key) {
            self.release(cfg, ext_port);
        }
    }

    fn release(&mut self, cfg: &Nat44Config, port: u16) {
        let idx = (port - cfg.port_base) as usize;
        if self.used[idx] {
            self.used[idx] = false;
            self.used_count -= 1;
        }
    }

    /// Deterministic port-block allocation: the flow hash picks a home
    /// block and a preferred slot inside it; probing walks the pool
    /// linearly from there. A pure function of (hash, free set) — a
    /// binding re-created from scratch (e.g. after a shard migration
    /// re-homed the flow) lands on the same external port whenever it
    /// is still free.
    fn alloc(&mut self, cfg: &Nat44Config, hash: u64) -> Option<u16> {
        let total = cfg.blocks as usize * cfg.block_size as usize;
        if self.used_count >= total {
            return None;
        }
        let block = (hash % cfg.blocks as u64) as usize;
        let slot = ((hash >> 32) % cfg.block_size as u64) as usize;
        let start = block * cfg.block_size as usize + slot;
        for i in 0..total {
            let idx = (start + i) % total;
            if !self.used[idx] {
                self.used[idx] = true;
                self.used_count += 1;
                return Some(cfg.port_base + idx as u16);
            }
        }
        None
    }
}

/// Source-NAT element (NAT44).
///
/// Outbound IPv4 UDP/TCP traffic (anything not addressed *to* the
/// external IP) gets its source endpoint rewritten to
/// `external_ip : allocated-port`; inbound traffic addressed to the
/// external IP is matched against the paired reverse entry and
/// restored. Bindings are per-flow (symmetric NAT), held as **paired
/// forward/reverse entries** in one bounded [`FlowTable`]; evicting
/// either side unlinks its pair and frees the port.
///
/// Packets the NAT cannot serve are *dropped with a verdict* through
/// the normal batch paths: [`PushError::Exhausted`] when the external
/// port pool has no free slot, [`PushError::Veto`] for inbound traffic
/// with no binding. Non-IPv4 and port-less frames pass through
/// untouched.
///
/// Bindings are reclaimed three ways: LRU pressure in the bounded
/// table (eviction unlinks the pair and frees the port), an observed
/// TCP RST in either direction (immediate teardown — the connection is
/// dead and the port goes straight back to the pool), and [`sweep`]
/// (idle-timeout expiry; `get_mut`'s lazy expiry hides stale entries
/// from lookups but leaves their ports allocated until a sweep walks
/// the corpses out). A `FIN` does **not** tear the binding down
/// inline: the FIN/ACK handshake still needs the reverse mapping, so
/// half-closed flows age out via the idle timeout instead.
///
/// [`sweep`]: Nat44::sweep
///
/// Deployment note: rewriting changes the flow tuple, so the external
/// side of a binding hashes differently from the inside flow. The
/// deterministic port-*block* allocation exists so a deployment can
/// dedicate port blocks per shard and steer inbound traffic by
/// destination-port block back to the shard holding the binding.
pub struct Nat44 {
    core: ComponentCore,
    out: Receptacle<dyn IPacketPush>,
    cfg: Nat44Config,
    inner: Mutex<NatInner>,
    clock: FlowClock,
    translated_out: AtomicU64,
    translated_in: AtomicU64,
    passthrough: AtomicU64,
    exhausted: AtomicU64,
    unbound: AtomicU64,
}

impl Nat44 {
    /// Creates a NAT with the given configuration.
    pub fn new(cfg: Nat44Config) -> Arc<Self> {
        let pool = cfg.blocks as usize * cfg.block_size as usize;
        assert!(
            cfg.port_base as usize + pool <= u16::MAX as usize + 1,
            "port pool must fit in u16"
        );
        Arc::new(Self {
            core: element_core("netkit.Nat44"),
            out: Receptacle::single("out", IPACKET_PUSH),
            inner: Mutex::new(NatInner {
                table: FlowTable::new(cfg.table_capacity, cfg.idle_timeout),
                used: vec![false; pool],
                used_count: 0,
            }),
            cfg,
            clock: FlowClock::new(),
            translated_out: AtomicU64::new(0),
            translated_in: AtomicU64::new(0),
            passthrough: AtomicU64::new(0),
            exhausted: AtomicU64::new(0),
            unbound: AtomicU64::new(0),
        })
    }

    /// Lifetime counters.
    pub fn stats(&self) -> Nat44Stats {
        Nat44Stats {
            translated_out: self.translated_out.load(Ordering::Relaxed),
            translated_in: self.translated_in.load(Ordering::Relaxed),
            passthrough: self.passthrough.load(Ordering::Relaxed),
            exhausted: self.exhausted.load(Ordering::Relaxed),
            unbound: self.unbound.load(Ordering::Relaxed),
        }
    }

    /// Live bindings (each binding is one forward + one reverse entry).
    pub fn bindings(&self) -> usize {
        self.inner.lock().table.len() / 2
    }

    /// External ports currently allocated.
    pub fn ports_in_use(&self) -> usize {
        self.inner.lock().used_count
    }

    /// The external port a flow (given by either direction's tuple) is
    /// bound to, if any.
    pub fn binding(&self, key: &FlowKey) -> Option<u16> {
        let inner = self.inner.lock();
        match inner.table.peek(&key.canonical()) {
            Some(NatEntry::Forward { ext_port, .. }) => Some(*ext_port),
            _ => None,
        }
    }

    /// Reclaims idle-expired bindings and returns their external ports
    /// to the pool. Returns the number of ports freed.
    ///
    /// The flow table expires entries lazily: an idle-timed-out
    /// binding stops matching lookups immediately, but its slots — and
    /// crucially its **allocated external port** — linger until LRU
    /// pressure reaches them. Under churn that lag manifests as
    /// spurious [`PushError::Exhausted`] drops while the pool is
    /// nominally free. Call this from the control plane (e.g. a
    /// control-turn tick) to walk the corpses out eagerly.
    pub fn sweep(&self) -> usize {
        let mut inner = self.inner.lock();
        let now = self.clock.now();
        let before = inner.used_count;
        for (_, corpse) in inner.table.expire_idle(now) {
            inner.unlink(&self.cfg, corpse);
        }
        before - inner.used_count
    }

    /// Translates one packet in place. `Ok(true)` = translated,
    /// `Ok(false)` = passed through untouched.
    fn translate(&self, inner: &mut NatInner, pkt: &mut Packet) -> Result<bool, PushError> {
        let Some(key) = FlowKey::from_packet(pkt) else {
            return Ok(false);
        };
        // Only IPv4 traffic with real ports is translated.
        let (IpAddr::V4(_src4), IpAddr::V4(dst4)) = (key.src, key.dst) else {
            return Ok(false);
        };
        if key.protocol != proto::UDP && key.protocol != proto::TCP {
            return Ok(false);
        }
        let now = self.clock.advance(pkt.meta.timestamp_ns);
        // An RST in either direction kills the connection: translate
        // the packet (the peer still needs to see it), then tear the
        // binding down and return the port to the pool immediately.
        let rst = key.protocol == proto::TCP && tcp_flags(pkt).is_some_and(|f| f.rst());
        if dst4 == self.cfg.external_ip {
            // Inbound: restore the inside endpoint from the binding.
            let ckey = key.canonical();
            let entry = inner.table.get_mut(&ckey, now).copied();
            let Some(NatEntry::Reverse {
                inside_ip,
                inside_port,
                pair,
            }) = entry
            else {
                self.unbound.fetch_add(1, Ordering::Relaxed);
                return Err(PushError::Veto("nat44: no binding".into()));
            };
            // Keep the pair's lifetimes coupled.
            inner.table.get_mut(&pair, now);
            rewrite_ipv4_endpoint(pkt, RewriteSide::Dst, inside_ip, inside_port);
            self.translated_in.fetch_add(1, Ordering::Relaxed);
            if rst {
                if let Some(e) = inner.table.remove(&ckey) {
                    inner.unlink(&self.cfg, e);
                }
            }
            return Ok(true);
        }
        // Outbound: find or create the binding.
        let ckey = key.canonical();
        let existing = match inner.table.get_mut(&ckey, now).copied() {
            Some(NatEntry::Forward { ext_port, .. }) => Some(ext_port),
            Some(NatEntry::Reverse { .. }) => {
                // Tuple collision with an outside key — treat as
                // unservable rather than corrupt the binding.
                return Err(PushError::Veto("nat44: tuple collision".into()));
            }
            None => None,
        };
        let ext_port = match existing {
            Some(p) => p,
            None => {
                let Some(ext_port) = inner.alloc(&self.cfg, key.rss_hash()) else {
                    self.exhausted.fetch_add(1, Ordering::Relaxed);
                    return Err(PushError::Exhausted("nat44 external-port pool"));
                };
                let IpAddr::V4(src4) = key.src else {
                    unreachable!("checked above")
                };
                // The outside flow as the remote peer will send it:
                // remote endpoint -> external_ip:ext_port.
                let reverse_key = FlowKey {
                    src: key.dst,
                    dst: IpAddr::V4(self.cfg.external_ip),
                    protocol: key.protocol,
                    src_port: key.dst_port,
                    dst_port: ext_port,
                }
                .canonical();
                let fwd = inner
                    .table
                    .get_or_insert_with(ckey, now, || NatEntry::Forward {
                        ext_port,
                        pair: reverse_key,
                    });
                let fwd_evicted = fwd.evicted;
                let rev = inner
                    .table
                    .get_or_insert_with(reverse_key, now, || NatEntry::Reverse {
                        inside_ip: src4,
                        inside_port: key.src_port,
                        pair: ckey,
                    });
                let rev_evicted = rev.evicted;
                for (_, corpse) in fwd_evicted.into_iter().chain(rev_evicted) {
                    inner.unlink(&self.cfg, corpse);
                }
                ext_port
            }
        };
        rewrite_ipv4_endpoint(pkt, RewriteSide::Src, self.cfg.external_ip, ext_port);
        self.translated_out.fetch_add(1, Ordering::Relaxed);
        if rst {
            if let Some(e) = inner.table.remove(&ckey) {
                inner.unlink(&self.cfg, e);
            }
        }
        Ok(true)
    }

    fn forward_one(&self, pkt: Packet) -> PushResult {
        match self.out.with_bound(|next| next.push(pkt)) {
            Some(result) => result,
            None => Ok(()), // sink mode
        }
    }
}

impl IPacketPush for Nat44 {
    fn push(&self, mut pkt: Packet) -> PushResult {
        let verdict = {
            let mut inner = self.inner.lock();
            self.translate(&mut inner, &mut pkt)
        };
        match verdict {
            Ok(translated) => {
                if !translated {
                    self.passthrough.fetch_add(1, Ordering::Relaxed);
                }
                self.forward_one(pkt)
            }
            Err(e) => Err(e),
        }
    }

    fn push_batch(&self, batch: PacketBatch) -> BatchResult {
        let n = batch.len();
        let mut batch = batch;
        let mut failures: Vec<(usize, PushError)> = Vec::new();
        {
            // One lock for the whole burst.
            let mut inner = self.inner.lock();
            for (i, pkt) in batch.packets_mut().iter_mut().enumerate() {
                match self.translate(&mut inner, pkt) {
                    Ok(true) => {}
                    Ok(false) => {
                        self.passthrough.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(e) => failures.push((i, e)),
                }
            }
        }
        if failures.is_empty() {
            // Hot path: the whole (rewritten-in-place) batch moves on.
            return match self.out.with_bound(|next| next.push_batch(batch)) {
                Some(result) => result,
                None => BatchResult::ok(n), // sink mode
            };
        }
        // Rare path: drop the failed packets, forward the rest, keep
        // per-packet verdicts in batch order (scalar equivalence).
        let mut result = BatchResult::with_capacity(n);
        let mut fail = failures.into_iter().peekable();
        for (i, pkt) in batch.into_packets().into_iter().enumerate() {
            if let Some((fi, _)) = fail.peek() {
                if *fi == i {
                    let (_, e) = fail.next().expect("peeked");
                    result.record(Err(e));
                    continue;
                }
            }
            result.record(self.forward_one(pkt));
        }
        result
    }
}

impl Component for Nat44 {
    fn core(&self) -> &ComponentCore {
        &self.core
    }
    fn publish(self: Arc<Self>, reg: &Registrar<'_>) {
        let push: Arc<dyn IPacketPush> = self.clone();
        reg.expose(IPACKET_PUSH, &push);
        reg.receptacle(&self.out);
    }
    fn footprint_bytes(&self) -> usize {
        let inner = self.inner.lock();
        std::mem::size_of::<Self>() + inner.table.footprint_bytes() + inner.used.capacity()
    }
}

impl fmt::Debug for Nat44 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Nat44({} bindings, {} ports in use, {:?})",
            self.bindings(),
            self.ports_in_use(),
            self.stats()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netkit_packet::headers::TcpFlags;
    use netkit_packet::packet::PacketBuilder;

    fn nat() -> Arc<Nat44> {
        Nat44::new(Nat44Config {
            external_ip: "192.0.2.1".parse().unwrap(),
            port_base: 40_000,
            blocks: 4,
            block_size: 4,
            table_capacity: 64,
            idle_timeout: u64::MAX,
        })
    }

    fn udp(src: &str, dst: &str, sport: u16, dport: u16) -> Packet {
        PacketBuilder::udp_v4(src, dst, sport, dport).build()
    }

    #[test]
    fn outbound_snat_then_inbound_restore() {
        let n = nat();
        let out_pkt = udp("10.0.0.5", "203.0.113.9", 5555, 80);
        let inside_key = FlowKey::from_packet(&out_pkt).unwrap();
        n.push(out_pkt).unwrap();
        let ext_port = n.binding(&inside_key).expect("binding created");
        assert!((40_000..40_016).contains(&ext_port));
        assert_eq!(n.bindings(), 1);
        assert_eq!(n.ports_in_use(), 1);

        // The reply, addressed to the external endpoint, is restored.
        let reply = udp("203.0.113.9", "192.0.2.1", 80, ext_port);
        n.push(reply).unwrap();
        let stats = n.stats();
        assert_eq!((stats.translated_out, stats.translated_in), (1, 1));
    }

    #[test]
    fn allocation_is_deterministic_per_flow() {
        // Two independent NAT instances fed the same flow sequence
        // produce identical bindings — allocation is a pure function
        // of (flow hash, free set), which is what lets a binding
        // re-establish identically after a shard migration.
        let (a, b) = (nat(), nat());
        for inst in [&a, &b] {
            for s in 0..8u16 {
                inst.push(udp("10.0.0.5", "203.0.113.9", 5000 + s, 80))
                    .unwrap();
            }
        }
        for s in 0..8u16 {
            let key = FlowKey::from_packet(&udp("10.0.0.5", "203.0.113.9", 5000 + s, 80)).unwrap();
            assert_eq!(a.binding(&key), b.binding(&key), "flow {s}");
            assert!(a.binding(&key).is_some());
        }
        // Re-pushing reuses bindings: no new ports.
        a.push(udp("10.0.0.5", "203.0.113.9", 5000, 80)).unwrap();
        assert_eq!(a.ports_in_use(), 8);
    }

    #[test]
    fn port_exhaustion_drops_with_verdict() {
        let n = Nat44::new(Nat44Config {
            external_ip: "192.0.2.1".parse().unwrap(),
            port_base: 40_000,
            blocks: 1,
            block_size: 2,
            table_capacity: 64,
            idle_timeout: u64::MAX,
        });
        n.push(udp("10.0.0.1", "203.0.113.9", 1001, 80)).unwrap();
        n.push(udp("10.0.0.2", "203.0.113.9", 1002, 80)).unwrap();
        let err = n.push(udp("10.0.0.3", "203.0.113.9", 1003, 80));
        assert!(matches!(err, Err(PushError::Exhausted(_))));
        assert_eq!(n.stats().exhausted, 1);
    }

    #[test]
    fn unbound_inbound_drops_with_verdict() {
        let n = nat();
        let err = n.push(udp("203.0.113.9", "192.0.2.1", 80, 40_001));
        assert!(matches!(err, Err(PushError::Veto(_))));
        assert_eq!(n.stats().unbound, 1);
    }

    #[test]
    fn eviction_unlinks_the_pair_and_frees_the_port() {
        // Table bound of 4 = two bindings; the third binding evicts
        // the oldest pair entirely and releases its port.
        let n = Nat44::new(Nat44Config {
            external_ip: "192.0.2.1".parse().unwrap(),
            port_base: 40_000,
            blocks: 4,
            block_size: 4,
            table_capacity: 4,
            idle_timeout: u64::MAX,
        });
        for s in 0..3u16 {
            n.push(udp("10.0.0.9", "203.0.113.9", 2000 + s, 80))
                .unwrap();
        }
        assert!(n.ports_in_use() <= 2, "evicted binding released its port");
        assert!(n.inner.lock().table.len() <= 4);
    }

    fn tcp(src: &str, dst: &str, sport: u16, dport: u16, flags: TcpFlags) -> Packet {
        PacketBuilder::tcp_v4(src, dst, sport, dport)
            .tcp_flags(flags)
            .build()
    }

    #[test]
    fn rst_tears_the_binding_down_in_either_direction() {
        let n = nat();
        // Outbound RST after establishment frees the port.
        n.push(tcp("10.0.0.5", "203.0.113.9", 5555, 80, TcpFlags::SYN))
            .unwrap();
        assert_eq!(n.ports_in_use(), 1);
        n.push(tcp("10.0.0.5", "203.0.113.9", 5555, 80, TcpFlags::RST))
            .unwrap();
        assert_eq!((n.bindings(), n.ports_in_use()), (0, 0));

        // Inbound RST (from the remote peer) frees the port too.
        let syn = tcp("10.0.0.6", "203.0.113.9", 6666, 80, TcpFlags::SYN);
        let key = FlowKey::from_packet(&syn).unwrap();
        n.push(syn).unwrap();
        let ext = n.binding(&key).unwrap();
        n.push(tcp("203.0.113.9", "192.0.2.1", 80, ext, TcpFlags::RST))
            .unwrap();
        assert_eq!((n.bindings(), n.ports_in_use()), (0, 0));

        // A FIN does NOT tear down inline: the close handshake still
        // needs the mapping.
        n.push(tcp("10.0.0.7", "203.0.113.9", 7777, 80, TcpFlags::SYN))
            .unwrap();
        n.push(tcp(
            "10.0.0.7",
            "203.0.113.9",
            7777,
            80,
            TcpFlags::FIN | TcpFlags::ACK,
        ))
        .unwrap();
        assert_eq!(n.ports_in_use(), 1);
    }

    #[test]
    fn churn_cycles_the_pool_past_block_capacity() {
        // Pool of exactly 2 ports (1 block × 2). Each round opens two
        // TCP flows (filling the pool), proves the third is refused
        // with the *typed* exhaustion verdict, then resets both flows
        // and proves the ports came back. Twelve rounds with distinct
        // tuples cycle total allocations to 24 — 12× the pool — so any
        // leaked port (the pre-reclamation bug) fails the run within
        // one round of leaking.
        let n = Nat44::new(Nat44Config {
            external_ip: "192.0.2.1".parse().unwrap(),
            port_base: 40_000,
            blocks: 1,
            block_size: 2,
            table_capacity: 64,
            idle_timeout: u64::MAX,
        });
        for round in 0..12u16 {
            let base = 1000 + round * 10;
            for i in 0..2 {
                n.push(tcp("10.0.0.8", "203.0.113.9", base + i, 80, TcpFlags::SYN))
                    .unwrap();
            }
            assert_eq!(n.ports_in_use(), 2, "round {round}: pool full");
            let err = n.push(tcp("10.0.0.8", "203.0.113.9", base + 2, 80, TcpFlags::SYN));
            assert!(
                matches!(err, Err(PushError::Exhausted("nat44 external-port pool"))),
                "round {round}: typed exhaustion verdict, got {err:?}"
            );
            for i in 0..2 {
                n.push(tcp("10.0.0.8", "203.0.113.9", base + i, 80, TcpFlags::RST))
                    .unwrap();
            }
            assert_eq!(
                (n.bindings(), n.ports_in_use()),
                (0, 0),
                "round {round}: teardown reclaimed the pool"
            );
        }
        assert_eq!(n.stats().exhausted, 12);
        assert_eq!(n.stats().translated_out, 12 * 4);
    }

    #[test]
    fn sweep_reclaims_idle_expired_ports() {
        // Lazy expiry hides idle bindings from lookups but leaves
        // their ports allocated; sweep() walks them out.
        let n = Nat44::new(Nat44Config {
            external_ip: "192.0.2.1".parse().unwrap(),
            port_base: 40_000,
            blocks: 1,
            block_size: 2,
            table_capacity: 64,
            idle_timeout: 10,
        });
        for (i, sport) in [9001u16, 9002].into_iter().enumerate() {
            let mut p = udp("10.0.0.9", "203.0.113.9", sport, 80);
            p.meta.timestamp_ns = 1 + i as u64;
            n.push(p).unwrap();
        }
        assert_eq!(n.ports_in_use(), 2);
        // A much-later arrival advances the clock past the idle
        // timeout; the pool is still *nominally* exhausted because the
        // expired bindings' ports were never released.
        let mut late = udp("10.0.0.9", "203.0.113.9", 9003, 80);
        late.meta.timestamp_ns = 1_000;
        assert!(matches!(n.push(late), Err(PushError::Exhausted(_))));
        assert_eq!(n.ports_in_use(), 2, "lazy expiry leaves ports allocated");

        assert_eq!(n.sweep(), 2);
        assert_eq!((n.bindings(), n.ports_in_use()), (0, 0));

        // And the pool serves new flows again.
        let mut fresh = udp("10.0.0.9", "203.0.113.9", 9004, 80);
        fresh.meta.timestamp_ns = 1_001;
        n.push(fresh).unwrap();
        assert_eq!(n.ports_in_use(), 1);
    }

    #[test]
    fn batch_path_mixes_verdicts_in_order() {
        let n = Nat44::new(Nat44Config {
            external_ip: "192.0.2.1".parse().unwrap(),
            port_base: 40_000,
            blocks: 1,
            block_size: 1,
            table_capacity: 64,
            idle_timeout: u64::MAX,
        });
        let batch: PacketBatch = vec![
            udp("10.0.0.1", "203.0.113.9", 1001, 80), // gets the only port
            udp("10.0.0.2", "203.0.113.9", 1002, 80), // exhausted
            Packet::from_slice(&[0u8; 14]),           // passthrough
        ]
        .into_iter()
        .collect();
        let result = n.push_batch(batch);
        assert_eq!(result.len(), 3);
        assert!(result.verdicts[0].is_ok());
        assert!(matches!(result.verdicts[1], Err(PushError::Exhausted(_))));
        assert!(result.verdicts[2].is_ok());
        assert_eq!(n.stats().passthrough, 1);
    }
}
