//! The stateful flow subsystem: per-shard flow tables and the
//! stateful elements built on them.
//!
//! Stratum 3 of the paper operates on "pre-selected packet flows in
//! application-specific ways"; this module supplies the per-flow
//! *state* those services need at dataplane rates:
//!
//! * [`FlowTable`] — a bounded, slab-backed, O(1)-LRU table keyed by
//!   the canonical bidirectional
//!   [`FlowKey`](netkit_packet::flow::FlowKey). **Single-writer by
//!   construction**: [`FlowKey::rss_hash`](netkit_packet::flow::FlowKey::rss_hash)
//!   hashes the canonical (sorted-endpoint) tuple, so both directions
//!   of a connection steer to one shard, and each shard's table is
//!   touched by exactly one worker — no per-lookup synchronisation is
//!   needed, the table is plain mutable state.
//! * [`ConnTracker`] — new / established / closing connection state
//!   with per-direction packet and byte counters.
//! * [`Nat44`] — source NAT with deterministic port-block allocation
//!   and paired forward/reverse entries.
//! * [`L4LoadBalancer`] — virtual-IP load balancing with a
//!   rendezvous-hash backend pick, flow-table stickiness, and
//!   backend draining.
//! * [`Guard`] — inline heavy-hitter overload protection: one
//!   lock-free sketch read admits benign flows untouched, flows past
//!   the byte threshold spend a per-window budget, and a
//!   [`ConnTracker`]-fed SYN defence arms under half-open pressure.
//!
//! # State across rebalances
//!
//! When the control plane migrates a bucket
//! ([`ShardedPipeline::install_bucket_map`](crate::shard::ShardedPipeline::install_bucket_map)),
//! flow state is **not copied** between shards — each shard's table
//! is private to its worker, and quiescing a migration to copy state
//! would serialise the dataplane. Instead every element is designed
//! so state is **re-established deterministically** from the packet
//! stream on the new shard:
//!
//! * [`ConnTracker`] infers `Established` from any mid-connection TCP
//!   segment (ACK without SYN), so a migrated connection never
//!   regresses to `New`;
//! * [`Nat44`]'s port allocation is a pure function of the flow hash
//!   and the allocator's free set, so a re-created binding prefers
//!   the same external port;
//! * [`L4LoadBalancer`]'s rendezvous hash re-picks the same backend
//!   for the same flow whenever the backend set is unchanged.
//!
//! The old shard's entries age out via the idle timeout / LRU bound.
//!
//! # Time
//!
//! Tables are time-agnostic: every operation takes a `now` tick.
//! Elements derive ticks from [`FlowClock`], which folds the packet's
//! [`timestamp_ns`](netkit_packet::packet::PacketMeta::timestamp_ns)
//! into a monotone logical clock — deterministic in simulation
//! (stamped time) and still strictly advancing when frames carry no
//! timestamps (tick per packet).

mod conntrack;
mod guard;
mod lb;
mod nat;
mod rewrite;
mod table;

pub use conntrack::{ConnInfo, ConnState, ConnTracker};
pub use guard::{Guard, GuardConfig, GuardStats};
pub use lb::{BackendStats, L4LoadBalancer};
pub use nat::{Nat44, Nat44Config, Nat44Stats};
pub use rewrite::{rewrite_ipv4_endpoint, RewriteSide};
pub use table::{Admission, FlowClock, FlowTable, FlowTableStats};
