//! The per-shard flow table: bounded capacity, O(1) LRU, slab-backed.
//!
//! Unlike the legacy shared
//! [`netkit_packet::flow::FlowTable`] (mutex + O(n) eviction scan),
//! this table is built for the single-writer per-shard deployment: all
//! methods take `&mut self`, eviction is O(1) via an intrusive LRU
//! list, and **no allocation happens after construction** — the slab,
//! free list, and index are all sized for `capacity` up front, which
//! is what lets a million distinct flows stream through a bounded
//! table with zero steady-state allocation growth.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use netkit_packet::flow::FlowKey;

/// Sentinel for "no slot" in the intrusive LRU list.
const NIL: u32 = u32::MAX;

/// A monotone logical clock for flow-table ticks.
///
/// [`advance`](Self::advance) folds a packet's stamped
/// `timestamp_ns` into the clock: the result is
/// `max(previous + 1, stamp)`, so time follows simulated timestamps
/// when present and still strictly advances (one tick per packet)
/// when every frame says zero. Elements share one clock per instance;
/// it is atomic only so `&self` element entry points can use it — the
/// per-shard deployment is single-writer like the table itself.
#[derive(Debug, Default)]
pub struct FlowClock(AtomicU64);

impl FlowClock {
    /// Creates a clock at tick zero.
    pub fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Advances past `stamp_ns` (or by one tick, whichever is later)
    /// and returns the new now.
    pub fn advance(&self, stamp_ns: u64) -> u64 {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = stamp_ns.max(cur.saturating_add(1));
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return next,
                Err(actual) => cur = actual,
            }
        }
    }

    /// The current tick.
    pub fn now(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

struct Slot<T> {
    key: FlowKey,
    value: T,
    last_seen: u64,
    generation: u64,
    prev: u32,
    next: u32,
}

/// Counters describing a table's lifetime behaviour.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlowTableStats {
    /// Entries created.
    pub insertions: u64,
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing (or only an idle-expired entry).
    pub misses: u64,
    /// Entries evicted because the table was full.
    pub lru_evictions: u64,
    /// Entries dropped because they exceeded the idle timeout.
    pub idle_evictions: u64,
}

/// The outcome of [`FlowTable::get_or_insert_with`].
#[derive(Debug)]
pub struct Admission<'a, T> {
    /// The (possibly just-created) entry value.
    pub value: &'a mut T,
    /// True if the entry was created by this call.
    pub created: bool,
    /// The table generation stamped on the entry at creation.
    pub generation: u64,
    /// The entry evicted to make room (LRU victim, or the idle-expired
    /// previous incarnation of the same key). Callers owning linked
    /// state — e.g. NAT's paired reverse entries — unlink it here.
    pub evicted: Option<(FlowKey, T)>,
}

/// A bounded per-flow state table with O(1) insert, lookup, and LRU
/// eviction.
///
/// Keys are expected to be
/// [canonical](netkit_packet::flow::FlowKey::canonical) so both
/// directions of a connection share one entry; the table itself does
/// not canonicalise (elements do, because they also need the
/// direction).
///
/// # Single-writer contract
///
/// Every method takes `&mut self`. The canonical-tuple RSS hash pins
/// both directions of a flow to one shard, so in the sharded
/// dataplane exactly one worker ever touches a given table; elements
/// wrap the table in a mutex only to satisfy `&self` component entry
/// points, and that mutex is uncontended by construction.
///
/// # Memory
///
/// All storage — slot slab, free list, hash index — is allocated at
/// construction for `capacity` entries and never grows or shrinks:
/// [`footprint_bytes`](Self::footprint_bytes) is a constant. When the
/// table is full, inserting evicts the least-recently-used entry.
pub struct FlowTable<T> {
    index: HashMap<FlowKey, u32>,
    slots: Vec<Option<Slot<T>>>,
    free: Vec<u32>,
    /// Most-recently-used slot.
    head: u32,
    /// Least-recently-used slot (the eviction victim).
    tail: u32,
    idle_timeout: u64,
    generation: u64,
    stats: FlowTableStats,
    /// The index's construction-time capacity. `HashMap::capacity()`
    /// reports `items + growth_left`, which dips as delete tombstones
    /// eat headroom and recovers on in-place rehash — the allocation
    /// itself never moves. Footprint accounting uses this stable
    /// figure instead.
    index_reserve: usize,
}

impl<T> FlowTable<T> {
    /// Creates a table bounded to `capacity` entries (clamped to ≥ 1)
    /// whose entries expire `idle_timeout` ticks after their last
    /// touch. `idle_timeout == u64::MAX` disables idle expiry.
    pub fn new(capacity: usize, idle_timeout: u64) -> Self {
        let capacity = capacity.clamp(1, (u32::MAX - 1) as usize);
        let mut slots = Vec::with_capacity(capacity);
        slots.resize_with(capacity, || None);
        // 2× headroom keeps the live count at or below half the
        // map's growth limit, so delete churn is absorbed by
        // in-place rehashing (tombstone cleanup) instead of a
        // capacity doubling — the index never reallocates.
        let index: HashMap<FlowKey, u32> = HashMap::with_capacity(capacity * 2);
        let index_reserve = index.capacity();
        Self {
            index,
            slots,
            free: (0..capacity as u32).rev().collect(),
            head: NIL,
            tail: NIL,
            idle_timeout,
            generation: 0,
            stats: FlowTableStats::default(),
            index_reserve,
        }
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True if no flows are tracked.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Maximum entry count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The current table generation (see
    /// [`bump_generation`](Self::bump_generation)).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Advances the generation stamp. New entries are stamped with the
    /// current generation, so after a reconfiguration (e.g. a bucket
    /// migration landed flows on this shard) callers can distinguish
    /// entries created before and after the event.
    pub fn bump_generation(&mut self) -> u64 {
        self.generation += 1;
        self.generation
    }

    /// Lifetime counters.
    pub fn stats(&self) -> FlowTableStats {
        self.stats
    }

    /// The constant memory footprint in bytes.
    ///
    /// The index term is the construction-time reserve (see
    /// `index_reserve`), taken `max` against the live capacity so a
    /// reallocation — which the 2× headroom is designed to rule out —
    /// would still show up as growth.
    pub fn footprint_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.slots.capacity() * std::mem::size_of::<Option<Slot<T>>>()
            + self.free.capacity() * std::mem::size_of::<u32>()
            + self.index_reserve.max(self.index.capacity())
                * (std::mem::size_of::<FlowKey>() + std::mem::size_of::<u32>())
    }

    fn slot(&self, idx: u32) -> &Slot<T> {
        self.slots[idx as usize].as_ref().expect("live slot")
    }

    fn slot_mut(&mut self, idx: u32) -> &mut Slot<T> {
        self.slots[idx as usize].as_mut().expect("live slot")
    }

    /// Detaches `idx` from the LRU list.
    fn unlink(&mut self, idx: u32) {
        let (prev, next) = {
            let s = self.slot(idx);
            (s.prev, s.next)
        };
        if prev != NIL {
            self.slot_mut(prev).next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slot_mut(next).prev = prev;
        } else {
            self.tail = prev;
        }
    }

    /// Prepends `idx` as the most-recently-used slot.
    fn push_front(&mut self, idx: u32) {
        let old_head = self.head;
        {
            let s = self.slot_mut(idx);
            s.prev = NIL;
            s.next = old_head;
        }
        if old_head != NIL {
            self.slot_mut(old_head).prev = idx;
        } else {
            self.tail = idx;
        }
        self.head = idx;
    }

    fn touch(&mut self, idx: u32, now: u64) {
        self.unlink(idx);
        self.push_front(idx);
        self.slot_mut(idx).last_seen = now;
    }

    fn is_idle(&self, idx: u32, now: u64) -> bool {
        let last = self.slot(idx).last_seen;
        self.idle_timeout != u64::MAX && now.saturating_sub(last) > self.idle_timeout
    }

    /// Removes slot `idx`, returning its key and value.
    fn evict_slot(&mut self, idx: u32) -> (FlowKey, T) {
        self.unlink(idx);
        let slot = self.slots[idx as usize].take().expect("live slot");
        self.index.remove(&slot.key);
        self.free.push(idx);
        (slot.key, slot.value)
    }

    /// Looks up a live entry, refreshing its recency. An idle-expired
    /// entry is treated as absent (it stays in place until reclaimed
    /// by [`expire_idle`](Self::expire_idle) or LRU pressure).
    pub fn get_mut(&mut self, key: &FlowKey, now: u64) -> Option<&mut T> {
        let idx = *self.index.get(key)?;
        if self.is_idle(idx, now) {
            self.stats.misses += 1;
            return None;
        }
        self.touch(idx, now);
        self.stats.hits += 1;
        Some(&mut self.slot_mut(idx).value)
    }

    /// Looks up without touching recency or honouring the idle
    /// timeout — pure inspection.
    pub fn peek(&self, key: &FlowKey) -> Option<&T> {
        self.index.get(key).map(|&idx| &self.slot(idx).value)
    }

    /// The generation stamped on an entry at its creation.
    pub fn entry_generation(&self, key: &FlowKey) -> Option<u64> {
        self.index.get(key).map(|&idx| self.slot(idx).generation)
    }

    /// Fetches the entry for `key`, creating it with `init` on a miss
    /// (or when the previous incarnation sat idle past the timeout).
    /// Eviction — LRU victim or the expired previous incarnation — is
    /// surfaced on the returned [`Admission`] so callers can unlink
    /// dependent state.
    pub fn get_or_insert_with(
        &mut self,
        key: FlowKey,
        now: u64,
        init: impl FnOnce() -> T,
    ) -> Admission<'_, T> {
        let generation = self.generation;
        let mut evicted = None;
        if let Some(&idx) = self.index.get(&key) {
            if self.is_idle(idx, now) {
                // Same key, stale state: replace, surfacing the corpse.
                self.stats.idle_evictions += 1;
                evicted = Some(self.evict_slot(idx));
            } else {
                self.touch(idx, now);
                self.stats.hits += 1;
                let generation = self.slot(idx).generation;
                return Admission {
                    value: &mut self.slot_mut(idx).value,
                    created: false,
                    generation,
                    evicted: None,
                };
            }
        }
        self.stats.misses += 1;
        if self.free.is_empty() {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL, "full table has an LRU tail");
            self.stats.lru_evictions += 1;
            evicted = Some(self.evict_slot(victim));
        }
        let idx = self.free.pop().expect("capacity >= 1");
        self.slots[idx as usize] = Some(Slot {
            key,
            value: init(),
            last_seen: now,
            generation,
            prev: NIL,
            next: NIL,
        });
        self.index.insert(key, idx);
        self.push_front(idx);
        self.stats.insertions += 1;
        Admission {
            value: &mut self.slot_mut(idx).value,
            created: true,
            generation,
            evicted,
        }
    }

    /// Removes an entry, returning its value.
    pub fn remove(&mut self, key: &FlowKey) -> Option<T> {
        let idx = *self.index.get(key)?;
        Some(self.evict_slot(idx).1)
    }

    /// Reclaims every idle-expired entry (walking from the LRU end, so
    /// the scan stops at the first live entry) and returns the
    /// corpses, oldest first.
    pub fn expire_idle(&mut self, now: u64) -> Vec<(FlowKey, T)> {
        let mut out = Vec::new();
        if self.idle_timeout == u64::MAX {
            return out;
        }
        while self.tail != NIL && self.is_idle(self.tail, now) {
            self.stats.idle_evictions += 1;
            out.push(self.evict_slot(self.tail));
        }
        out
    }

    /// Sweeps every live entry through `pred` (value, last-seen tick),
    /// evicting the matches and returning the corpses oldest-first —
    /// the hook for timeout policies richer than the single idle
    /// timeout (per-state teardown timers, half-open expiry). Unlike
    /// [`expire_idle`](Self::expire_idle) this cannot stop at the
    /// first live entry (different states expire on different clocks),
    /// so it walks the whole LRU list; run it on a control cadence,
    /// not per packet. Evictions count as idle evictions.
    pub fn expire_matching(&mut self, mut pred: impl FnMut(&T, u64) -> bool) -> Vec<(FlowKey, T)> {
        let mut out = Vec::new();
        let mut idx = self.tail;
        while idx != NIL {
            let s = self.slot(idx);
            let prev = s.prev;
            if pred(&s.value, s.last_seen) {
                self.stats.idle_evictions += 1;
                out.push(self.evict_slot(idx));
            }
            idx = prev;
        }
        out
    }

    /// Walks up to `scan` entries from the LRU end and evicts the
    /// first one `pred` matches — bounded *preferential* eviction for
    /// full-table pressure: a caller that would rather sacrifice, say,
    /// a half-open handshake than an established connection checks
    /// here before letting plain LRU pick the victim. Returns the
    /// corpse, or `None` when nothing in the scanned window matched
    /// (the caller falls back to ordinary LRU). The eviction counts as
    /// an LRU eviction.
    pub fn evict_where_bounded(
        &mut self,
        scan: usize,
        mut pred: impl FnMut(&T, u64) -> bool,
    ) -> Option<(FlowKey, T)> {
        let mut idx = self.tail;
        let mut remaining = scan;
        while idx != NIL && remaining > 0 {
            let s = self.slot(idx);
            if pred(&s.value, s.last_seen) {
                self.stats.lru_evictions += 1;
                return Some(self.evict_slot(idx));
            }
            idx = s.prev;
            remaining -= 1;
        }
        None
    }
}

impl<T> fmt::Debug for FlowTable<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FlowTable({} of {} entries, gen {}, {:?})",
            self.len(),
            self.capacity(),
            self.generation,
            self.stats
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netkit_packet::headers::proto;

    fn key(n: u16) -> FlowKey {
        FlowKey {
            src: "10.0.0.1".parse().unwrap(),
            dst: "10.9.9.9".parse().unwrap(),
            protocol: proto::UDP,
            src_port: n,
            dst_port: 53,
        }
    }

    #[test]
    fn insert_lookup_remove() {
        let mut t: FlowTable<u32> = FlowTable::new(4, u64::MAX);
        let a = t.get_or_insert_with(key(1), 10, || 7);
        assert!(a.created);
        assert_eq!(*a.value, 7);
        assert_eq!(t.get_mut(&key(1), 11).copied(), Some(7));
        *t.get_mut(&key(1), 12).unwrap() = 8;
        assert_eq!(t.peek(&key(1)).copied(), Some(8));
        assert_eq!(t.remove(&key(1)), Some(8));
        assert!(t.is_empty());
        assert_eq!(t.remove(&key(1)), None);
    }

    #[test]
    fn lru_eviction_is_oldest_first_and_surfaced() {
        let mut t: FlowTable<u32> = FlowTable::new(2, u64::MAX);
        t.get_or_insert_with(key(1), 10, || 1);
        t.get_or_insert_with(key(2), 20, || 2);
        // Touch key(1): key(2) becomes the LRU victim.
        t.get_mut(&key(1), 30);
        let a = t.get_or_insert_with(key(3), 40, || 3);
        assert_eq!(a.evicted, Some((key(2), 2)));
        assert_eq!(t.len(), 2);
        assert!(t.peek(&key(1)).is_some());
        assert!(t.peek(&key(3)).is_some());
        assert_eq!(t.stats().lru_evictions, 1);
    }

    #[test]
    fn idle_expiry_hides_then_reclaims() {
        let mut t: FlowTable<u32> = FlowTable::new(4, 100);
        t.get_or_insert_with(key(1), 0, || 1);
        t.get_or_insert_with(key(2), 90, || 2);
        // key(1) is idle at t=150; lookups treat it as gone…
        assert_eq!(t.get_mut(&key(1), 150), None);
        assert_eq!(t.get_mut(&key(2), 150).copied(), Some(2));
        // …an insert over it surfaces the corpse…
        let a = t.get_or_insert_with(key(1), 150, || 10);
        assert!(a.created);
        assert_eq!(a.evicted, Some((key(1), 1)));
        // …and expire_idle sweeps the rest once they age out.
        let dead = t.expire_idle(400);
        assert_eq!(dead.len(), 2);
        assert!(t.is_empty());
    }

    #[test]
    fn generation_stamps_entries_at_creation() {
        let mut t: FlowTable<u32> = FlowTable::new(4, u64::MAX);
        t.get_or_insert_with(key(1), 0, || 1);
        assert_eq!(t.entry_generation(&key(1)), Some(0));
        t.bump_generation();
        t.get_or_insert_with(key(2), 1, || 2);
        assert_eq!(t.entry_generation(&key(2)), Some(1));
        // An existing entry keeps its birth generation.
        let a = t.get_or_insert_with(key(1), 2, || 99);
        assert!(!a.created);
        assert_eq!(a.generation, 0);
    }

    #[test]
    fn footprint_is_constant_under_churn() {
        let mut t: FlowTable<u64> = FlowTable::new(64, u64::MAX);
        let before = t.footprint_bytes();
        for n in 0..10_000u16 {
            t.get_or_insert_with(key(n), n as u64, || n as u64);
        }
        assert_eq!(t.len(), 64);
        assert_eq!(t.footprint_bytes(), before);
        assert_eq!(t.stats().insertions, 10_000);
        assert_eq!(t.stats().lru_evictions, 10_000 - 64);
    }

    #[test]
    fn flow_clock_is_monotone_and_follows_stamps() {
        let clock = FlowClock::new();
        assert_eq!(clock.advance(0), 1);
        assert_eq!(clock.advance(0), 2);
        assert_eq!(clock.advance(1_000), 1_000);
        assert_eq!(clock.advance(500), 1_001);
        assert_eq!(clock.now(), 1_001);
    }
}
