//! L4 load balancing: rendezvous-hash backend pick, flow stickiness,
//! backend draining.

use std::fmt;
use std::net::{IpAddr, Ipv4Addr};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use netkit_packet::batch::PacketBatch;
use netkit_packet::flow::FlowKey;
use netkit_packet::headers::proto;
use netkit_packet::packet::Packet;
use opencom::component::{Component, ComponentCore, Registrar};
use opencom::receptacle::Receptacle;
use parking_lot::Mutex;

use crate::api::{BatchResult, IPacketPush, PushError, PushResult, IPACKET_PUSH};
use crate::elements::element_core;

use super::rewrite::{rewrite_ipv4_endpoint, RewriteSide};
use super::table::{FlowClock, FlowTable};

/// murmur3's 64-bit finaliser (the same mix the RSS hash ends with).
fn fmix64(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^ (h >> 33)
}

/// A backend's public description and counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BackendStats {
    /// The backend's id (stable across drain; freed on removal).
    pub id: u32,
    /// Backend address.
    pub ip: Ipv4Addr,
    /// Backend port.
    pub port: u16,
    /// True once draining: existing flows continue, new flows skip it.
    pub draining: bool,
    /// Packets forwarded to this backend.
    pub packets: u64,
    /// Flows currently stuck to this backend.
    pub flows: u64,
}

struct BackendSlot {
    id: u32,
    ip: Ipv4Addr,
    port: u16,
    draining: bool,
    packets: u64,
    flows: u64,
}

struct LbInner {
    backends: Vec<BackendSlot>,
    /// Canonical client↔VIP (and client↔backend) flows → backend id.
    table: FlowTable<u32>,
    next_id: u32,
}

impl LbInner {
    fn backend_pos(&self, id: u32) -> Option<usize> {
        self.backends.iter().position(|b| b.id == id)
    }

    /// Rendezvous (highest-random-weight) pick over non-draining
    /// backends: deterministic for a given (flow, backend-set), and
    /// removing one backend only re-homes the flows that were on it.
    fn pick(&self, flow_hash: u64) -> Option<u32> {
        self.backends
            .iter()
            .filter(|b| !b.draining)
            .max_by_key(|b| {
                (
                    fmix64(flow_hash ^ fmix64(0x5851_f42d_4c95_7f2d ^ b.id as u64)),
                    b.id,
                )
            })
            .map(|b| b.id)
    }
}

/// A virtual-IP L4 load balancer element.
///
/// Traffic addressed to the VIP is DNAT-rewritten to a backend chosen
/// by rendezvous hashing over the flow's canonical RSS hash; the
/// choice is made **sticky** through a bounded [`FlowTable`], so a
/// flow keeps its backend even while backends are added. Reply
/// traffic from a backend is matched by the same table and rewritten
/// back to the VIP. Draining a backend keeps existing flows flowing
/// and steers new flows elsewhere; removing it re-homes its flows on
/// their next packet (deterministically, via the rendezvous re-pick).
///
/// Because the rendezvous pick is a pure function of
/// (flow hash, live backend set), a migrated flow whose table entry
/// was left on another shard re-establishes onto the *same* backend,
/// provided the backend set matches — see the [module docs](super)
/// on state across rebalances.
pub struct L4LoadBalancer {
    core: ComponentCore,
    out: Receptacle<dyn IPacketPush>,
    vip: Ipv4Addr,
    vport: u16,
    inner: Mutex<LbInner>,
    clock: FlowClock,
    balanced: AtomicU64,
    returned: AtomicU64,
    passthrough: AtomicU64,
}

impl L4LoadBalancer {
    /// Creates a balancer for `vip:vport` with a flow table bounded to
    /// `capacity` entries and the given idle timeout (in
    /// [`FlowClock`] ticks).
    pub fn new(vip: Ipv4Addr, vport: u16, capacity: usize, idle_timeout: u64) -> Arc<Self> {
        Arc::new(Self {
            core: element_core("netkit.L4LoadBalancer"),
            out: Receptacle::single("out", IPACKET_PUSH),
            vip,
            vport,
            inner: Mutex::new(LbInner {
                backends: Vec::new(),
                table: FlowTable::new(capacity, idle_timeout),
                next_id: 0,
            }),
            clock: FlowClock::new(),
            balanced: AtomicU64::new(0),
            returned: AtomicU64::new(0),
            passthrough: AtomicU64::new(0),
        })
    }

    /// Registers a backend; returns its id.
    pub fn add_backend(&self, ip: Ipv4Addr, port: u16) -> u32 {
        let mut inner = self.inner.lock();
        let id = inner.next_id;
        inner.next_id += 1;
        inner.backends.push(BackendSlot {
            id,
            ip,
            port,
            draining: false,
            packets: 0,
            flows: 0,
        });
        id
    }

    /// Starts draining a backend: existing flows continue, new flows
    /// skip it. Returns false for an unknown id.
    pub fn drain_backend(&self, id: u32) -> bool {
        let mut inner = self.inner.lock();
        match inner.backend_pos(id) {
            Some(pos) => {
                inner.backends[pos].draining = true;
                true
            }
            None => false,
        }
    }

    /// Removes a backend outright; its flows re-home on their next
    /// packet. Returns false for an unknown id.
    pub fn remove_backend(&self, id: u32) -> bool {
        let mut inner = self.inner.lock();
        match inner.backend_pos(id) {
            Some(pos) => {
                inner.backends.remove(pos);
                true
            }
            None => false,
        }
    }

    /// Per-backend description and counters.
    pub fn backends(&self) -> Vec<BackendStats> {
        self.inner
            .lock()
            .backends
            .iter()
            .map(|b| BackendStats {
                id: b.id,
                ip: b.ip,
                port: b.port,
                draining: b.draining,
                packets: b.packets,
                flows: b.flows,
            })
            .collect()
    }

    /// (balanced-to-backend, returned-to-client, passthrough) packet
    /// counts.
    pub fn counters(&self) -> (u64, u64, u64) {
        (
            self.balanced.load(Ordering::Relaxed),
            self.returned.load(Ordering::Relaxed),
            self.passthrough.load(Ordering::Relaxed),
        )
    }

    /// Balances one packet in place. `Ok(true)` = rewritten.
    fn balance(&self, inner: &mut LbInner, pkt: &mut Packet) -> Result<bool, PushError> {
        let Some(key) = FlowKey::from_packet(pkt) else {
            return Ok(false);
        };
        let (IpAddr::V4(src4), IpAddr::V4(dst4)) = (key.src, key.dst) else {
            return Ok(false);
        };
        if key.protocol != proto::UDP && key.protocol != proto::TCP {
            return Ok(false);
        }
        let now = self.clock.advance(pkt.meta.timestamp_ns);
        if dst4 == self.vip && key.dst_port == self.vport {
            // Client → VIP: pick (or recall) a backend, DNAT to it.
            let ckey = key.canonical();
            let sticky = inner.table.get_mut(&ckey, now).copied();
            let valid = sticky.filter(|id| inner.backend_pos(*id).is_some());
            let id = match valid {
                Some(id) => id,
                None => {
                    let Some(id) = inner.pick(key.rss_hash()) else {
                        return Err(PushError::Veto("lb: no live backends".into()));
                    };
                    // Stick the client↔VIP flow…
                    let adm = inner.table.get_or_insert_with(ckey, now, || id);
                    let was_new = adm.created;
                    *adm.value = id;
                    let evicted = adm.evicted;
                    if let Some((_, old)) = evicted {
                        if let Some(pos) = inner.backend_pos(old) {
                            inner.backends[pos].flows = inner.backends[pos].flows.saturating_sub(1);
                        }
                    }
                    let pos = inner.backend_pos(id).expect("picked live backend");
                    if was_new {
                        inner.backends[pos].flows += 1;
                    }
                    // …and the client↔backend flow, so replies match.
                    let (bip, bport) = (inner.backends[pos].ip, inner.backends[pos].port);
                    let reply_key = FlowKey {
                        src: key.src,
                        dst: IpAddr::V4(bip),
                        protocol: key.protocol,
                        src_port: key.src_port,
                        dst_port: bport,
                    }
                    .canonical();
                    let adm = inner.table.get_or_insert_with(reply_key, now, || id);
                    *adm.value = id;
                    id
                }
            };
            let pos = inner.backend_pos(id).expect("validated");
            inner.backends[pos].packets += 1;
            let (bip, bport) = (inner.backends[pos].ip, inner.backends[pos].port);
            rewrite_ipv4_endpoint(pkt, RewriteSide::Dst, bip, bport);
            self.balanced.fetch_add(1, Ordering::Relaxed);
            return Ok(true);
        }
        // Backend → client reply: restore the VIP as the source.
        let ckey = key.canonical();
        if let Some(id) = inner.table.get_mut(&ckey, now).copied() {
            if let Some(pos) = inner.backend_pos(id) {
                if inner.backends[pos].ip == src4 && inner.backends[pos].port == key.src_port {
                    rewrite_ipv4_endpoint(pkt, RewriteSide::Src, self.vip, self.vport);
                    self.returned.fetch_add(1, Ordering::Relaxed);
                    return Ok(true);
                }
            }
        }
        Ok(false)
    }

    fn forward_one(&self, pkt: Packet) -> PushResult {
        match self.out.with_bound(|next| next.push(pkt)) {
            Some(result) => result,
            None => Ok(()), // sink mode
        }
    }
}

impl IPacketPush for L4LoadBalancer {
    fn push(&self, mut pkt: Packet) -> PushResult {
        let verdict = {
            let mut inner = self.inner.lock();
            self.balance(&mut inner, &mut pkt)
        };
        match verdict {
            Ok(rewritten) => {
                if !rewritten {
                    self.passthrough.fetch_add(1, Ordering::Relaxed);
                }
                self.forward_one(pkt)
            }
            Err(e) => Err(e),
        }
    }

    fn push_batch(&self, batch: PacketBatch) -> BatchResult {
        let n = batch.len();
        let mut batch = batch;
        let mut failures: Vec<(usize, PushError)> = Vec::new();
        {
            let mut inner = self.inner.lock();
            for (i, pkt) in batch.packets_mut().iter_mut().enumerate() {
                match self.balance(&mut inner, pkt) {
                    Ok(true) => {}
                    Ok(false) => {
                        self.passthrough.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(e) => failures.push((i, e)),
                }
            }
        }
        if failures.is_empty() {
            return match self.out.with_bound(|next| next.push_batch(batch)) {
                Some(result) => result,
                None => BatchResult::ok(n), // sink mode
            };
        }
        let mut result = BatchResult::with_capacity(n);
        let mut fail = failures.into_iter().peekable();
        for (i, pkt) in batch.into_packets().into_iter().enumerate() {
            if let Some((fi, _)) = fail.peek() {
                if *fi == i {
                    let (_, e) = fail.next().expect("peeked");
                    result.record(Err(e));
                    continue;
                }
            }
            result.record(self.forward_one(pkt));
        }
        result
    }
}

impl Component for L4LoadBalancer {
    fn core(&self) -> &ComponentCore {
        &self.core
    }
    fn publish(self: Arc<Self>, reg: &Registrar<'_>) {
        let push: Arc<dyn IPacketPush> = self.clone();
        reg.expose(IPACKET_PUSH, &push);
        reg.receptacle(&self.out);
    }
    fn footprint_bytes(&self) -> usize {
        let inner = self.inner.lock();
        std::mem::size_of::<Self>()
            + inner.table.footprint_bytes()
            + inner.backends.capacity() * std::mem::size_of::<BackendSlot>()
    }
}

impl fmt::Debug for L4LoadBalancer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (balanced, returned, passthrough) = self.counters();
        write!(
            f,
            "L4LoadBalancer(vip {}:{}, {} backends, {balanced} balanced, {returned} returned, {passthrough} passthrough)",
            self.vip,
            self.vport,
            self.inner.lock().backends.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netkit_packet::packet::PacketBuilder;

    const VIP: &str = "10.99.0.1";

    fn lb() -> Arc<L4LoadBalancer> {
        let lb = L4LoadBalancer::new(VIP.parse().unwrap(), 80, 256, u64::MAX);
        lb.add_backend("10.1.0.1".parse().unwrap(), 8080);
        lb.add_backend("10.1.0.2".parse().unwrap(), 8080);
        lb.add_backend("10.1.0.3".parse().unwrap(), 8080);
        lb
    }

    fn to_vip(client: u16) -> Packet {
        PacketBuilder::udp_v4("10.0.0.9", VIP, client, 80).build()
    }

    fn backend_of(lb: &L4LoadBalancer, client: u16) -> Ipv4Addr {
        let mut pkt = to_vip(client);
        let mut inner = lb.inner.lock();
        assert!(lb.balance(&mut inner, &mut pkt).unwrap());
        drop(inner);
        match FlowKey::from_packet(&pkt).unwrap().dst {
            IpAddr::V4(ip) => ip,
            _ => unreachable!(),
        }
    }

    #[test]
    fn flows_spread_and_stick() {
        let lb = lb();
        let first: Vec<Ipv4Addr> = (0..32).map(|c| backend_of(&lb, 7000 + c)).collect();
        let unique: std::collections::HashSet<_> = first.iter().collect();
        assert!(unique.len() > 1, "32 flows spread over 3 backends");
        // Same flows again: identical (sticky) assignment.
        let second: Vec<Ipv4Addr> = (0..32).map(|c| backend_of(&lb, 7000 + c)).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn reply_traffic_is_rewritten_back_to_the_vip() {
        let lb = lb();
        let backend = backend_of(&lb, 7001);
        let mut reply = PacketBuilder::udp_v4(&backend.to_string(), "10.0.0.9", 8080, 7001).build();
        let mut inner = lb.inner.lock();
        assert!(lb.balance(&mut inner, &mut reply).unwrap());
        drop(inner);
        let key = FlowKey::from_packet(&reply).unwrap();
        assert_eq!(key.src.to_string(), VIP);
        assert_eq!(key.src_port, 80);
    }

    #[test]
    fn drain_keeps_existing_flows_and_skips_new_ones() {
        let lb = lb();
        let victim_backend = backend_of(&lb, 7010);
        let victim_id = lb
            .backends()
            .iter()
            .find(|b| b.ip == victim_backend)
            .unwrap()
            .id;
        assert!(lb.drain_backend(victim_id));
        // The existing flow still lands on the draining backend…
        assert_eq!(backend_of(&lb, 7010), victim_backend);
        // …while new flows all avoid it.
        for c in 0..64u16 {
            assert_ne!(backend_of(&lb, 8000 + c), victim_backend, "client {c}");
        }
    }

    #[test]
    fn removal_rehomes_flows_deterministically() {
        let lb = lb();
        let before: Vec<Ipv4Addr> = (0..24).map(|c| backend_of(&lb, 7100 + c)).collect();
        let victim_id = lb.backends()[0].id;
        let victim_ip = lb.backends()[0].ip;
        assert!(lb.remove_backend(victim_id));
        let after: Vec<Ipv4Addr> = (0..24).map(|c| backend_of(&lb, 7100 + c)).collect();
        for (i, (b, a)) in before.iter().zip(&after).enumerate() {
            assert_ne!(*a, victim_ip, "client {i} re-homed off the dead backend");
            if *b != victim_ip {
                // Rendezvous property: unaffected flows keep their pick.
                assert_eq!(a, b, "client {i} must not move");
            }
        }
    }

    #[test]
    fn no_backends_is_a_verdict_not_a_panic() {
        let lb = L4LoadBalancer::new(VIP.parse().unwrap(), 80, 16, u64::MAX);
        let err = lb.push(to_vip(7000));
        assert!(matches!(err, Err(PushError::Veto(_))));
    }

    #[test]
    fn non_vip_traffic_passes_through() {
        let lb = lb();
        lb.push(PacketBuilder::udp_v4("10.0.0.9", "10.222.0.1", 1, 2).build())
            .unwrap();
        assert_eq!(lb.counters(), (0, 0, 1));
    }
}
