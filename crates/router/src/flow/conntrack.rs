//! Connection tracking: per-flow state machine + direction counters.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use netkit_packet::batch::PacketBatch;
use netkit_packet::flow::{FlowDirection, FlowKey};
use netkit_packet::headers::{proto, EthernetHeader, Ipv4Header, TcpFlags, TcpHeader};
use netkit_packet::packet::Packet;
use opencom::component::{Component, ComponentCore, Registrar};
use opencom::receptacle::Receptacle;
use parking_lot::Mutex;

use crate::api::{BatchResult, IPacketPush, PushResult, IPACKET_PUSH};
use crate::elements::element_core;

use super::table::{FlowClock, FlowTable, FlowTableStats};

/// Where a tracked connection stands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConnState {
    /// Seen in one direction only (UDP) or mid-handshake (TCP SYN).
    New,
    /// Confirmed bidirectional (UDP) or past the handshake (TCP ACK).
    Established,
    /// A FIN or RST has been observed; the entry ages out.
    Closing,
}

/// Per-connection tracking state: the state machine plus per-direction
/// packet and byte counters. Directions are relative to the flow's
/// [canonical](netkit_packet::flow::FlowKey::canonical) orientation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConnInfo {
    /// Connection state.
    pub state: ConnState,
    /// Packets seen in the canonical (forward) direction.
    pub fwd_packets: u64,
    /// Bytes seen in the canonical (forward) direction.
    pub fwd_bytes: u64,
    /// Packets seen in the reverse direction.
    pub rev_packets: u64,
    /// Bytes seen in the reverse direction.
    pub rev_bytes: u64,
}

impl Default for ConnInfo {
    fn default() -> Self {
        Self {
            state: ConnState::New,
            fwd_packets: 0,
            fwd_bytes: 0,
            rev_packets: 0,
            rev_bytes: 0,
        }
    }
}

impl ConnInfo {
    /// Total packets, both directions.
    pub fn packets(&self) -> u64 {
        self.fwd_packets + self.rev_packets
    }

    /// Total bytes, both directions.
    pub fn bytes(&self) -> u64 {
        self.fwd_bytes + self.rev_bytes
    }

    /// Folds one observed packet into the state machine. The same
    /// transition function runs for a freshly created entry and for an
    /// established one, which is what makes state **re-establish
    /// deterministically** after a shard migration: a mid-connection
    /// TCP segment carries ACK without SYN, so the very first packet
    /// the new shard sees promotes the fresh entry straight to
    /// [`ConnState::Established`] — tracked state never regresses to
    /// `New` for a live connection.
    fn observe(&mut self, dir: FlowDirection, bytes: u64, tcp: Option<TcpFlags>) {
        match dir {
            FlowDirection::Forward => {
                self.fwd_packets += 1;
                self.fwd_bytes += bytes;
            }
            FlowDirection::Reverse => {
                self.rev_packets += 1;
                self.rev_bytes += bytes;
            }
        }
        match tcp {
            Some(f) if f.fin() || f.rst() => self.state = ConnState::Closing,
            Some(f) if f.ack() && !f.syn() => {
                if self.state == ConnState::New {
                    self.state = ConnState::Established;
                }
            }
            Some(_) => {} // SYN / SYN+ACK: still handshaking.
            None => {
                // UDP (and other port-less flows): confirmed once
                // traffic flows both ways.
                if self.state == ConnState::New && dir == FlowDirection::Reverse {
                    self.state = ConnState::Established;
                }
            }
        }
    }
}

/// Parses the TCP flags out of an Ethernet+IPv4+TCP frame, if that is
/// what the frame is.
fn tcp_flags(pkt: &Packet) -> Option<TcpFlags> {
    let frame = pkt.data();
    let eth = EthernetHeader::parse(frame).ok()?;
    if eth.ethertype != netkit_packet::headers::EtherType::Ipv4 {
        return None;
    }
    let l3 = frame.get(EthernetHeader::LEN..)?;
    let ip = Ipv4Header::parse(l3).ok()?;
    if ip.protocol != proto::TCP {
        return None;
    }
    let tcp = TcpHeader::parse(l3.get(ip.header_len..)?).ok()?;
    Some(tcp.flags)
}

/// Pass-through connection-tracking element.
///
/// Tracks every UDP/TCP flow through a bounded per-shard
/// [`FlowTable`], keyed canonically so both directions share one
/// entry. Frames with no flow identity (ARP, malformed) pass through
/// untracked. With no downstream binding it acts as a sink, like
/// [`Counter`](crate::elements::Counter).
///
/// The table sits behind a mutex only because component entry points
/// take `&self`; in the sharded dataplane the canonical RSS hash pins
/// a flow's packets to one worker, so the lock is uncontended by
/// construction (see the [module docs](super)).
pub struct ConnTracker {
    core: ComponentCore,
    out: Receptacle<dyn IPacketPush>,
    table: Mutex<FlowTable<ConnInfo>>,
    clock: FlowClock,
    untracked: AtomicU64,
}

impl ConnTracker {
    /// Default table bound: 64 Ki connections per shard.
    pub const DEFAULT_CAPACITY: usize = 65_536;

    /// Creates a tracker with the default capacity and no idle expiry.
    pub fn new() -> Arc<Self> {
        Self::with_table(Self::DEFAULT_CAPACITY, u64::MAX)
    }

    /// Creates a tracker with an explicit table bound and idle timeout
    /// (in [`FlowClock`] ticks — nanoseconds when frames carry
    /// timestamps).
    pub fn with_table(capacity: usize, idle_timeout: u64) -> Arc<Self> {
        Arc::new(Self {
            core: element_core("netkit.ConnTracker"),
            out: Receptacle::single("out", IPACKET_PUSH),
            table: Mutex::new(FlowTable::new(capacity, idle_timeout)),
            clock: FlowClock::new(),
            untracked: AtomicU64::new(0),
        })
    }

    fn track(&self, table: &mut FlowTable<ConnInfo>, pkt: &Packet) {
        let Some(key) = FlowKey::from_packet(pkt) else {
            self.untracked.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let (ckey, dir) = key.canonical_with_direction();
        let now = self.clock.advance(pkt.meta.timestamp_ns);
        let flags = tcp_flags(pkt);
        let bytes = pkt.len() as u64;
        let admission = table.get_or_insert_with(ckey, now, ConnInfo::default);
        admission.value.observe(dir, bytes, flags);
    }

    /// Tracked connection count.
    pub fn len(&self) -> usize {
        self.table.lock().len()
    }

    /// True if no connections are tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A tracked connection's state, looked up by either direction's
    /// tuple.
    pub fn info(&self, key: &FlowKey) -> Option<ConnInfo> {
        self.table.lock().peek(&key.canonical()).copied()
    }

    /// Lifetime table counters (insertions, evictions, hits, misses).
    pub fn table_stats(&self) -> FlowTableStats {
        self.table.lock().stats()
    }

    /// Resident bytes of the backing flow table. Fixed once the slab
    /// and index reach capacity — the bound the soak test pins.
    pub fn footprint_bytes(&self) -> usize {
        self.table.lock().footprint_bytes()
    }

    /// Frames that carried no flow identity and passed through
    /// untracked.
    pub fn untracked(&self) -> u64 {
        self.untracked.load(Ordering::Relaxed)
    }

    /// Reclaims idle-expired entries now; returns how many died.
    pub fn expire_idle(&self) -> usize {
        let mut table = self.table.lock();
        let now = self.clock.now();
        table.expire_idle(now).len()
    }
}

impl IPacketPush for ConnTracker {
    fn push(&self, pkt: Packet) -> PushResult {
        self.track(&mut self.table.lock(), &pkt);
        match self.out.with_bound(|next| next.push(pkt)) {
            Some(result) => result,
            None => Ok(()), // sink mode
        }
    }

    fn push_batch(&self, batch: PacketBatch) -> BatchResult {
        let n = batch.len();
        {
            // One lock for the whole burst.
            let mut table = self.table.lock();
            for pkt in &batch {
                self.track(&mut table, pkt);
            }
        }
        match self.out.with_bound(|next| next.push_batch(batch)) {
            Some(result) => result,
            None => BatchResult::ok(n), // sink mode
        }
    }
}

impl Component for ConnTracker {
    fn core(&self) -> &ComponentCore {
        &self.core
    }
    fn publish(self: Arc<Self>, reg: &Registrar<'_>) {
        let push: Arc<dyn IPacketPush> = self.clone();
        reg.expose(IPACKET_PUSH, &push);
        reg.receptacle(&self.out);
    }
    fn footprint_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.table.lock().footprint_bytes()
    }
}

impl fmt::Debug for ConnTracker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ConnTracker({} tracked, {} untracked)",
            self.len(),
            self.untracked()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netkit_packet::packet::PacketBuilder;

    fn udp(src: &str, dst: &str, sport: u16, dport: u16) -> Packet {
        PacketBuilder::udp_v4(src, dst, sport, dport).build()
    }

    #[test]
    fn udp_establishes_on_reverse_traffic() {
        let ct = ConnTracker::new();
        let req = udp("10.0.0.1", "10.9.9.9", 5000, 53);
        let key = FlowKey::from_packet(&req).unwrap();
        ct.push(req).unwrap();
        assert_eq!(ct.info(&key).unwrap().state, ConnState::New);
        // The reply — looked up by the reversed tuple — lands in the
        // same entry and confirms the connection.
        ct.push(udp("10.9.9.9", "10.0.0.1", 53, 5000)).unwrap();
        let info = ct.info(&key).unwrap();
        assert_eq!(info.state, ConnState::Established);
        assert_eq!(info.packets(), 2);
        assert_eq!(ct.len(), 1, "one entry for both directions");
    }

    #[test]
    fn per_direction_counters_are_canonical_relative() {
        let ct = ConnTracker::new();
        let a = udp("10.0.0.1", "10.9.9.9", 5000, 53);
        let b = udp("10.9.9.9", "10.0.0.1", 53, 5000);
        let (_, dir_a) = FlowKey::from_packet(&a).unwrap().canonical_with_direction();
        let la = a.len() as u64;
        let lb = b.len() as u64;
        ct.push(a).unwrap();
        ct.push(b).unwrap();
        let info = ct
            .info(&FlowKey::from_packet(&udp("10.0.0.1", "10.9.9.9", 5000, 53)).unwrap())
            .unwrap();
        // Whichever way the canonical orientation fell, one packet is
        // attributed to each direction.
        assert_eq!((info.fwd_packets, info.rev_packets), (1, 1));
        if dir_a.is_forward() {
            assert_eq!((info.fwd_bytes, info.rev_bytes), (la, lb));
        } else {
            assert_eq!((info.fwd_bytes, info.rev_bytes), (lb, la));
        }
    }

    #[test]
    fn non_flow_frames_pass_untracked() {
        let ct = ConnTracker::new();
        ct.push(Packet::from_slice(&[0u8; 14])).unwrap();
        assert_eq!((ct.len(), ct.untracked()), (0, 1));
    }

    #[test]
    fn bounded_capacity_evicts_lru() {
        let ct = ConnTracker::with_table(4, u64::MAX);
        for n in 0..10u16 {
            ct.push(udp("10.0.0.1", "10.9.9.9", 6000 + n, 53)).unwrap();
        }
        assert_eq!(ct.len(), 4);
        let stats = ct.table_stats();
        assert_eq!(stats.insertions, 10);
        assert_eq!(stats.lru_evictions, 6);
    }

    #[test]
    fn batch_path_matches_scalar() {
        let ct = ConnTracker::new();
        let batch: PacketBatch = (0..8u16)
            .map(|n| udp("10.0.0.1", "10.9.9.9", 5000 + n % 4, 53))
            .collect();
        let result = ct.push_batch(batch);
        assert!(result.all_ok());
        assert_eq!(ct.len(), 4);
    }
}
