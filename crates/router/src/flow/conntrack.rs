//! Connection tracking: per-flow state machine + direction counters.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use netkit_packet::batch::PacketBatch;
use netkit_packet::flow::{FlowDirection, FlowKey};
use netkit_packet::headers::{proto, EthernetHeader, Ipv4Header, TcpFlags, TcpHeader};
use netkit_packet::packet::Packet;
use opencom::component::{Component, ComponentCore, Registrar};
use opencom::receptacle::Receptacle;
use parking_lot::Mutex;

use crate::api::{BatchResult, IPacketPush, PushResult, IPACKET_PUSH};
use crate::elements::element_core;

use super::table::{FlowClock, FlowTable, FlowTableStats};

/// Where a tracked connection stands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConnState {
    /// Seen in one direction only (UDP) or mid-handshake (TCP SYN).
    New,
    /// Confirmed bidirectional (UDP) or past the handshake (TCP ACK).
    Established,
    /// A FIN or RST has been observed; the entry ages out.
    Closing,
}

/// Per-connection tracking state: the state machine plus per-direction
/// packet and byte counters. Directions are relative to the flow's
/// [canonical](netkit_packet::flow::FlowKey::canonical) orientation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConnInfo {
    /// Connection state.
    pub state: ConnState,
    /// Packets seen in the canonical (forward) direction.
    pub fwd_packets: u64,
    /// Bytes seen in the canonical (forward) direction.
    pub fwd_bytes: u64,
    /// Packets seen in the reverse direction.
    pub rev_packets: u64,
    /// Bytes seen in the reverse direction.
    pub rev_bytes: u64,
    /// A TCP SYN has been observed on this flow. Together with
    /// [`ConnState::New`] this marks a **half-open** connection — a
    /// handshake started but never completed, the signature a SYN
    /// flood leaves in the table (see [`ConnTracker::half_open`]).
    pub syn_seen: bool,
}

impl Default for ConnInfo {
    fn default() -> Self {
        Self {
            state: ConnState::New,
            fwd_packets: 0,
            fwd_bytes: 0,
            rev_packets: 0,
            rev_bytes: 0,
            syn_seen: false,
        }
    }
}

impl ConnInfo {
    /// Total packets, both directions.
    pub fn packets(&self) -> u64 {
        self.fwd_packets + self.rev_packets
    }

    /// Total bytes, both directions.
    pub fn bytes(&self) -> u64 {
        self.fwd_bytes + self.rev_bytes
    }

    /// True while the connection is a half-open TCP handshake: a SYN
    /// has been seen but no handshake-completing ACK (and no
    /// FIN/RST). The population of these is the SYN-flood evidence
    /// the tracker exports as a gauge.
    pub fn is_half_open(&self) -> bool {
        self.state == ConnState::New && self.syn_seen
    }

    /// Folds one observed packet into the state machine. The same
    /// transition function runs for a freshly created entry and for an
    /// established one, which is what makes state **re-establish
    /// deterministically** after a shard migration: a mid-connection
    /// TCP segment carries ACK without SYN, so the very first packet
    /// the new shard sees promotes the fresh entry straight to
    /// [`ConnState::Established`] — tracked state never regresses to
    /// `New` for a live connection.
    fn observe(&mut self, dir: FlowDirection, bytes: u64, tcp: Option<TcpFlags>) {
        match dir {
            FlowDirection::Forward => {
                self.fwd_packets += 1;
                self.fwd_bytes += bytes;
            }
            FlowDirection::Reverse => {
                self.rev_packets += 1;
                self.rev_bytes += bytes;
            }
        }
        if let Some(f) = tcp {
            if f.syn() {
                self.syn_seen = true;
            }
        }
        match tcp {
            Some(f) if f.fin() || f.rst() => self.state = ConnState::Closing,
            Some(f) if f.ack() && !f.syn() => {
                if self.state == ConnState::New {
                    self.state = ConnState::Established;
                }
            }
            Some(_) => {} // SYN / SYN+ACK: still handshaking.
            None => {
                // UDP (and other port-less flows): confirmed once
                // traffic flows both ways.
                if self.state == ConnState::New && dir == FlowDirection::Reverse {
                    self.state = ConnState::Established;
                }
            }
        }
    }
}

/// Parses the TCP flags out of an Ethernet+IPv4+TCP frame, if that is
/// what the frame is. Shared with [`Guard`](super::Guard)'s SYN arm.
pub(super) fn tcp_flags(pkt: &Packet) -> Option<TcpFlags> {
    let frame = pkt.data();
    let eth = EthernetHeader::parse(frame).ok()?;
    if eth.ethertype != netkit_packet::headers::EtherType::Ipv4 {
        return None;
    }
    let l3 = frame.get(EthernetHeader::LEN..)?;
    let ip = Ipv4Header::parse(l3).ok()?;
    if ip.protocol != proto::TCP {
        return None;
    }
    let tcp = TcpHeader::parse(l3.get(ip.header_len..)?).ok()?;
    Some(tcp.flags)
}

/// Pass-through connection-tracking element.
///
/// Tracks every UDP/TCP flow through a bounded per-shard
/// [`FlowTable`], keyed canonically so both directions share one
/// entry. Frames with no flow identity (ARP, malformed) pass through
/// untracked. With no downstream binding it acts as a sink, like
/// [`Counter`](crate::elements::Counter).
///
/// The table sits behind a mutex only because component entry points
/// take `&self`; in the sharded dataplane the canonical RSS hash pins
/// a flow's packets to one worker, so the lock is uncontended by
/// construction (see the [module docs](super)).
pub struct ConnTracker {
    core: ComponentCore,
    out: Receptacle<dyn IPacketPush>,
    table: Mutex<FlowTable<ConnInfo>>,
    clock: FlowClock,
    untracked: AtomicU64,
    /// Live half-open connections (SYN seen, handshake never
    /// completed) — a gauge, maintained at every state transition and
    /// eviction. SYN-flood evidence for the heavy-hitter guard.
    half_open: AtomicU64,
    /// Teardown timer: a [`ConnState::Closing`] entry (FIN/RST seen)
    /// is reclaimed by [`Self::sweep`] this many ticks after its last
    /// packet. `u64::MAX` disables.
    closing_timeout: u64,
    /// Half-open timer: a SYN-without-ACK entry is reclaimed by
    /// [`Self::sweep`] this many ticks after its last packet.
    /// `u64::MAX` disables.
    syn_timeout: u64,
}

/// How far [`ConnTracker`] scans from the LRU end for a half-open
/// victim before letting plain LRU eviction run, when the table is
/// full. Bounded so the worst-case per-insert cost stays O(1).
const HALF_OPEN_EVICT_SCAN: usize = 16;

impl ConnTracker {
    /// Default table bound: 64 Ki connections per shard.
    pub const DEFAULT_CAPACITY: usize = 65_536;

    /// Creates a tracker with the default capacity and no idle expiry.
    pub fn new() -> Arc<Self> {
        Self::with_table(Self::DEFAULT_CAPACITY, u64::MAX)
    }

    /// Creates a tracker with an explicit table bound and idle timeout
    /// (in [`FlowClock`] ticks — nanoseconds when frames carry
    /// timestamps). Teardown and half-open timers are disabled; use
    /// [`Self::with_timeouts`] to arm them.
    pub fn with_table(capacity: usize, idle_timeout: u64) -> Arc<Self> {
        Self::with_timeouts(capacity, idle_timeout, u64::MAX, u64::MAX)
    }

    /// Creates a tracker with the full timeout policy:
    ///
    /// * `idle_timeout` — any entry dies this long after its last
    ///   packet (the base LRU idle expiry);
    /// * `closing_timeout` — a FIN/RST-seen entry dies this much
    ///   sooner (teardown timer: closed connections should not squat
    ///   on table slots for the full idle window);
    /// * `syn_timeout` — a half-open entry (SYN, no completing ACK)
    ///   dies this much sooner (SYN-flood entries age out fast).
    ///
    /// All in [`FlowClock`] ticks; `u64::MAX` disables a timer. The
    /// state-specific timers are enforced by [`Self::sweep`], which a
    /// control-plane cadence must call.
    pub fn with_timeouts(
        capacity: usize,
        idle_timeout: u64,
        closing_timeout: u64,
        syn_timeout: u64,
    ) -> Arc<Self> {
        Arc::new(Self {
            core: element_core("netkit.ConnTracker"),
            out: Receptacle::single("out", IPACKET_PUSH),
            table: Mutex::new(FlowTable::new(capacity, idle_timeout)),
            clock: FlowClock::new(),
            untracked: AtomicU64::new(0),
            half_open: AtomicU64::new(0),
            closing_timeout,
            syn_timeout,
        })
    }

    /// Retires an evicted entry's contribution to the half-open gauge.
    fn retire_gauge(&self, corpse: &ConnInfo) {
        if corpse.is_half_open() {
            // Saturating: gauge transitions and evictions are all
            // under the table lock, so this never actually underflows.
            let _ = self
                .half_open
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                    Some(v.saturating_sub(1))
                });
        }
    }

    fn track(&self, table: &mut FlowTable<ConnInfo>, pkt: &Packet) {
        let Some(key) = FlowKey::from_packet(pkt) else {
            self.untracked.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let (ckey, dir) = key.canonical_with_direction();
        let now = self.clock.advance(pkt.meta.timestamp_ns);
        let flags = tcp_flags(pkt);
        let bytes = pkt.len() as u64;
        // Eviction pressure prefers half-open victims: when the table
        // is full and this packet will insert, sacrifice a nearby
        // half-open entry (bounded tail scan) before LRU takes an
        // established connection — under a SYN flood the attack evicts
        // itself, not the legitimate traffic.
        if table.len() == table.capacity() && table.peek(&ckey).is_none() {
            if let Some((_, corpse)) =
                table.evict_where_bounded(HALF_OPEN_EVICT_SCAN, |info, _| info.is_half_open())
            {
                self.retire_gauge(&corpse);
            }
        }
        let admission = table.get_or_insert_with(ckey, now, ConnInfo::default);
        let was_half_open = !admission.created && admission.value.is_half_open();
        admission.value.observe(dir, bytes, flags);
        let is_half_open = admission.value.is_half_open();
        if let Some((_, corpse)) = &admission.evicted {
            self.retire_gauge(corpse);
        }
        match (was_half_open, is_half_open) {
            (false, true) => {
                self.half_open.fetch_add(1, Ordering::Relaxed);
            }
            (true, false) => {
                let _ = self
                    .half_open
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                        Some(v.saturating_sub(1))
                    });
            }
            _ => {}
        }
    }

    /// Tracked connection count.
    pub fn len(&self) -> usize {
        self.table.lock().len()
    }

    /// True if no connections are tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A tracked connection's state, looked up by either direction's
    /// tuple.
    pub fn info(&self, key: &FlowKey) -> Option<ConnInfo> {
        self.table.lock().peek(&key.canonical()).copied()
    }

    /// Lifetime table counters (insertions, evictions, hits, misses).
    pub fn table_stats(&self) -> FlowTableStats {
        self.table.lock().stats()
    }

    /// Resident bytes of the backing flow table. Fixed once the slab
    /// and index reach capacity — the bound the soak test pins.
    pub fn footprint_bytes(&self) -> usize {
        self.table.lock().footprint_bytes()
    }

    /// Frames that carried no flow identity and passed through
    /// untracked.
    pub fn untracked(&self) -> u64 {
        self.untracked.load(Ordering::Relaxed)
    }

    /// Reclaims idle-expired entries now; returns how many died.
    pub fn expire_idle(&self) -> usize {
        let mut table = self.table.lock();
        let now = self.clock.now();
        let dead = table.expire_idle(now);
        for (_, corpse) in &dead {
            self.retire_gauge(corpse);
        }
        dead.len()
    }

    /// Live half-open connections: TCP flows where a SYN was seen but
    /// the handshake never completed. A normal workload keeps this
    /// near zero (handshakes complete in a round-trip); a climbing
    /// gauge is SYN-flood evidence, exported here so the inline
    /// [`Guard`](super::Guard) can arm its SYN defence on it.
    pub fn half_open(&self) -> u64 {
        self.half_open.load(Ordering::Relaxed)
    }

    /// Runs the state-specific timers now: reclaims
    /// [`ConnState::Closing`] entries older than the teardown timer
    /// and half-open entries older than the SYN timer (see
    /// [`Self::with_timeouts`]). Returns how many entries died.
    ///
    /// The sweep walks the whole table (per-state expiries are not
    /// LRU-ordered), so call it on a control-plane cadence — the
    /// reflective control loop's tick, a periodic task — not per
    /// packet.
    pub fn sweep(&self) -> usize {
        if self.closing_timeout == u64::MAX && self.syn_timeout == u64::MAX {
            return 0;
        }
        let now = self.clock.now();
        let closing = self.closing_timeout;
        let syn = self.syn_timeout;
        let mut table = self.table.lock();
        let dead = table.expire_matching(|info, last_seen| {
            let age = now.saturating_sub(last_seen);
            match info.state {
                ConnState::Closing => closing != u64::MAX && age > closing,
                ConnState::New if info.syn_seen => syn != u64::MAX && age > syn,
                _ => false,
            }
        });
        for (_, corpse) in &dead {
            self.retire_gauge(corpse);
        }
        dead.len()
    }
}

impl IPacketPush for ConnTracker {
    fn push(&self, pkt: Packet) -> PushResult {
        self.track(&mut self.table.lock(), &pkt);
        match self.out.with_bound(|next| next.push(pkt)) {
            Some(result) => result,
            None => Ok(()), // sink mode
        }
    }

    fn push_batch(&self, batch: PacketBatch) -> BatchResult {
        let n = batch.len();
        {
            // One lock for the whole burst.
            let mut table = self.table.lock();
            for pkt in &batch {
                self.track(&mut table, pkt);
            }
        }
        match self.out.with_bound(|next| next.push_batch(batch)) {
            Some(result) => result,
            None => BatchResult::ok(n), // sink mode
        }
    }
}

impl Component for ConnTracker {
    fn core(&self) -> &ComponentCore {
        &self.core
    }
    fn publish(self: Arc<Self>, reg: &Registrar<'_>) {
        let push: Arc<dyn IPacketPush> = self.clone();
        reg.expose(IPACKET_PUSH, &push);
        reg.receptacle(&self.out);
    }
    fn footprint_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.table.lock().footprint_bytes()
    }
}

impl fmt::Debug for ConnTracker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ConnTracker({} tracked, {} untracked)",
            self.len(),
            self.untracked()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netkit_packet::packet::PacketBuilder;

    fn udp(src: &str, dst: &str, sport: u16, dport: u16) -> Packet {
        PacketBuilder::udp_v4(src, dst, sport, dport).build()
    }

    #[test]
    fn udp_establishes_on_reverse_traffic() {
        let ct = ConnTracker::new();
        let req = udp("10.0.0.1", "10.9.9.9", 5000, 53);
        let key = FlowKey::from_packet(&req).unwrap();
        ct.push(req).unwrap();
        assert_eq!(ct.info(&key).unwrap().state, ConnState::New);
        // The reply — looked up by the reversed tuple — lands in the
        // same entry and confirms the connection.
        ct.push(udp("10.9.9.9", "10.0.0.1", 53, 5000)).unwrap();
        let info = ct.info(&key).unwrap();
        assert_eq!(info.state, ConnState::Established);
        assert_eq!(info.packets(), 2);
        assert_eq!(ct.len(), 1, "one entry for both directions");
    }

    #[test]
    fn per_direction_counters_are_canonical_relative() {
        let ct = ConnTracker::new();
        let a = udp("10.0.0.1", "10.9.9.9", 5000, 53);
        let b = udp("10.9.9.9", "10.0.0.1", 53, 5000);
        let (_, dir_a) = FlowKey::from_packet(&a).unwrap().canonical_with_direction();
        let la = a.len() as u64;
        let lb = b.len() as u64;
        ct.push(a).unwrap();
        ct.push(b).unwrap();
        let info = ct
            .info(&FlowKey::from_packet(&udp("10.0.0.1", "10.9.9.9", 5000, 53)).unwrap())
            .unwrap();
        // Whichever way the canonical orientation fell, one packet is
        // attributed to each direction.
        assert_eq!((info.fwd_packets, info.rev_packets), (1, 1));
        if dir_a.is_forward() {
            assert_eq!((info.fwd_bytes, info.rev_bytes), (la, lb));
        } else {
            assert_eq!((info.fwd_bytes, info.rev_bytes), (lb, la));
        }
    }

    #[test]
    fn non_flow_frames_pass_untracked() {
        let ct = ConnTracker::new();
        ct.push(Packet::from_slice(&[0u8; 14])).unwrap();
        assert_eq!((ct.len(), ct.untracked()), (0, 1));
    }

    #[test]
    fn bounded_capacity_evicts_lru() {
        let ct = ConnTracker::with_table(4, u64::MAX);
        for n in 0..10u16 {
            ct.push(udp("10.0.0.1", "10.9.9.9", 6000 + n, 53)).unwrap();
        }
        assert_eq!(ct.len(), 4);
        let stats = ct.table_stats();
        assert_eq!(stats.insertions, 10);
        assert_eq!(stats.lru_evictions, 6);
    }

    fn tcp(src: &str, dst: &str, sport: u16, dport: u16, flags: TcpFlags) -> Packet {
        PacketBuilder::tcp_v4(src, dst, sport, dport)
            .tcp_flags(flags)
            .build()
    }

    #[test]
    fn half_open_gauge_tracks_the_handshake() {
        let ct = ConnTracker::new();
        // SYN: half-open.
        ct.push(tcp("10.0.0.1", "10.9.9.9", 5000, 80, TcpFlags::SYN))
            .unwrap();
        assert_eq!(ct.half_open(), 1);
        // SYN+ACK reply: still handshaking, still half-open.
        ct.push(tcp(
            "10.9.9.9",
            "10.0.0.1",
            80,
            5000,
            TcpFlags::SYN | TcpFlags::ACK,
        ))
        .unwrap();
        assert_eq!(ct.half_open(), 1);
        // Final ACK completes the handshake: the gauge falls.
        ct.push(tcp("10.0.0.1", "10.9.9.9", 5000, 80, TcpFlags::ACK))
            .unwrap();
        assert_eq!(ct.half_open(), 0);
        let key = FlowKey {
            src: "10.0.0.1".parse().unwrap(),
            dst: "10.9.9.9".parse().unwrap(),
            protocol: proto::TCP,
            src_port: 5000,
            dst_port: 80,
        };
        assert_eq!(ct.info(&key).unwrap().state, ConnState::Established);
    }

    #[test]
    fn rst_moves_to_closing_and_sweep_reclaims_after_teardown_timer() {
        // idle=1000, closing=10, syn=50 ticks. Frames carry no stamps,
        // so the clock ticks once per packet.
        let ct = ConnTracker::with_timeouts(16, 1000, 10, 50);
        ct.push(tcp("10.0.0.1", "10.9.9.9", 5000, 80, TcpFlags::ACK))
            .unwrap();
        ct.push(tcp("10.0.0.1", "10.9.9.9", 5000, 80, TcpFlags::RST))
            .unwrap();
        let key =
            FlowKey::from_packet(&tcp("10.0.0.1", "10.9.9.9", 5000, 80, TcpFlags::ACK)).unwrap();
        assert_eq!(ct.info(&key).unwrap().state, ConnState::Closing);
        // Not yet past the teardown timer: survives the sweep.
        assert_eq!(ct.sweep(), 0);
        // Age the clock past closing_timeout with unrelated traffic.
        for n in 0..12u16 {
            ct.push(udp("10.0.0.2", "10.9.9.9", 7000 + n, 53)).unwrap();
        }
        assert_eq!(ct.sweep(), 1, "closing entry reclaimed");
        assert!(ct.info(&key).is_none());
    }

    #[test]
    fn sweep_reclaims_stale_half_opens_and_keeps_the_gauge_honest() {
        let ct = ConnTracker::with_timeouts(64, u64::MAX, u64::MAX, 5);
        for n in 0..4u16 {
            ct.push(tcp("10.0.0.1", "10.9.9.9", 5000 + n, 80, TcpFlags::SYN))
                .unwrap();
        }
        assert_eq!(ct.half_open(), 4);
        // Age past the SYN timer.
        for n in 0..8u16 {
            ct.push(udp("10.0.0.2", "10.9.9.9", 7000 + n, 53)).unwrap();
        }
        let dead = ct.sweep();
        assert!(dead >= 3, "stale half-opens reclaimed, got {dead}");
        assert_eq!(ct.half_open() as usize, 4 - dead);
    }

    #[test]
    fn full_table_prefers_half_open_victims() {
        let ct = ConnTracker::with_table(4, u64::MAX);
        // Two established UDP flows, two half-open handshakes.
        ct.push(udp("10.0.0.1", "10.9.9.9", 6000, 53)).unwrap();
        ct.push(udp("10.9.9.9", "10.0.0.1", 53, 6000)).unwrap();
        ct.push(udp("10.0.0.1", "10.9.9.9", 6001, 53)).unwrap();
        ct.push(udp("10.9.9.9", "10.0.0.1", 53, 6001)).unwrap();
        ct.push(tcp("10.0.0.3", "10.9.9.9", 5000, 80, TcpFlags::SYN))
            .unwrap();
        ct.push(tcp("10.0.0.3", "10.9.9.9", 5001, 80, TcpFlags::SYN))
            .unwrap();
        assert_eq!((ct.len(), ct.half_open()), (4, 2));
        // A new flow on the full table sacrifices a half-open entry —
        // NOT the (older) established ones.
        ct.push(udp("10.0.0.4", "10.9.9.9", 6002, 53)).unwrap();
        assert_eq!(ct.len(), 4);
        assert_eq!(ct.half_open(), 1, "a half-open entry was the victim");
        let established = FlowKey::from_packet(&udp("10.0.0.1", "10.9.9.9", 6000, 53)).unwrap();
        assert!(
            ct.info(&established).is_some(),
            "established flow must survive the pressure"
        );
    }

    #[test]
    fn batch_path_matches_scalar() {
        let ct = ConnTracker::new();
        let batch: PacketBatch = (0..8u16)
            .map(|n| udp("10.0.0.1", "10.9.9.9", 5000 + n % 4, 53))
            .collect();
        let result = ct.push_batch(batch);
        assert!(result.all_ok());
        assert_eq!(ct.len(), 4);
    }
}
