//! The inline heavy-hitter guard: sketch-fed overload protection.
//!
//! [`Guard`] is the dataplane's answer to a flow that the reflective
//! control loop cannot rebalance away: an elephant (or a SYN flood)
//! that would saturate whatever shard it lands on. It sits inline in a
//! shard's element graph and **consumes the evidence the pipeline
//! already gathers** — the per-shard
//! [`FlowSketch`](netkit_packet::sketch::FlowSketch) byte estimates
//! the worker records before each batch runs, and the
//! [`ConnTracker`]'s half-open gauge — to rate-limit exactly the flows
//! that cross its threshold, leaving everything else untouched.
//!
//! # The benign fast path
//!
//! A packet whose flow's byte estimate sits **below** the threshold
//! passes with one count-min read — no flow-table touch, no lock
//! contention (the sketch is the same lock-free one the control plane
//! reads). Count-min never *under*-estimates, so a flow below
//! threshold is genuinely benign: the guard cannot miss an elephant,
//! only (rarely, on hash collision) promote a mouse to the budgeted
//! path — where an honest mouse still fits comfortably inside the
//! window budget and passes anyway.
//!
//! # The window discipline
//!
//! Heavy flows are not dropped outright: each gets a per-observation-
//! window byte budget, spent from a per-flow entry in a bounded
//! [`FlowTable`]. The control plane closes windows by calling
//! [`Guard::retire_window`] on its cadence — the same
//! peek/decay/retire rhythm the rebalancing evidence follows — which
//! refills every budget. Between retires, a flow that exceeds
//! threshold + budget sees [`PushError::RateLimited`] verdicts, which
//! the sharded pipeline files under the dedicated guard drop cause.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use netkit_packet::batch::PacketBatch;
use netkit_packet::flow::FlowKey;
use netkit_packet::packet::Packet;
use netkit_packet::sketch::FlowSketch;
use opencom::component::{Component, ComponentCore, Registrar};
use opencom::receptacle::Receptacle;
use parking_lot::Mutex;

use crate::api::{BatchResult, IPacketPush, PushError, PushResult, IPACKET_PUSH};
use crate::elements::element_core;

use super::conntrack::{tcp_flags, ConnTracker};
use super::table::{FlowClock, FlowTable};

/// [`Guard`] policy knobs.
#[derive(Clone, Copy, Debug)]
pub struct GuardConfig {
    /// A flow whose count-min byte estimate stays below this passes
    /// on the fast path, untouched and unbudgeted. Crossing it puts
    /// the flow on the budgeted path.
    pub byte_threshold: u64,
    /// Bytes a heavy flow may push per observation window before its
    /// packets are rate-limited. Refilled by
    /// [`Guard::retire_window`].
    pub window_budget: u64,
    /// Bound on the heavy-flow budget table (per shard). Only flows
    /// past the threshold occupy entries, so a small table suffices.
    pub table_capacity: usize,
    /// SYN defence arm-point: when the attached [`ConnTracker`]'s
    /// half-open gauge exceeds this, handshake-opening SYNs are
    /// budgeted too. `u64::MAX` (the default) disarms the SYN arm
    /// even when a tracker is attached.
    pub syn_limit: u64,
    /// Handshake-opening SYNs admitted per window while the SYN
    /// defence is armed.
    pub syn_budget: u64,
}

impl Default for GuardConfig {
    fn default() -> Self {
        Self {
            byte_threshold: 64 * 1024,
            window_budget: 64 * 1024,
            table_capacity: 1024,
            syn_limit: u64::MAX,
            syn_budget: 128,
        }
    }
}

/// Per-heavy-flow budget state, tagged with the window it was spent
/// in — a stale tag reads as a full budget, so closing a window never
/// walks the table.
struct GuardFlow {
    spent: u64,
    window: u64,
}

/// Local admission tallies, flushed to the shared atomics once per
/// push (scalar) or once per batch — see [`Guard::flush_counts`].
#[derive(Default)]
struct AdmitCounts {
    passed: u64,
    budgeted: u64,
    limited: u64,
    syn_dropped: u64,
}

/// Lifetime counters of a [`Guard`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GuardStats {
    /// Packets passed on the benign fast path (estimate below
    /// threshold).
    pub passed: u64,
    /// Packets passed on the budgeted path (heavy flow, budget left).
    pub budgeted: u64,
    /// Packets rate-limited (heavy flow, budget exhausted).
    pub limited: u64,
    /// Handshake-opening SYNs dropped by the armed SYN defence.
    pub syn_dropped: u64,
    /// Observation windows closed via [`Guard::retire_window`].
    pub windows: u64,
}

/// Inline heavy-hitter guard element — the overload half of the
/// self-healing dataplane (normative text in [`crate::flow`] and the
/// failure-contract section of [`crate::api`]).
///
/// Build one per shard with that shard's sketch
/// ([`ShardedPipeline::flow_sketch`](crate::shard::ShardedPipeline::flow_sketch)
/// from inside the replica factory) and place it early in the graph;
/// optionally attach the shard's [`ConnTracker`] to arm the SYN
/// defence. With no downstream binding it acts as a sink for admitted
/// packets, like the other pass-through elements.
pub struct Guard {
    core: ComponentCore,
    out: Receptacle<dyn IPacketPush>,
    sketch: Arc<FlowSketch>,
    tracker: Option<Arc<ConnTracker>>,
    cfg: GuardConfig,
    table: Mutex<FlowTable<GuardFlow>>,
    clock: FlowClock,
    /// The current observation window; bumped by
    /// [`Self::retire_window`]. Entries stamped with an older window
    /// read as refilled.
    window: AtomicU64,
    /// SYNs admitted in the current window while the defence is armed.
    syn_spent: AtomicU64,
    passed: AtomicU64,
    budgeted: AtomicU64,
    limited: AtomicU64,
    syn_dropped: AtomicU64,
    windows: AtomicU64,
}

impl Guard {
    /// Creates a guard reading `sketch` (the shard's own, so estimates
    /// already include the current batch — the worker records before
    /// the graph runs) under `cfg`, with no SYN arm.
    pub fn new(sketch: Arc<FlowSketch>, cfg: GuardConfig) -> Arc<Self> {
        Self::build(sketch, None, cfg)
    }

    /// Creates a guard whose SYN defence reads `tracker`'s half-open
    /// gauge (armed once the gauge exceeds
    /// [`GuardConfig::syn_limit`]).
    pub fn with_tracker(
        sketch: Arc<FlowSketch>,
        tracker: Arc<ConnTracker>,
        cfg: GuardConfig,
    ) -> Arc<Self> {
        Self::build(sketch, Some(tracker), cfg)
    }

    fn build(
        sketch: Arc<FlowSketch>,
        tracker: Option<Arc<ConnTracker>>,
        cfg: GuardConfig,
    ) -> Arc<Self> {
        Arc::new(Self {
            core: element_core("netkit.Guard"),
            out: Receptacle::single("out", IPACKET_PUSH),
            sketch,
            tracker,
            table: Mutex::new(FlowTable::new(cfg.table_capacity, u64::MAX)),
            cfg,
            clock: FlowClock::new(),
            window: AtomicU64::new(0),
            syn_spent: AtomicU64::new(0),
            passed: AtomicU64::new(0),
            budgeted: AtomicU64::new(0),
            limited: AtomicU64::new(0),
            syn_dropped: AtomicU64::new(0),
            windows: AtomicU64::new(0),
        })
    }

    /// Closes the current observation window: every heavy flow's byte
    /// budget and the SYN budget refill. Call from the control plane
    /// on the same cadence that retires the sketch windows — the
    /// guard's budgets are per-window by definition, so a window that
    /// never closes starves heavy flows forever, and one that closes
    /// per packet never limits anything.
    pub fn retire_window(&self) {
        self.window.fetch_add(1, Ordering::Relaxed);
        self.syn_spent.store(0, Ordering::Relaxed);
        self.windows.fetch_add(1, Ordering::Relaxed);
    }

    /// Lifetime counters.
    pub fn stats(&self) -> GuardStats {
        GuardStats {
            passed: self.passed.load(Ordering::Relaxed),
            budgeted: self.budgeted.load(Ordering::Relaxed),
            limited: self.limited.load(Ordering::Relaxed),
            syn_dropped: self.syn_dropped.load(Ordering::Relaxed),
            windows: self.windows.load(Ordering::Relaxed),
        }
    }

    /// True when the SYN defence is currently armed: a tracker is
    /// attached and its half-open gauge exceeds the configured limit.
    pub fn syn_armed(&self) -> bool {
        match &self.tracker {
            Some(t) => t.half_open() > self.cfg.syn_limit,
            None => false,
        }
    }

    /// The admission decision for one packet; `Ok(())` admits.
    /// Outcomes tally into `counts`, not the shared atomics, so the
    /// batch path can flush one atomic add per counter per *batch*
    /// ([`Self::flush_counts`]) instead of one per packet.
    fn admit(&self, pkt: &Packet, counts: &mut AdmitCounts) -> PushResult {
        // SYN defence: while the tracker's half-open gauge is past the
        // arm point, handshake-opening SYNs spend a per-window budget.
        // Established traffic (and SYN+ACK replies) is untouched —
        // the flood pays, the handshakes that complete do not.
        if self.syn_armed() {
            if let Some(flags) = tcp_flags(pkt) {
                if flags.syn() && !flags.ack() {
                    let spent = self.syn_spent.fetch_add(1, Ordering::Relaxed);
                    if spent >= self.cfg.syn_budget {
                        counts.syn_dropped += 1;
                        return Err(PushError::RateLimited);
                    }
                }
            }
        }
        let hash = pkt
            .meta
            .rss_hash
            .or_else(|| FlowKey::from_packet(pkt).map(|k| k.rss_hash()));
        let Some(hash) = hash else {
            // Non-flow frames (ARP, malformed) are not sketch-metered
            // and cannot be heavy: pass.
            counts.passed += 1;
            return Ok(());
        };
        // The benign fast path: a lock-free count-min read with the
        // early exit of `FlowSketch::below` — one counter for a light
        // flow. The estimate never under-counts, so staying below
        // threshold proves the flow benign for this window.
        if self.sketch.below(hash, self.cfg.byte_threshold) {
            counts.passed += 1;
            return Ok(());
        }
        // Heavy flow: spend its per-window byte budget.
        let Some(key) = FlowKey::from_packet(pkt) else {
            // Hash-stamped but unparseable: cannot key a budget; pass.
            counts.passed += 1;
            return Ok(());
        };
        let now = self.clock.advance(pkt.meta.timestamp_ns);
        let window = self.window.load(Ordering::Relaxed);
        let bytes = pkt.len() as u64;
        let mut table = self.table.lock();
        let admission =
            table.get_or_insert_with(key.canonical(), now, || GuardFlow { spent: 0, window });
        let flow = admission.value;
        if flow.window != window {
            // Stale stamp = budget refilled at the last retire.
            flow.window = window;
            flow.spent = 0;
        }
        if flow.spent.saturating_add(bytes) <= self.cfg.window_budget {
            flow.spent += bytes;
            counts.budgeted += 1;
            Ok(())
        } else {
            counts.limited += 1;
            Err(PushError::RateLimited)
        }
    }

    /// Adds a call's local tallies to the lifetime counters — one
    /// atomic add per touched counter, however many packets tallied.
    fn flush_counts(&self, counts: AdmitCounts) {
        if counts.passed > 0 {
            self.passed.fetch_add(counts.passed, Ordering::Relaxed);
        }
        if counts.budgeted > 0 {
            self.budgeted.fetch_add(counts.budgeted, Ordering::Relaxed);
        }
        if counts.limited > 0 {
            self.limited.fetch_add(counts.limited, Ordering::Relaxed);
        }
        if counts.syn_dropped > 0 {
            self.syn_dropped
                .fetch_add(counts.syn_dropped, Ordering::Relaxed);
        }
    }

    fn forward(&self, pkt: Packet) -> PushResult {
        match self.out.with_bound(|next| next.push(pkt)) {
            Some(result) => result,
            None => Ok(()), // sink mode
        }
    }
}

impl IPacketPush for Guard {
    fn push(&self, pkt: Packet) -> PushResult {
        let mut counts = AdmitCounts::default();
        let verdict = self.admit(&pkt, &mut counts);
        self.flush_counts(counts);
        verdict?;
        self.forward(pkt)
    }

    /// Batch admission with one downstream hop per *batch*: admit every
    /// packet first, then forward the survivors together, so the
    /// receptacle acquisition — the dominant per-packet cost of an
    /// all-benign batch — amortises across the batch. Scalar
    /// equivalence holds: identical verdicts, counters, and output
    /// order.
    fn push_batch(&self, mut batch: PacketBatch) -> BatchResult {
        let total = batch.len();
        let mut counts = AdmitCounts::default();
        // Optimistic all-benign pass: the verdict vector materialises
        // only at the first rejection, so a clean batch allocates
        // nothing of its own.
        let mut rejections: Option<Vec<PushResult>> = None;
        let mut rejected = 0usize;
        for (i, pkt) in (&batch).into_iter().enumerate() {
            match self.admit(pkt, &mut counts) {
                Ok(()) => {
                    if let Some(v) = &mut rejections {
                        v[i] = Ok(());
                    }
                }
                Err(e) => {
                    rejected += 1;
                    rejections.get_or_insert_with(|| vec![Ok(()); total])[i] = Err(e);
                }
            }
        }
        self.flush_counts(counts);
        if total == 0 {
            return BatchResult::with_capacity(0);
        }
        let Some(verdicts) = rejections else {
            // Every packet admitted: the downstream verdicts (in batch
            // order) are exactly what the scalar path would return.
            return match self.out.with_bound(|next| next.push_batch(batch)) {
                Some(result) => result,
                None => vec![Ok(()); total].into(), // sink mode
            };
        };
        // Mixed verdicts: compact the admitted packets (order
        // preserved) and scatter the downstream verdicts back over
        // their original positions.
        let mut admitted = PacketBatch::with_capacity(total - rejected);
        let mut positions = Vec::with_capacity(total - rejected);
        for (i, pkt) in batch.drain_all().enumerate() {
            if verdicts[i].is_ok() {
                positions.push(i);
                admitted.push(pkt);
            }
        }
        let mut result = BatchResult::from(verdicts);
        if !admitted.is_empty() {
            if let Some(sub) = self.out.with_bound(|next| next.push_batch(admitted)) {
                result.scatter(&positions, sub);
            }
        }
        result
    }
}

impl Component for Guard {
    fn core(&self) -> &ComponentCore {
        &self.core
    }
    fn publish(self: Arc<Self>, reg: &Registrar<'_>) {
        let push: Arc<dyn IPacketPush> = self.clone();
        reg.expose(IPACKET_PUSH, &push);
        reg.receptacle(&self.out);
    }
    fn footprint_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.table.lock().footprint_bytes()
    }
}

impl fmt::Debug for Guard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.stats();
        write!(
            f,
            "Guard({} passed, {} budgeted, {} limited, {} syn-dropped)",
            s.passed, s.budgeted, s.limited, s.syn_dropped
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netkit_packet::packet::PacketBuilder;
    use netkit_packet::sketch::SketchConfig;

    fn sketch() -> Arc<FlowSketch> {
        Arc::new(FlowSketch::new(SketchConfig::default()))
    }

    fn udp(sport: u16, payload: usize) -> Packet {
        PacketBuilder::udp_v4("10.0.0.1", "10.9.9.9", sport, 53)
            .payload(&vec![0u8; payload])
            .build()
    }

    fn cfg() -> GuardConfig {
        GuardConfig {
            byte_threshold: 4096,
            window_budget: 2048,
            table_capacity: 64,
            ..GuardConfig::default()
        }
    }

    /// Feeds `pkt` the way the sharded worker does: sketch first, then
    /// the guard.
    fn feed(guard: &Guard, sketch: &FlowSketch, pkt: Packet) -> PushResult {
        sketch.record_packet(&pkt);
        guard.push(pkt)
    }

    #[test]
    fn benign_flows_pass_without_budget_entries() {
        let sk = sketch();
        let guard = Guard::new(Arc::clone(&sk), cfg());
        // 16 mice, each well under the 4 KiB threshold in total.
        for flow in 0..16u16 {
            for _ in 0..4 {
                feed(&guard, &sk, udp(6000 + flow, 100)).unwrap();
            }
        }
        let s = guard.stats();
        assert_eq!(s.passed, 64);
        assert_eq!((s.budgeted, s.limited), (0, 0));
        assert!(guard.table.lock().is_empty(), "no budget entries for mice");
    }

    #[test]
    fn elephant_is_limited_after_threshold_plus_budget() {
        let sk = sketch();
        let guard = Guard::new(Arc::clone(&sk), cfg());
        let mut admitted_bytes = 0u64;
        let mut limited = 0u64;
        for _ in 0..40 {
            let pkt = udp(7000, 400);
            let len = pkt.len() as u64;
            match feed(&guard, &sk, pkt) {
                Ok(()) => admitted_bytes += len,
                Err(PushError::RateLimited) => limited += 1,
                Err(e) => panic!("unexpected verdict: {e}"),
            }
        }
        assert!(limited > 0, "elephant must hit the limiter");
        // Admitted mass is bounded by threshold (fast path) + budget.
        let cfg = cfg();
        assert!(
            admitted_bytes <= cfg.byte_threshold + cfg.window_budget + 500,
            "admitted {admitted_bytes} bytes"
        );
        assert_eq!(guard.stats().limited, limited);
    }

    #[test]
    fn retire_window_refills_the_budget() {
        let sk = sketch();
        let guard = Guard::new(Arc::clone(&sk), cfg());
        // Exhaust: drive the flow well past threshold + budget.
        let mut saw_limit = false;
        for _ in 0..40 {
            if feed(&guard, &sk, udp(7000, 400)).is_err() {
                saw_limit = true;
            }
        }
        assert!(saw_limit);
        // Close the window: the sketch evidence retires with it (the
        // control plane retires both on the same cadence), so the next
        // window starts clean.
        let w = sk.snapshot();
        sk.retire(&w);
        guard.retire_window();
        assert!(
            feed(&guard, &sk, udp(7000, 400)).is_ok(),
            "budget must refill at the window boundary"
        );
        assert_eq!(guard.stats().windows, 1);
    }

    #[test]
    fn sketch_only_decay_also_rehabilitates() {
        // A flow that *stops* being heavy recovers via sketch decay
        // alone: once its estimate sinks below threshold it is back on
        // the fast path regardless of its spent budget.
        let sk = sketch();
        let guard = Guard::new(Arc::clone(&sk), cfg());
        for _ in 0..40 {
            let _ = feed(&guard, &sk, udp(7000, 400));
        }
        for _ in 0..8 {
            sk.decay(0.1);
        }
        assert!(feed(&guard, &sk, udp(7000, 100)).is_ok());
    }

    fn tcp_syn(sport: u16) -> Packet {
        PacketBuilder::tcp_v4("10.0.0.2", "10.9.9.9", sport, 80)
            .tcp_flags(netkit_packet::headers::TcpFlags::SYN)
            .build()
    }

    #[test]
    fn syn_defence_arms_on_half_open_pressure() {
        let tracker = ConnTracker::new();
        let sk = sketch();
        let guard = Guard::with_tracker(
            Arc::clone(&sk),
            Arc::clone(&tracker),
            GuardConfig {
                syn_limit: 8,
                syn_budget: 4,
                ..cfg()
            },
        );
        // Below the arm point: SYNs pass freely.
        for n in 0..8u16 {
            tracker.push(tcp_syn(9000 + n)).unwrap();
        }
        assert!(!guard.syn_armed());
        assert!(guard.push(tcp_syn(9100)).is_ok());
        // Flood past the arm point…
        for n in 0..16u16 {
            tracker.push(tcp_syn(9200 + n)).unwrap();
        }
        assert!(guard.syn_armed());
        // …and the per-window SYN budget engages.
        let mut dropped = 0;
        for n in 0..10u16 {
            if guard.push(tcp_syn(9300 + n)).is_err() {
                dropped += 1;
            }
        }
        assert_eq!(dropped, 10 - 4, "budget admits 4, drops the rest");
        assert_eq!(guard.stats().syn_dropped, 6);
        // The next window refills the SYN budget.
        guard.retire_window();
        assert!(guard.push(tcp_syn(9400)).is_ok());
    }

    #[test]
    fn batch_path_matches_the_scalar_verdicts() {
        // Two guards over identically recorded sketches: one fed the
        // mixed elephant/mouse stream packet by packet, one in batches
        // of 8. The batch path must produce the same verdict sequence
        // and the same counters (scalar equivalence).
        let traffic = || -> Vec<Packet> {
            (0..48)
                .map(|i| {
                    if i % 3 == 0 {
                        udp(6001, 100) // mouse
                    } else {
                        udp(7000, 400) // elephant: crosses threshold+budget
                    }
                })
                .collect()
        };

        let sk_scalar = sketch();
        let scalar = Guard::new(Arc::clone(&sk_scalar), cfg());
        let mut scalar_verdicts = Vec::new();
        for chunk in traffic().chunks(8) {
            // Record per batch, as the worker does, so both arms see
            // identical sketch state at every admit.
            let mut batch: PacketBatch = chunk.iter().cloned().collect();
            sk_scalar.record_batch(&batch);
            for pkt in batch.drain_all() {
                scalar_verdicts.push(scalar.push(pkt));
            }
        }

        let sk_batch = sketch();
        let batched = Guard::new(Arc::clone(&sk_batch), cfg());
        let mut batch_verdicts = Vec::new();
        for chunk in traffic().chunks(8) {
            let batch: PacketBatch = chunk.iter().cloned().collect();
            sk_batch.record_batch(&batch);
            batch_verdicts.extend(batched.push_batch(batch).verdicts);
        }

        assert_eq!(scalar_verdicts, batch_verdicts);
        assert_eq!(scalar.stats(), batched.stats());
        assert!(
            batched.stats().limited > 0,
            "the stream really mixed verdicts"
        );
    }

    #[test]
    fn guard_recovers_victim_goodput_under_sketch_visible_attack() {
        // A bottleneck admitting CAP packets per round, shared by a
        // victim mouse (10 x 100 B per round) and an attacker elephant
        // (90 x 1000 B per round), arrival-interleaved 9:1. Unguarded,
        // the attacker owns the bottleneck and the victim starves;
        // with the guard consuming the sketch the attacker saturates
        // its budget, the bottleneck never fills, and every victim
        // packet gets through — far past the >=1.5x acceptance bar.
        const CAP: usize = 20;
        const ROUNDS: usize = 5;
        let round_traffic = || -> Vec<(bool, Packet)> {
            (0..100)
                .map(|i| {
                    if i % 10 == 0 {
                        (true, udp(5000, 100)) // victim
                    } else {
                        (false, udp(6000, 1000)) // attacker
                    }
                })
                .collect()
        };

        // Control arm: no guard — first-come-first-served bottleneck.
        let mut unguarded_victim = 0usize;
        for _ in 0..ROUNDS {
            let mut used = 0usize;
            for (is_victim, _pkt) in round_traffic() {
                if used < CAP {
                    used += 1;
                    if is_victim {
                        unguarded_victim += 1;
                    }
                }
            }
        }

        // Guarded arm: same traffic, guard in front of the bottleneck,
        // windows retired on the per-round control cadence.
        let sk = sketch();
        let guard = Guard::new(Arc::clone(&sk), cfg());
        let mut guarded_victim = 0usize;
        for _ in 0..ROUNDS {
            let mut used = 0usize;
            for (is_victim, pkt) in round_traffic() {
                if feed(&guard, &sk, pkt).is_ok() && used < CAP {
                    used += 1;
                    if is_victim {
                        guarded_victim += 1;
                    }
                }
            }
            let w = sk.snapshot();
            sk.retire(&w);
            guard.retire_window();
        }

        assert_eq!(unguarded_victim, 2 * ROUNDS, "the attacker owns the queue");
        assert_eq!(guarded_victim, 10 * ROUNDS, "every victim packet survives");
        assert!(
            guarded_victim as f64 >= 1.5 * unguarded_victim as f64,
            "acceptance: >=1.5x victim goodput ({unguarded_victim} -> {guarded_victim})"
        );
        assert!(guard.stats().limited > 0, "the attack is visibly limited");
    }
}
