//! In-place IPv4/L4 endpoint rewriting with incremental checksums.
//!
//! NAT and the L4 load balancer rewrite one endpoint (address + port)
//! of a frame *in place* — no reallocation, no re-serialisation — and
//! patch the IPv4 header checksum and the TCP/UDP checksum with RFC
//! 1624 incremental updates, so a valid frame stays valid and an
//! unset UDP checksum (zero) stays unset.

use std::net::Ipv4Addr;

use netkit_packet::checksum::incremental_update;
use netkit_packet::headers::proto;
use netkit_packet::packet::Packet;

/// Which endpoint of the frame to rewrite.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RewriteSide {
    /// Source address + source port.
    Src,
    /// Destination address + destination port.
    Dst,
}

const ETH_LEN: usize = 14;

/// Reads a big-endian u16 at `off`.
fn rd16(b: &[u8], off: usize) -> u16 {
    u16::from_be_bytes([b[off], b[off + 1]])
}

/// Writes a big-endian u16 at `off`.
fn wr16(b: &mut [u8], off: usize, v: u16) {
    b[off..off + 2].copy_from_slice(&v.to_be_bytes());
}

/// Patches a checksum field at `off` for one changed 16-bit word,
/// unless the field is zero (UDP "no checksum") or `skip_zero` is
/// false for the protocol in hand.
fn patch_checksum(b: &mut [u8], off: usize, old_word: u16, new_word: u16) {
    let cur = rd16(b, off);
    if cur == 0 {
        return; // checksum not in use (UDP) / not maintained by the producer
    }
    wr16(b, off, incremental_update(cur, old_word, new_word));
}

/// Rewrites one endpoint (address and, for UDP/TCP, port) of an
/// Ethernet + IPv4 frame in place, patching the IPv4 and L4 checksums
/// incrementally. Clears the packet's stamped RSS hash — the tuple
/// changed, so any prior steering decision is stale.
///
/// Returns `false` (frame untouched) if the frame is not IPv4 or is
/// too short for its own headers.
pub fn rewrite_ipv4_endpoint(
    pkt: &mut Packet,
    side: RewriteSide,
    new_ip: Ipv4Addr,
    new_port: u16,
) -> bool {
    let frame = pkt.data_mut();
    if frame.len() < ETH_LEN + 20 || rd16(frame, 12) != 0x0800 {
        return false;
    }
    let ihl = ((frame[ETH_LEN] & 0x0f) as usize) * 4;
    let l4 = ETH_LEN + ihl;
    if ihl < 20 || frame.len() < l4 {
        return false;
    }
    let protocol = frame[ETH_LEN + 9];
    let addr_off = match side {
        RewriteSide::Src => ETH_LEN + 12,
        RewriteSide::Dst => ETH_LEN + 16,
    };
    let old_hi = rd16(frame, addr_off);
    let old_lo = rd16(frame, addr_off + 2);
    let octets = new_ip.octets();
    let new_hi = u16::from_be_bytes([octets[0], octets[1]]);
    let new_lo = u16::from_be_bytes([octets[2], octets[3]]);
    frame[addr_off..addr_off + 4].copy_from_slice(&octets);
    // IPv4 header checksum: two address words changed.
    let ip_ck = ETH_LEN + 10;
    let cur = rd16(frame, ip_ck);
    let cur = incremental_update(cur, old_hi, new_hi);
    wr16(frame, ip_ck, incremental_update(cur, old_lo, new_lo));

    // L4: port + pseudo-header address words feed the L4 checksum.
    let l4_ck = match protocol {
        proto::UDP if frame.len() >= l4 + 8 => Some(l4 + 6),
        proto::TCP if frame.len() >= l4 + 20 => Some(l4 + 16),
        _ => None,
    };
    if let Some(ck) = l4_ck {
        let port_off = match side {
            RewriteSide::Src => l4,
            RewriteSide::Dst => l4 + 2,
        };
        let old_port = rd16(frame, port_off);
        wr16(frame, port_off, new_port);
        patch_checksum(frame, ck, old_hi, new_hi);
        patch_checksum(frame, ck, old_lo, new_lo);
        patch_checksum(frame, ck, old_port, new_port);
    }
    pkt.meta.rss_hash = None;
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use netkit_packet::checksum::verify;
    use netkit_packet::flow::FlowKey;
    use netkit_packet::headers::Ipv4Header;
    use netkit_packet::packet::PacketBuilder;

    #[test]
    fn rewrite_src_patches_tuple_and_ip_checksum() {
        let mut pkt = PacketBuilder::udp_v4("10.0.0.1", "10.9.9.9", 5000, 53).build();
        netkit_packet::flow::stamp_rss(&mut pkt);
        assert!(rewrite_ipv4_endpoint(
            &mut pkt,
            RewriteSide::Src,
            "192.0.2.1".parse().unwrap(),
            61_000,
        ));
        // Stamp cleared: the tuple changed.
        assert_eq!(pkt.meta.rss_hash, None);
        let key = FlowKey::from_packet(&pkt).expect("still parses (checksum valid)");
        assert_eq!(key.src.to_string(), "192.0.2.1");
        assert_eq!(key.src_port, 61_000);
        assert_eq!(key.dst.to_string(), "10.9.9.9");
        // The IPv4 header checksum verifies after the patch.
        let ip_bytes = &pkt.data()[ETH_LEN..ETH_LEN + 20];
        assert!(verify(ip_bytes));
        let ip = Ipv4Header::parse(&pkt.data()[ETH_LEN..]).unwrap();
        assert_eq!(ip.src.to_string(), "192.0.2.1");
    }

    #[test]
    fn rewrite_dst_roundtrips() {
        let mut pkt = PacketBuilder::udp_v4("10.0.0.1", "10.9.9.9", 5000, 53).build();
        let before = FlowKey::from_packet(&pkt).unwrap();
        assert!(rewrite_ipv4_endpoint(
            &mut pkt,
            RewriteSide::Dst,
            "172.16.0.9".parse().unwrap(),
            8080,
        ));
        assert!(rewrite_ipv4_endpoint(
            &mut pkt,
            RewriteSide::Dst,
            "10.9.9.9".parse().unwrap(),
            53,
        ));
        assert_eq!(FlowKey::from_packet(&pkt), Some(before));
    }

    #[test]
    fn non_ipv4_frames_are_left_alone() {
        let mut arp = Packet::from_slice(&[0u8; 14]);
        assert!(!rewrite_ipv4_endpoint(
            &mut arp,
            RewriteSide::Src,
            "192.0.2.1".parse().unwrap(),
            1,
        ));
    }
}
