//! Longest-prefix-match routing tables.
//!
//! A binary trie keyed on address bits, generic over prefix width so the
//! same engine serves IPv4 (32 bits) and IPv6 (128 bits). Route lookup is
//! the per-packet hot operation of the forwarding experiments, so the
//! trie keeps nodes small and the walk allocation-free.

use std::fmt;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// A route's action: where the packet leaves and via whom.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RouteEntry {
    /// Egress port index.
    pub egress: u16,
    /// Next-hop address (`None` for directly connected destinations).
    pub next_hop: Option<IpAddr>,
}

#[derive(Debug)]
struct TrieNode<T> {
    children: [Option<Box<TrieNode<T>>>; 2],
    value: Option<T>,
}

impl<T> Default for TrieNode<T> {
    fn default() -> Self {
        Self {
            children: [None, None],
            value: None,
        }
    }
}

/// A binary longest-prefix-match trie over up to 128-bit keys.
///
/// Keys are stored MSB-first in a `u128`; IPv4 addresses occupy the top
/// 32 bits.
pub struct PrefixTrie<T> {
    root: TrieNode<T>,
    max_bits: u8,
    len: usize,
}

impl<T> PrefixTrie<T> {
    /// Creates an empty trie for prefixes of at most `max_bits` bits.
    pub fn new(max_bits: u8) -> Self {
        assert!(max_bits <= 128, "prefix width beyond 128 bits");
        Self {
            root: TrieNode::default(),
            max_bits,
            len: 0,
        }
    }

    fn bit(key: u128, index: u8) -> usize {
        ((key >> (127 - index)) & 1) as usize
    }

    /// Inserts (or replaces) a prefix of `len` bits; returns the previous
    /// value if the prefix was present.
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds the trie's width.
    pub fn insert(&mut self, key: u128, len: u8, value: T) -> Option<T> {
        assert!(len <= self.max_bits, "prefix longer than trie width");
        let mut node = &mut self.root;
        for i in 0..len {
            let b = Self::bit(key, i);
            node = node.children[b].get_or_insert_with(Box::default);
        }
        let old = node.value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Removes a prefix; returns its value if present.
    pub fn remove(&mut self, key: u128, len: u8) -> Option<T> {
        let mut node = &mut self.root;
        for i in 0..len {
            let b = Self::bit(key, i);
            node = node.children[b].as_deref_mut()?;
        }
        let removed = node.value.take();
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }

    /// Longest-prefix lookup for a full-width key.
    pub fn lookup(&self, key: u128) -> Option<&T> {
        let mut node = &self.root;
        let mut best = node.value.as_ref();
        for i in 0..self.max_bits {
            let b = Self::bit(key, i);
            match node.children[b].as_deref() {
                Some(child) => {
                    node = child;
                    if node.value.is_some() {
                        best = node.value.as_ref();
                    }
                }
                None => break,
            }
        }
        best
    }

    /// Number of stored prefixes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the trie is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl<T> fmt::Debug for PrefixTrie<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PrefixTrie({} prefixes, {} bits)",
            self.len, self.max_bits
        )
    }
}

/// Why a textual prefix was rejected by [`RoutingTable::try_add`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixParseError {
    /// The offending prefix text.
    pub prefix: String,
    /// What was wrong with it.
    pub reason: String,
}

impl fmt::Display for PrefixParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad prefix `{}`: {}", self.prefix, self.reason)
    }
}

impl std::error::Error for PrefixParseError {}

fn v4_key(addr: Ipv4Addr) -> u128 {
    (u32::from(addr) as u128) << 96
}

fn v6_key(addr: Ipv6Addr) -> u128 {
    u128::from(addr)
}

/// A dual-stack routing table with longest-prefix-match semantics.
///
/// # Examples
///
/// ```
/// use netkit_router::routing::{RouteEntry, RoutingTable};
///
/// let mut table = RoutingTable::new();
/// table.add_v4("10.0.0.0".parse()?, 8, RouteEntry { egress: 1, next_hop: None });
/// table.add_v4("10.1.0.0".parse()?, 16, RouteEntry { egress: 2, next_hop: None });
/// let hit = table.lookup("10.1.2.3".parse()?).unwrap();
/// assert_eq!(hit.egress, 2); // longest prefix wins
/// # Ok::<(), std::net::AddrParseError>(())
/// ```
pub struct RoutingTable {
    v4: PrefixTrie<RouteEntry>,
    v6: PrefixTrie<RouteEntry>,
}

impl Default for RoutingTable {
    fn default() -> Self {
        Self::new()
    }
}

impl RoutingTable {
    /// Creates an empty dual-stack table.
    pub fn new() -> Self {
        Self {
            v4: PrefixTrie::new(32),
            v6: PrefixTrie::new(128),
        }
    }

    /// Adds an IPv4 route.
    pub fn add_v4(&mut self, net: Ipv4Addr, len: u8, entry: RouteEntry) -> Option<RouteEntry> {
        self.v4.insert(v4_key(net), len.min(32), entry)
    }

    /// Adds an IPv6 route.
    pub fn add_v6(&mut self, net: Ipv6Addr, len: u8, entry: RouteEntry) -> Option<RouteEntry> {
        self.v6.insert(v6_key(net), len.min(128), entry)
    }

    /// Adds a route from a textual prefix (`"10.0.0.0/8"` or
    /// `"2001:db8::/32"`), rejecting malformed input — the fallible
    /// twin of [`Self::add`] for untrusted/route-protocol input (same
    /// shape as `FilterPattern::try_src`/`try_dst`). Returns the
    /// replaced entry, if the prefix was already present.
    ///
    /// # Errors
    ///
    /// Fails on a missing `/`, an unparsable address or length, or a
    /// length exceeding the family width (32 for IPv4, 128 for IPv6).
    pub fn try_add(
        &mut self,
        prefix: &str,
        entry: RouteEntry,
    ) -> Result<Option<RouteEntry>, PrefixParseError> {
        let bad = |reason: &str| PrefixParseError {
            prefix: prefix.to_owned(),
            reason: reason.to_owned(),
        };
        let (addr, len) = prefix
            .split_once('/')
            .ok_or_else(|| bad("expected `address/length`"))?;
        let len: u8 = len
            .parse()
            .map_err(|_| bad("prefix length is not a number in 0..=255"))?;
        match addr
            .parse::<IpAddr>()
            .map_err(|_| bad("unparsable address"))?
        {
            IpAddr::V4(a) => {
                if len > 32 {
                    return Err(bad("IPv4 prefix length exceeds 32"));
                }
                Ok(self.add_v4(a, len, entry))
            }
            IpAddr::V6(a) => {
                if len > 128 {
                    return Err(bad("IPv6 prefix length exceeds 128"));
                }
                Ok(self.add_v6(a, len, entry))
            }
        }
    }

    /// Adds a route from a textual prefix (`"10.0.0.0/8"` or
    /// `"2001:db8::/32"`); routes through [`Self::try_add`].
    ///
    /// # Panics
    ///
    /// Panics on malformed prefixes (intended for static
    /// configuration); use [`Self::try_add`] for untrusted input.
    pub fn add(&mut self, prefix: &str, entry: RouteEntry) {
        self.try_add(prefix, entry).expect("valid prefix");
    }

    /// Removes an IPv4 route.
    pub fn remove_v4(&mut self, net: Ipv4Addr, len: u8) -> Option<RouteEntry> {
        self.v4.remove(v4_key(net), len.min(32))
    }

    /// Removes an IPv6 route.
    pub fn remove_v6(&mut self, net: Ipv6Addr, len: u8) -> Option<RouteEntry> {
        self.v6.remove(v6_key(net), len.min(128))
    }

    /// Longest-prefix lookup for either family.
    pub fn lookup(&self, addr: IpAddr) -> Option<RouteEntry> {
        match addr {
            IpAddr::V4(a) => self.v4.lookup(v4_key(a)).copied(),
            IpAddr::V6(a) => self.v6.lookup(v6_key(a)).copied(),
        }
    }

    /// `(v4 routes, v6 routes)` counts.
    pub fn len(&self) -> (usize, usize) {
        (self.v4.len(), self.v6.len())
    }

    /// True if both families are empty.
    pub fn is_empty(&self) -> bool {
        self.v4.is_empty() && self.v6.is_empty()
    }
}

impl fmt::Debug for RoutingTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (v4, v6) = self.len();
        write!(f, "RoutingTable({v4} v4, {v6} v6)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(egress: u16) -> RouteEntry {
        RouteEntry {
            egress,
            next_hop: None,
        }
    }

    #[test]
    fn longest_prefix_wins() {
        let mut t = RoutingTable::new();
        t.add("0.0.0.0/0", e(0));
        t.add("10.0.0.0/8", e(1));
        t.add("10.1.0.0/16", e(2));
        t.add("10.1.2.0/24", e(3));
        assert_eq!(t.lookup("10.1.2.3".parse().unwrap()).unwrap().egress, 3);
        assert_eq!(t.lookup("10.1.9.9".parse().unwrap()).unwrap().egress, 2);
        assert_eq!(t.lookup("10.200.0.1".parse().unwrap()).unwrap().egress, 1);
        assert_eq!(t.lookup("8.8.8.8".parse().unwrap()).unwrap().egress, 0);
    }

    #[test]
    fn no_default_means_no_route() {
        let mut t = RoutingTable::new();
        t.add("10.0.0.0/8", e(1));
        assert!(t.lookup("8.8.8.8".parse().unwrap()).is_none());
    }

    #[test]
    fn host_routes_are_exact() {
        let mut t = RoutingTable::new();
        t.add("10.0.0.5/32", e(7));
        assert_eq!(t.lookup("10.0.0.5".parse().unwrap()).unwrap().egress, 7);
        assert!(t.lookup("10.0.0.6".parse().unwrap()).is_none());
    }

    #[test]
    fn replace_returns_old_entry() {
        let mut t = RoutingTable::new();
        assert_eq!(t.add_v4("10.0.0.0".parse().unwrap(), 8, e(1)), None);
        assert_eq!(t.add_v4("10.0.0.0".parse().unwrap(), 8, e(2)), Some(e(1)));
        assert_eq!(t.len(), (1, 0));
    }

    #[test]
    fn remove_restores_shorter_match() {
        let mut t = RoutingTable::new();
        t.add("10.0.0.0/8", e(1));
        t.add("10.1.0.0/16", e(2));
        assert_eq!(t.lookup("10.1.0.1".parse().unwrap()).unwrap().egress, 2);
        assert_eq!(t.remove_v4("10.1.0.0".parse().unwrap(), 16), Some(e(2)));
        assert_eq!(t.lookup("10.1.0.1".parse().unwrap()).unwrap().egress, 1);
        assert_eq!(t.remove_v4("10.1.0.0".parse().unwrap(), 16), None);
    }

    #[test]
    fn v6_lookup() {
        let mut t = RoutingTable::new();
        t.add("2001:db8::/32", e(1));
        t.add("2001:db8:1::/48", e(2));
        assert_eq!(
            t.lookup("2001:db8:1::9".parse().unwrap()).unwrap().egress,
            2
        );
        assert_eq!(
            t.lookup("2001:db8:2::9".parse().unwrap()).unwrap().egress,
            1
        );
        assert!(t.lookup("2002::1".parse().unwrap()).is_none());
    }

    #[test]
    fn families_are_independent() {
        let mut t = RoutingTable::new();
        t.add("0.0.0.0/0", e(4));
        assert!(t.lookup("2001:db8::1".parse().unwrap()).is_none());
        t.add("::/0", e(6));
        assert_eq!(t.lookup("2001:db8::1".parse().unwrap()).unwrap().egress, 6);
        assert_eq!(t.lookup("9.9.9.9".parse().unwrap()).unwrap().egress, 4);
    }

    #[test]
    fn try_add_rejects_malformed_prefixes() {
        let mut t = RoutingTable::new();
        for (prefix, reason_bit) in [
            ("10.0.0.0", "address/length"),
            ("10.0.0.0/x", "not a number"),
            ("10.0.0.0/256", "not a number"),
            ("nonsense/8", "unparsable address"),
            ("10.0.0.0/33", "exceeds 32"),
            ("2001:db8::/129", "exceeds 128"),
        ] {
            let err = t.try_add(prefix, e(1)).unwrap_err();
            assert!(
                err.reason.contains(reason_bit),
                "{prefix}: unexpected reason `{}`",
                err.reason
            );
            assert_eq!(err.prefix, prefix);
            assert!(err.to_string().contains(prefix));
        }
        assert!(t.is_empty(), "rejected prefixes must not be installed");
    }

    #[test]
    fn try_add_accepts_and_reports_replacement() {
        let mut t = RoutingTable::new();
        assert_eq!(t.try_add("10.0.0.0/8", e(1)), Ok(None));
        assert_eq!(t.try_add("10.0.0.0/8", e(2)), Ok(Some(e(1))));
        assert_eq!(t.try_add("2001:db8::/32", e(3)), Ok(None));
        assert_eq!(t.lookup("10.1.2.3".parse().unwrap()).unwrap().egress, 2);
        assert_eq!(t.lookup("2001:db8::9".parse().unwrap()).unwrap().egress, 3);
    }

    #[test]
    #[should_panic(expected = "valid prefix")]
    fn add_panics_via_try_add() {
        RoutingTable::new().add("not-a-prefix", e(1));
    }

    #[test]
    fn dense_table_lookups() {
        let mut t = RoutingTable::new();
        for i in 0..=255u8 {
            t.add_v4(Ipv4Addr::new(10, i, 0, 0), 16, e(i as u16));
        }
        assert_eq!(t.len().0, 256);
        for i in (0..=255u8).step_by(17) {
            let hit = t.lookup(IpAddr::V4(Ipv4Addr::new(10, i, 3, 4))).unwrap();
            assert_eq!(hit.egress, i as u16);
        }
    }
}
