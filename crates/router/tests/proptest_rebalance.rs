//! Property tests for bucket-table migration: **any** bucket → shard
//! remap applied mid-stream loses nothing, duplicates nothing, and
//! preserves per-flow order across the migration epoch.
//!
//! The rig drives a randomly interleaved multi-flow stream through a
//! `ShardedPipeline` whose replicas all append into ONE mutex-guarded
//! log — the lock serialises appends, so the log *is* the global
//! arrival order, and per-flow order can be checked exactly (not just
//! per-shard). Midway through the stream a randomly generated table is
//! installed via `install_bucket_map` (the quiesce-protected migration
//! path); flows whose buckets moved finish their lives on a different
//! worker, and the log must still show every flow's sequence numbers
//! in strictly increasing order with none missing.

use std::sync::Arc;

use proptest::prelude::*;

use netkit_kernel::nic::{Nic, PortId};
use netkit_kernel::shard::ShardSpec;
use netkit_packet::batch::PacketBatch;
use netkit_packet::flow::FlowKey;
use netkit_packet::packet::{Packet, PacketBuilder};
use netkit_packet::steer::BucketMap;
use netkit_router::api::{register_packet_interfaces, IPacketPush, PushResult};
use netkit_router::shard::{ShardGraph, ShardedPipeline};
use opencom::capsule::Capsule;
use opencom::meta::resources::ResourceManager;
use opencom::runtime::Runtime;
use parking_lot::Mutex;

/// All replicas share one log; the mutex serialises appends so the log
/// records the true global processing order.
struct GlobalRecorder {
    log: Arc<Mutex<Vec<(u16, u16)>>>,
}

impl IPacketPush for GlobalRecorder {
    fn push(&self, pkt: Packet) -> PushResult {
        let src_port = pkt.udp_v4().expect("test packets are UDP").src_port;
        let payload = pkt.udp_payload_v4().expect("payload carries the seq");
        let seq = u16::from_be_bytes([payload[0], payload[1]]);
        self.log.lock().push((src_port, seq));
        Ok(())
    }
}

fn pipeline(workers: usize, log: &Arc<Mutex<Vec<(u16, u16)>>>) -> ShardedPipeline {
    let rm = Arc::new(ResourceManager::new());
    let log = Arc::clone(log);
    ShardedPipeline::build("rebalance-prop", ShardSpec::new(workers), rm, move |_| {
        let rt = Runtime::new();
        register_packet_interfaces(&rt);
        let capsule = Capsule::new("shard", &rt);
        let entry: Arc<dyn IPacketPush> = Arc::new(GlobalRecorder {
            log: Arc::clone(&log),
        });
        Ok(ShardGraph::new(capsule, entry))
    })
    .expect("pipeline builds")
}

fn flow_packet(flow: u16, seq: u16) -> Packet {
    PacketBuilder::udp_v4("10.0.0.1", "10.0.9.9", 2000 + flow, 443)
        .payload(&seq.to_be_bytes())
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole property: a remap mid-stream is invisible except
    /// for placement — every flow's sequence survives complete and in
    /// order.
    #[test]
    fn midstream_remap_preserves_every_flow_sequence(
        workers in 2usize..=4,
        n_flows in 1u16..=10,
        per_flow in 1u16..=24,
        order_seed in any::<u64>(),
        // One target shard per possible flow; reduced mod `workers`.
        remap_seed in prop::collection::vec(0u8..8, 10),
        // Where in the stream the migration lands, as a percentage.
        migrate_at_pct in 0usize..=100,
    ) {
        // Deterministic pseudo-shuffled schedule: every flow emits
        // `per_flow` packets, interleaved by a splitmix-style walk.
        let total = (n_flows as usize) * (per_flow as usize);
        let mut next_seq = vec![0u16; n_flows as usize];
        let mut schedule = Vec::with_capacity(total);
        let mut state = order_seed;
        let mut remaining: Vec<u16> = (0..n_flows)
            .flat_map(|f| std::iter::repeat_n(f, per_flow as usize))
            .collect();
        while !remaining.is_empty() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let pick = (state >> 33) as usize % remaining.len();
            let flow = remaining.swap_remove(pick);
            let seq = next_seq[flow as usize];
            next_seq[flow as usize] += 1;
            schedule.push(flow_packet(flow, seq));
        }

        let log = Arc::new(Mutex::new(Vec::new()));
        let pipe = pipeline(workers, &log);

        // The migration target: each flow's bucket re-homed by the seed.
        let mut new_map = BucketMap::identity(workers);
        for flow in 0..n_flows {
            let key = FlowKey::from_packet(&flow_packet(flow, 0)).unwrap();
            new_map.set(key.bucket(), remap_seed[flow as usize] as usize % workers);
        }

        let migrate_at = total * migrate_at_pct / 100;
        let mut sent = 0usize;
        let mut migrated = false;
        let mut batch = PacketBatch::new();
        for pkt in schedule {
            batch.push(pkt);
            sent += 1;
            if batch.len() == 8 || sent == total {
                pipe.dispatch(std::mem::take(&mut batch));
            }
            if !migrated && sent >= migrate_at {
                // No flush first: in-flight batches drain inside the
                // migration's own quiesce barrier.
                let report = pipe.install_bucket_map(new_map.clone(), &[]);
                prop_assert_eq!(report.dropped, 0);
                migrated = true;
            }
        }
        if !migrated {
            pipe.install_bucket_map(new_map.clone(), &[]);
        }
        pipe.flush();

        let log = log.lock();
        prop_assert_eq!(log.len(), total, "no packet lost or duplicated");
        for flow in 0..n_flows {
            let seqs: Vec<u16> = log
                .iter()
                .filter(|(port, _)| *port == 2000 + flow)
                .map(|(_, seq)| *seq)
                .collect();
            let expect: Vec<u16> = (0..per_flow).collect();
            prop_assert_eq!(
                seqs, expect,
                "flow {} must arrive complete and in order across the migration",
                flow
            );
        }
        prop_assert_eq!(pipe.migrations(), 1);
        pipe.shutdown();
    }

    /// Frames parked in NIC rx queues at migration time are drained and
    /// re-steered inside the quiesce — none lost, all delivered on the
    /// shard the NEW table names.
    #[test]
    fn queued_nic_frames_survive_any_remap(
        workers in 2usize..=4,
        n_flows in 1u16..=12,
        remap_seed in prop::collection::vec(0u8..8, 12),
    ) {
        let log = Arc::new(Mutex::new(Vec::new()));
        let pipe = pipeline(workers, &log);
        let nic = Nic::with_queues(PortId(0), workers, 256, 16, 1_000_000);

        let mut new_map = BucketMap::identity(workers);
        for flow in 0..n_flows {
            let wire = flow_packet(flow, 0);
            let key = FlowKey::from_packet(&wire).unwrap();
            new_map.set(key.bucket(), remap_seed[flow as usize] as usize % workers);
            prop_assert!(nic.inject_rx_frame(wire.data()));
        }

        let report = pipe.install_bucket_map(new_map.clone(), &[&nic]);
        prop_assert_eq!(report.resubmitted, n_flows as usize);
        prop_assert_eq!(report.dropped, 0);
        pipe.flush();
        prop_assert_eq!(log.lock().len(), n_flows as usize);
        // Post-migration placement follows the new table exactly.
        for flow in 0..n_flows {
            let key = FlowKey::from_packet(&flow_packet(flow, 0)).unwrap();
            let shard = new_map.shard_of_bucket(key.bucket());
            prop_assert!(pipe.shard_stats(shard).packets > 0 || new_map.shards() == 1);
        }
        pipe.shutdown();
    }
}
