//! Differential test for the move-free shared-range ring protocol:
//! shared-batch dispatch ≡ owned sub-batch dispatch ≡ single-threaded
//! pipeline.
//!
//! `ShardedPipeline::dispatch` publishes refcounted shard ranges of one
//! shared split parent (workers gather their slices in parallel);
//! `ShardedPipeline::dispatch_owned` is the pre-shared baseline that
//! re-materialises owned sub-batches on the dispatch thread. Both must
//! be observationally identical to a scalar reference replica pushed
//! packet-at-a-time: same per-packet verdict tallies, same per-output
//! *multisets*, and — what neither sharing nor parallel gathering may
//! break — the same per-flow *sequence* on every output.
//!
//! A steady-state rider: after warm-up, shared dispatch must stop
//! growing the batch pool (parents and gather containers recycle).

use std::sync::Arc;

use proptest::prelude::*;

use netkit_kernel::shard::ShardSpec;
use netkit_packet::batch::PacketBatch;
use netkit_packet::packet::{Packet, PacketBuilder};
use netkit_router::api::{
    register_packet_interfaces, FilterPattern, FilterSpec, IClassifier, IPacketPush, PushResult,
    IPACKET_PUSH,
};
use netkit_router::elements::{ClassifierEngine, Counter};
use netkit_router::shard::{ShardGraph, ShardedPipeline};
use opencom::capsule::Capsule;
use opencom::component::{Component, ComponentCore, ComponentDescriptor, Registrar};
use opencom::ident::Version;
use opencom::meta::resources::ResourceManager;
use opencom::runtime::Runtime;
use parking_lot::Mutex;

/// A sink recording every delivered frame, for multiset and per-flow
/// order comparison.
struct RecordingSink {
    core: ComponentCore,
    frames: Mutex<Vec<Vec<u8>>>,
}

impl RecordingSink {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            core: ComponentCore::new(ComponentDescriptor::new(
                "test.RecordingSink",
                Version::new(1, 0, 0),
            )),
            frames: Mutex::new(Vec::new()),
        })
    }

    fn frames(&self) -> Vec<Vec<u8>> {
        self.frames.lock().clone()
    }
}

impl IPacketPush for RecordingSink {
    fn push(&self, pkt: Packet) -> PushResult {
        self.frames.lock().push(pkt.data().to_vec());
        Ok(())
    }
}

impl Component for RecordingSink {
    fn core(&self) -> &ComponentCore {
        &self.core
    }
    fn publish(self: Arc<Self>, reg: &Registrar<'_>) {
        let push: Arc<dyn IPacketPush> = self.clone();
        reg.expose(IPACKET_PUSH, &push);
    }
}

const OUTPUTS: [&str; 3] = ["voice", "bulk", "default"];

/// One replica of the test graph: Counter → classifier → {voice, bulk,
/// default} recording sinks.
struct Replica {
    _capsule: Arc<Capsule>,
    entry: Arc<dyn IPacketPush>,
    counter: Arc<Counter>,
    classifier: Arc<ClassifierEngine>,
    sinks: Vec<Arc<RecordingSink>>,
}

fn replica() -> Replica {
    let rt = Runtime::new();
    register_packet_interfaces(&rt);
    let capsule = Capsule::new("replica", &rt);
    let counter = Counter::new();
    let classifier = ClassifierEngine::new();
    let cid = capsule.adopt(counter.clone()).unwrap();
    let kid = capsule.adopt(classifier.clone()).unwrap();
    capsule.bind_simple(cid, "out", kid, IPACKET_PUSH).unwrap();
    let mut sinks = Vec::new();
    for output in OUTPUTS {
        let sink = RecordingSink::new();
        let sid = capsule.adopt(sink.clone()).unwrap();
        capsule.bind(kid, "out", output, sid, IPACKET_PUSH).unwrap();
        sinks.push(sink);
    }
    classifier
        .register_filter(FilterSpec::new(
            FilterPattern::any().protocol(17).dst_port_range(5000, 5999),
            "voice",
            10,
        ))
        .unwrap();
    classifier
        .register_filter(FilterSpec::new(FilterPattern::any().dscp(46), "bulk", 5))
        .unwrap();
    let entry: Arc<dyn IPacketPush> = capsule
        .query_interface(cid, IPACKET_PUSH)
        .unwrap()
        .downcast()
        .unwrap();
    Replica {
        _capsule: capsule,
        entry,
        counter,
        classifier,
        sinks,
    }
}

/// A sharded pipeline of `replica()` graphs plus handles to each
/// shard's recording sinks.
struct Rig {
    pipe: ShardedPipeline,
    replicas: Vec<Replica>,
}

fn rig(name: &str, workers: usize) -> Rig {
    let rm = Arc::new(ResourceManager::new());
    let replicas = Arc::new(Mutex::new(Vec::new()));
    let slot = Arc::clone(&replicas);
    let pipe = ShardedPipeline::build(name, ShardSpec::new(workers), rm, move |_shard| {
        let r = replica();
        let graph = ShardGraph::new(Arc::clone(&r._capsule), Arc::clone(&r.entry));
        slot.lock().push(r);
        Ok(graph)
    })
    .unwrap();
    let replicas = std::mem::take(&mut *replicas.lock());
    Rig { pipe, replicas }
}

impl Rig {
    /// Drives `packets` through the pipeline in `chunks`-sized bursts
    /// via `dispatch` (shared ranges) or `dispatch_owned` (the moved
    /// baseline), then flushes.
    fn drive(&self, packets: &[Packet], chunks: &[usize], shared: bool) {
        let mut remaining = packets;
        let mut plan = chunks.iter().copied().cycle();
        while !remaining.is_empty() {
            let take = plan.next().unwrap().min(remaining.len());
            let (chunk, rest) = remaining.split_at(take);
            remaining = rest;
            let batch = PacketBatch::from_packets(chunk.to_vec());
            if shared {
                self.pipe.dispatch(batch);
            } else {
                self.pipe.dispatch_owned(batch);
            }
        }
        self.pipe.flush();
    }

    /// All frames delivered on output `o`, across shards.
    fn frames(&self, o: usize) -> Vec<Vec<u8>> {
        self.replicas
            .iter()
            .flat_map(|r| r.sinks[o].frames())
            .collect()
    }

    fn counted(&self) -> u64 {
        self.replicas.iter().map(|r| r.counter.count()).sum()
    }

    fn classified(&self) -> (u64, u64) {
        self.replicas
            .iter()
            .map(|r| r.classifier.stats())
            .fold((0, 0), |(a, b), (x, y)| (a + x, b + y))
    }
}

#[derive(Clone, Debug)]
struct FlowSpec {
    src_port: u16,
    dst_port: u16,
    dscp: u8,
}

fn flow_strategy() -> impl Strategy<Value = FlowSpec> {
    (
        2000u16..2020,
        prop_oneof![Just(5004u16), Just(80u16), 1000u16..9000],
        prop_oneof![Just(0u8), Just(46u8)],
    )
        .prop_map(|(src_port, dst_port, dscp)| FlowSpec {
            src_port,
            dst_port,
            dscp,
        })
}

fn build(spec: &FlowSpec, seq: u32) -> Packet {
    PacketBuilder::udp_v4("192.0.2.7", "10.0.0.1", spec.src_port, spec.dst_port)
        .dscp(spec.dscp)
        .payload(&seq.to_be_bytes())
        .build()
}

/// Groups frames by flow id (UDP source port bytes at the fixed
/// 14 eth + 20 ip offset) preserving each flow's delivery order.
fn by_flow(frames: &[Vec<u8>]) -> std::collections::BTreeMap<Vec<u8>, Vec<Vec<u8>>> {
    let mut map: std::collections::BTreeMap<Vec<u8>, Vec<Vec<u8>>> = Default::default();
    for f in frames {
        let flow = f[34..36].to_vec();
        map.entry(flow).or_default().push(f.clone());
    }
    map
}

fn sorted(mut frames: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
    frames.sort();
    frames
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]
    #[test]
    fn shared_range_dispatch_equals_owned(
        flows in proptest::collection::vec(flow_strategy(), 1..8),
        picks in proptest::collection::vec(0usize..8, 1..96),
        chunks in proptest::collection::vec(1usize..24, 1..6),
        workers in 2usize..=4,
    ) {
        let packets: Vec<Packet> = picks
            .iter()
            .enumerate()
            .map(|(i, idx)| build(&flows[idx % flows.len()], i as u32))
            .collect();

        // Arm 1 — scalar reference: one push per packet, this thread.
        let reference = replica();
        let mut ref_accepted = 0u64;
        for pkt in &packets {
            if reference.entry.push(pkt.clone()).is_ok() {
                ref_accepted += 1;
            }
        }

        // Arm 2 — shared-range dispatch; arm 3 — owned baseline.
        let shared = rig(&format!("shared-{workers}"), workers);
        shared.drive(&packets, &chunks, true);
        let owned = rig(&format!("owned-{workers}"), workers);
        owned.drive(&packets, &chunks, false);

        // Verdict tallies agree across all three arms.
        for r in [&shared, &owned] {
            let stats = r.pipe.stats();
            prop_assert_eq!(stats.packets, packets.len() as u64);
            prop_assert_eq!(stats.accepted, ref_accepted);
            prop_assert_eq!(stats.dropped, 0);
            prop_assert_eq!(r.counted(), reference.counter.count());
            prop_assert_eq!(r.classified(), reference.classifier.stats());
        }

        // Per-output multisets and per-flow sequences agree.
        for o in 0..OUTPUTS.len() {
            let ref_frames = reference.sinks[o].frames();
            let shared_frames = shared.frames(o);
            let owned_frames = owned.frames(o);
            prop_assert_eq!(
                sorted(shared_frames.clone()),
                sorted(ref_frames.clone()),
                "shared multiset = reference"
            );
            prop_assert_eq!(
                sorted(owned_frames.clone()),
                sorted(ref_frames.clone()),
                "owned multiset = reference"
            );
            let ref_flows = by_flow(&ref_frames);
            prop_assert_eq!(by_flow(&shared_frames), ref_flows.clone(), "shared flow order");
            prop_assert_eq!(by_flow(&owned_frames), ref_flows, "owned flow order");
        }

        shared.pipe.shutdown();
        owned.pipe.shutdown();
    }
}

/// Steady-state pool discipline: once warm, shared-range dispatch takes
/// every parent and every gather container from the freelist — the
/// batch pool's `allocated` counter goes flat while `reused` climbs.
/// (The graph is Counter → Discard, which preserves batch storage; a
/// graph that unpacks batches — e.g. a classifier fan-out — consumes
/// their containers by design and is exempt from this bar.)
#[test]
fn shared_dispatch_reaches_pool_steady_state() {
    let rm = Arc::new(ResourceManager::new());
    let pipe = ShardedPipeline::build("steady", ShardSpec::new(4), rm, |_shard| {
        let rt = Runtime::new();
        register_packet_interfaces(&rt);
        let capsule = Capsule::new("shard", &rt);
        let counter = Counter::new();
        let sink = netkit_router::elements::Discard::new();
        let cid = capsule.adopt(counter.clone()).unwrap();
        let sid = capsule.adopt(sink).unwrap();
        capsule.bind_simple(cid, "out", sid, IPACKET_PUSH).unwrap();
        Ok(ShardGraph::new(Arc::clone(&capsule), counter).with_components(vec![cid, sid]))
    })
    .unwrap();
    let traffic = || -> Vec<Packet> {
        (0..64u32)
            .map(|i| {
                build(
                    &FlowSpec {
                        src_port: 2000 + (i % 16) as u16,
                        dst_port: 80,
                        dscp: 0,
                    },
                    i,
                )
            })
            .collect()
    };
    let drive = || {
        // Parents lease from the pipeline pool: rx-style ingestion.
        let mut batch = pipe.batch_pool().take();
        for p in traffic() {
            batch.push(p);
        }
        pipe.dispatch(batch);
        pipe.flush();
    };
    for _ in 0..8 {
        drive();
    }
    let warm = pipe.batch_pool().stats();
    for _ in 0..32 {
        drive();
    }
    let steady = pipe.batch_pool().stats();
    assert_eq!(
        steady.allocated, warm.allocated,
        "warm dispatch must not grow the batch pool: {warm:?} -> {steady:?}"
    );
    assert!(
        steady.reused > warm.reused,
        "containers must cycle through the freelist: {warm:?} -> {steady:?}"
    );
    assert_eq!(steady.discarded, warm.discarded, "freelist never overflows");
    let expected = (8 + 32) * 64;
    assert_eq!(pipe.stats().packets, expected as u64);
    pipe.shutdown();
}
