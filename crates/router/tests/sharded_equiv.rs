//! Differential test: the sharded dataplane is observationally
//! identical to the single-threaded pipeline.
//!
//! The same packet stream is driven through (a) one scalar reference
//! replica pushed packet-at-a-time on the test thread and (b) a
//! `ShardedPipeline` with N = 1..4 workers fed through RSS dispatch in
//! arbitrary batch sizes. Parallel execution may interleave *across*
//! flows, so the comparison is: identical per-packet verdict tallies,
//! identical aggregate element counters, identical per-output
//! *multisets*, and — the part parallelism must not break — identical
//! per-flow *sequences* on every output.

use std::sync::Arc;

use proptest::prelude::*;

use netkit_kernel::shard::ShardSpec;
use netkit_packet::batch::PacketBatch;
use netkit_packet::packet::{Packet, PacketBuilder};
use netkit_router::api::{
    register_packet_interfaces, FilterPattern, FilterSpec, IClassifier, IPacketPush, PushResult,
    IPACKET_PUSH,
};
use netkit_router::elements::{ClassifierEngine, Counter};
use netkit_router::shard::{ShardGraph, ShardedPipeline};
use opencom::capsule::Capsule;
use opencom::component::{Component, ComponentCore, ComponentDescriptor, Registrar};
use opencom::ident::Version;
use opencom::meta::resources::ResourceManager;
use opencom::runtime::Runtime;
use parking_lot::Mutex;

/// A sink that records every delivered frame (for multiset and
/// per-flow-order comparison).
struct RecordingSink {
    core: ComponentCore,
    frames: Mutex<Vec<Vec<u8>>>,
}

impl RecordingSink {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            core: ComponentCore::new(ComponentDescriptor::new(
                "test.RecordingSink",
                Version::new(1, 0, 0),
            )),
            frames: Mutex::new(Vec::new()),
        })
    }

    fn frames(&self) -> Vec<Vec<u8>> {
        self.frames.lock().clone()
    }
}

impl IPacketPush for RecordingSink {
    fn push(&self, pkt: Packet) -> PushResult {
        self.frames.lock().push(pkt.data().to_vec());
        Ok(())
    }
}

impl Component for RecordingSink {
    fn core(&self) -> &ComponentCore {
        &self.core
    }
    fn publish(self: Arc<Self>, reg: &Registrar<'_>) {
        let push: Arc<dyn IPacketPush> = self.clone();
        reg.expose(IPACKET_PUSH, &push);
    }
}

const OUTPUTS: [&str; 3] = ["voice", "bulk", "default"];

/// One replica of the test graph: classifier → {voice, bulk, default}
/// recording sinks, with a Counter in front so aggregate counters are
/// comparable.
struct Replica {
    _capsule: Arc<Capsule>,
    entry: Arc<dyn IPacketPush>,
    counter: Arc<Counter>,
    classifier: Arc<ClassifierEngine>,
    sinks: Vec<Arc<RecordingSink>>,
}

fn replica() -> Replica {
    let rt = Runtime::new();
    register_packet_interfaces(&rt);
    let capsule = Capsule::new("replica", &rt);
    let counter = Counter::new();
    let classifier = ClassifierEngine::new();
    let cid = capsule.adopt(counter.clone()).unwrap();
    let kid = capsule.adopt(classifier.clone()).unwrap();
    capsule.bind_simple(cid, "out", kid, IPACKET_PUSH).unwrap();
    let mut sinks = Vec::new();
    for output in OUTPUTS {
        let sink = RecordingSink::new();
        let sid = capsule.adopt(sink.clone()).unwrap();
        capsule.bind(kid, "out", output, sid, IPACKET_PUSH).unwrap();
        sinks.push(sink);
    }
    classifier
        .register_filter(FilterSpec::new(
            FilterPattern::any().protocol(17).dst_port_range(5000, 5999),
            "voice",
            10,
        ))
        .unwrap();
    classifier
        .register_filter(FilterSpec::new(FilterPattern::any().dscp(46), "bulk", 5))
        .unwrap();
    let entry: Arc<dyn IPacketPush> = capsule
        .query_interface(cid, IPACKET_PUSH)
        .unwrap()
        .downcast()
        .unwrap();
    Replica {
        _capsule: capsule,
        entry,
        counter,
        classifier,
        sinks,
    }
}

#[derive(Clone, Debug)]
struct FlowSpec {
    src_port: u16,
    dst_port: u16,
    dscp: u8,
}

fn flow_strategy() -> impl Strategy<Value = FlowSpec> {
    (
        2000u16..2020,
        prop_oneof![Just(5004u16), Just(80u16), 1000u16..9000],
        prop_oneof![Just(0u8), Just(46u8)],
    )
        .prop_map(|(src_port, dst_port, dscp)| FlowSpec {
            src_port,
            dst_port,
            dscp,
        })
}

fn build(spec: &FlowSpec, seq: u32) -> Packet {
    PacketBuilder::udp_v4("192.0.2.7", "10.0.0.1", spec.src_port, spec.dst_port)
        .dscp(spec.dscp)
        .payload(&seq.to_be_bytes())
        .build()
}

/// Extracts (flow id = src port bytes, frame) for per-flow sequencing.
fn by_flow(frames: &[Vec<u8>]) -> std::collections::BTreeMap<Vec<u8>, Vec<Vec<u8>>> {
    let mut map: std::collections::BTreeMap<Vec<u8>, Vec<Vec<u8>>> = Default::default();
    for f in frames {
        // UDP source port lives at a fixed offset (14 eth + 20 ip).
        let flow = f[34..36].to_vec();
        map.entry(flow).or_default().push(f.clone());
    }
    map
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn sharded_pipeline_matches_single_threaded_reference(
        flows in proptest::collection::vec(flow_strategy(), 1..8),
        picks in proptest::collection::vec(0usize..8, 1..96),
        chunks in proptest::collection::vec(1usize..24, 1..6),
    ) {
        let packets: Vec<Packet> = picks
            .iter()
            .enumerate()
            .map(|(i, idx)| build(&flows[idx % flows.len()], i as u32))
            .collect();

        // Scalar reference: one push per packet on this thread.
        let reference = replica();
        let mut ref_accepted = 0u64;
        let mut ref_dropped = 0u64;
        for pkt in &packets {
            match reference.entry.push(pkt.clone()) {
                Ok(()) => ref_accepted += 1,
                Err(_) => ref_dropped += 1,
            }
        }

        for workers in 1usize..=4 {
            let rm = Arc::new(ResourceManager::new());
            let replicas = Arc::new(Mutex::new(Vec::new()));
            let slot = Arc::clone(&replicas);
            let pipe = ShardedPipeline::build(
                &format!("equiv-{workers}"),
                ShardSpec::new(workers),
                Arc::clone(&rm),
                move |_shard| {
                    let r = replica();
                    let graph =
                        ShardGraph::new(Arc::clone(&r._capsule), Arc::clone(&r.entry));
                    slot.lock().push(r);
                    Ok(graph)
                },
            )
            .unwrap();

            // Drive the identical stream, chunked by the random plan,
            // through RSS dispatch.
            let mut remaining = &packets[..];
            let mut plan = chunks.iter().copied().cycle();
            while !remaining.is_empty() {
                let take = plan.next().unwrap().min(remaining.len());
                let (chunk, rest) = remaining.split_at(take);
                remaining = rest;
                pipe.dispatch(PacketBatch::from_packets(chunk.to_vec()));
            }
            pipe.flush();

            // Aggregate verdict tallies match the scalar reference.
            let stats = pipe.stats();
            prop_assert_eq!(stats.packets, packets.len() as u64);
            prop_assert_eq!(stats.accepted, ref_accepted);
            prop_assert_eq!(stats.dropped, ref_dropped);
            // Rolled-up resource usage sees the same single figure.
            prop_assert_eq!(
                rm.task_info(pipe.task()).unwrap().usage
                    .get(opencom::meta::resources::classes::PACKETS)
                    .copied()
                    .unwrap_or(0),
                packets.len() as u64
            );

            let replicas = std::mem::take(&mut *replicas.lock());

            // Aggregate element counters match.
            let total_counted: u64 = replicas.iter().map(|r| r.counter.count()).sum();
            prop_assert_eq!(total_counted, reference.counter.count());
            let (matched, fell_through) = replicas
                .iter()
                .map(|r| r.classifier.stats())
                .fold((0, 0), |(a, b), (x, y)| (a + x, b + y));
            prop_assert_eq!((matched, fell_through), reference.classifier.stats());

            // Per-output multisets and per-flow sequences match.
            for (o, _name) in OUTPUTS.iter().enumerate() {
                let ref_frames = reference.sinks[o].frames();
                let sharded_frames: Vec<Vec<u8>> = replicas
                    .iter()
                    .flat_map(|r| r.sinks[o].frames())
                    .collect();
                let mut a = ref_frames.clone();
                let mut b = sharded_frames.clone();
                a.sort();
                b.sort();
                prop_assert_eq!(a, b, "per-output multiset");
                prop_assert_eq!(
                    by_flow(&ref_frames),
                    by_flow(&sharded_frames),
                    "per-flow order on every output"
                );
            }

            pipe.shutdown();
        }
    }
}

/// The N=1 sharded pipeline is not just multiset-equal but
/// sequence-equal to the reference: with one worker there is no
/// interleaving freedom at all.
#[test]
fn single_worker_is_sequence_identical() {
    let packets: Vec<Packet> = (0..40u32)
        .map(|i| {
            build(
                &FlowSpec {
                    src_port: 2000 + (i % 5) as u16,
                    dst_port: if i % 3 == 0 { 5004 } else { 80 },
                    dscp: if i % 7 == 0 { 46 } else { 0 },
                },
                i,
            )
        })
        .collect();

    let reference = replica();
    for pkt in &packets {
        reference.entry.push(pkt.clone()).unwrap();
    }

    let rm = Arc::new(ResourceManager::new());
    let replicas = Arc::new(Mutex::new(Vec::new()));
    let slot = Arc::clone(&replicas);
    let pipe = ShardedPipeline::build("equiv-seq", ShardSpec::single(), rm, move |_| {
        let r = replica();
        let graph = ShardGraph::new(Arc::clone(&r._capsule), Arc::clone(&r.entry));
        slot.lock().push(r);
        Ok(graph)
    })
    .unwrap();
    pipe.dispatch(PacketBatch::from_packets(packets));
    pipe.flush();
    let replicas = std::mem::take(&mut *replicas.lock());
    for (o, r) in replicas[0].sinks.iter().enumerate() {
        assert_eq!(r.frames(), reference.sinks[o].frames());
    }
    pipe.shutdown();
}
