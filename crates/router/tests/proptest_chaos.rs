//! Property tests for the self-healing dataplane under **randomly
//! seeded fault schedules**. Two families:
//!
//! * **Crash chaos** — a `FaultPlan` kills whichever worker processes
//!   its scheduled n-th packet, at any point of a randomly interleaved
//!   multi-flow stream. After a `health_turn` recovery the books must
//!   close exactly: every dispatched packet is delivered, cause-tagged
//!   in the pipeline's drop meters, or counted in the crash ledger the
//!   dying element wrote on its way down. No duplication, and per-flow
//!   order (strictly increasing sequence numbers, gaps allowed) holds
//!   across death, quarantine, and respawn.
//! * **Wire chaos** — `FaultPlan::inject_rx` applies a random seeded
//!   drop / corrupt / duplicate mix in front of a NIC; the pumped
//!   pipeline must deliver exactly the copies the plan let through —
//!   the plan's own stats are the oracle.
//!
//! Every failing case replays bit-for-bit from its seed tuple.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use netkit_kernel::fault::{FaultConfig, FaultPlan};
use netkit_kernel::nic::{Nic, PortId};
use netkit_kernel::shard::ShardSpec;
use netkit_packet::batch::PacketBatch;
use netkit_packet::packet::{Packet, PacketBuilder};
use netkit_router::api::{register_packet_interfaces, BatchResult, IPacketPush, PushResult};
use netkit_router::shard::{ShardGraph, ShardedPipeline};
use opencom::capsule::Capsule;
use opencom::meta::resources::ResourceManager;
use opencom::runtime::Runtime;
use parking_lot::Mutex;

/// Serialised (flow, seq) arrival log shared by every replica.
struct GlobalRecorder {
    log: Arc<Mutex<Vec<(u16, u16)>>>,
}

impl IPacketPush for GlobalRecorder {
    fn push(&self, pkt: Packet) -> PushResult {
        let src_port = pkt.udp_v4().expect("test packets are UDP").src_port;
        let payload = pkt.udp_payload_v4().expect("payload carries the seq");
        let seq = u16::from_be_bytes([payload[0], payload[1]]);
        self.log.lock().push((src_port, seq));
        Ok(())
    }
}

/// Ingress that panics when the shared plan's crash fault fires —
/// counting the packets the panic takes down (the trigger plus the
/// undrained rest of the batch) so in-flight loss is ledgered, never
/// silent.
struct CrashInjector {
    plan: Arc<FaultPlan>,
    crash_lost: Arc<AtomicU64>,
    inner: GlobalRecorder,
}

impl IPacketPush for CrashInjector {
    fn push(&self, pkt: Packet) -> PushResult {
        if self.plan.should_panic() {
            self.crash_lost.fetch_add(1, Ordering::SeqCst);
            panic!("injected crash fault");
        }
        self.inner.push(pkt)
    }

    fn push_batch(&self, mut batch: PacketBatch) -> BatchResult {
        let pkts: Vec<Packet> = batch.drain_all().collect();
        let total = pkts.len();
        let mut result = BatchResult::with_capacity(total);
        for (i, pkt) in pkts.into_iter().enumerate() {
            if self.plan.should_panic() {
                self.crash_lost
                    .fetch_add((total - i) as u64, Ordering::SeqCst);
                panic!("injected crash fault");
            }
            result.record(self.inner.push(pkt));
        }
        result
    }
}

/// Parse-free terminal: corrupt frames count like pristine ones.
struct CountingSink(Arc<AtomicU64>);

impl IPacketPush for CountingSink {
    fn push(&self, _pkt: Packet) -> PushResult {
        self.0.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

fn flow_packet(flow: u16, seq: u16) -> Packet {
    PacketBuilder::udp_v4("10.0.0.1", "10.0.9.9", 2000 + flow, 443)
        .payload(&seq.to_be_bytes())
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Crash anywhere, lose nothing silently: delivered + cause-tagged
    /// drops + crash ledger == dispatched, for any interleaving and
    /// any crash point — including schedules where the crash never
    /// fires at all.
    #[test]
    fn seeded_crash_chaos_closes_the_books(
        workers in 2usize..=3,
        n_flows in 2u16..=8,
        per_flow in 8u16..=24,
        panic_at in 1u64..=96,
        order_seed in any::<u64>(),
    ) {
        let plan = Arc::new(FaultPlan::new(
            FaultConfig::new(order_seed).panic_on_nth(panic_at),
        ));
        let crash_lost = Arc::new(AtomicU64::new(0));
        let log = Arc::new(Mutex::new(Vec::new()));
        let rm = Arc::new(ResourceManager::new());
        let pipe = {
            let (plan, crash_lost, log) =
                (Arc::clone(&plan), Arc::clone(&crash_lost), Arc::clone(&log));
            ShardedPipeline::build(
                "chaos-prop",
                ShardSpec::new(workers),
                rm,
                move |_| {
                    let rt = Runtime::new();
                    register_packet_interfaces(&rt);
                    let capsule = Capsule::new("shard", &rt);
                    let entry: Arc<dyn IPacketPush> = Arc::new(CrashInjector {
                        plan: Arc::clone(&plan),
                        crash_lost: Arc::clone(&crash_lost),
                        inner: GlobalRecorder { log: Arc::clone(&log) },
                    });
                    Ok(ShardGraph::new(capsule, entry))
                },
            )
            .expect("pipeline builds")
        };

        // Pseudo-shuffled interleaving of n_flows x per_flow packets.
        let total = (n_flows as usize) * (per_flow as usize);
        let mut next_seq = vec![0u16; n_flows as usize];
        let mut remaining: Vec<u16> = (0..n_flows)
            .flat_map(|f| std::iter::repeat_n(f, per_flow as usize))
            .collect();
        let mut state = order_seed;
        let mut batch = PacketBatch::new();
        let mut sent = 0usize;
        while !remaining.is_empty() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let pick = (state >> 33) as usize % remaining.len();
            let flow = remaining.swap_remove(pick);
            let seq = next_seq[flow as usize];
            next_seq[flow as usize] += 1;
            batch.push(flow_packet(flow, seq));
            sent += 1;
            if batch.len() == 8 || sent == total {
                pipe.dispatch(std::mem::take(&mut batch));
            }
        }
        pipe.flush();

        // If the crash fired, wait for the kernel to publish the death:
        // flush can return while the victim thread is still unwinding
        // (its fatal batch already left the ring), a step ahead of the
        // dead bit the health probe reads.
        let crashed = plan.stats().panics_fired > 0;
        if crashed {
            while (0..workers).all(|s| pipe.worker_alive(s) != Some(false)) {
                std::thread::yield_now();
            }
        }

        // Recover whatever died (maybe nothing: panic_at can exceed the
        // victim's share of the stream). The recovery path itself is
        // part of the property: stranded descriptors must be ledgered.
        let recovery = pipe.health_turn(&[]).expect("recovery succeeds");
        prop_assert_eq!(recovery.is_some(), crashed, "recovery iff a worker died");
        for shard in 0..workers {
            prop_assert_eq!(pipe.worker_alive(shard), Some(true));
        }

        // Delivery works for every flow after recovery.
        let mut post = PacketBatch::new();
        for flow in 0..n_flows {
            post.push(flow_packet(flow, per_flow));
        }
        pipe.dispatch(post);
        pipe.flush();

        // The books: every dispatched packet is exactly one of
        // delivered / cause-dropped / crash-ledgered.
        let drops = pipe.drop_stats();
        prop_assert_eq!(drops.total(), pipe.stats().dropped);
        let delivered = log.lock().len() as u64;
        let dispatched = (total + n_flows as usize) as u64;
        prop_assert_eq!(
            delivered + drops.total() + crash_lost.load(Ordering::SeqCst),
            dispatched,
            "silent loss: {} delivered, {:?}, {} crash-lost of {}",
            delivered, drops, crash_lost.load(Ordering::SeqCst), dispatched
        );
        if crashed {
            prop_assert!(crash_lost.load(Ordering::SeqCst) > 0, "the trigger packet is ledgered");
            prop_assert_eq!(pipe.recoveries(), 1);
        } else {
            prop_assert_eq!(drops.total() + crash_lost.load(Ordering::SeqCst), 0);
        }

        // No duplication; per-flow order strictly increases (gaps are
        // the ledgered losses).
        let log = log.lock();
        let unique: HashSet<&(u16, u16)> = log.iter().collect();
        prop_assert_eq!(unique.len(), log.len(), "no (flow, seq) twice");
        for flow in 0..n_flows {
            let seqs: Vec<u16> = log
                .iter()
                .filter(|(p, _)| *p == 2000 + flow)
                .map(|(_, s)| *s)
                .collect();
            prop_assert!(
                seqs.windows(2).all(|w| w[0] < w[1]),
                "flow {} reordered: {:?}", flow, seqs
            );
            prop_assert_eq!(
                *seqs.last().expect("post-recovery packet arrives"),
                per_flow,
                "flow {} must flow again after recovery", flow
            );
        }
        drop(log);
        pipe.shutdown();
    }

    /// Wire chaos: the plan's own stats are the delivery oracle. Every
    /// frame the plan let through (once or twice) is delivered; every
    /// frame it ate is missing; nothing else changes the count.
    #[test]
    fn seeded_wire_chaos_delivers_exactly_the_surviving_copies(
        workers in 1usize..=3,
        frames in 16usize..=96,
        seed in any::<u64>(),
        drop_pct in 0u32..=40,
        corrupt_pct in 0u32..=20,
        dup_pct in 0u32..=30,
    ) {
        let plan = FaultPlan::new(
            FaultConfig::new(seed)
                .rx_drop(drop_pct as f64 / 100.0)
                .rx_corrupt(corrupt_pct as f64 / 100.0)
                .rx_duplicate(dup_pct as f64 / 100.0),
        );
        // Counting sink: corrupt frames may no longer parse as UDP, so
        // the oracle counts packets, not flows.
        let delivered = Arc::new(AtomicU64::new(0));
        let rm = Arc::new(ResourceManager::new());
        let pipe = {
            let delivered = Arc::clone(&delivered);
            ShardedPipeline::build("wire-prop", ShardSpec::new(workers), rm, move |_| {
                let rt = Runtime::new();
                register_packet_interfaces(&rt);
                let capsule = Capsule::new("shard", &rt);
                let entry: Arc<dyn IPacketPush> =
                    Arc::new(CountingSink(Arc::clone(&delivered)));
                Ok(ShardGraph::new(capsule, entry))
            })
            .expect("pipeline builds")
        };
        let nic = Nic::with_queues(PortId(0), workers, 256, 16, 1_000_000);

        let mut admitted = 0u64;
        for i in 0..frames {
            let wire = flow_packet((i % 13) as u16, i as u16);
            let (_action, copies) = plan.inject_rx(&nic, wire.data());
            admitted += copies as u64;
        }
        let stats = plan.stats();
        prop_assert_eq!(stats.rx_frames, frames as u64);
        prop_assert_eq!(
            admitted,
            frames as u64 - stats.rx_dropped + stats.rx_duplicated,
            "rings are big enough that only the plan eats frames"
        );
        for queue in 0..workers {
            while pipe.pump_nic(&nic, queue, 64) > 0 {}
        }
        pipe.flush();
        prop_assert_eq!(delivered.load(Ordering::Relaxed), admitted);
        prop_assert_eq!(pipe.stats().dropped, 0);
        pipe.shutdown();
    }
}
