//! Property-based tests for the LPM trie: behavioural equivalence with a
//! naive model, and insert/remove round-trips.

use std::net::Ipv4Addr;

use proptest::prelude::*;

use netkit_router::routing::{PrefixTrie, RouteEntry, RoutingTable};

/// The obviously-correct model: scan all prefixes, pick the longest
/// match.
fn mask(len: u8) -> u32 {
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - len as u32)
    }
}

fn model_lookup(routes: &[(u32, u8, u16)], addr: u32) -> Option<u16> {
    routes
        .iter()
        .filter(|(net, len, _)| addr & mask(*len) == *net & mask(*len))
        .max_by_key(|(_, len, _)| *len)
        .map(|(_, _, v)| *v)
}

/// Normalised prefixes: host bits zeroed so duplicates collapse the same
/// way in the model and the trie.
fn prefix_strategy() -> impl Strategy<Value = (u32, u8, u16)> {
    (any::<u32>(), 0u8..=32, any::<u16>()).prop_map(|(net, len, v)| (net & mask(len), len, v))
}

proptest! {
    #[test]
    fn trie_agrees_with_naive_model(
        routes in proptest::collection::vec(prefix_strategy(), 0..64),
        probes in proptest::collection::vec(any::<u32>(), 0..64),
    ) {
        let mut trie = PrefixTrie::new(32);
        // Later inserts replace earlier ones for the same prefix — mirror
        // that in the model by keeping only the last entry per prefix.
        let mut dedup: Vec<(u32, u8, u16)> = Vec::new();
        for (net, len, v) in &routes {
            trie.insert((*net as u128) << 96, *len, *v);
            dedup.retain(|(n, l, _)| !(n == net && l == len));
            dedup.push((*net, *len, *v));
        }
        for probe in probes {
            let got = trie.lookup((probe as u128) << 96).copied();
            let want = model_lookup(&dedup, probe);
            prop_assert_eq!(got, want, "probe {:#010x}", probe);
        }
    }

    #[test]
    fn insert_then_remove_restores_previous_answers(
        base in proptest::collection::vec(prefix_strategy(), 0..32),
        extra in prefix_strategy(),
        probes in proptest::collection::vec(any::<u32>(), 0..32),
    ) {
        // Skip cases where `extra` collides with a base prefix (removal
        // would then expose the base entry, not "restore nothing").
        prop_assume!(!base.iter().any(|(n, l, _)| *n == extra.0 && *l == extra.1));

        let mut trie = PrefixTrie::new(32);
        for (net, len, v) in &base {
            trie.insert((*net as u128) << 96, *len, *v);
        }
        let before: Vec<Option<u16>> =
            probes.iter().map(|p| trie.lookup((*p as u128) << 96).copied()).collect();

        let (net, len, v) = extra;
        prop_assert_eq!(trie.insert((net as u128) << 96, len, v), None);
        prop_assert_eq!(trie.remove((net as u128) << 96, len), Some(v));

        let after: Vec<Option<u16>> =
            probes.iter().map(|p| trie.lookup((*p as u128) << 96).copied()).collect();
        prop_assert_eq!(before, after);
    }

    #[test]
    fn routing_table_v4_matches_trie_semantics(
        routes in proptest::collection::vec(prefix_strategy(), 1..32),
        probe in any::<u32>(),
    ) {
        let mut table = RoutingTable::new();
        let mut dedup: Vec<(u32, u8, u16)> = Vec::new();
        for (net, len, port) in &routes {
            table.add_v4(
                Ipv4Addr::from(*net),
                *len,
                RouteEntry { egress: *port, next_hop: None },
            );
            dedup.retain(|(n, l, _)| !(n == net && l == len));
            dedup.push((*net, *len, *port));
        }
        let got = table.lookup(Ipv4Addr::from(probe).into()).map(|e| e.egress);
        prop_assert_eq!(got, model_lookup(&dedup, probe));
    }

    #[test]
    fn len_tracks_distinct_prefixes(
        routes in proptest::collection::vec(prefix_strategy(), 0..64),
    ) {
        let mut trie = PrefixTrie::new(32);
        let mut seen = std::collections::HashSet::new();
        for (net, len, v) in &routes {
            trie.insert((*net as u128) << 96, *len, *v);
            seen.insert((*net, *len));
        }
        prop_assert_eq!(trie.len(), seen.len());
    }
}
