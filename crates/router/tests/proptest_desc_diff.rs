//! Differential property test for the description layer: the
//! incremental-control-plane correctness contract.
//!
//! For random description pairs `(d1, d2)` drawn from a family of
//! classifier-split pipelines (a counter chain on one branch, an
//! optional guard → conntrack → NAT44 service chain on the other),
//! `apply(diff(d1, d2))` on a **live** pipeline — one that has already
//! carried traffic under `d1` — must be packet-equivalent to a fresh
//! build of `d2`: identical per-output packet *sequences* (which
//! subsumes per-output multisets and per-flow order), identical
//! accept/drop verdict counts, no loss, no duplication. A second
//! property pins the hot-path promise the reconfiguration bench
//! prices: a param-only pair produces a patch with **zero** structural
//! ops that applies without a quiesce epoch.
//!
//! The family is built so the contract is exact rather than merely
//! probable: guard thresholds sit far above what the probe traffic can
//! accumulate, conntrack capacity far above the flow count, and the
//! NAT pool far above the flow universe — so surviving state in
//! elements the patch does not touch (the whole point of incremental
//! apply) cannot diverge observably from a fresh instance, whose
//! deterministic allocator hands the same flows the same ports.

use std::sync::Arc;

use proptest::prelude::*;

use netkit_kernel::shard::ShardSpec;
use netkit_packet::batch::PacketBatch;
use netkit_packet::packet::{Packet, PacketBuilder};
use netkit_router::api::{BatchResult, IPacketPush, PushResult, IPACKET_PUSH};
use netkit_router::desc::{
    diff, Compiler, DescBinding, ElementHandle, PatternDesc, PipelineDesc, TableEntry,
};
use netkit_router::shard::SoloPipeline;
use opencom::component::{Component, ComponentCore, ComponentDescriptor, Registrar};
use opencom::ident::Version;
use opencom::meta::resources::ResourceManager;
use parking_lot::Mutex;

// ---- recording sink (external element kind) ------------------------------

/// Terminal element that records every packet it receives, in arrival
/// order, so two pipelines' per-output sequences can be compared.
struct Collector {
    core: ComponentCore,
    inbox: Mutex<Vec<Packet>>,
}

impl Collector {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            core: ComponentCore::new(ComponentDescriptor::new(
                "netkit.test.DiffCollector",
                Version::new(1, 0, 0),
            )),
            inbox: Mutex::new(Vec::new()),
        })
    }

    fn drain(&self) -> Vec<Packet> {
        std::mem::take(&mut *self.inbox.lock())
    }
}

impl IPacketPush for Collector {
    fn push(&self, pkt: Packet) -> PushResult {
        self.inbox.lock().push(pkt);
        Ok(())
    }

    fn push_batch(&self, mut batch: PacketBatch) -> BatchResult {
        let n = batch.len();
        self.inbox.lock().extend(batch.drain_all());
        BatchResult::ok(n)
    }
}

impl Component for Collector {
    fn core(&self) -> &ComponentCore {
        &self.core
    }
    fn publish(self: Arc<Self>, reg: &Registrar<'_>) {
        let push: Arc<dyn IPacketPush> = self.clone();
        reg.expose(IPACKET_PUSH, &push);
    }
    fn footprint_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }
}

// ---- the description family ----------------------------------------------

/// One point in the description family. Every field change is
/// expressible as a diff: `split` is a classifier-table delta,
/// `counters` adds/removes chain elements, the three service options
/// toggle structure, and their payloads are hot param swaps.
#[derive(Clone, Debug, PartialEq, Eq)]
struct DescSpec {
    /// Classifier split: dports below this go to the `lo` branch.
    split: u16,
    /// Pass-through counters on the `lo` branch (0..=2).
    counters: usize,
    /// Guard on the `hi` branch, with this byte threshold.
    guard: Option<u64>,
    /// Conntrack on the `hi` branch, with this capacity.
    conntrack: Option<u64>,
    /// NAT44 on the `hi` branch, with this external port base.
    nat: Option<u16>,
}

impl DescSpec {
    /// The structural skeleton — two specs with equal skeletons must
    /// diff to a param-only patch.
    fn skeleton(&self) -> (usize, bool, bool, bool) {
        (
            self.counters,
            self.guard.is_some(),
            self.conntrack.is_some(),
            self.nat.is_some(),
        )
    }
}

/// Renders a spec as a validated [`PipelineDesc`]: classifier ingress
/// splitting on dport, `lo` → counter chain → recording sink, `hi` →
/// optional guard/conntrack/NAT44 → recording sink.
fn describe(s: &DescSpec) -> PipelineDesc {
    let mut d = PipelineDesc::new("diffprop")
        .element("cls", "classifier")
        .element("sink_lo", "sink_lo")
        .element("sink_hi", "sink_hi")
        .ingress("cls")
        .table(
            "cls",
            TableEntry::Filter {
                pattern: PatternDesc::any().dst_port_range(0, s.split - 1),
                output: "lo".to_owned(),
                priority: 10,
            },
        )
        .table(
            "cls",
            TableEntry::Filter {
                pattern: PatternDesc::any(),
                output: "hi".to_owned(),
                priority: 0,
            },
        );

    // lo branch: cls/lo -> lo0 -> .. -> sink_lo
    let lo_chain: Vec<String> = (0..s.counters).map(|i| format!("lo{i}")).collect();
    for name in &lo_chain {
        d = d.element(name, "counter");
    }
    d = wire(d, "lo", &lo_chain, "sink_lo");

    // hi branch: cls/hi -> [guard] -> [ct] -> [nat] -> sink_hi
    let mut hi_chain: Vec<String> = Vec::new();
    if let Some(threshold) = s.guard {
        d = d.element_with(
            "guard",
            "guard",
            &[
                ("byte_threshold", threshold.into()),
                ("window_budget", threshold.into()),
            ],
        );
        hi_chain.push("guard".to_owned());
    }
    if let Some(capacity) = s.conntrack {
        d = d.element_with("ct", "conntrack", &[("capacity", capacity.into())]);
        hi_chain.push("ct".to_owned());
    }
    if let Some(port_base) = s.nat {
        d = d.element_with(
            "nat",
            "nat44",
            &[
                ("external_ip", "192.0.2.1".into()),
                ("port_base", port_base.into()),
            ],
        );
        hi_chain.push("nat".to_owned());
    }
    wire(d, "hi", &hi_chain, "sink_hi")
}

/// Wires `cls --label--> nodes[0] -> .. -> sink` (or straight to the
/// sink for an empty chain).
fn wire(mut d: PipelineDesc, label: &str, nodes: &[String], sink: &str) -> PipelineDesc {
    match nodes.first() {
        None => d.edge_labelled("cls", label, sink),
        Some(first) => {
            d = d.edge_labelled("cls", label, first);
            for w in nodes.windows(2) {
                d = d.edge(&w[0], &w[1]);
            }
            d.edge(&nodes[nodes.len() - 1], sink)
        }
    }
}

fn spec_strategy() -> impl Strategy<Value = DescSpec> {
    (
        prop_oneof![Just(1_000u16), Just(2_000u16)],
        0usize..=2,
        prop_oneof![Just(None), Just(Some(1u64 << 20)), Just(Some(2u64 << 20))],
        prop_oneof![Just(None), Just(Some(1_024u64)), Just(Some(4_096u64))],
        prop_oneof![Just(None), Just(Some(10_000u16)), Just(Some(20_000u16))],
    )
        .prop_map(|(split, counters, guard, conntrack, nat)| DescSpec {
            split,
            counters,
            guard,
            conntrack,
            nat,
        })
}

// ---- traffic --------------------------------------------------------------

/// A packet draw: one of six flows (distinct sports) headed to one of
/// three dports, chosen to land below/above/astride the two possible
/// classifier splits.
fn traffic_strategy() -> impl Strategy<Value = Vec<(u8, u8)>> {
    proptest::collection::vec((0u8..6, 0u8..3), 0..32)
}

fn packet(flow: u8, dport_sel: u8) -> Packet {
    let dport = [500u16, 1_500, 2_500][usize::from(dport_sel) % 3];
    PacketBuilder::udp_v4(
        "10.0.0.5",
        "203.0.113.9",
        5_000 + u16::from(flow % 6),
        dport,
    )
    .payload_len(32 + usize::from(flow % 6) * 8)
    .build()
}

fn batch_of(draws: &[(u8, u8)]) -> PacketBatch {
    draws.iter().map(|&(f, p)| packet(f, p)).collect()
}

/// Observable identity of an egressed packet: the full frame (NAT
/// rewrites change it, so allocation must agree too).
fn prints(pkts: Vec<Packet>) -> Vec<Vec<u8>> {
    pkts.into_iter().map(|p| p.data().to_vec()).collect()
}

// ---- rigs ------------------------------------------------------------------

struct Rig {
    pipe: SoloPipeline,
    binding: DescBinding,
    lo: Arc<Collector>,
    hi: Arc<Collector>,
}

fn compile(desc: &PipelineDesc) -> Rig {
    let lo = Collector::new();
    let hi = Collector::new();
    let lo_slot = Arc::clone(&lo);
    let hi_slot = Arc::clone(&hi);
    let compiler = Compiler::new()
        .external("sink_lo", move |_shard| {
            (
                Arc::clone(&lo_slot) as Arc<dyn Component>,
                ElementHandle::Plain,
            )
        })
        .external("sink_hi", move |_shard| {
            (
                Arc::clone(&hi_slot) as Arc<dyn Component>,
                ElementHandle::Plain,
            )
        });
    let (pipe, binding) = compiler
        .build_solo(desc, ShardSpec::new(1), Arc::new(ResourceManager::new()))
        .expect("family descriptions always compile");
    Rig {
        pipe,
        binding,
        lo,
        hi,
    }
}

// ---- properties ------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `apply(diff(d1, d2))` on a live, warmed-up pipeline is
    /// packet-equivalent to a fresh build of `d2`.
    #[test]
    fn patched_live_pipeline_matches_fresh_build(
        s1 in spec_strategy(),
        s2 in spec_strategy(),
        warmup in traffic_strategy(),
        probe in traffic_strategy(),
    ) {
        let d1 = describe(&s1);
        let d2 = describe(&s2);

        // Live pipeline: built from d1, carries warm-up traffic first
        // so element state (counters, conntrack entries, NAT bindings,
        // guard byte evidence) exists when the patch lands.
        let mut live = compile(&d1);
        live.pipe.dispatch(batch_of(&warmup));
        let warm_lo = prints(live.lo.drain()).len();
        let warm_hi = prints(live.hi.drain()).len();
        let pre = live.pipe.stats();
        // No loss, no duplication during warm-up either.
        prop_assert_eq!(pre.accepted as usize, warm_lo + warm_hi);
        prop_assert_eq!(pre.packets as usize, warmup.len());

        let patch = live.binding.diff_to(&d2).expect("family pairs are diffable");
        let report = live
            .binding
            .apply_solo(&mut live.pipe, &patch)
            .expect("family patches apply");

        // Reference: a cold build of d2.
        let mut fresh = compile(&d2);

        live.pipe.dispatch(batch_of(&probe));
        fresh.pipe.dispatch(batch_of(&probe));

        // Identical per-output packet sequences (subsumes multiset and
        // per-flow-order equality) and identical verdict tallies.
        prop_assert_eq!(prints(live.lo.drain()), prints(fresh.lo.drain()));
        prop_assert_eq!(prints(live.hi.drain()), prints(fresh.hi.drain()));
        let post = live.pipe.stats();
        let refr = fresh.pipe.stats();
        prop_assert_eq!(post.accepted - pre.accepted, refr.accepted);
        prop_assert_eq!(post.dropped - pre.dropped, refr.dropped);

        // Same-skeleton pairs must have patched hot: no structure, no
        // quiesce epochs.
        if s1.skeleton() == s2.skeleton() {
            prop_assert!(patch.param_only(), "skeleton-equal pair produced structure:\n{}", patch.render());
            prop_assert_eq!(report.structural, 0);
            prop_assert_eq!(report.epochs, 0);
        }

        // Convergence: the binding's view now *is* d2 — re-diffing is
        // a no-op.
        prop_assert!(diff(live.binding.desc(), &d2).is_empty());
    }

    /// Param-only pairs — same skeleton, every knob flipped — produce
    /// a patch with zero structural ops that applies without a quiesce
    /// and swaps exactly the parameterised elements.
    #[test]
    fn param_only_pairs_never_touch_structure(
        s1 in spec_strategy(),
        traffic in traffic_strategy(),
    ) {
        let s2 = DescSpec {
            split: if s1.split == 1_000 { 2_000 } else { 1_000 },
            counters: s1.counters,
            guard: s1.guard.map(|t| if t == 1 << 20 { 2 << 20 } else { 1 << 20 }),
            conntrack: s1.conntrack.map(|c| if c == 1_024 { 4_096 } else { 1_024 }),
            nat: s1.nat.map(|p| if p == 10_000 { 20_000 } else { 10_000 }),
        };
        let d1 = describe(&s1);
        let d2 = describe(&s2);

        let mut live = compile(&d1);
        live.pipe.dispatch(batch_of(&traffic));

        let patch = live.binding.diff_to(&d2).expect("param tweaks diff");
        prop_assert!(patch.param_only());
        prop_assert_eq!(patch.structural_ops(), 0);
        // The ingress element is untouched, so not even the
        // entry-swap quiesce applies.
        prop_assert!(!patch.requires_quiesce());

        let report = live
            .binding
            .apply_solo(&mut live.pipe, &patch)
            .expect("param-only patches apply");
        prop_assert_eq!(report.structural, 0);
        prop_assert_eq!(report.epochs, 0);
        prop_assert_eq!(report.entry_swaps, 0);
        // Exactly the parameterised service elements were hot-swapped
        // (one shard), and the split change is two table ops
        // (delete old filter, install new).
        let parameterised = usize::from(s1.guard.is_some())
            + usize::from(s1.conntrack.is_some())
            + usize::from(s1.nat.is_some());
        prop_assert_eq!(report.replaced, parameterised);
        prop_assert_eq!(report.table_ops, 2);

        // And the patched pipeline still forwards: a probe flow lands
        // in the branch the *new* split dictates.
        live.lo.drain();
        live.hi.drain();
        live.pipe.dispatch(batch_of(&[(0, 1)])); // dport 1500
        let lo_got = live.lo.drain().len();
        let hi_got = live.hi.drain().len();
        if s2.split == 2_000 {
            prop_assert_eq!((lo_got, hi_got), (1, 0));
        } else {
            prop_assert_eq!((lo_got, hi_got), (0, 1));
        }
    }
}
