//! Golden-file tests for the description layer's stable textual
//! renders: [`PipelineDesc::render`] and [`Patch::render`].
//!
//! The renders are the layer's human-auditable surface — what a
//! operator diffs in review before a reconfiguration ships — so their
//! exact shape is pinned against committed `.golden` files in
//! `tests/testdata/`. After an intentional format change, regenerate
//! with:
//!
//! ```text
//! NETKIT_BLESS=1 cargo test -p netkit_router --test desc_golden
//! ```
//!
//! and commit the refreshed files.

use netkit_router::desc::{diff, PatternDesc, PipelineDesc, TableEntry};

/// Compares `actual` against `tests/testdata/<name>.golden`, or
/// rewrites the file when `NETKIT_BLESS=1` is set.
fn check(name: &str, actual: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/testdata")
        .join(format!("{name}.golden"));
    if std::env::var_os("NETKIT_BLESS").is_some_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with \
             NETKIT_BLESS=1 cargo test -p netkit_router --test desc_golden",
            path.display()
        )
    });
    assert_eq!(
        actual,
        expected,
        "render drifted from {}; if intentional, regenerate with \
         NETKIT_BLESS=1 cargo test -p netkit_router --test desc_golden",
        path.display()
    );
}

/// The canonical stateful edge: every description feature except
/// labelled fan-out — params, tables, pins, control.
fn edge_desc() -> PipelineDesc {
    PipelineDesc::new("golden-edge")
        .element_with(
            "guard",
            "guard",
            &[
                ("byte_threshold", (1u64 << 20).into()),
                ("window_budget", (256u64 * 1024).into()),
            ],
        )
        .element_with("ct", "conntrack", &[("capacity", 4_096u64.into())])
        .element_with(
            "nat",
            "nat44",
            &[
                ("external_ip", "192.0.2.1".into()),
                ("port_base", 10_000u16.into()),
            ],
        )
        .element_with(
            "lb",
            "l4lb",
            &[("vip", "10.0.7.9".into()), ("vport", 443u16.into())],
        )
        .element("sink", "discard")
        .ingress("guard")
        .edge("guard", "ct")
        .edge("ct", "nat")
        .edge("nat", "lb")
        .edge("lb", "sink")
        .table(
            "lb",
            TableEntry::Backend {
                ip: "10.1.0.1".to_owned(),
                port: 8080,
            },
        )
        .table(
            "lb",
            TableEntry::Backend {
                ip: "10.1.0.2".to_owned(),
                port: 8080,
            },
        )
        .pin(0, 1)
        .pin(7, 0)
        .control("hysteresis", &[("enter", 1.5.into()), ("exit", 1.2.into())])
}

/// Labelled fan-out through a classifier with a filter table.
fn classified_desc(split: u16) -> PipelineDesc {
    PipelineDesc::new("golden-split")
        .element("cls", "classifier")
        .element("fast", "counter")
        .element("slow", "counter")
        .element("sink", "discard")
        .ingress("cls")
        .edge_labelled("cls", "lo", "fast")
        .edge_labelled("cls", "hi", "slow")
        .edge("fast", "sink")
        .edge("slow", "sink")
        .table(
            "cls",
            TableEntry::Filter {
                pattern: PatternDesc::any().dst_port_range(0, split - 1),
                output: "lo".to_owned(),
                priority: 10,
            },
        )
        .table(
            "cls",
            TableEntry::Filter {
                pattern: PatternDesc::any(),
                output: "hi".to_owned(),
                priority: 0,
            },
        )
}

#[test]
fn pipeline_renders_are_stable() {
    check("desc_edge", &edge_desc().render());
    check("desc_classified", &classified_desc(1_000).render());
}

#[test]
fn canonicalisation_does_not_change_the_render() {
    // render() operates on the canonical form, so a description built
    // in any order renders identically.
    assert_eq!(edge_desc().canonical().render(), edge_desc().render());
}

#[test]
fn param_only_patch_render_is_stable() {
    let v1 = edge_desc();
    let v2 = v1
        .clone()
        .set_param("ct", "capacity", 8_192u64.into())
        .set_param("nat", "port_base", 20_000u16.into());
    check("patch_param_only", &diff(&v1, &v2).render());
}

#[test]
fn structural_patch_render_is_stable() {
    // Retire the NAT stage, rewire around it, re-split the classifier
    // world, and change the control section — every op family in one
    // plan.
    let v1 = edge_desc();
    let v2 = PipelineDesc::new("golden-edge")
        .element_with(
            "guard",
            "guard",
            &[
                ("byte_threshold", (1u64 << 20).into()),
                ("window_budget", (256u64 * 1024).into()),
            ],
        )
        .element_with("ct", "conntrack", &[("capacity", 4_096u64.into())])
        .element_with(
            "lb",
            "l4lb",
            &[("vip", "10.0.7.9".into()), ("vport", 443u16.into())],
        )
        .element("sink", "discard")
        .ingress("guard")
        .edge("guard", "ct")
        .edge("ct", "lb")
        .edge("lb", "sink")
        .table(
            "lb",
            TableEntry::Backend {
                ip: "10.1.0.1".to_owned(),
                port: 8080,
            },
        )
        .table(
            "lb",
            TableEntry::Backend {
                ip: "10.1.0.3".to_owned(),
                port: 8080,
            },
        )
        .pin(0, 1)
        .control("ewma", &[("alpha", 0.25.into())]);
    check("patch_structural", &diff(&v1, &v2).render());
}

#[test]
fn table_only_patch_render_is_stable() {
    check(
        "patch_table_only",
        &diff(&classified_desc(1_000), &classified_desc(2_000)).render(),
    );
}
