//! Differential property test: the batch dataplane path is
//! observationally identical to the scalar path.
//!
//! Two structurally identical element chains are driven with the same
//! packet sequence — one packet-at-a-time, one in arbitrarily sized
//! batches (including empty and size-1). The batch contract (see
//! `netkit_router::api` module docs) requires identical per-packet
//! verdicts, identical per-output packet sequences, and identical
//! counters; this test enforces all three over a chain that exercises
//! classification (labelled fan-out), IP processing (validate + TTL with
//! error diversion), metering, and bounded queueing (drop reasons).

use std::sync::Arc;

use proptest::prelude::*;

use netkit_kernel::time::VirtualClock;
use netkit_packet::batch::PacketBatch;
use netkit_packet::packet::{Packet, PacketBuilder};
use netkit_router::api::{
    register_packet_interfaces, FilterPattern, FilterSpec, IClassifier, IPacketPull, IPacketPush,
    PushResult, IPACKET_PULL, IPACKET_PUSH,
};
use netkit_router::elements::{
    ClassifierEngine, Discard, DropTailQueue, Ipv4Processor, Meter, RedConfig, RedQueue,
};
use opencom::capsule::Capsule;
use opencom::runtime::Runtime;

/// One synthetic packet spec the strategies draw.
#[derive(Clone, Debug)]
struct PacketSpec {
    dst_last_octet: u8,
    dport: u16,
    ttl: u8,
    dscp: u8,
    payload_len: usize,
    corrupt_checksum: bool,
}

fn packet_strategy() -> impl Strategy<Value = PacketSpec> {
    (
        any::<u8>(),
        prop_oneof![Just(5004u16), Just(80u16), 1u16..=65535],
        prop_oneof![Just(0u8), Just(1u8), 2u8..=64],
        prop_oneof![Just(0u8), Just(46u8)],
        0usize..128,
        prop_oneof![Just(false), Just(false), Just(false), Just(true)],
    )
        .prop_map(
            |(dst_last_octet, dport, ttl, dscp, payload_len, corrupt_checksum)| PacketSpec {
                dst_last_octet,
                dport,
                ttl,
                dscp,
                payload_len,
                corrupt_checksum,
            },
        )
}

fn build_packet(spec: &PacketSpec) -> Packet {
    let mut pkt = PacketBuilder::udp_v4(
        "192.0.2.7",
        &format!("10.0.0.{}", spec.dst_last_octet),
        4000,
        spec.dport,
    )
    .ttl(spec.ttl)
    .dscp(spec.dscp)
    .payload_len(spec.payload_len)
    .build();
    if spec.corrupt_checksum {
        // Flip a checksum byte so Ipv4Processor sees a malformed header.
        pkt.l3_mut()[10] ^= 0xff;
    }
    pkt
}

/// A chain rig: classifier → {voice → RED queue, bulk → meter → drop-tail
/// queue, default → ipv4 processor → queue, err → discard}, all bound
/// through a real capsule so interception wrappers sit on every edge.
struct Rig {
    _capsule: Arc<Capsule>,
    entry: Arc<dyn IPacketPush>,
    classifier: Arc<ClassifierEngine>,
    proc4: Arc<Ipv4Processor>,
    voice_q: Arc<RedQueue>,
    bulk_q: Arc<DropTailQueue>,
    default_q: Arc<DropTailQueue>,
    err_sink: Arc<Discard>,
    voice_pull: Arc<dyn IPacketPull>,
    bulk_pull: Arc<dyn IPacketPull>,
    default_pull: Arc<dyn IPacketPull>,
}

fn rig() -> Rig {
    let rt = Runtime::new();
    register_packet_interfaces(&rt);
    let capsule = Capsule::new("diff", &rt);

    let classifier = ClassifierEngine::new();
    let proc4 = Ipv4Processor::new();
    let meter = Meter::new(1e9, 1e9, 1e9, Arc::new(VirtualClock::new()));
    let voice_q = RedQueue::new(RedConfig {
        capacity: 24,
        min_threshold: 4.0,
        max_threshold: 16.0,
        max_probability: 0.5,
        weight: 0.4,
        seed: 11,
    });
    let bulk_q = DropTailQueue::new(16);
    let default_q = DropTailQueue::new(8);
    let err_sink = Discard::new();

    let cid = capsule.adopt(classifier.clone()).unwrap();
    let pid = capsule.adopt(proc4.clone()).unwrap();
    let mid = capsule.adopt(meter.clone()).unwrap();
    let vq = capsule.adopt(voice_q.clone()).unwrap();
    let bq = capsule.adopt(bulk_q.clone()).unwrap();
    let dq = capsule.adopt(default_q.clone()).unwrap();
    let es = capsule.adopt(err_sink.clone()).unwrap();

    capsule.bind(cid, "out", "voice", vq, IPACKET_PUSH).unwrap();
    capsule.bind(cid, "out", "bulk", mid, IPACKET_PUSH).unwrap();
    capsule
        .bind(cid, "out", "default", pid, IPACKET_PUSH)
        .unwrap();
    capsule.bind_simple(mid, "out", bq, IPACKET_PUSH).unwrap();
    capsule.bind_simple(pid, "out", dq, IPACKET_PUSH).unwrap();
    capsule.bind_simple(pid, "err", es, IPACKET_PUSH).unwrap();

    classifier
        .register_filter(FilterSpec::new(
            FilterPattern::any().protocol(17).dst_port_range(5000, 5999),
            "voice",
            10,
        ))
        .unwrap();
    classifier
        .register_filter(FilterSpec::new(FilterPattern::any().dscp(46), "bulk", 5))
        .unwrap();

    // Enter through the capsule-resolved (interception-wrapped) surface
    // so the batch path crosses the same wrappers the scalar path does.
    let entry: Arc<dyn IPacketPush> = capsule
        .query_interface(cid, IPACKET_PUSH)
        .unwrap()
        .downcast()
        .unwrap();
    let voice_pull: Arc<dyn IPacketPull> = capsule
        .query_interface(vq, IPACKET_PULL)
        .unwrap()
        .downcast()
        .unwrap();
    let bulk_pull: Arc<dyn IPacketPull> = capsule
        .query_interface(bq, IPACKET_PULL)
        .unwrap()
        .downcast()
        .unwrap();
    let default_pull: Arc<dyn IPacketPull> = capsule
        .query_interface(dq, IPACKET_PULL)
        .unwrap()
        .downcast()
        .unwrap();

    Rig {
        _capsule: capsule,
        entry,
        classifier,
        proc4,
        voice_q,
        bulk_q,
        default_q,
        err_sink,
        voice_pull,
        bulk_pull,
        default_pull,
    }
}

fn fingerprint(pkt: &Packet) -> (Vec<u8>, Option<u8>, Option<netkit_packet::packet::Color>) {
    (pkt.data().to_vec(), pkt.meta.dscp, pkt.meta.color)
}

fn drain_scalar(pull: &Arc<dyn IPacketPull>) -> Vec<Packet> {
    let mut out = Vec::new();
    while let Some(pkt) = pull.pull() {
        out.push(pkt);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn batch_path_is_equivalent_to_scalar_path(
        specs in proptest::collection::vec(packet_strategy(), 0..96),
        // Batch sizing plan; consumed cyclically. Includes 0 and 1 so
        // empty and singleton batches are always exercised.
        sizes in proptest::collection::vec(
            prop_oneof![Just(0usize), Just(1usize), 2usize..48],
            1..8,
        ),
    ) {
        let scalar = rig();
        let batched = rig();
        let packets: Vec<Packet> = specs.iter().map(build_packet).collect();

        // Scalar reference: one push per packet.
        let scalar_verdicts: Vec<PushResult> =
            packets.iter().map(|p| scalar.entry.push(p.clone())).collect();

        // Batch run: same sequence, chunked by the size plan. A
        // trailing nonzero entry guarantees progress even when the
        // random plan is all zeros (zero-size entries still exercise
        // empty batches along the way).
        let mut sizes = sizes;
        sizes.push(7);
        let mut batch_verdicts: Vec<PushResult> = Vec::with_capacity(packets.len());
        let mut remaining = &packets[..];
        let mut size_plan = sizes.iter().copied().cycle();
        while !remaining.is_empty() {
            let take = size_plan.next().expect("cycle is infinite").min(remaining.len());
            let (chunk, rest) = remaining.split_at(take);
            remaining = rest;
            let batch: PacketBatch = chunk.to_vec().into();
            let chunk_len = chunk.len();
            let result = batched.entry.push_batch(batch);
            prop_assert_eq!(result.len(), chunk_len, "one verdict per packet");
            batch_verdicts.extend(result.verdicts);
        }

        // 1. Identical per-packet verdicts (drop reasons included).
        prop_assert_eq!(&scalar_verdicts, &batch_verdicts);

        // 2. Identical element counters.
        prop_assert_eq!(scalar.classifier.stats(), batched.classifier.stats());
        prop_assert_eq!(scalar.proc4.stats(), batched.proc4.stats());
        prop_assert_eq!(scalar.voice_q.stats(), batched.voice_q.stats());
        prop_assert_eq!(scalar.bulk_q.stats(), batched.bulk_q.stats());
        prop_assert_eq!(scalar.default_q.stats(), batched.default_q.stats());
        prop_assert_eq!(scalar.err_sink.count(), batched.err_sink.count());

        // 3. Identical per-output packet sequences (bytes + metadata),
        //    with the batch side drained via pull_batch and the scalar
        //    side via pull.
        for (s_pull, b_pull) in [
            (&scalar.voice_pull, &batched.voice_pull),
            (&scalar.bulk_pull, &batched.bulk_pull),
            (&scalar.default_pull, &batched.default_pull),
        ] {
            let s_seq: Vec<_> = drain_scalar(s_pull).iter().map(fingerprint).collect();
            let mut b_seq = Vec::new();
            loop {
                let burst = b_pull.pull_batch(7);
                if burst.is_empty() {
                    break;
                }
                b_seq.extend(burst.iter().map(fingerprint));
            }
            prop_assert_eq!(s_seq, b_seq);
        }
    }

    #[test]
    fn empty_and_singleton_batches_are_wellformed(spec in packet_strategy()) {
        let r = rig();
        let empty = r.entry.push_batch(PacketBatch::new());
        prop_assert!(empty.is_empty());

        let pkt = build_packet(&spec);
        let scalar_rig = rig();
        let scalar = scalar_rig.entry.push(pkt.clone());
        let single = r.entry.push_batch(PacketBatch::from_packets(vec![pkt]));
        prop_assert_eq!(single.len(), 1);
        prop_assert_eq!(&single.verdicts[0], &scalar);
    }
}
