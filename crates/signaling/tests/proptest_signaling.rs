//! Property-based tests for stratum 4: Genesis spawns on arbitrary
//! connected substrates always yield internally-routable virtual
//! networks with conserved shares, and RSVP admission never
//! over-allocates a link regardless of the offered session mix.

use std::net::Ipv4Addr;

use proptest::prelude::*;

use netkit_packet::packet::PacketBuilder;
use netkit_signaling::genesis::{Genesis, GenesisError, VirtnetDescriptor};
use netkit_signaling::rsvp::{FlowSpec, RsvpAgent, RsvpConfig, SessionId};
use netkit_sim::link::LinkSpec;
use netkit_sim::Simulator;

/// A random connected adjacency: a random spanning tree plus extras.
fn adjacency_strategy() -> impl Strategy<Value = Vec<Vec<(u16, usize)>>> {
    (2usize..10, any::<u64>()).prop_map(|(n, seed)| {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut adj: Vec<Vec<(u16, usize)>> = vec![Vec::new(); n];
        let connect = |adj: &mut Vec<Vec<(u16, usize)>>, a: usize, b: usize| {
            let pa = adj[a].len() as u16;
            let pb = adj[b].len() as u16;
            adj[a].push((pa, b));
            adj[b].push((pb, a));
        };
        for i in 1..n {
            let parent = rng.gen_range(0..i);
            connect(&mut adj, parent, i);
        }
        for a in 0..n {
            for b in (a + 1)..n {
                if rng.gen::<f64>() < 0.15 && !adj[a].iter().any(|(_, p)| *p == b) {
                    connect(&mut adj, a, b);
                }
            }
        }
        adj
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn spawn_over_full_substrate_routes_between_all_members(
        adj in adjacency_strategy(),
    ) {
        let n = adj.len();
        let mut g = Genesis::new(adj);
        let members: Vec<usize> = (0..n).collect();
        let (id, report) = g
            .spawn(VirtnetDescriptor::new("p", Ipv4Addr::new(10, 99, 0, 0), 24), &members)
            .expect("full substrate is connected");
        prop_assert_eq!(report.nodes, n);

        // Every member can take the first hop towards every other member:
        // pushing a packet for dst's vaddr yields an emission on some
        // substrate port.
        for &src in &members {
            for &dst in &members {
                if src == dst {
                    continue;
                }
                let vdst = g.vaddr(id, dst).expect("member has a vaddr");
                let pkt = PacketBuilder::udp_v4(
                    &g.vaddr(id, src).unwrap().to_string(),
                    &vdst.to_string(),
                    1,
                    1,
                )
                .build();
                prop_assert!(
                    g.forward(id, src, pkt).is_some(),
                    "node {src} cannot start towards {dst}"
                );
            }
        }
        g.teardown(id).expect("no children");
    }

    #[test]
    fn sibling_shares_never_exceed_parent(
        adj in adjacency_strategy(),
        shares in proptest::collection::vec(0.05f64..0.9, 1..6),
    ) {
        let n = adj.len();
        let mut g = Genesis::new(adj);
        let members: Vec<usize> = (0..n).collect();
        let (parent, _) = g
            .spawn(VirtnetDescriptor::new("p", Ipv4Addr::new(10, 99, 0, 0), 24), &members)
            .expect("connected");

        let mut granted = 0.0f64;
        for (i, share) in shares.iter().enumerate() {
            let name = format!("c{i}");
            let base = Ipv4Addr::new(10, 100 + i as u8, 0, 0);
            let result = g.spawn_child(
                parent,
                VirtnetDescriptor::new(name, base, 24).share(*share),
                &members,
            );
            if granted + share <= 1.0 + 1e-9 {
                prop_assert!(result.is_ok(), "share {share} within remaining budget");
                granted += share;
            } else {
                prop_assert!(
                    matches!(result, Err(GenesisError::ShareExceeded { .. })),
                    "over-committed share must be refused"
                );
            }
        }
        prop_assert!(granted <= 1.0 + 1e-9);
    }

    #[test]
    fn rsvp_admission_never_overcommits_a_link(
        demands in proptest::collection::vec(100_000u64..2_000_000, 1..12),
        budget in 500_000u64..4_000_000,
    ) {
        // 3-node line; every session crosses the middle node's port 1.
        let mut sim = Simulator::new(11);
        let addr = |i: usize| Ipv4Addr::new(10, 0, 0, i as u8 + 1);
        let mut ids = Vec::new();
        for i in 0..3 {
            let agent = RsvpAgent::new(
                addr(i),
                RsvpConfig { refresh_ns: 1_000_000, lifetime_mult: 3, sweep_ns: 500_000 },
            );
            ids.push(sim.add_node(Box::new(agent)));
        }
        for w in ids.windows(2) {
            sim.connect(w[0], w[1], LinkSpec::lan());
        }
        for (i, &node) in ids.iter().enumerate() {
            let left = if i == 0 { None } else { Some(0u16) };
            let right = if i == 2 { None } else if i == 0 { Some(0u16) } else { Some(1u16) };
            let agent = sim.node_behaviour_mut::<RsvpAgent>(node).unwrap();
            for j in 0..3 {
                if j < i {
                    if let Some(p) = left { agent.route(addr(j), p); }
                } else if j > i {
                    if let Some(p) = right { agent.route(addr(j), p); }
                }
            }
            for p in [left, right].into_iter().flatten() {
                agent.budget(p, budget);
            }
        }
        for (k, bw) in demands.iter().enumerate() {
            sim.node_behaviour_mut::<RsvpAgent>(ids[0]).unwrap().open_session(
                SessionId(k as u64 + 1),
                addr(2),
                FlowSpec { bandwidth_bps: *bw },
            );
        }
        // Kick the timers and let several refresh cycles run.
        sim.inject_after(
            ids[0],
            0,
            PacketBuilder::udp_v4("10.9.9.9", "10.9.9.8", 1, 1).build(),
        );
        sim.run_for(10_000_000);

        let mid = sim.node_behaviour_mut::<RsvpAgent>(ids[1]).unwrap();
        prop_assert!(
            mid.allocated_on(1) <= budget,
            "allocated {} > budget {budget}",
            mid.allocated_on(1)
        );
        // Whatever was admitted is a prefix-sum-feasible subset.
        let admitted = mid.reserved_sessions().len();
        let feasible_all: u64 = demands.iter().sum();
        if feasible_all <= budget {
            prop_assert_eq!(admitted, demands.len(), "everything fits, everything admitted");
        }
    }
}
