//! Reservations under rebalance: an RSVP agent riding a
//! simulator-hosted [`PipelineNode`] as its control tap must keep its
//! soft state alive across a mid-run bucket-map migration of the
//! node's own dataplane — signaling and steering are independent
//! planes, and re-homing flows must never tear down a reservation.
//!
//! Also pins the expiry sweep's determinism: when several sessions
//! expire in one sweep tick, the `Expired` events surface in sorted
//! session order on every run (the state maps iterate in RandomState
//! order; the agent must sort before emitting).

use std::net::Ipv4Addr;
use std::sync::Arc;

use netkit_kernel::shard::ShardSpec;
use netkit_kernel::time::SimTime;
use netkit_packet::packet::{Packet, PacketBuilder};
use netkit_packet::steer::{BucketMap, RSS_BUCKETS};
use netkit_router::api::IPacketPush;
use netkit_router::flow::ConnTracker;
use netkit_router::shard::ShardGraph;
use netkit_signaling::{FlowSpec, RsvpAgent, RsvpConfig, RsvpEvent, SessionId, RSVP_PORT};
use netkit_sim::link::LinkSpec;
use netkit_sim::pipeline::{PipelineNode, RouteAction};
use netkit_sim::Simulator;

fn addr(last: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 0, last)
}

fn agent(last: u8, refresh_ns: u64) -> RsvpAgent {
    RsvpAgent::new(
        addr(last),
        RsvpConfig {
            refresh_ns,
            lifetime_mult: 3,
            sweep_ns: 200_000,
        },
    )
}

/// True for RSVP control packets — the tap predicate.
fn is_rsvp(pkt: &Packet) -> bool {
    pkt.udp_v4()
        .map(|u| u.dst_port == RSVP_PORT)
        .unwrap_or(false)
}

fn kick(sim: &mut Simulator, node: netkit_sim::node::NodeId) {
    let dummy = PacketBuilder::udp_v4("10.9.9.9", "10.9.9.8", 1, 1).build();
    sim.inject_after(node, 0, dummy);
}

/// The everything-flipped migration target: every bucket re-homed to
/// the other shard of a two-shard node.
fn flipped() -> BucketMap {
    let mut map = BucketMap::identity(2);
    for bucket in 0..RSS_BUCKETS {
        map.set(bucket, 1 - bucket % 2);
    }
    map
}

/// A ─ M ─ B, where M is a two-shard pipeline node whose control tap
/// is a full RSVP agent: data crosses M's conntrack dataplane, PATH
/// and RESV are diverted to the agent before the dataplane sees them.
#[test]
fn reservation_survives_midrun_migration() {
    let mut sim = Simulator::new(3);

    let sender = sim.add_node(Box::new({
        let mut a = agent(1, 1_000_000);
        a.route(addr(3), 0).budget(0, 10_000_000);
        a
    }));

    let mid = {
        let mut tap_agent = agent(2, 1_000_000);
        tap_agent
            .route(addr(1), 0)
            .route(addr(3), 1)
            .budget(0, 10_000_000)
            .budget(1, 10_000_000);
        let node = PipelineNode::build("mid", ShardSpec::new(2), |site| {
            let (capsule, _rt) = PipelineNode::shard_capsule();
            let tracker = ConnTracker::new();
            let tid = capsule.adopt(tracker.clone())?;
            let eid = capsule.adopt(site.egress.clone())?;
            capsule.bind_simple(tid, "out", eid, netkit_router::api::IPACKET_PUSH)?;
            let entry: Arc<dyn IPacketPush> = tracker;
            Ok(ShardGraph::new(capsule, entry).with_components(vec![tid, eid]))
        })
        .expect("mid node builds")
        .with_route(Box::new(|pkt| {
            match pkt.ipv4().map(|ip| ip.dst.octets()[3]) {
                Ok(1) => RouteAction::Forward(0),
                Ok(3) => RouteAction::Forward(1),
                _ => RouteAction::Drop,
            }
        }))
        .with_control_tap(Box::new(is_rsvp), Box::new(tap_agent));
        sim.add_node(Box::new(node))
    };

    let receiver = sim.add_node(Box::new({
        let mut b = agent(3, 1_000_000);
        b.route(addr(1), 0).budget(0, 10_000_000);
        b
    }));

    sim.connect(sender, mid, LinkSpec::lan());
    sim.connect(mid, receiver, LinkSpec::lan());

    // Open the session and let the PATH/RESV handshake complete.
    let session = SessionId(7);
    sim.node_behaviour_mut::<RsvpAgent>(sender)
        .expect("sender")
        .open_session(
            session,
            addr(3),
            FlowSpec {
                bandwidth_bps: 1_000_000,
            },
        );
    kick(&mut sim, sender);
    sim.run_for(5_000_000);

    {
        let s = sim.node_behaviour_mut::<RsvpAgent>(sender).expect("sender");
        assert!(
            s.take_events().contains(&RsvpEvent::Established(session)),
            "reservation must establish through the pipeline node's tap"
        );
        let m = sim
            .node_behaviour_mut::<PipelineNode>(mid)
            .expect("mid node")
            .tap_mut::<RsvpAgent>()
            .expect("tap agent");
        assert_eq!(m.reserved_sessions(), [session]);
        assert_eq!(m.allocated_on(1), 1_000_000);
    }

    // Data crosses the dataplane while refreshes keep the state warm.
    let data_packets = 40u64;
    for i in 0..data_packets {
        let pkt = PacketBuilder::udp_v4("10.0.0.1", "10.0.0.3", 5_000 + (i % 4) as u16, 443)
            .payload(&[0u8; 64])
            .build();
        // Delays are relative to now (5 ms): the stream spans
        // 5 ms..7 ms, straddling the 6 ms migration below.
        sim.inject_after(sender, i * 50_000, pkt);
    }

    // Halfway through the stream: flip every bucket to the other
    // shard — the heaviest possible migration of M's dataplane.
    sim.run_until(SimTime::from_nanos(6_000_000));
    {
        let m = sim
            .node_behaviour_mut::<PipelineNode>(mid)
            .expect("mid node");
        let report = m.pipeline_mut().install_bucket_map(flipped());
        assert_eq!(report.dropped, 0, "migration must not drop in-flight work");
        assert!(report.moved_buckets > 0);
    }
    sim.run_for(6_000_000);

    // The reservation outlived the migration; the data all executed.
    let m = sim
        .node_behaviour_mut::<PipelineNode>(mid)
        .expect("mid node");
    assert_eq!(m.pipeline().migrations(), 1);
    assert_eq!(
        m.pipeline().stats().packets,
        data_packets,
        "every data packet crosses the dataplane; control stays in the tap"
    );
    let tap = m.tap_mut::<RsvpAgent>().expect("tap agent");
    assert_eq!(
        tap.reserved_sessions(),
        [session],
        "soft state must survive the bucket-map migration"
    );
    assert_eq!(tap.allocated_on(1), 1_000_000);
    assert!(
        !tap.take_events().contains(&RsvpEvent::Expired(session)),
        "refreshes crossing the migration must keep the state alive"
    );
    let r = sim
        .node_behaviour_mut::<RsvpAgent>(receiver)
        .expect("receiver");
    assert!(r.take_events().contains(&RsvpEvent::PathArrived(session)));
}

/// Four sessions left to expire in the same sweep tick must surface
/// their `Expired` events in session order, run after run — the
/// regression pin for the sweep's sorted iteration.
#[test]
fn expiry_sweep_surfaces_sessions_in_order() {
    let run = || -> Vec<RsvpEvent> {
        let mut sim = Simulator::new(9);
        // Sender refreshes far too slowly for the middle node's
        // 3 ms lifetime: every session's soft state dies mid-run.
        let sender = sim.add_node(Box::new({
            let mut a = agent(1, 100_000_000);
            a.route(addr(3), 0).budget(0, 50_000_000);
            a
        }));
        let mid = sim.add_node(Box::new({
            let mut m = agent(2, 1_000_000);
            m.route(addr(1), 0).route(addr(3), 1);
            m.budget(0, 50_000_000).budget(1, 50_000_000);
            m
        }));
        let receiver = sim.add_node(Box::new({
            let mut b = agent(3, 1_000_000);
            b.route(addr(1), 0).budget(0, 50_000_000);
            b
        }));
        sim.connect(sender, mid, LinkSpec::lan());
        sim.connect(mid, receiver, LinkSpec::lan());

        // Deliberately out-of-order ids: insertion order must not be
        // what makes the output ordered.
        for id in [11, 3, 7, 5] {
            sim.node_behaviour_mut::<RsvpAgent>(sender)
                .expect("sender")
                .open_session(
                    SessionId(id),
                    addr(3),
                    FlowSpec {
                        bandwidth_bps: 1_000_000,
                    },
                );
        }
        kick(&mut sim, sender);
        sim.run_for(12_000_000);
        sim.node_behaviour_mut::<RsvpAgent>(mid)
            .expect("mid")
            .take_events()
    };

    let events = run();
    let expired: Vec<u64> = events
        .iter()
        .filter_map(|e| match e {
            RsvpEvent::Expired(SessionId(id)) => Some(*id),
            _ => None,
        })
        .collect();
    assert_eq!(
        expired.len(),
        8,
        "path and resv state for all four sessions expire: {events:?}"
    );
    // Each sweep batch (path expiries, then resv expiries) comes out
    // sorted by session id.
    for half in expired.chunks(4) {
        assert_eq!(half, [3, 5, 7, 11], "sweep must emit in session order");
    }
    // And the whole event stream replays identically.
    assert_eq!(events, run(), "expiry sweep must be deterministic");
}
